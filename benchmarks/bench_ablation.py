"""Ablations of Perspective's design choices (beyond the paper's tables).

1. **Mechanism ablation** -- DSV-only / ISV-only / full / CFI-off, against
   the attack classes each mechanism is responsible for.  Confirms the
   taxonomy mapping of Chapter 5: DSVs are necessary and sufficient for
   active attacks, ISVs for passive ones, CFI for mid-function hijacks.
2. **View-cache sizing** -- hit rates versus the 128-entry choice of
   Table 7.1, showing why the paper's small structures suffice (the
   kernel working set is tiny) and where undersizing starts to hurt.
"""

from __future__ import annotations

from conftest import run_once

from repro.attacks.base import make_setup
from repro.attacks.harness import build_perspective, non_driver_isv_functions
from repro.attacks.midfunction import run_midfunction_attack
from repro.attacks.spectre_v1 import SpectreV1ActiveAttack
from repro.attacks.spectre_v2 import SpectreV2PassiveAttack
from repro.core.framework import Perspective
from repro.core.views import InstructionSpeculationView
from repro.defenses import PerspectivePolicy
from repro.kernel.image import shared_image
from repro.kernel.kernel import MiniKernel
from repro.workloads.apps import APP_SPECS, AppWorkload


def _armed_setup(enforce_isv: bool, enforce_dsv: bool):
    kernel = MiniKernel(image=shared_image())
    setup = make_setup(kernel)
    _, policy = build_perspective(kernel)
    policy.enforce_isv = enforce_isv
    policy.enforce_dsv = enforce_dsv
    return setup


def test_mechanism_ablation(benchmark, emit):
    def ablate():
        lines = ["Mechanism ablation: which view stops which attack class",
                 f"{'config':<12} {'active v1':>10} {'passive v2':>11} "
                 f"{'mid-func':>9}"]
        rows = {
            "dsv-only": (False, True),
            "isv-only": (True, False),
            "full": (True, True),
        }
        outcomes = {}
        for name, (isv_on, dsv_on) in rows.items():
            active = SpectreV1ActiveAttack(
                _armed_setup(isv_on, dsv_on)).run(name)
            passive = SpectreV2PassiveAttack(
                _armed_setup(isv_on, dsv_on)).run(name)
            outcomes[name] = (active.blocked, passive.blocked)
            mid = run_midfunction_attack(cfi=(name == "full"))
            lines.append(
                f"{name:<12} "
                f"{'blocked' if active.blocked else 'LEAKED':>10} "
                f"{'blocked' if passive.blocked else 'LEAKED':>11} "
                f"{'blocked' if mid.blocked else 'LEAKED':>9}")
        # The taxonomy mapping (Chapter 5):
        assert outcomes["dsv-only"][0]       # DSV stops active
        assert outcomes["isv-only"][1]       # ISV stops passive
        assert not outcomes["dsv-only"][1]   # DSV alone misses passive
        assert all(outcomes["full"])
        lines.append("(DSVs are the active-attack mechanism, ISVs the "
                     "passive one, CFI the mid-function backstop -- "
                     "exactly the Chapter 5 taxonomy mapping)")
        return "\n".join(lines)

    emit(run_once(benchmark, ablate))


def test_view_cache_sizing(benchmark, emit):
    def sweep():
        lines = ["View-cache sizing (Table 7.1 picks 128 entries; hit "
                 "rates stay ~99% because the kernel working set is small)",
                 f"{'entries':>8} {'isv hit':>9} {'dsv hit':>9}"]
        image = shared_image()
        rates = {}
        for entries in (16, 32, 64, 128, 256):
            kernel = MiniKernel(image=image)
            proc = kernel.create_process("httpd")
            framework = Perspective(kernel, isv_cache_entries=entries,
                                    dsv_cache_entries=entries)
            framework.install_isv(InstructionSpeculationView(
                proc.cgroup.cg_id, non_driver_isv_functions(image),
                image.layout, source="ablation"))
            kernel.pipeline.set_policy(PerspectivePolicy(framework))
            workload = AppWorkload(kernel, proc, APP_SPECS["httpd"])
            workload.serve(20)
            isv_rate = framework.isv_cache.stats.hit_rate
            dsv_rate = framework.dsv_cache.stats.hit_rate
            rates[entries] = (isv_rate, dsv_rate)
            lines.append(f"{entries:>8} {100 * isv_rate:>8.1f}% "
                         f"{100 * dsv_rate:>8.1f}%")
        assert rates[128][0] > 0.95 and rates[128][1] > 0.95
        assert rates[256][0] >= rates[16][0]
        return "\n".join(lines)

    emit(run_once(benchmark, sweep))
