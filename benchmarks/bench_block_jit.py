"""Benchmark basic-block trace memoization (``repro.cpu.blockcache``).

Measures the block JIT's replay speedup at four granularities, asserting
**byte-exact parity** (architectural results AND cycle counts) between
cache-on and cache-off at every one, and writes a diffgate-compatible
snapshot (``repro.obs.MetricsRegistry`` shape):

* **counters/gauges** -- parity flags, simulated cycles, per-test ROI
  cycles, and block-cache hit/miss/invalidation counts.  Fully
  deterministic (fixed image seed, fixed run counts), so CI byte-gates
  them with ``python -m repro.obs diff`` against the committed
  ``benchmarks/out/BENCH_block_jit.json``.
* **meta** -- wall-clock seconds and speedups.  Machine-dependent, so it
  rides in ``meta``, which the diff gate skips: the committed numbers
  are a trajectory record, not a gate.

The workloads, from best case to whole system:

* ``straightline`` -- one 256-op ALU basic block, the pure-replay upper
  bound.  The ``>= 5x`` speedup target gates here (``--no-gate`` to
  skip, e.g. on heavily loaded machines).
* ``loop`` -- an 8-op loop body iterated 200 times: back-edge chaining
  inside one compiled region, no interpreter round-trips.
* ``lebench`` -- the full LEBench suite end-to-end on a real kernel
  (gated ``>= 1.3x``), plus per-test speedups.  Byte-exact per-op
  timing replication (every load still walks TLB/L1/L2 state) bounds
  the end-to-end gain well below the straight-line bound; the analysis
  lives in ``docs/performance.md``.
* ``serve`` -- the multi-tenant smoke grid through ``run_serve``,
  identical reports either way.

Usage::

    python benchmarks/bench_block_jit.py -o out.json [--no-gate]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.cpu.isa import AluOp, CodeLayout, Function, alu, br, li, ret
from repro.cpu.memsys import MainMemory
from repro.cpu.pipeline import ExecutionContext, Pipeline
from repro.kernel.image import shared_image
from repro.kernel.kernel import MiniKernel
from repro.obs import MetricsRegistry
from repro.serve.engine import ServeConfig, run_serve
from repro.workloads.lebench import build_tests, run_lebench

#: The serve smoke grid (matches ``python -m repro.serve --smoke``).
SERVE_SMOKE = {"seeds": (0, 1), "tenants": (2, 3), "requests_per_tenant": 6}

#: Speedup floors enforced unless ``--no-gate`` (CI safety margins well
#: under the measured numbers, which fluctuate with machine load).
GATE_STRAIGHTLINE = 5.0
GATE_LEBENCH = 1.3


# ---------------------------------------------------------------------------
# Microbench programs
# ---------------------------------------------------------------------------


def _straightline_func(layout: CodeLayout, n_ops: int = 256) -> Function:
    """One giant straight-line ALU block: the replay best case."""
    ops = [li("r1", 3), li("r2", 5)]
    kinds = (AluOp.ADD, AluOp.XOR, AluOp.SUB)
    k = 0
    while len(ops) < n_ops - 1:
        ops.append(alu(f"r{3 + k % 8}", kinds[k % 3],
                       "r1" if k % 2 else "r2", f"r{3 + (k + 1) % 8}"))
        k += 1
    ops.append(ret())
    return layout.add(Function("straightline", ops))


def _loop_func(layout: CodeLayout, iters: int = 200) -> Function:
    """A small loop body: back-edges chain inside the compiled region."""
    return layout.add(Function("loop", [
        li("r1", iters), li("r2", 3),
        alu("r3", AluOp.ADD, "r2", "r2"),   # loop head
        alu("r4", AluOp.XOR, "r3", "r1"),
        alu("r5", AluOp.ADD, "r4", "r2"),
        alu("r6", AluOp.XOR, "r5", "r3"),
        alu("r7", AluOp.ADD, "r6", "r2"),
        alu("r1", AluOp.SUB, "r1", imm=1),
        br("r1", target=2),
        ret(),
    ]))


def _run_micro(build, enable: bool, warmup: int = 3, inner: int = 20,
               repeats: int = 5):
    """Fresh pipeline; warm it, then best-of-``repeats`` timed batches.
    Returns (seconds per run, final ExecResult)."""
    layout = CodeLayout(0x40000, stride_ops=1024)
    func = build(layout)
    pipeline = Pipeline(layout, MainMemory())
    pipeline.config.enable_block_cache = enable
    for _ in range(warmup):
        result = pipeline.run(func, ExecutionContext(1))
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            result = pipeline.run(func, ExecutionContext(1))
        best = min(best, time.perf_counter() - start)
    return best / inner, result


def _micro(reg: MetricsRegistry, name: str, build) -> float:
    t_off, r_off = _run_micro(build, enable=False)
    t_on, r_on = _run_micro(build, enable=True)
    assert r_off.regs == r_on.regs, f"{name}: architectural divergence"
    assert r_off.cycles == r_on.cycles, f"{name}: timing divergence"
    reg.add(f"block_jit.parity.{name}")
    reg.gauge(f"block_jit.{name}.cycles", r_on.cycles)
    reg.gauge(f"block_jit.{name}.committed_ops", r_on.committed_ops)
    speedup = t_off / t_on
    reg.meta[f"speedup_{name}"] = f"{speedup:.2f}"
    print(f"{name:<14} off={t_off * 1e6:8.1f}us  on={t_on * 1e6:8.1f}us  "
          f"speedup={speedup:.2f}x", file=sys.stderr)
    return speedup


# ---------------------------------------------------------------------------
# LEBench (end-to-end and per-test)
# ---------------------------------------------------------------------------


def _lebench_config(enable: bool, timed_runs: int = 2):
    """One kernel per config: a warmup suite run (which also compiles),
    then ``timed_runs`` timed suite runs, best-of kept."""
    kernel = MiniKernel(image=shared_image())
    kernel.pipeline.config.enable_block_cache = enable
    proc = kernel.create_process("lebench")
    results = [run_lebench(kernel, proc)]
    best = float("inf")
    for _ in range(timed_runs):
        start = time.perf_counter()
        results.append(run_lebench(kernel, proc))
        best = min(best, time.perf_counter() - start)
    return kernel, proc, results, best


def _mem_stats(kernel: MiniKernel):
    pipe = kernel.pipeline
    return (kernel.memory.digest(),
            pipe.tlb.stats.hits, pipe.tlb.stats.misses,
            pipe.hierarchy.l1i.stats.hits, pipe.hierarchy.l1i.stats.misses,
            pipe.hierarchy.l1d.stats.hits, pipe.hierarchy.l1d.stats.misses,
            pipe.hierarchy.l2.stats.hits, pipe.hierarchy.l2.stats.misses)


def _lebench(reg: MetricsRegistry) -> float:
    k_off, p_off, res_off, t_off = _lebench_config(False)
    k_on, p_on, res_on, t_on = _lebench_config(True)
    assert res_off == res_on, "lebench: per-test ROI cycles diverged"
    assert _mem_stats(k_off) == _mem_stats(k_on), \
        "lebench: memory/TLB/cache state diverged"
    reg.add("block_jit.parity.lebench")
    bc = k_on.pipeline._blockcache
    reg.add("block_jit.lebench.hits", bc.hits)
    reg.add("block_jit.lebench.misses", bc.misses)
    reg.add("block_jit.lebench.invalidations", bc.invalidations)
    reg.add("block_jit.lebench.compiled_blocks", bc.compiled_blocks)
    for name, cycles in res_on[-1].items():
        reg.gauge(f"block_jit.lebench.roi_cycles.{name}", round(cycles, 6))
    speedup = t_off / t_on
    reg.meta["speedup_lebench"] = f"{speedup:.2f}"
    reg.meta["wall_lebench_off_s"] = f"{t_off:.2f}"
    reg.meta["wall_lebench_on_s"] = f"{t_on:.2f}"
    print(f"{'lebench':<14} off={t_off:8.2f}s   on={t_on:8.2f}s   "
          f"speedup={speedup:.2f}x  (hits={bc.hits} misses={bc.misses})",
          file=sys.stderr)

    # Per-test wall speedups on the already-warm kernels (trajectory
    # record only; spin-wait heavy tests replay best).
    for test in build_tests():
        walls = []
        for kernel, proc in ((k_off, p_off), (k_on, p_on)):
            best = float("inf")
            for _ in range(2):
                start = time.perf_counter()
                run_lebench(kernel, proc, tests=[test])
                best = min(best, time.perf_counter() - start)
            walls.append(best)
        reg.meta[f"speedup_lebench.{test.name}"] = \
            f"{walls[0] / walls[1]:.2f}"
    return speedup


# ---------------------------------------------------------------------------
# Serve smoke grid
# ---------------------------------------------------------------------------


def _serve(reg: MetricsRegistry) -> float:
    # Warm the process-wide code cache first: a serve cell is a fresh
    # short-lived kernel, so the timed grid measures the steady state
    # (codegen and compiles amortized), not one-off compile cost.
    run_serve(ServeConfig(scheme="perspective", seed=0,
                          tenants=max(SERVE_SMOKE["tenants"]),
                          requests_per_tenant=SERVE_SMOKE[
                              "requests_per_tenant"]),
              block_cache=True)
    total_off = total_on = 0.0
    for seed in SERVE_SMOKE["seeds"]:
        for tenants in SERVE_SMOKE["tenants"]:
            config = ServeConfig(
                scheme="perspective", seed=seed, tenants=tenants,
                requests_per_tenant=SERVE_SMOKE["requests_per_tenant"])
            start = time.perf_counter()
            off = run_serve(config, block_cache=False)
            mid = time.perf_counter()
            on = run_serve(config, block_cache=True)
            end = time.perf_counter()
            assert off.as_dict() == on.as_dict(), \
                f"serve s{seed}.t{tenants}: report diverged"
            reg.add(f"block_jit.parity.serve.s{seed}.t{tenants}")
            reg.gauge(f"block_jit.serve.makespan.s{seed}.t{tenants}",
                      on.makespan_cycles)
            total_off += mid - start
            total_on += end - mid
    speedup = total_off / total_on
    reg.meta["speedup_serve_smoke"] = f"{speedup:.2f}"
    print(f"{'serve-smoke':<14} off={total_off:8.2f}s   "
          f"on={total_on:8.2f}s   speedup={speedup:.2f}x",
          file=sys.stderr)
    return speedup


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=None,
                        help="snapshot path (default: stdout)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record speedups without enforcing floors")
    args = parser.parse_args(argv)

    reg = MetricsRegistry(meta={"bench": "block_jit"})
    straightline = _micro(reg, "straightline", _straightline_func)
    _micro(reg, "loop", _loop_func)
    lebench = _lebench(reg)
    _serve(reg)

    text = reg.to_json(indent=1) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"snapshot written to {args.output}", file=sys.stderr)
    else:
        print(text, end="")

    if not args.no_gate:
        assert straightline >= GATE_STRAIGHTLINE, \
            (f"straightline replay {straightline:.2f}x under the "
             f"{GATE_STRAIGHTLINE}x floor")
        assert lebench >= GATE_LEBENCH, \
            (f"lebench end-to-end {lebench:.2f}x under the "
             f"{GATE_LEBENCH}x floor")
        print(f"gates passed: straightline {straightline:.2f}x >= "
              f"{GATE_STRAIGHTLINE}x, lebench {lebench:.2f}x >= "
              f"{GATE_LEBENCH}x", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
