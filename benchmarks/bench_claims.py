"""The scorecard: every headline claim of the paper checked in one run.

Runs the full experiment set and validates each quantitative claim against
its accepted band (see ``repro.eval.validate``) -- the regression gate for
the whole reproduction.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.runner import (
    run_apps_experiment,
    run_gadget_experiment,
    run_kasper_experiment,
    run_lebench_experiment,
    run_surface_experiment,
)
from repro.eval.validate import validate_claims

SCHEMES = ("unsafe", "fence", "dom", "stt", "spot", "perspective")


def test_paper_claims_scorecard(benchmark, emit):
    def score():
        lebench = run_lebench_experiment(schemes=SCHEMES)
        apps = run_apps_experiment(schemes=("unsafe", "fence",
                                            "perspective"))
        surface = run_surface_experiment()
        gadgets = run_gadget_experiment()
        kasper = run_kasper_experiment(n_seeds=16)
        return validate_claims(lebench=lebench, apps=apps,
                               surface=surface, gadgets=gadgets,
                               kasper=kasper)

    card = run_once(benchmark, score)
    emit("Paper-claims scorecard\n" + card.render())
    assert len(card.outcomes) == 12
    assert card.all_ok, "\n" + card.render()
