"""Figure 9.1: speedup of Kasper's gadget discovery rate when the search
space is bounded to the ISVs.

Paper: 1.14x-2.23x per application, 1.57x on average."""

from __future__ import annotations

from conftest import run_once

from repro.eval.figures import figure_9_1
from repro.eval.runner import run_kasper_experiment


def test_figure_9_1_kasper_speedup(benchmark, emit):
    exp = run_once(benchmark, run_kasper_experiment)
    emit(figure_9_1(exp))
    for app, speedup in exp.speedups.items():
        assert speedup > 1.0, (app, speedup)
    assert 1.2 <= exp.average <= 2.3
