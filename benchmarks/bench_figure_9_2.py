"""Figure 9.2: LEBench latency normalized to the UNSAFE baseline.

Paper: FENCE averages 47.5% overhead (select/poll up to 228%);
PERSPECTIVE-STATIC / PERSPECTIVE / PERSPECTIVE++ average 4.1 / 3.6 / 3.5%."""

from __future__ import annotations

from conftest import run_once

from repro.eval.figures import figure_9_2
from repro.eval.runner import run_lebench_experiment

SCHEMES = ("unsafe", "fence", "perspective-static", "perspective",
           "perspective++")


def test_figure_9_2_lebench(benchmark, emit):
    exp = run_once(benchmark,
                   lambda: run_lebench_experiment(schemes=SCHEMES))
    emit(figure_9_2(exp))
    assert 30.0 <= exp.average_overhead_pct("fence") <= 70.0
    for test in ("select", "poll", "epoll"):
        assert exp.normalized_latency(test, "fence") > 2.5
    for scheme in ("perspective-static", "perspective", "perspective++"):
        assert exp.average_overhead_pct(scheme) <= 8.0
