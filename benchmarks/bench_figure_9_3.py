"""Figure 9.3: datacenter application throughput normalized to UNSAFE.

Paper: FENCE costs 5.7% of throughput on average; the Perspective family
costs 1.2-1.3%; key-value stores suffer the most under FENCE."""

from __future__ import annotations

from conftest import run_once

from repro.eval.figures import figure_9_3
from repro.eval.runner import run_apps_experiment

SCHEMES = ("unsafe", "fence", "perspective-static", "perspective",
           "perspective++")


def test_figure_9_3_datacenter_apps(benchmark, emit):
    exp = run_once(benchmark,
                   lambda: run_apps_experiment(schemes=SCHEMES))
    emit(figure_9_3(exp))
    assert 2.0 <= exp.average_throughput_overhead_pct("fence") <= 10.0
    for scheme in ("perspective-static", "perspective", "perspective++"):
        assert exp.average_throughput_overhead_pct(scheme) <= 3.0
    for app in exp.total_cycles_per_request:
        assert exp.normalized_rps(app, "fence") < 1.0
