"""Section 9.1, "Comparing to Hardware Mitigations".

Paper: on microbenchmarks DOM costs 23.1% and STT 3.7% (select-family
at 204% / 26.4%) against Perspective's 3.5%; on applications all three
land within ~2% of the baseline (98.3 / 99.6 / 98.8% of UNSAFE)."""

from __future__ import annotations

from conftest import run_once

from repro.eval.runner import run_apps_experiment, run_lebench_experiment

SCHEMES = ("unsafe", "dom", "stt", "invisispec", "perspective")


def test_hw_mitigations_lebench(benchmark, emit):
    exp = run_once(benchmark,
                   lambda: run_lebench_experiment(schemes=SCHEMES))
    lines = ["Hardware-only schemes on LEBench (paper: DOM 23.1%, STT "
             "3.7%, Perspective 3.5%; InvisiSpec is this reproduction's "
             "extra comparison point)"]
    for scheme in SCHEMES[1:]:
        lines.append(f"{scheme:<12} {exp.average_overhead_pct(scheme):+6.1f}%"
                     f"  (select {exp.normalized_latency('select', scheme):.2f}x)")
    emit("\n".join(lines))
    dom = exp.average_overhead_pct("dom")
    stt = exp.average_overhead_pct("stt")
    perspective = exp.average_overhead_pct("perspective")
    assert dom > stt
    assert dom > perspective
    assert exp.normalized_latency("select", "dom") > 2.0
    assert exp.normalized_latency("select", "perspective") < 1.2


def test_hw_mitigations_apps(benchmark, emit):
    exp = run_once(benchmark,
                   lambda: run_apps_experiment(schemes=SCHEMES,
                                               requests=30))
    lines = ["Hardware-only schemes on applications (paper: all within "
             "~2% of UNSAFE: 98.3 / 99.6 / 98.8%)"]
    for scheme in SCHEMES[1:]:
        mean = 1 - exp.average_throughput_overhead_pct(scheme) / 100
        lines.append(f"{scheme:<12} {100 * mean:6.1f}% of UNSAFE")
    emit("\n".join(lines))
    for scheme in SCHEMES[1:]:
        assert exp.average_throughput_overhead_pct(scheme) < 5.0
