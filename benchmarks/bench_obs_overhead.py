"""Observability overhead: the "near-free when inactive" promise, measured.

The forensics plane (:mod:`repro.obs`) leaves its hooks compiled into the
pipeline, the view machinery, and the DSVMT walker at all times; arming is
a module-level global check.  This benchmark drives the full LEBench suite
under four hook configurations and reports wall time per configuration:

* ``inactive`` -- hooks present, nothing armed (the tax every run pays)
* ``journal``  -- security-event journal armed (:mod:`repro.obs.events`)
* ``metrics``  -- metrics/span registry armed (:mod:`repro.obs.registry`)
* ``both``     -- full forensics plane (journal + registry)

Besides the rendered table, each run appends one machine-readable point
to ``benchmarks/out/BENCH_obs_overhead.txt`` so the overhead trajectory
can be tracked across commits.
"""

from __future__ import annotations

import contextlib
import time

from conftest import run_once

from repro.eval.envs import RARE_EVERY, make_env
from repro.obs import EventJournal, MetricsRegistry, journaling, observing
from repro.workloads.driver import Driver
from repro.workloads.lebench import exercise_all

REPS = 5
TRAJECTORY = "BENCH_obs_overhead.txt"
HEADER = ("# repro.obs overhead trajectory: LEBench wall time (best of "
          f"{REPS}) per hook configuration; one line per benchmark run.\n")


def _timed_run(arm) -> tuple[float, int]:
    """Best-of wall time for one armed LEBench run.

    Environment construction stays outside the timed region so every
    configuration measures the same driven work.
    """
    best = float("inf")
    events = 0
    for _ in range(REPS):
        env = make_env("lebench", "perspective")
        driver = Driver(env.kernel, env.proc, rare_every=RARE_EVERY)
        journal = EventJournal()
        with arm(journal):
            start = time.perf_counter()
            exercise_all(driver)
            best = min(best, time.perf_counter() - start)
        events = max(events, journal.emitted)
    return best, events


CONFIGS = {
    "inactive": lambda journal: contextlib.nullcontext(),
    "journal": lambda journal: journaling(journal),
    "metrics": lambda journal: observing(MetricsRegistry()),
    "both": lambda journal: _both(journal),
}


@contextlib.contextmanager
def _both(journal):
    with observing(MetricsRegistry()), journaling(journal):
        yield


def _measure() -> dict[str, tuple[float, int]]:
    return {name: _timed_run(arm) for name, arm in CONFIGS.items()}


def _render(results: dict[str, tuple[float, int]]) -> str:
    base, _ = results["inactive"]
    lines = [f"observability overhead on LEBench (best of {REPS})",
             f"{'config':<10} {'wall_s':>9} {'vs inactive':>12} "
             f"{'journal events':>15}"]
    for name, (wall, events) in results.items():
        delta = ("--" if name == "inactive"
                 else f"{(wall / base - 1.0) * 100.0:+.1f}%")
        lines.append(f"{name:<10} {wall:>9.4f} {delta:>12} {events:>15}")
    _, journal_events = results["journal"]
    if journal_events:
        per_event = (results["journal"][0] - base) / journal_events * 1e9
        lines.append(f"per-event journal cost: {per_event:.0f} ns "
                     f"({journal_events} events)")
    return "\n".join(lines)


def _append_point(artifact_dir, results) -> None:
    path = artifact_dir / TRAJECTORY
    point = " ".join(f"{name}={wall:.4f}s"
                     for name, (wall, _) in results.items())
    point += f" journal_events={results['journal'][1]}\n"
    if path.exists():
        path.write_text(path.read_text() + point)
    else:
        path.write_text(HEADER + point)


def test_obs_overhead(benchmark, artifact_dir, emit):
    results = run_once(benchmark, _measure)
    emit(_render(results))
    _append_point(artifact_dir, results)

    walls = {name: wall for name, (wall, _) in results.items()}
    assert all(wall > 0.0 for wall in walls.values())
    # The journal actually recorded the run it was armed for.
    assert results["journal"][1] > 0
    assert results["inactive"][1] == 0  # unarmed journal stays empty
    # Arming the full plane must not blow the run up by an order of
    # magnitude; generous bound to stay robust on noisy CI machines.
    assert walls["both"] < walls["inactive"] * 10.0
    assert (artifact_dir / TRAJECTORY).read_text().startswith("#")
