"""Benchmark the parallel experiment engine against the serial runners.

Runs the full table/figure suite (LEBench, applications, breakdown,
attack surface) three ways -- serial ``run_*`` functions, engine with a
cold cache at ``--workers`` processes, engine again with a warm cache --
asserting byte parity between all three, and writes a diffgate-
compatible snapshot (``repro.obs.MetricsRegistry`` shape):

* **counters/gauges** -- cell counts, cache traffic, parity flags, and
  headline simulated results.  Fully deterministic (the simulation is
  seeded), so CI byte-gates them with ``python -m repro.obs diff``
  against the committed ``benchmarks/out/BENCH_parallel_eval.json``.
* **meta** -- wall-clock seconds, speedups, worker/CPU counts.  Machine-
  dependent by nature, so it rides in ``meta``, which the diff gate
  deliberately skips: the committed numbers are a trajectory record, not
  a gate.  (Cold-cache pool speedup needs real cores; warm-cache replay
  is fast everywhere.)

Usage::

    python benchmarks/bench_parallel_eval.py -o out.json [--workers 4]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Any, Callable

from repro.eval import runner
from repro.exec import EngineConfig, ExperimentEngine
from repro.obs import MetricsRegistry
from repro.reliability import serde

SUITE = ("lebench", "apps", "breakdown", "surface")

SERIAL: dict[str, Callable[[], Any]] = {
    "lebench": runner.run_lebench_experiment,
    "apps": runner.run_apps_experiment,
    "breakdown": runner.run_breakdown_experiment,
    "surface": runner.run_surface_experiment,
}

PAYLOAD: dict[str, Callable[[Any], dict[str, Any]]] = {
    "lebench": serde.lebench_to_payload,
    "apps": serde.apps_to_payload,
    "breakdown": serde.breakdown_to_payload,
    "surface": serde.surface_to_payload,
}


def _canon(result: Any, name: str) -> str:
    return json.dumps(PAYLOAD[name](result), sort_keys=False)


def _timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=None,
                        help="snapshot path (default: stdout)")
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    reg = MetricsRegistry(meta={"bench": "parallel_eval"})

    serial: dict[str, str] = {}
    wall_serial = 0.0
    for name in SUITE:
        result, dt = _timed(SERIAL[name])
        serial[name] = _canon(result, name)
        wall_serial += dt
        print(f"serial   {name}: {dt:.2f}s", file=sys.stderr)

    cache_dir = tempfile.mkdtemp(prefix="bench-parallel-eval-")
    walls = {}
    for phase in ("cold", "warm"):
        engine = ExperimentEngine(EngineConfig(
            workers=args.workers, cache_dir=cache_dir))
        wall = 0.0
        for name in SUITE:
            (result, report), dt = _timed(lambda: engine.run(name))
            wall += dt
            print(f"{phase:<8} {name}: {dt:.2f}s ({report.summary()})",
                  file=sys.stderr)
            parity = serial[name] == _canon(result, name)
            assert parity, f"{phase} {name} diverged from serial"
            reg.add(f"parallel_eval.parity.{phase}.{name}")
            reg.add(f"parallel_eval.{phase}.executed", report.executed)
            reg.add(f"parallel_eval.{phase}.cache_hits",
                    report.cache_hits)
            reg.add(f"parallel_eval.{phase}.cache_misses",
                    report.cache_misses)
            if phase == "cold":
                reg.add(f"parallel_eval.cells.{name}",
                        report.cells_total)
        walls[phase] = wall

    # Headline simulated results: deterministic, so the gate catches any
    # drift in what the engine computes, not just how fast.
    lebench, _ = ExperimentEngine(EngineConfig(
        workers=1, cache_dir=cache_dir)).run("lebench")
    for scheme in lebench.schemes:
        if scheme != "unsafe":
            reg.gauge(f"parallel_eval.lebench.overhead_pct.{scheme}",
                      round(lebench.average_overhead_pct(scheme), 6))

    reg.meta.update({
        "workers": str(args.workers),
        "cpu_count": str(os.cpu_count() or 1),
        "wall_serial_s": f"{wall_serial:.2f}",
        "wall_cold_s": f"{walls['cold']:.2f}",
        "wall_warm_s": f"{walls['warm']:.2f}",
        "speedup_cold": f"{wall_serial / walls['cold']:.2f}",
        "speedup_warm": f"{wall_serial / walls['warm']:.2f}",
    })

    text = reg.to_json(indent=1) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"snapshot written to {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    print(f"speedup: cold {wall_serial / walls['cold']:.2f}x, "
          f"warm {wall_serial / walls['warm']:.2f}x "
          f"(workers={args.workers}, cpus={os.cpu_count()})",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
