"""Robustness: fail-closed invariants under fault injection, and the
resilient campaign runner.

The fault plane (``repro.reliability``) injects deterministic failures at
every layer Perspective depends on -- view-cache lookups, DSVMT walks,
allocator paths, trace buffers, the fuzzer executor.  The paper's security
argument only holds if every such failure degrades to a *fence*; this
bench runs the full invariant matrix and asserts it is all-pass, then
exercises the campaign runner end to end under a fault storm.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.reliability import FAULT_SWEEP, InvariantChecker, smoke_campaign


@pytest.mark.faulty
def test_fail_closed_invariant_matrix(benchmark, emit):
    """Every scenario in the sweep: PoCs blocked, no stale owner, ISV and
    fuzzer findings monotone, armed fault points actually firing."""
    def matrix():
        result = InvariantChecker().run(FAULT_SWEEP)
        assert result.all_pass, result.render()
        return result.render()

    emit(run_once(benchmark, matrix))


@pytest.mark.faulty
def test_campaign_under_fault_storm(benchmark, emit, tmp_path):
    """The resilient runner completes a fast campaign under a moderate
    fault storm and renders a full (non-degraded) report."""
    def campaign():
        state, report = smoke_campaign(tmp_path / "journal", seed=0)
        assert not state.failures, state.failures
        assert not state.interrupted
        lines = [f"smoke campaign: {sorted(state.done)} completed, "
                 f"attempts={dict(sorted(state.attempts.items()))}"]
        lines.append(report)
        return "\n".join(lines)

    emit(run_once(benchmark, campaign))
