"""Benchmark request-scoped tracing (``repro.obs.reqtrace``) overhead.

Tracing is an **observer, never a participant**: the serve report --
completions, sheds, makespan, every simulated cycle -- must be
byte-identical whether or not a recorder is installed, and the inactive
hooks (one module-global read + ``None`` test per step site) must be
close to free.  This bench asserts the first property exactly and
measures the second, writing a diffgate-compatible snapshot
(``repro.obs.MetricsRegistry`` shape):

* **counters/gauges** -- parity flags plus the deterministic trace
  census of the smoke grid: traces recorded, steps by layer, exemplar
  links, SLO windows and requests.  Pure functions of the seeded
  schedules, so CI byte-gates them with ``python -m repro.obs diff``
  against the committed ``benchmarks/out/BENCH_req_trace.json``.
* **meta** -- wall-clock seconds and the active-tracing overhead
  ratio.  Machine-dependent, so it rides in ``meta``, which the diff
  gate skips: the committed numbers are a trajectory record, not a
  gate.

Two timed configurations over the serve smoke grid:

* ``inactive`` -- plain ``run_serve``: the hooks exist but no recorder
  or rollup is installed.  This is the tax every untraced serve run
  pays for the instrumentation being compiled in.
* ``active`` -- ``serve_cell`` under a fresh ``TraceRecorder`` +
  ``SloRollup``: every request records admission, scheduler-slice,
  syscall, kernel-function and pipeline steps plus exemplar links.

The ``active/inactive`` wall ratio gates at ``<= 3.0`` (``--no-gate``
to skip): full per-request tracing may cost real time, but if it blows
past 3x something regressed structurally (e.g. a hook doing work while
inactive, or per-step allocation on the hot path).

Usage::

    python benchmarks/bench_req_trace.py -o out.json [--no-gate]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.obs import MetricsRegistry
from repro.obs.reqtrace import TraceRecorder
from repro.obs.slo import SloRollup
from repro.serve.engine import ServeConfig, config_from_params, \
    run_serve, serve_cell

#: The serve smoke grid (matches ``python -m repro.serve --smoke``).
SERVE_SMOKE = {"seeds": (0, 1), "tenants": (2, 3), "requests_per_tenant": 6}
SLO_WINDOW = 50_000.0

#: Active-tracing wall-overhead ceiling (vs inactive hooks).
GATE_ACTIVE_OVERHEAD = 3.0

#: Timed repetitions per configuration, best-of kept.
TIMED_RUNS = 3


def _cell_params(seed: int, tenants: int, **extra) -> dict:
    return {"seed": seed, "tenants": tenants, "scheme": "perspective",
            "requests_per_tenant": SERVE_SMOKE["requests_per_tenant"],
            **extra}


def _grid():
    for seed in SERVE_SMOKE["seeds"]:
        for tenants in SERVE_SMOKE["tenants"]:
            yield seed, tenants


def _parity_and_census(reg: MetricsRegistry) -> None:
    """Byte-parity assert + deterministic trace census, per cell."""
    for seed, tenants in _grid():
        label = f"s{seed}.t{tenants}"
        plain = run_serve(config_from_params(_cell_params(seed, tenants)))
        cell = serve_cell(_cell_params(seed, tenants, trace=True,
                                       slo_window=SLO_WINDOW))
        traced_report = {k: v for k, v in cell.items()
                         if k not in ("traces", "slo")}
        assert plain.as_dict() == traced_report, \
            f"serve {label}: report diverged under tracing"
        reg.add(f"req_trace.parity.{label}")

        recorder = TraceRecorder.from_snapshot(cell["traces"])
        reg.add(f"req_trace.{label}.traces", len(recorder.traces))
        steps_by_layer: dict[str, int] = {}
        for trace in recorder.traces.values():
            for row in trace.steps:
                layer = row["layer"]
                steps_by_layer[layer] = steps_by_layer.get(layer, 0) + 1
        for layer, count in sorted(steps_by_layer.items()):
            reg.add(f"req_trace.{label}.steps.{layer}", count)
        exemplars = sum(len(ids) for buckets in recorder.exemplars.values()
                        for ids in buckets.values())
        reg.add(f"req_trace.{label}.exemplars", exemplars)
        for tid in sorted(recorder.exemplars.get("serve.latency_cycles",
                                                 {}).get("inf", ())):
            assert recorder.resolve(tid) is not None

        rollup = SloRollup.from_snapshot(cell["slo"])
        reg.add(f"req_trace.{label}.slo.windows", len(rollup.windows))
        reg.add(f"req_trace.{label}.slo.requests",
                sum(w.requests for w in rollup.windows.values()))


def _timed(fn) -> float:
    best = float("inf")
    for _ in range(TIMED_RUNS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _walls(reg: MetricsRegistry) -> float:
    def inactive() -> None:
        for seed, tenants in _grid():
            run_serve(config_from_params(_cell_params(seed, tenants)))

    def active() -> None:
        for seed, tenants in _grid():
            serve_cell(_cell_params(seed, tenants, trace=True,
                                    slo_window=SLO_WINDOW))

    # Warm process-wide caches (codegen, images) before timing.
    inactive()
    t_off = _timed(inactive)
    t_on = _timed(active)
    overhead = t_on / t_off
    reg.meta["wall_inactive_s"] = f"{t_off:.3f}"
    reg.meta["wall_active_s"] = f"{t_on:.3f}"
    reg.meta["overhead_active"] = f"{overhead:.2f}"
    print(f"inactive={t_off:7.3f}s   active={t_on:7.3f}s   "
          f"overhead={overhead:.2f}x", file=sys.stderr)
    return overhead


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=None,
                        help="snapshot path (default: stdout)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record the overhead without enforcing the "
                             "ceiling")
    args = parser.parse_args(argv)

    reg = MetricsRegistry(meta={"bench": "req_trace"})
    _parity_and_census(reg)
    overhead = _walls(reg)

    text = reg.to_json(indent=1) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"snapshot written to {args.output}", file=sys.stderr)
    else:
        print(text, end="")

    if not args.no_gate:
        assert overhead <= GATE_ACTIVE_OVERHEAD, \
            (f"active tracing overhead {overhead:.2f}x over the "
             f"{GATE_ACTIVE_OVERHEAD}x ceiling")
        print(f"gate passed: active overhead {overhead:.2f}x <= "
              f"{GATE_ACTIVE_OVERHEAD}x", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
