"""Section 8.1: active-attack security analysis.

Paper: Perspective's DSVs completely eliminate active attacks; the PoCs
from the Table 4.1 CVEs all leak on unprotected hardware and are all
blocked by Perspective."""

from __future__ import annotations

from conftest import run_once

from repro.attacks.harness import run_attack

ACTIVE_ATTACKS = ("spectre-v1-active", "spectre-v2-active")


def test_active_attacks_matrix(benchmark, emit):
    def matrix():
        lines = ["Active attacks (Section 8.1)"]
        for attack in ACTIVE_ATTACKS:
            unsafe = run_attack(attack, "unsafe")
            protected = run_attack(attack, "perspective")
            lines.append(f"{attack:<20} unsafe: "
                         f"{'LEAKED ' + repr(unsafe.leaked) if unsafe.success else 'blocked'}"
                         f" | perspective: "
                         f"{'LEAKED' if protected.success else 'blocked'}")
            assert unsafe.success
            assert protected.blocked
        return "\n".join(lines)

    emit(run_once(benchmark, matrix))


def test_v1_leaks_through_spot_mitigations(benchmark, emit):
    """KPTI+retpoline leave Spectre v1 wide open (rows 1-3 of Table 4.1);
    Perspective's DSVs close it."""
    def check():
        result = run_attack("spectre-v1-active", "spot")
        assert result.success
        return (f"spectre-v1 vs KPTI+retpoline: LEAKED "
                f"{result.leaked!r} (as in the paper's motivation)")

    emit(run_once(benchmark, check))
