"""Section 8.2: passive-attack security analysis.

Paper: ISVs block the victim's speculative execution of hijack gadgets,
covering Spectre v2, Spectre RSB, Retbleed and BHI -- including the cases
where deployed mitigations fail (Retbleed through retpoline, BHI through
eIBRS)."""

from __future__ import annotations

from conftest import run_once

from repro.attacks.harness import run_attack

PASSIVE_ATTACKS = ("spectre-v2-passive", "retbleed-passive",
                   "spectre-rsb-passive", "bhi-passive")


def test_passive_attacks_matrix(benchmark, emit):
    def matrix():
        lines = ["Passive attacks (Section 8.2)"]
        for attack in PASSIVE_ATTACKS:
            unsafe = run_attack(attack, "unsafe")
            protected = run_attack(attack, "perspective")
            lines.append(f"{attack:<22} unsafe: "
                         f"{'LEAKED' if unsafe.success else 'blocked'} | "
                         f"perspective: "
                         f"{'LEAKED' if protected.success else 'blocked'}")
            assert unsafe.success, attack
            assert protected.blocked, attack
        return "\n".join(lines)

    emit(run_once(benchmark, matrix))


def test_mitigation_gaps_reproduced(benchmark, emit):
    def gaps():
        lines = ["Mitigation gaps (Table 4.1 rows 5 and 7)"]
        retbleed = run_attack("retbleed-passive", "spot")
        assert retbleed.success
        lines.append("retbleed vs retpoline:   LEAKED (row 7)")
        v2_spot = run_attack("spectre-v2-passive", "spot")
        assert v2_spot.blocked
        lines.append("classic v2 vs retpoline: blocked (retpoline works "
                     "for the case it covers)")
        bhi = run_attack("bhi-passive", "unsafe")
        assert bhi.success
        lines.append("BHI vs eIBRS:            LEAKED (row 5)")
        control = run_attack("spectre-v2-vs-eibrs", "unsafe")
        assert control.blocked
        lines.append("naive v2 vs eIBRS:       blocked (control)")
        return "\n".join(lines)

    emit(run_once(benchmark, gaps))
