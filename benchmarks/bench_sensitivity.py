"""Section 9.2 sensitivity analyses: unknown allocations, view-cache hit
rates, slab fragmentation, and domain reassignment."""

from __future__ import annotations

from conftest import run_once

from repro.eval.runner import run_breakdown_experiment
from repro.eval.sensitivity import run_slab_sensitivity, \
    run_unknown_allocations


def test_unknown_allocations(benchmark, emit):
    result = run_once(benchmark, run_unknown_allocations)
    emit(f"Unknown allocations (paper: 1.5 points of LEBench overhead)\n"
         f"full enforcement:   {result.overhead_full_pct:+.2f}%\n"
         f"unknown allowed:    {result.overhead_unknown_allowed_pct:+.2f}%\n"
         f"unknown share:      {result.unknown_contribution_pct:+.2f} points")
    assert result.unknown_contribution_pct > 0.2


def test_view_cache_hit_rates(benchmark, emit):
    exp = run_once(benchmark, lambda: run_breakdown_experiment(
        workloads=("lebench", "httpd", "redis")))
    lines = ["View-cache hit rates (paper: ~99% for both structures)"]
    for workload in exp.isv_cache_hit_rate:
        isv = exp.isv_cache_hit_rate[workload]["perspective"]
        dsv = exp.dsv_cache_hit_rate[workload]["perspective"]
        lines.append(f"{workload:<10} isv {100 * isv:.1f}%  "
                     f"dsv {100 * dsv:.1f}%")
        assert isv > 0.95 and dsv > 0.95
    emit("\n".join(lines))


def test_secure_slab_fragmentation_and_reassignment(benchmark, emit):
    result = run_once(benchmark, run_slab_sensitivity)
    lines = ["Secure slab allocator (paper: 0.91% memory overhead; "
             "redis 0.23%/96 reassignments per s, others near zero)"]
    for app in result.secure_utilization:
        lines.append(
            f"{app:<10} memory overhead "
            f"{result.memory_overhead_pct(app):+.2f}%  "
            f"page-return ratio {100 * result.page_return_ratio[app]:.2f}%  "
            f"reassign/s {result.reassignments_per_second[app]:.0f}")
    lines.append(f"average overhead "
                 f"{result.average_memory_overhead_pct():+.2f}%")
    lines.append("NOTE: per-second figures are inflated by the sampled "
                 "request counts (simulated seconds are tiny); the ratio "
                 "ordering redis >> others is the comparable shape.")
    emit("\n".join(lines))
    assert 0.0 < result.average_memory_overhead_pct() < 3.0
    assert result.page_return_ratio["redis"] >= \
        result.page_return_ratio["httpd"]
