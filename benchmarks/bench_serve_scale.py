"""Benchmark the sharded serving engine (``repro.serve.shard``).

Two phases, one diffgate-compatible snapshot (``repro.obs`` registry
shape, same convention as ``bench_block_jit.py``):

* **event-vs-dense** -- the same sparse 4-shard workload served twice
  from transplanted memo tables (so neither run interprets a single
  micro-op and the timer sees pure scheduler cost): once through the
  event-driven loop that skips idle gaps, once through a dense
  quantum-stepping loop that ticks every shard every ``dense_quantum``
  cycles.  The reports must be **byte-identical**; the wall-clock ratio
  is the event-skip speedup, gated ``>= 10x`` (``--no-gate`` to skip).
* **million** -- a 10^6-request, 8-tenant, 8-shard experiment end to
  end (memo service model, least-loaded placement with periodic
  re-evaluation), asserting arrival conservation and recording the
  scale counters CI byte-gates.

Counters/gauges are deterministic (seeded schedules, simulated clock),
so CI diff-gates them against the committed
``benchmarks/out/BENCH_serve_scale.json``; wall seconds and speedups
are machine-dependent and ride in ``meta``, which the gate skips.

Usage::

    python benchmarks/bench_serve_scale.py -o out.json [--no-gate]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.obs import MetricsRegistry
from repro.serve.shard import (
    ShardedServeConfig,
    memo_tables_of,
    run_serve_sharded,
)

#: Event-vs-dense speedup floor.  Sparse traffic (one arrival per ~500k
#: cycles aggregate) makes the dense loop iterate ~10^5 idle quanta per
#: shard; measured ratios land well above 100x, so 10x is a safe CI
#: margin.
GATE_EVENT_SKIP = 10.0

#: Sparse workload for the event-vs-dense ratio: long idle gaps (one
#: arrival per ~1.25M cycles aggregate) are exactly what the event loop
#: skips and the dense loop pays for, one quantum at a time.
SPARSE = dict(scheme="perspective", seed=0, tenants=4, shards=4,
              requests_per_tenant=250, mean_interarrival=5_000_000.0,
              queue_bound=0, rare_every=0, profile_requests=2,
              placement="least-loaded", migrate_every=0,
              service_model="memo", memo_warmup=1, memo_period=24)

#: The million-request experiment (8 tenants x 125000 requests).
MILLION = dict(scheme="perspective", seed=0, tenants=8, shards=8,
               requests_per_tenant=125_000,
               mean_interarrival=100_000.0, queue_bound=0,
               rare_every=0, profile_requests=2,
               placement="least-loaded", migrate_every=5000,
               service_model="memo", memo_warmup=1, memo_period=24)


def _event_vs_dense(reg: MetricsRegistry) -> float:
    config = ShardedServeConfig(**SPARSE)
    # Warm-up run builds the memo tables; transplanting them into both
    # timed runs makes them interpretation-free, so the ratio below is
    # scheduler cost only (not JIT or interpreter noise).
    warm = run_serve_sharded(config, block_cache=True, mode="event")
    tables = memo_tables_of(warm)
    event = run_serve_sharded(config, block_cache=True, mode="event",
                              memo_seed=tables)
    dense = run_serve_sharded(config, block_cache=True, mode="dense",
                              memo_seed=tables)
    assert event.as_dict() == dense.as_dict(), \
        "event-vs-dense: reports diverged"

    # The transplanted runs replay what the warm run interpreted, so
    # every *simulated* number matches; only the interpreted/replayed
    # bookkeeping moves.  Strip it before asserting.
    def sans_memo(report):
        out = report.as_dict()
        for d in [out] + out["shards"]:
            for key in ("memo_replays", "memo_interpreted"):
                d.pop(key, None)
        return out

    assert sans_memo(event) == sans_memo(warm), \
        "memo transplant changed the simulated report"
    reg.add("serve_scale.parity.event_dense")
    out = event.as_dict()
    for key in ("completed", "shed", "makespan_cycles", "kernel_cycles",
                "switches", "switch_cycles", "latency_p99",
                "memo_replays", "memo_interpreted"):
        reg.gauge(f"serve_scale.sparse.{key}", out[key])
    speedup = dense.serve_seconds / event.serve_seconds
    reg.meta["speedup_event_skip"] = f"{speedup:.1f}"
    reg.meta["wall_sparse_event_s"] = f"{event.serve_seconds:.4f}"
    reg.meta["wall_sparse_dense_s"] = f"{dense.serve_seconds:.4f}"
    print(f"{'event-vs-dense':<14} dense={dense.serve_seconds:8.3f}s  "
          f"event={event.serve_seconds:8.3f}s  speedup={speedup:.1f}x",
          file=sys.stderr)
    return speedup


def _million(reg: MetricsRegistry) -> None:
    config = ShardedServeConfig(**MILLION)
    offered = config.tenants * config.requests_per_tenant
    start = time.perf_counter()
    report = run_serve_sharded(config, block_cache=True, mode="event")
    wall = time.perf_counter() - start
    out = report.as_dict()
    assert out["completed"] + out["shed"] == offered, \
        (f"million: conservation broke "
         f"({out['completed']} + {out['shed']} != {offered})")
    reg.add("serve_scale.million.completed", out["completed"])
    reg.add("serve_scale.million.migrations", out["migrations"])
    for key in ("shed", "makespan_cycles", "kernel_cycles", "switches",
                "latency_p50", "latency_p99", "throughput_rps",
                "migration_excess_cycles", "memo_replays",
                "memo_interpreted"):
        reg.gauge(f"serve_scale.million.{key}", out[key])
    reg.meta["wall_million_s"] = f"{wall:.2f}"
    reg.meta["million_arrivals_per_wall_s"] = f"{offered / wall:.0f}"
    print(f"{'million':<14} {offered} arrivals in {wall:.2f}s wall "
          f"({offered / wall:,.0f}/s; completed={out['completed']} "
          f"migrations={out['migrations']} "
          f"interpreted={out['memo_interpreted']})", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=None,
                        help="snapshot path (default: stdout)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record speedups without enforcing floors")
    args = parser.parse_args(argv)

    reg = MetricsRegistry(meta={"bench": "serve_scale"})
    speedup = _event_vs_dense(reg)
    _million(reg)

    text = reg.to_json(indent=1) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"snapshot written to {args.output}", file=sys.stderr)
    else:
        print(text, end="")

    if not args.no_gate:
        assert speedup >= GATE_EVENT_SKIP, \
            (f"event-skip speedup {speedup:.1f}x under the "
             f"{GATE_EVENT_SKIP}x floor")
        print(f"gates passed: event-skip {speedup:.1f}x >= "
              f"{GATE_EVENT_SKIP}x", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
