"""Section 9.1, "Comparing to Spot Software Mitigations".

Paper: KPTI+retpoline cost 14.5% on LEBench and 5% on applications;
without KPTI, 6.6% and 1.2%.  Perspective provides broader coverage at
3.5% / 1.2%."""

from __future__ import annotations

from conftest import run_once

from repro.eval.runner import run_apps_experiment, run_lebench_experiment

SCHEMES = ("unsafe", "spot", "spot-nokpti", "perspective")


def test_spot_mitigations_lebench(benchmark, emit):
    exp = run_once(benchmark,
                   lambda: run_lebench_experiment(schemes=SCHEMES))
    lines = ["Spot software mitigations on LEBench (paper: 14.5% with "
             "KPTI, 6.6% without, Perspective 3.5%)"]
    for scheme in SCHEMES[1:]:
        lines.append(f"{scheme:<14} {exp.average_overhead_pct(scheme):+6.1f}%")
    emit("\n".join(lines))
    assert exp.average_overhead_pct("spot") > \
        exp.average_overhead_pct("spot-nokpti")
    assert exp.average_overhead_pct("perspective") < \
        exp.average_overhead_pct("spot")


def test_spot_mitigations_apps(benchmark, emit):
    exp = run_once(benchmark,
                   lambda: run_apps_experiment(schemes=SCHEMES,
                                               requests=30))
    lines = ["Spot software mitigations on applications (paper: 5% with "
             "KPTI, 1.2% without, Perspective 1.2%)"]
    for scheme in SCHEMES[1:]:
        lines.append(
            f"{scheme:<14} "
            f"{exp.average_throughput_overhead_pct(scheme):+6.1f}%")
    emit("\n".join(lines))
    assert exp.average_throughput_overhead_pct("spot") > \
        exp.average_throughput_overhead_pct("perspective")
