"""Microarchitectural sweeps (ablation data beyond the paper's fixed
Table 7.1 configuration)."""

from __future__ import annotations

from conftest import run_once

from repro.eval.sweeps import (
    sweep_branch_resolve_latency,
    sweep_rob_entries,
)


def test_resolve_latency_sweep(benchmark, emit):
    def sweep():
        fence = sweep_branch_resolve_latency()
        perspective = sweep_branch_resolve_latency(scheme="perspective")
        return fence, perspective

    fence, perspective = run_once(benchmark, sweep)
    emit(fence.render() + "\n" + perspective.render()
         + "\n(FENCE scales with the speculation window; Perspective's "
           "rare fences barely notice -- the pliability argument in "
           "hardware terms)")
    values = fence.values()
    assert fence.overhead_pct[values[-1]] > fence.overhead_pct[values[0]]


def test_rob_depth_sweep(benchmark, emit):
    result = run_once(benchmark, sweep_rob_entries)
    emit(result.render()
         + "\n(deeper ROBs help the unprotected baseline overlap misses "
           "more than they help FENCE, so the ratio saturates)")
    values = result.values()
    assert result.overhead_pct[values[-1]] == \
        max(result.overhead_pct[v] for v in values[-2:])
