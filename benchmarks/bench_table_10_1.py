"""Table 10.1: the ISV-vs-DSV fence breakdown.

Paper: the static-ISV configuration attributes ~20% of fences to ISVs and
~80% to DSVs; dynamic ISVs shift further toward DSVs; rates average 9 ISV
and 37 DSV fences per kiloinstruction."""

from __future__ import annotations

from conftest import run_once

from repro.eval.runner import run_breakdown_experiment
from repro.eval.tables import table_10_1


def test_table_10_1_fence_breakdown(benchmark, emit):
    exp = run_once(benchmark, run_breakdown_experiment)
    emit(table_10_1(exp))
    for workload, per_scheme in exp.breakdowns.items():
        # DSV fences dominate in every configuration (the ISV++ rows run
        # somewhat hotter here than in the paper because the scaled gadget
        # population overlaps hot functions more; see EXPERIMENTS.md).
        for scheme, fb in per_scheme.items():
            assert fb.dsv_share > 0.5, (workload, scheme)
        assert per_scheme["perspective-static"].isv_share >= \
            per_scheme["perspective"].isv_share
