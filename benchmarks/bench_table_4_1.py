"""Table 4.1: the CVE taxonomy, with every row's primitive replayed as a
live PoC on unprotected hardware (each must actually leak)."""

from __future__ import annotations

from conftest import run_once

from repro.attacks.cves import TABLE_4_1
from repro.attacks.harness import run_attack
from repro.eval.tables import table_4_1


def test_table_4_1_taxonomy(benchmark, emit):
    text = run_once(benchmark, table_4_1)
    emit(text)
    assert "Retbleed" in text


def test_table_4_1_pocs_replay(benchmark, emit):
    def replay():
        lines = ["Table 4.1 PoC replay (UNSAFE hardware; every primitive "
                 "must leak, except row 5's eIBRS control)"]
        for rec in TABLE_4_1:
            result = run_attack(rec.poc, "unsafe")
            lines.append(f"row {rec.row}: {rec.poc:<22} -> "
                         f"{'LEAKED' if result.success else 'blocked'}")
            assert result.success, rec
        return "\n".join(lines)

    emit(run_once(benchmark, replay))
