"""Table 7.1: the full-system simulation parameters."""

from __future__ import annotations

from conftest import run_once

from repro.eval.tables import table_7_1


def test_table_7_1_parameters(benchmark, emit):
    text = run_once(benchmark, table_7_1)
    emit(text)
    assert "192 ROB entries" in text
    assert "ISV Cache" in text and "DSV Cache" in text
