"""Table 8.1: attack-surface reduction with static and dynamic ISVs.

Paper: ISV-S reduces the speculatively-executable surface by 90-92%,
dynamic ISVs by 94-96% (at least 90.9% everywhere)."""

from __future__ import annotations

from conftest import run_once

from repro.eval.runner import run_surface_experiment
from repro.eval.tables import table_8_1


def test_table_8_1_attack_surface(benchmark, emit):
    exp = run_once(benchmark, run_surface_experiment)
    emit(table_8_1(exp))
    for app in exp.static_isv_size:
        assert exp.reduction(app, "static") >= 0.88
        assert exp.reduction(app, "dynamic") >= 0.93
        assert exp.reduction(app, "dynamic") > exp.reduction(app, "static")
