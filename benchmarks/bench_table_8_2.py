"""Table 8.2: MDS / Port / Cache gadget reduction per ISV flavor.

Paper: ISV-S blocks 78-87% of Kasper's gadgets, dynamic ISVs 91-93%, and
scanner-hardened ISV++ blocks 100% of identified gadgets."""

from __future__ import annotations

from conftest import run_once

from repro.eval.runner import run_gadget_experiment
from repro.eval.tables import table_8_2


def test_table_8_2_gadget_reduction(benchmark, emit):
    exp = run_once(benchmark, run_gadget_experiment)
    emit(table_8_2(exp))
    for app, rows in exp.blocked.items():
        for cls in ("mds", "port", "cache"):
            assert rows["ISV-S"][cls] >= 0.60, (app, cls)
            assert rows["ISV"][cls] >= rows["ISV-S"][cls] - 0.02
            assert rows["ISV++"][cls] == 1.0, (app, cls)
