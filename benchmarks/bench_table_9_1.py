"""Table 9.1: CACTI 22 nm characterization of the ISV and DSV caches."""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.eval.tables import table_9_1
from repro.hw_model.cacti import table_9_1 as rows


def test_table_9_1_hardware(benchmark, emit):
    emit(run_once(benchmark, table_9_1))
    dsv, isv = rows()
    assert dsv.area_mm2 == pytest.approx(0.0024, abs=1e-4)
    assert isv.dynamic_energy_pj == pytest.approx(1.29, abs=0.01)
