"""Benchmark harness conventions.

Every benchmark regenerates one table or figure of the paper: it runs the
experiment once inside pytest-benchmark's timer (``rounds=1`` -- these are
simulations, not microbenchmarks), prints the rendered artifact, and
writes it to ``benchmarks/out/`` for inspection.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture()
def emit(artifact_dir, request):
    """Print an artifact and persist it under benchmarks/out/."""

    def _emit(text: str) -> str:
        name = request.node.name.replace("[", "_").replace("]", "")
        (artifact_dir / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)
        return text

    return _emit


def run_once(benchmark, func):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
