#!/usr/bin/env python3
"""The full Chapter 8 attack matrix, narrated.

Replays every transient-execution attack class of the paper's taxonomy --
active (attacker's own kernel thread) and passive (hijacked victim kernel
thread) -- against unprotected hardware, the deployed spot mitigations
(KPTI + retpoline), and Perspective.

Run:  python examples/attack_demo.py
"""

from repro.attacks.cves import TABLE_4_1
from repro.attacks.harness import ATTACKS, run_attack

SCHEMES = ("unsafe", "spot", "perspective")

NARRATION = {
    "spectre-v1-active": "bounds-check mistraining in the attacker's own "
                         "syscall (Table 4.1 rows 1-3)",
    "spectre-v2-active": "BTB poisoning of the attacker's own fops "
                         "dispatch; gadget dereferences a chosen pointer",
    "spectre-v2-passive": "BTB poisoning of the *victim's* fops dispatch; "
                          "type confusion on a live register (Fig. 4.2)",
    "retbleed-passive": "deep-call RSB underflow falls back to the "
                        "poisoned BTB -- through retpolines (row 7)",
    "spectre-rsb-passive": "RSB entries planted by the attacker are "
                           "consumed at the victim's context-switch resume",
    "bhi-passive": "branch-history collision defeats eIBRS isolation "
                   "(row 5)",
    "spectre-v2-vs-eibrs": "control: naive cross-domain injection, which "
                           "eIBRS does stop",
    "ebpf-injection": "verifier-approved program with a branch-guarded "
                      "OOB: an attacker-injected kernel gadget (rows 3-4)",
}


def main() -> None:
    print(f"{'attack':<22} {'unsafe':>10} {'spot':>10} "
          f"{'perspective':>12}")
    print("-" * 60)
    for attack in ATTACKS:
        row = []
        for scheme in SCHEMES:
            result = run_attack(attack, scheme)
            row.append("LEAKED" if result.success else "blocked")
        print(f"{attack:<22} {row[0]:>10} {row[1]:>10} {row[2]:>12}")
        print(f"   {NARRATION[attack]}")
    print("-" * 60)
    print("Reading the matrix:")
    print(" * everything leaks on unprotected hardware (except the eIBRS")
    print("   control row -- that is BHI's point of comparison);")
    print(" * KPTI+retpoline miss Spectre v1, Retbleed, and RSB poisoning")
    print("   -- the deployed-mitigation gaps of Table 4.1;")
    print(" * Perspective blocks every variant: DSVs stop the active")
    print("   attacks at the ownership check, ISVs stop the passive ones")
    print("   by never letting the hijack gadget transmit.")
    print()
    print("CVE registry coverage:")
    for rec in TABLE_4_1:
        print(f"  row {rec.row}: {rec.description:<45} -> PoC {rec.poc}")


if __name__ == "__main__":
    main()
