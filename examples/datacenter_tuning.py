#!/usr/bin/env python3
"""Datacenter operator view: what does each defense cost my server?

Serves redis-benchmark-style traffic against one server model under the
evaluated schemes and prints throughput, the fence breakdown, and the
unknown-allocation sensitivity knob -- the numbers an operator would use
to pick a deployment (Figures 9.2/9.3, Table 10.1, Section 9.2).

Run:  python examples/datacenter_tuning.py [app]
"""

import sys

from repro.defenses import PerspectivePolicy
from repro.eval.envs import make_env
from repro.eval.metrics import FenceBreakdown
from repro.eval.runner import run_apps_experiment
from repro.workloads.apps import APP_NAMES, APP_SPECS, AppWorkload

SCHEMES = ("unsafe", "fence", "dom", "stt", "invisispec", "spot",
           "perspective")


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "redis"
    if app not in APP_NAMES:
        raise SystemExit(f"unknown app {app!r}; pick one of {APP_NAMES}")

    print(f"== {app}: throughput under each defense "
          f"(kernel-time fraction {APP_SPECS[app].kernel_time_fraction:.0%})")
    exp = run_apps_experiment(schemes=SCHEMES, apps=(app,), requests=40)
    for scheme in SCHEMES:
        rps = exp.rps(app, scheme)
        norm = exp.normalized_rps(app, scheme)
        print(f"  {scheme:<14} {rps:>10.0f} rps   {100 * norm:6.1f}% of "
              "baseline")

    print("\n== where Perspective's (small) cost comes from")
    env = make_env(app, "perspective")
    workload = AppWorkload(env.kernel, env.proc, APP_SPECS[app])
    workload.serve(10, measure=False)
    run = workload.serve(40)
    breakdown = FenceBreakdown.from_exec(workload.driver.stats.exec)
    print(f"  fences: {breakdown.total} over {breakdown.committed_ops} "
          f"committed micro-ops "
          f"({breakdown.fences_per_kiloinstruction('total'):.1f} per "
          "kiloinstruction)")
    print(f"  attribution: ISV {100 * breakdown.isv_share:.0f}%  /  "
          f"DSV {100 * breakdown.dsv_share:.0f}%")
    print(f"  ISV cache hit rate "
          f"{100 * env.framework.isv_cache.stats.hit_rate:.1f}%, "
          f"DSV cache "
          f"{100 * env.framework.dsv_cache.stats.hit_rate:.1f}%")

    print("\n== sensitivity: how much of that is unknown (no-DSV) memory?")
    env2 = make_env(app, "perspective")
    assert isinstance(env2.policy, PerspectivePolicy)
    env2.policy.treat_unknown_as_owned = True  # measurement-only knob
    workload2 = AppWorkload(env2.kernel, env2.proc, APP_SPECS[app])
    workload2.serve(10, measure=False)
    run2 = workload2.serve(40)
    delta = run.kernel_cycles_per_request - run2.kernel_cycles_per_request
    pct = 100 * delta / run.kernel_cycles_per_request
    print(f"  allowing unknown memory to speculate saves "
          f"{delta:.0f} cycles/request ({pct:.2f}% of kernel time) -- "
          "the cost of conservatively blocking global/per-cpu state.")


if __name__ == "__main__":
    main()
