#!/usr/bin/env python3
"""Fleet deployment: profile once, ship the ISV, respond to a CVE live.

The operational story of Section 5.4 end to end:

1. a build host profiles the application and serializes its ISV profile;
2. production hosts validate the profile against their kernel image and
   install it through the administrator layer;
3. a vulnerability disclosure lands; the administrator excludes the
   affected function fleet-wide -- every running context re-hardens
   immediately, no kernel patch, no restart.

Run:  python examples/fleet_deployment.py
"""

from repro.analysis.profiles import ISVProfile
from repro.core.admin import ApplicationPolicy, ISVAdministrator
from repro.core.framework import Perspective
from repro.defenses import PerspectivePolicy
from repro.eval.envs import build_isv_for
from repro.kernel.image import shared_image
from repro.kernel.kernel import MiniKernel
from repro.scanner.kasper import scan

APP = "memcached"


def main() -> None:
    image = shared_image()

    # ---- 1. the build host -------------------------------------------------
    print("[build host] profiling", APP, "and serializing its ISV...")
    build_kernel = MiniKernel(image=image)
    build_proc = build_kernel.create_process(APP)
    isv = build_isv_for(build_kernel, build_proc, APP, "dynamic")
    profile = ISVProfile.from_isv(APP, isv, image,
                                  syscalls=build_kernel.tracer
                                  .traced_syscalls(build_proc.cgroup.cg_id))
    wire = profile.to_json()
    print(f"  profile: {len(isv)} functions, "
          f"{len(profile.syscalls)} syscalls, "
          f"{len(wire)} bytes on the wire, "
          f"image fingerprint {profile.fingerprint}")

    # ---- 2. production hosts ------------------------------------------------
    print("\n[prod] two hosts install the shipped profile...")
    hosts = []
    for host_id in range(2):
        kernel = MiniKernel(image=image)
        framework = Perspective(kernel)
        admin = ISVAdministrator(framework)
        received = ISVProfile.from_json(wire)
        admin.register_policy(ApplicationPolicy(
            APP, received.functions, f"fleet profile {received.fingerprint}"))
        workers = [kernel.create_process(f"{APP}-{i}") for i in range(3)]
        for worker in workers:
            admin.install_policy(worker.cgroup.cg_id, APP,
                                 reason=f"host{host_id} startup")
        kernel.pipeline.set_policy(PerspectivePolicy(framework))
        hosts.append((kernel, admin, workers))
        print(f"  host{host_id}: {len(workers)} contexts armed, surface "
              f"report {admin.surface_report()}")

    # ---- 3. disclosure day ----------------------------------------------------
    print("\n[incident] a gadget is disclosed in a function inside the "
          "fleet profile; excluding it everywhere...")
    flagged = sorted(scan(image, scope=profile.functions).functions())
    target = flagged[0] if flagged else sorted(profile.functions)[0]
    print(f"  disclosed function: {target!r}")
    for host_id, (kernel, admin, workers) in enumerate(hosts):
        updated = admin.exclude_globally({target},
                                         reason="CVE-2099-0001")
        print(f"  host{host_id}: {updated} running contexts re-hardened "
              f"({len(admin.audit_trail)} audit entries)")
        for worker in workers:
            assert target not in admin.framework.isv_for(
                worker.cgroup.cg_id)

    print("\nDone: the fleet is patched against the disclosure while "
          "every service kept running.")


if __name__ == "__main__":
    main()
