#!/usr/bin/env python3
"""The ISV lifecycle: generate, compare, audit, harden, and hot-patch.

Walks the paper's Section 5.3-5.4 story for one application (nginx):

1. static ISV from binary analysis + kernel call-graph reachability;
2. dynamic ISV from kernel tracing (smaller, and it sees indirect calls);
3. Kasper-style audit bounded to the ISV (the Figure 9.1 speedup);
4. ISV++ = ISV minus every flagged function (blocks 100% of findings);
5. runtime shrink: excluding a newly-disclosed vulnerable function with
   no kernel patch and no downtime.

Run:  python examples/isv_audit.py
"""

from repro.analysis.binary import APPLICATIONS
from repro.analysis.static_isv import generate_static_isv
from repro.core.audit import harden_isv
from repro.core.framework import Perspective
from repro.eval.envs import build_isv_for
from repro.kernel.image import shared_image
from repro.kernel.kernel import MiniKernel
from repro.scanner.kasper import discovery_speedup, scan

APP = "nginx"


def main() -> None:
    image = shared_image()
    kernel = MiniKernel(image=image)
    proc = kernel.create_process(APP)
    total = image.total_functions
    print(f"kernel image: {total} functions, "
          f"{image.gadget_count()} planted gadgets "
          f"(x{image.config.gadget_report_scale} = Kasper's 1533)")

    # 1. Static ISV ------------------------------------------------------
    static_isv = generate_static_isv(image, APPLICATIONS[APP],
                                     proc.cgroup.cg_id)
    print(f"\n[1] static ISV ({APP}): {len(static_isv)} functions "
          f"({100 * (1 - len(static_isv) / total):.1f}% surface reduction)")
    print("    includes error paths:",
          "pread64_error_path" in static_isv)
    print("    sees indirect fops targets:", "ext4_read" in static_isv)

    # 2. Dynamic ISV ------------------------------------------------------
    dynamic_isv = build_isv_for(kernel, proc, APP, "dynamic")
    print(f"\n[2] dynamic ISV: {len(dynamic_isv)} functions "
          f"({100 * (1 - len(dynamic_isv) / total):.1f}% reduction)")
    print("    includes error paths:",
          "pread64_error_path" in dynamic_isv)
    print("    sees indirect fops targets:", "ext4_read" in dynamic_isv)

    # 3. Bounded audit ----------------------------------------------------
    report = scan(image, scope=dynamic_isv.functions)
    print(f"\n[3] Kasper-style audit bounded to the ISV: "
          f"{report.count()} findings in {len(dynamic_isv)} functions "
          f"(instead of scanning all {total})")
    speedup = discovery_speedup(image, APP, dynamic_isv.functions,
                                n_seeds=8)
    print(f"    fuzzing discovery-rate speedup: {speedup.speedup:.2f}x "
          "(paper: 1.14-2.23x)")

    # 4. ISV++ ------------------------------------------------------------
    outcome = harden_isv(dynamic_isv, report.functions())
    full_report = scan(image)
    blocked = full_report.blocked_fraction(outcome.hardened.functions)
    print(f"\n[4] ISV++: removed {outcome.functions_removed} flagged "
          f"functions; {100 * blocked:.0f}% of ALL kernel gadgets are now "
          "outside the view (identified ones: 100%)")

    # 5. Runtime patching --------------------------------------------------
    framework = Perspective(kernel)
    framework.install_isv(outcome.hardened)
    print("\n[5] a new CVE drops naming some kernel function inside the "
          "view; shrink the ISV at runtime:")
    victim_fn = sorted(outcome.hardened.functions)[10]
    stricter = framework.shrink_isv(proc.cgroup.cg_id, {victim_fn})
    print(f"    excluded {victim_fn!r}: view {len(outcome.hardened)} -> "
          f"{len(stricter)} functions, hardware entries invalidated, "
          "no reboot, no kernel patch.")


if __name__ == "__main__":
    main()
