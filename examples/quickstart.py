#!/usr/bin/env python3
"""Quickstart: boot the kernel, leak a secret with Spectre v1, then stop
the same attack with Perspective.

Run:  python examples/quickstart.py
"""

from repro.attacks.base import make_setup
from repro.attacks.harness import build_perspective
from repro.attacks.spectre_v1 import SpectreV1ActiveAttack
from repro.kernel.image import shared_image
from repro.kernel.kernel import MiniKernel


def main() -> None:
    print("Booting the miniature kernel (synthetic image, "
          f"{shared_image().total_functions} functions)...")
    kernel = MiniKernel(image=shared_image())

    # Two mutually distrusting tenants share the machine.  The victim's
    # secret lives in its kernel heap -- reachable, via the direct map,
    # from any transient kernel execution.
    setup = make_setup(kernel, secret=b"hunter2!")
    print(f"victim pid={setup.victim.pid} holds secret "
          f"{setup.secret!r} at kernel VA {setup.secret_va:#x}")

    # A normal day: the victim does syscalls, nothing leaks architecturally.
    kernel.syscall(setup.victim, "getpid")  # warm caches/predictors
    result = kernel.syscall(setup.victim, "getpid")
    print(f"victim getpid(): {result.exec_result.committed_ops} kernel "
          f"micro-ops, {result.cycles:.0f} cycles")

    # --- Act 1: unprotected hardware -------------------------------------
    print("\n[1] UNSAFE hardware: the attacker mistrains a kernel bounds "
          "check and reads the victim's memory transiently...")
    attack = SpectreV1ActiveAttack(setup)
    outcome = attack.run("unsafe")
    print(f"    leaked: {outcome.leaked!r}  -> "
          f"{'ATTACK SUCCEEDED' if outcome.success else 'blocked'}")
    assert outcome.success

    # --- Act 2: arm Perspective -----------------------------------------
    print("\n[2] Installing Perspective: DSVs track every allocation's "
          "owner; ISVs trust only the syscall-reachable kernel...")
    framework, policy = build_perspective(kernel)
    outcome = SpectreV1ActiveAttack(setup).run("perspective")
    print(f"    leaked: {outcome.leaked!r}  -> "
          f"{'attack succeeded' if outcome.success else 'BLOCKED'}")
    assert outcome.blocked

    # The fence counters show why: the transient out-of-view access was
    # stopped at the DSV check.
    dsv_fences = policy.fence_stats.by_reason.get("dsv", 0)
    print(f"    ({dsv_fences} speculative loads fenced by DSV checks "
          "during the attempt)")

    # --- Act 3: and the benign workload barely notices -------------------
    print("\n[3] Benign cost: victim getpid() under Perspective...")
    protected = kernel.syscall(setup.victim, "getpid")
    print(f"    {protected.cycles:.0f} cycles "
          f"(was {result.cycles:.0f} unprotected)")
    print("\nDone. See examples/attack_demo.py for the full attack matrix "
          "and examples/isv_audit.py for the ISV lifecycle.")


if __name__ == "__main__":
    main()
