"""Setup shim for environments without the ``wheel`` package, where
pip's PEP 660 editable-install path is unavailable."""

from setuptools import setup

setup()
