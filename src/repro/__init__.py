"""Perspective: a principled framework for pliable and secure speculation
in operating systems -- full Python reproduction of the ISCA 2024 paper.

The package is organized bottom-up:

* :mod:`repro.cpu` -- out-of-order core model with behavioural transient
  execution (the gem5 stand-in).
* :mod:`repro.kernel` -- miniature OS: allocators, processes, syscalls,
  tracing, seccomp, and the synthetic kernel image.
* :mod:`repro.core` -- the paper's contribution: DSVs, ISVs, the DSVMT,
  the hardware view caches, and the Perspective framework tying them to
  the kernel.
* :mod:`repro.defenses` -- defense schemes: UNSAFE, FENCE, DOM, STT,
  Perspective (static/dynamic/++), and spot mitigations (KPTI/retpoline).
* :mod:`repro.attacks` -- covert channel plus Spectre v1/v2/RSB/BHI/
  Retbleed PoCs in active and passive form, and the CVE registry.
* :mod:`repro.analysis` -- static (radare2-like) and dynamic ISV
  generation.
* :mod:`repro.scanner` -- the Kasper-like taint-and-fuzz gadget scanner.
* :mod:`repro.workloads` -- LEBench microbenchmarks and datacenter
  application models (httpd, nginx, memcached, redis).
* :mod:`repro.eval` -- experiment runners regenerating every table and
  figure of the paper's evaluation.
"""

__version__ = "1.0.0"
