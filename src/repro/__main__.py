"""Command-line entry point: regenerate the paper's full evaluation.

Usage::

    python -m repro              # full evaluation (~3-4 minutes)
    python -m repro --fast       # trimmed pass (~1 minute)
    python -m repro -o report.txt

Writes the rendered tables, figures, and security matrix to stdout and,
with ``-o``, to a file.
"""

from __future__ import annotations

import argparse
import sys
import time


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate every table and figure of the Perspective "
                    "paper (ISCA 2024) from the Python reproduction.")
    parser.add_argument("--fast", action="store_true",
                        help="trimmed scheme lists / sample sizes")
    parser.add_argument("-o", "--output", metavar="FILE",
                        help="also write the report to FILE")
    args = parser.parse_args(argv)

    from repro.eval.report import run_full_evaluation

    started = time.time()
    print("Running the full evaluation"
          + (" (fast mode)" if args.fast else "") + "...", flush=True)
    artifacts = run_full_evaluation(fast=args.fast)
    report = artifacts.render()
    elapsed = time.time() - started
    report += f"\nGenerated in {elapsed:.0f}s by the Perspective " \
              "reproduction (see EXPERIMENTS.md for paper-vs-measured).\n"
    print(report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"report written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
