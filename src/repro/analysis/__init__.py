"""ISV generation toolchain: binary analysis, kernel call graphs, and
static/dynamic view construction."""

from repro.analysis.binary import (
    APPLICATIONS,
    ApplicationBinary,
    extract_syscalls,
)
from repro.analysis.callgraph import (
    ground_truth_graph,
    reachable_from,
    static_call_graph,
)
from repro.analysis.profiles import (
    ISVProfile,
    ProfileError,
    image_fingerprint,
)
from repro.analysis.dynamic_isv import (
    dynamic_isv_from_profile,
    generate_dynamic_isv,
    profile_workload,
    seccomp_filter_from_trace,
)
from repro.analysis.static_isv import generate_static_isv, static_isv_functions

__all__ = [
    "APPLICATIONS",
    "ApplicationBinary",
    "ISVProfile",
    "ProfileError",
    "image_fingerprint",
    "dynamic_isv_from_profile",
    "extract_syscalls",
    "generate_dynamic_isv",
    "generate_static_isv",
    "ground_truth_graph",
    "profile_workload",
    "reachable_from",
    "seccomp_filter_from_trace",
    "static_call_graph",
    "static_isv_functions",
]
