"""Application binary models and static syscall extraction.

The first step of ISV generation (Section 5.3, Figure 2.1 step 1) is
identifying the system calls a program may make.  Real Perspective extends
radare2 to scan the binary; here an :class:`ApplicationBinary` carries the
ground-truth syscall surface of each evaluated workload, and
``extract_syscalls`` plays the binary-analysis role (over-approximating,
as static analysis does, by including linked-in but rarely-used calls).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ApplicationBinary:
    """A userspace program as seen by the ISV toolchain."""

    name: str
    #: Syscalls the program actually issues at runtime.
    used_syscalls: frozenset[str]
    #: Additional syscalls statically present (libc stubs, error paths);
    #: static analysis cannot exclude them.
    linked_syscalls: frozenset[str] = frozenset()
    #: fops families the program's file descriptors dispatch through.
    fops_kinds: tuple[str, ...] = ("ext4",)

    def static_syscall_surface(self) -> frozenset[str]:
        """What binary analysis reports: used plus linked-in syscalls."""
        return self.used_syscalls | self.linked_syscalls


_COMMON_LINKED = frozenset({
    "brk", "mprotect", "access", "getuid", "fcntl", "dup", "kill",
    "wait4", "execve",
})

#: The evaluated application binaries (Chapter 7), with syscall mixes
#: modeled after each server's actual hot loop.
APPLICATIONS: dict[str, ApplicationBinary] = {
    "lebench": ApplicationBinary(
        name="lebench",
        used_syscalls=frozenset({
            "getpid", "sched_yield", "fork", "mmap", "munmap",
            "page_fault", "read", "write", "select", "poll",
            "epoll_create", "epoll_ctl", "epoll_wait", "open", "close",
            "stat", "sendto", "recvfrom", "socket", "futex",
        }),
        linked_syscalls=_COMMON_LINKED,
        fops_kinds=("ext4", "pipe")),
    "httpd": ApplicationBinary(
        name="httpd",
        used_syscalls=frozenset({
            "accept", "recvfrom", "sendto", "open", "read", "close",
            "stat", "fstat", "writev", "socket", "bind", "listen",
            "epoll_wait", "epoll_ctl", "mmap", "munmap", "futex",
            "getpid",
        }),
        linked_syscalls=_COMMON_LINKED | {"pipe", "lseek"},
        fops_kinds=("ext4", "sock")),
    "nginx": ApplicationBinary(
        name="nginx",
        used_syscalls=frozenset({
            "accept", "recvfrom", "sendto", "open", "pread64", "close",
            "stat", "writev", "socket", "bind", "listen", "epoll_create",
            "epoll_ctl", "epoll_wait", "getpid",
        }),
        linked_syscalls=_COMMON_LINKED | {"mmap", "munmap", "lseek"},
        fops_kinds=("ext4", "sock")),
    "memcached": ApplicationBinary(
        name="memcached",
        used_syscalls=frozenset({
            "accept", "recvfrom", "sendto", "sendmsg", "recvmsg",
            "socket", "bind", "listen", "epoll_wait", "epoll_ctl",
            "futex", "getpid",
        }),
        linked_syscalls=_COMMON_LINKED | {"mmap", "read", "write"},
        fops_kinds=("sock",)),
    "redis": ApplicationBinary(
        name="redis",
        used_syscalls=frozenset({
            "accept", "recvfrom", "sendto", "sendmsg", "socket",
            "bind", "listen", "epoll_create", "epoll_ctl", "epoll_wait",
            "open", "write", "close", "fstat", "getpid",
        }),
        linked_syscalls=_COMMON_LINKED | {"mmap", "munmap", "read",
                                          "nanosleep"},
        fops_kinds=("ext4", "sock")),
}


def extract_syscalls(binary: ApplicationBinary) -> frozenset[str]:
    """'Binary analysis': recover the static syscall surface."""
    return binary.static_syscall_surface()
