"""Kernel call-graph construction and reachability.

Static analysis sees only *direct* call edges; functions reachable solely
through indirect calls (the function-pointer dispatch of Figure 5.3a) are
invisible to it.  ``ground_truth_graph`` adds those edges for comparison
and for surface accounting.
"""

from __future__ import annotations

import networkx as nx

from repro.kernel.image import KernelImage


def static_call_graph(image: KernelImage) -> nx.DiGraph:
    """Direct-call-edge graph (what radare2-style analysis recovers)."""
    graph = nx.DiGraph()
    graph.add_nodes_from(image.info)
    for name, info in image.info.items():
        for callee in info.callees:
            graph.add_edge(name, callee)
    return graph


def ground_truth_graph(image: KernelImage) -> nx.DiGraph:
    """Static edges plus indirect-call edges (omniscient view)."""
    graph = static_call_graph(image)
    for name, info in image.info.items():
        for callee in info.indirect_callees:
            graph.add_edge(name, callee, indirect=True)
    return graph


def reachable_from(graph: nx.DiGraph,
                   entries: frozenset[str] | set[str]) -> frozenset[str]:
    """All functions reachable from any entry (entries included)."""
    seen: set[str] = set()
    stack = [entry for entry in entries if entry in graph]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(succ for succ in graph.successors(node)
                     if succ not in seen)
    return frozenset(seen)
