"""Dynamic ISV generation (Section 5.3, Figure 5.3b).

Perspective leverages the kernel tracing subsystem to record the system
calls and kernel function paths a workload actually exercises, producing a
personalized dynamic ISV.  Compared to static ISVs it (a) excludes
statically-reachable-but-unused functions (smaller surface) and (b)
*includes* indirect-call targets that static analysis cannot see (better
performance).
"""

from __future__ import annotations

from typing import Callable

from repro.core.views import InstructionSpeculationView
from repro.kernel.kernel import MiniKernel
from repro.kernel.process import Process


def profile_workload(kernel: MiniKernel, proc: Process,
                     workload: Callable[[], None]) -> frozenset[str]:
    """Run ``workload`` under tracing; returns the kernel functions its
    context touched (the dynamic ISV profile)."""
    tracer = kernel.tracer
    was_enabled = tracer.enabled
    tracer.start()
    try:
        workload()
    finally:
        if not was_enabled:
            tracer.stop()
    return tracer.traced_functions(proc.cgroup.cg_id)


def generate_dynamic_isv(kernel: MiniKernel, proc: Process,
                         workload: Callable[[], None],
                         ) -> InstructionSpeculationView:
    """Profile a workload and build the dynamic ISV for its context."""
    functions = profile_workload(kernel, proc, workload)
    return InstructionSpeculationView(
        proc.cgroup.cg_id, functions, kernel.image.layout, source="dynamic")


def dynamic_isv_from_profile(functions: frozenset[str], context_id: int,
                             kernel: MiniKernel,
                             ) -> InstructionSpeculationView:
    """Build a dynamic ISV from an existing trace profile (e.g. collected
    on a profiling deployment and shipped with the application)."""
    return InstructionSpeculationView(
        context_id, functions, kernel.image.layout, source="dynamic")


def seccomp_filter_from_trace(kernel: MiniKernel, context_id: int):
    """Derive a seccomp allow-list from the same trace a dynamic ISV uses.

    The paper's ISV generation "marries" system-call interposition with
    speculation control (Section 5.3): one profiling pass yields both the
    conventional architectural sandbox (this filter) and the speculative
    one (the ISV).  Unlike blocked ISV functions -- which merely execute
    non-speculatively -- a blocked syscall returns an error, which is why
    seccomp policies must over-approximate while ISVs can be tight.
    """
    from repro.kernel.seccomp import SeccompFilter
    syscalls = kernel.tracer.traced_syscalls(context_id)
    return SeccompFilter.allow_list(syscalls)
