"""ISV profile serialization: build offline, ship, install at startup.

The paper's deployment flow (Section 5.4) builds an ISV offline and
provides it to the OS when the application starts.  This module is the
wire format: a JSON document carrying the profile's provenance (source,
image seed/fingerprint, syscall set) plus the function list, with
validation on load so a profile built against a different kernel image is
rejected rather than silently mis-enforced.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.core.views import InstructionSpeculationView
from repro.kernel.image import KernelImage

FORMAT_VERSION = 1


def image_fingerprint(image: KernelImage) -> str:
    """Stable fingerprint of a kernel image's code identity.

    Hashes the ordered function names and body lengths: any change to the
    image's layout (new functions, resized bodies) changes the fingerprint,
    which is exactly when an old profile's function set may no longer mean
    what it meant.
    """
    hasher = hashlib.sha256()
    for func in image.layout.functions():
        hasher.update(func.name.encode())
        hasher.update(len(func.body).to_bytes(4, "little"))
    return hasher.hexdigest()[:16]


class ProfileError(Exception):
    """The profile document is malformed or does not match this kernel."""


@dataclass
class ISVProfile:
    """A portable, installable ISV description."""

    app: str
    source: str  # "static" | "dynamic" | "dynamic++" | ...
    functions: frozenset[str]
    fingerprint: str
    syscalls: frozenset[str] = frozenset()
    notes: str = ""

    # -- construction ---------------------------------------------------

    @classmethod
    def from_isv(cls, app: str, isv: InstructionSpeculationView,
                 image: KernelImage,
                 syscalls: frozenset[str] = frozenset(),
                 notes: str = "") -> "ISVProfile":
        return cls(app=app, source=isv.source,
                   functions=isv.functions,
                   fingerprint=image_fingerprint(image),
                   syscalls=syscalls, notes=notes)

    # -- wire format -----------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "format": FORMAT_VERSION,
            "app": self.app,
            "source": self.source,
            "fingerprint": self.fingerprint,
            "syscalls": sorted(self.syscalls),
            "functions": sorted(self.functions),
            "notes": self.notes,
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ISVProfile":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProfileError(f"not valid JSON: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("format") != FORMAT_VERSION:
            raise ProfileError("unknown profile format")
        for key in ("app", "source", "fingerprint", "functions"):
            if key not in doc:
                raise ProfileError(f"missing field {key!r}")
        return cls(app=doc["app"], source=doc["source"],
                   functions=frozenset(doc["functions"]),
                   fingerprint=doc["fingerprint"],
                   syscalls=frozenset(doc.get("syscalls", ())),
                   notes=doc.get("notes", ""))

    # -- installation -----------------------------------------------------

    def to_isv(self, context_id: int, image: KernelImage,
               strict: bool = True) -> InstructionSpeculationView:
        """Materialize the profile against a kernel image.

        ``strict`` requires an exact fingerprint match; non-strict mode
        (a patched kernel of the same lineage) drops functions the image
        no longer has -- shrinking is always safe, growing never happens.
        """
        if strict and self.fingerprint != image_fingerprint(image):
            raise ProfileError(
                "profile was built against a different kernel image "
                f"(profile {self.fingerprint}, "
                f"image {image_fingerprint(image)})")
        known = frozenset(name for name in self.functions
                          if name in image.layout)
        if strict and known != self.functions:
            missing = sorted(self.functions - known)[:3]
            raise ProfileError(f"profile names unknown functions: {missing}")
        return InstructionSpeculationView(
            context_id, known, image.layout, source=self.source)
