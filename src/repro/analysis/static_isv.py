"""Static ISV generation (Section 5.3, Figure 5.3a).

Pipeline: binary analysis extracts the application's syscall surface; the
kernel call graph (direct edges only) yields every function each syscall
entry could invoke; the union forms the static ISV.  Indirect-call targets
are *not* included -- speculative entry into them will be fenced, the
source of PERSPECTIVE-STATIC's extra overhead on fops-heavy workloads
(Section 9.1, httpd discussion).
"""

from __future__ import annotations

from repro.analysis.binary import ApplicationBinary, extract_syscalls
from repro.analysis.callgraph import reachable_from, static_call_graph
from repro.core.views import InstructionSpeculationView
from repro.kernel.image import KernelImage


def static_isv_functions(image: KernelImage,
                         binary: ApplicationBinary) -> frozenset[str]:
    """Function set of the binary's static ISV."""
    syscalls = extract_syscalls(binary)
    entries = frozenset(
        image.syscalls[name].entry for name in syscalls
        if name in image.syscalls)
    graph = static_call_graph(image)
    return reachable_from(graph, entries)


def generate_static_isv(image: KernelImage, binary: ApplicationBinary,
                        context_id: int) -> InstructionSpeculationView:
    """Build the per-application static ISV for one execution context."""
    return InstructionSpeculationView(
        context_id, static_isv_functions(image, binary), image.layout,
        source="static")
