"""Transient-execution attack PoCs: the covert channel, Spectre variants
in active and passive form, the CVE registry, and the attack x defense
matrix harness."""

from repro.attacks.base import AttackResult, AttackSetup, make_setup
from repro.attacks.bhi import BHIPassiveAttack, EIBRSBaselineCheck
from repro.attacks.covert import CovertChannel, HIT_THRESHOLD, ProbeResult
from repro.attacks.cves import (
    CVERecord,
    MitigationGap,
    Primitive,
    TABLE_4_1,
    record_for_row,
    records_by_primitive,
)
from repro.attacks.ebpf import (
    EBPFInjectionAttack,
    EBPFInjectionOnVulnerableConfig,
    guarded_oob_program,
    masked_program,
    vulnerable_manager,
)
from repro.attacks.harness import (
    ATTACKS,
    SCHEMES,
    MatrixCell,
    build_perspective,
    build_policy,
    non_driver_isv_functions,
    run_attack,
    run_matrix,
)
from repro.attacks.midfunction import (
    MidFunctionHijackAttack,
    run_midfunction_attack,
)
from repro.attacks.retbleed import RetbleedPassiveAttack
from repro.attacks.spectre_rsb import SpectreRSBPassiveAttack
from repro.attacks.spectre_v1 import SpectreV1ActiveAttack
from repro.attacks.spectre_v2 import (
    SpectreV2ActiveAttack,
    SpectreV2PassiveAttack,
)

__all__ = [
    "ATTACKS",
    "AttackResult",
    "AttackSetup",
    "BHIPassiveAttack",
    "CVERecord",
    "CovertChannel",
    "EBPFInjectionAttack",
    "EBPFInjectionOnVulnerableConfig",
    "EIBRSBaselineCheck",
    "guarded_oob_program",
    "masked_program",
    "vulnerable_manager",
    "HIT_THRESHOLD",
    "MatrixCell",
    "MidFunctionHijackAttack",
    "MitigationGap",
    "Primitive",
    "ProbeResult",
    "RetbleedPassiveAttack",
    "SCHEMES",
    "SpectreRSBPassiveAttack",
    "SpectreV1ActiveAttack",
    "SpectreV2ActiveAttack",
    "SpectreV2PassiveAttack",
    "TABLE_4_1",
    "build_perspective",
    "build_policy",
    "make_setup",
    "non_driver_isv_functions",
    "record_for_row",
    "records_by_primitive",
    "run_attack",
    "run_matrix",
    "run_midfunction_attack",
]
