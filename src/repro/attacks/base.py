"""Common attack harness types."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.kernel import MiniKernel
from repro.kernel.process import Process


@dataclass
class AttackResult:
    """Outcome of one end-to-end PoC run."""

    name: str
    scheme: str
    secret: bytes
    leaked: bytes
    #: Bytes the attacker failed to recover at all (no unique hit line).
    unrecovered: int = 0
    notes: str = ""

    @property
    def success(self) -> bool:
        """The attack succeeded iff every secret byte was recovered."""
        return len(self.leaked) == len(self.secret) \
            and self.leaked == self.secret

    @property
    def blocked(self) -> bool:
        return not self.success


@dataclass
class AttackSetup:
    """Attacker and victim processes sharing a kernel (and its core)."""

    kernel: MiniKernel
    attacker: Process
    victim: Process
    secret: bytes = b""
    secret_va: int = 0
    extras: dict = field(default_factory=dict)


def make_setup(kernel: MiniKernel | None = None,
               secret: bytes = b"K3Y!") -> AttackSetup:
    """Boot a kernel (if needed) with an attacker and a victim process,
    planting ``secret`` in the victim's kernel heap."""
    kernel = kernel or MiniKernel()
    attacker = kernel.create_process("attacker")
    victim = kernel.create_process("victim")
    secret_va = kernel.plant_secret(victim, secret)
    return AttackSetup(kernel=kernel, attacker=attacker, victim=victim,
                       secret=secret, secret_va=secret_va)
