"""Branch History Injection (Table 4.1 row 5).

BHI targets hardware-isolated predictors (eIBRS): the BTB refuses to serve
cross-domain entries, but the *indexing* still mixes in branch history that
userspace controls.  By colliding on history, the attacker steers a victim
indirect branch onto an attacker-chosen (kernel-resident) target despite
the isolation -- so the hardware mitigation alone is insufficient.

The PoC runs against a kernel configured with ``btb_hardware_isolation``:
a plain cross-domain poison is ignored (eIBRS works as advertised), while
a history-colliding poison is consumed (BHI bypasses it).
"""

from __future__ import annotations

from repro.attacks.base import AttackResult, AttackSetup
from repro.attacks.spectre_v2 import SpectreV2PassiveAttack


class BHIPassiveAttack(SpectreV2PassiveAttack):
    """Spectre v2 via branch-history collision under eIBRS."""

    name = "bhi-passive"

    def __init__(self, setup: AttackSetup) -> None:
        if not setup.kernel.branch_unit.btb.hardware_isolation:
            raise ValueError(
                "the BHI PoC targets a kernel with eIBRS enabled; build the "
                "kernel with KernelConfig(btb_hardware_isolation=True)")
        super().__init__(setup, history_collision=True)


class EIBRSBaselineCheck(SpectreV2PassiveAttack):
    """Plain cross-domain v2 against an eIBRS kernel -- expected blocked.

    This is the control experiment for BHI: it shows that the hardware
    isolation is effective against naive injection, so the leak observed
    by :class:`BHIPassiveAttack` is attributable to the history collision.
    """

    name = "spectre-v2-vs-eibrs"

    def __init__(self, setup: AttackSetup) -> None:
        super().__init__(setup, history_collision=False)

    def _poison(self) -> None:
        # Naive cross-domain injection from the attacker's user domain.
        self.kernel.branch_unit.btb.poison(
            self.hijack_pc, self.gadget_va, domain="user:attacker",
            history_collision=False)
