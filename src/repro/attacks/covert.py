"""Flush+reload covert channel over the shared cache hierarchy.

The transmitter side is a kernel transient-execution gadget loading
``probe_array[secret_byte * 64]``; the receiver flushes the 256 probe lines
beforehand and times a reload of each afterwards.  A line that comes back
at L1/L2 latency was touched transiently -- its index is the secret byte.

Because generated kernel functions may themselves contain (benign-input)
gadget patterns that deterministically touch probe lines, recovery is
*differential*: a control run with a known byte identifies the constant
pollution set, and the secret is the line unique to the measurement run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.image import PROBE_ARRAY_OFF
from repro.kernel.kernel import MiniKernel
from repro.kernel.process import Process

#: Reload latency at or below this is a hit (L2 round trip + margin).
HIT_THRESHOLD = 12
PROBE_LINES = 256
LINE_BYTES = 64


@dataclass
class ProbeResult:
    """One reload sweep over the probe array."""

    latencies: list[int]

    def hit_lines(self, threshold: int = HIT_THRESHOLD) -> frozenset[int]:
        return frozenset(i for i, lat in enumerate(self.latencies)
                         if lat <= threshold)


class CovertChannel:
    """Receiver handle on one context's probe array."""

    def __init__(self, kernel: MiniKernel, owner: Process) -> None:
        self.kernel = kernel
        self.owner = owner
        base_va = owner.heap_va + PROBE_ARRAY_OFF
        self._line_pas = [owner.aspace.translate(base_va + i * LINE_BYTES)
                          for i in range(PROBE_LINES)]

    def flush(self) -> None:
        """clflush every probe line (the flush half of flush+reload)."""
        for pa in self._line_pas:
            self.kernel.hierarchy.flush_data(pa)

    def reload(self) -> ProbeResult:
        """Time a non-perturbing reload of every probe line."""
        return ProbeResult([self.kernel.hierarchy.probe_latency(pa)
                            for pa in self._line_pas])

    def recover_differential(self, measure_hits: frozenset[int],
                             control_hits: frozenset[int]) -> int | None:
        """The byte touched in the measurement but not the control run."""
        unique = measure_hits - control_hits
        if len(unique) == 1:
            return next(iter(unique))
        return None
