"""The CVE taxonomy of Table 4.1: speculative-execution vulnerabilities
targeting the Linux kernel, classified by attack primitive and by the
mitigation gap that let them through.

Each record carries the table's columns plus the name of the PoC class in
this package that exercises the same *primitive* against the synthetic
kernel, so the security evaluation (Chapter 8) can replay every row.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Primitive(enum.Enum):
    """Attack primitive (Table 4.1, column 1)."""

    DATA_ACCESS = "unauthorized speculative data access (Spectre v1)"
    CONTROL_FLOW = "speculative control-flow hijacking (Spectre v2/RSB+)"


class MitigationGap(enum.Enum):
    """Why existing mitigations failed (Table 4.1, column 2)."""

    NONE = "n/a"
    HARDWARE = "insufficient hardware mitigation"
    SOFTWARE = "insufficient software mitigation"
    MISUSE = "misused mitigation"


@dataclass(frozen=True)
class CVERecord:
    """One row of Table 4.1."""

    row: int
    primitive: Primitive
    gap: MitigationGap
    identifiers: tuple[str, ...]
    description: str
    origin: str
    #: Name of the PoC class replaying this primitive (see POC_CLASSES).
    poc: str


TABLE_4_1: tuple[CVERecord, ...] = (
    CVERecord(
        1, Primitive.DATA_ACCESS, MitigationGap.NONE,
        ("CVE-2022-27223",),
        "Array index is not validated", "Xilinx USB driver",
        poc="spectre-v1-active"),
    CVERecord(
        2, Primitive.DATA_ACCESS, MitigationGap.MISUSE,
        ("CVE-2019-15902",),
        "Reintroduced Spectre vulnerabilities in backporting", "ptrace",
        poc="spectre-v1-active"),
    CVERecord(
        3, Primitive.DATA_ACCESS, MitigationGap.NONE,
        ("CVE-2021-31829", "CVE-2019-7308", "CVE-2020-27170",
         "CVE-2020-27171", "CVE-2021-29155"),
        "Out-of-bounds speculation on pointer arithmetic", "eBPF verifier",
        poc="ebpf-injection"),
    CVERecord(
        4, Primitive.DATA_ACCESS, MitigationGap.NONE,
        ("CVE-2021-33624",),
        "Speculative type confusion", "eBPF verifier",
        poc="spectre-v2-active"),
    CVERecord(
        5, Primitive.CONTROL_FLOW, MitigationGap.HARDWARE,
        ("CVE-2022-0001", "CVE-2022-0002", "CVE-2022-23960"),
        "Branch history injection", "Indirect calls and jumps",
        poc="bhi-passive"),
    CVERecord(
        6, Primitive.CONTROL_FLOW, MitigationGap.SOFTWARE,
        ("CVE-2021-26401",),
        "LFENCE/JMP is insufficient on AMD", "Indirect calls and jumps",
        poc="spectre-v2-passive"),
    CVERecord(
        7, Primitive.CONTROL_FLOW, MitigationGap.SOFTWARE,
        ("CVE-2022-29900", "CVE-2022-29901"),
        "Retbleed", "Retpoline",
        poc="retbleed-passive"),
    CVERecord(
        8, Primitive.CONTROL_FLOW, MitigationGap.MISUSE,
        ("CVE-2022-2196",),
        "Missing retpolines or IBPB", "KVM",
        poc="spectre-v2-passive"),
    CVERecord(
        9, Primitive.CONTROL_FLOW, MitigationGap.MISUSE,
        ("CVE-2019-18660", "CVE-2020-10767", "CVE-2022-23824",
         "CVE-2023-1998"),
        "Improper use of hardware mitigations", "Indirect calls and jumps",
        poc="spectre-rsb-passive"),
)


def records_by_primitive(primitive: Primitive) -> list[CVERecord]:
    return [rec for rec in TABLE_4_1 if rec.primitive is primitive]


def record_for_row(row: int) -> CVERecord:
    for rec in TABLE_4_1:
        if rec.row == row:
            return rec
    raise KeyError(f"no Table 4.1 row {row}")
