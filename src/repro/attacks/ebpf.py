"""eBPF gadget injection (Table 4.1 rows 3-4).

The attacker loads a program that *passes verification*: every access is
guarded by a bounds check, so it is architecturally confined to its map
area.  Transiently, the guard is just a mistrainable branch -- the loaded
program is a Spectre v1 gadget the attacker injected into the kernel, with
an index register it fully controls.

Layered mitigations, all reproduced:

* the **fixed verifier** (``speculation_safe=True``) rejects the program
  at load time: branch guards no longer count as bounds proofs, only
  masking does;
* the **unprivileged-load ban** refuses the load outright;
* **Perspective's DSVs** stop even a loaded gadget: the transient
  out-of-bounds access violates ownership regardless of how the code got
  into the kernel.

The program transmits through its own 4 KB map area (64 cache lines), so
one run leaks 6 bits; a second program variant leaks the top 2 bits and
the attacker stitches the byte together.
"""

from __future__ import annotations

from repro.attacks.base import AttackResult, AttackSetup
from repro.cpu.isa import AluOp, alu, br, load, ret
from repro.kernel.ebpf import BPFManager, BPFProgram, BPFVerifier, MAP_SIZE
from repro.kernel.process import Process

#: Map offsets where the attacker plants known control bytes.  Two slots
#: with different values in *both* bit groups disambiguate the case where
#: the secret's transmitted bits equal one control's.
CONTROL_SLOTS = ((0x300, 0x2A), (0x340, 0xD5))

#: Architectural bound the guard enforces (the "array size").
GUARD_BOUND = 64


def _transmit_tail(shift: int, mask_after_shift: int):
    """Ops encoding ``map[((r8 >> shift) & ...) << 6]`` with verifier-legal
    masking on the transmit index."""
    ops = []
    if shift:
        ops.append(alu("r9", AluOp.SHR, "r8", imm=shift))
        ops.append(alu("r9", AluOp.AND, "r9", imm=0x3F))
    else:
        ops.append(alu("r9", AluOp.AND, "r8", imm=0x3F))
    ops.append(alu("r9", AluOp.SHL, "r9", imm=6))
    ops.append(alu("r9", AluOp.AND, "r9", imm=0xFC0))
    ops.append(alu("r7", AluOp.ADD, "r15", "r9"))
    ops.append(load("r5", "r7"))
    return ops


def guarded_oob_program(name: str, shift: int = 0) -> BPFProgram:
    """The malicious-but-verifiable program: branch-guarded access.

    ``shift`` selects which bits of the accessed byte are transmitted
    (0 -> low six bits, 6 -> top two)."""
    body = [
        alu("r5", AluOp.MOV, "r0"),
        alu("r6", AluOp.CMPLTU, "r5", imm=GUARD_BOUND),
    ]
    branch_at = len(body)
    body.append(br("r6", target=-1))
    body.append(ret())  # out of bounds: architecturally refused
    body[branch_at] = br("r6", target=len(body))
    body.append(alu("r7", AluOp.ADD, "r15", "r5"))
    body.append(load("r8", "r7"))  # the injected access step
    body.extend(_transmit_tail(shift, 0xFC0))
    body.append(ret())
    return BPFProgram(name=name, body=body)


def masked_program(name: str) -> BPFProgram:
    """A genuinely safe program: the index is masked, not just guarded."""
    return BPFProgram(name=name, body=[
        alu("r5", AluOp.MOV, "r0"),
        alu("r5", AluOp.AND, "r5", imm=MAP_SIZE - 1),
        alu("r7", AluOp.ADD, "r15", "r5"),
        load("r8", "r7"),
        ret(),
    ])


class EBPFInjectionAttack:
    """End-to-end gadget injection against a chosen verifier/manager."""

    name = "ebpf-injection"

    def __init__(self, setup: AttackSetup, manager: BPFManager) -> None:
        self.setup = setup
        self.kernel = setup.kernel
        self.manager = manager
        attacker = setup.attacker
        self.low = manager.load(attacker, guarded_oob_program("low", 0),
                                privileged=False)
        self.high = manager.load(attacker, guarded_oob_program("high", 6),
                                 privileged=False)
        for offset, value in CONTROL_SLOTS:
            pa = attacker.aspace.translate(attacker.heap_va + offset)
            self.kernel.memory.store(pa, value)
        self._line_pas = [attacker.aspace.translate(
            attacker.heap_va + line * 64) for line in range(64)]

    def _probe_round(self, handle: int, index: int) -> frozenset[int]:
        for _ in range(5):  # mistrain the guard toward in-bounds
            self.manager.run(self.setup.attacker, handle, arg=1)
        for pa in self._line_pas:
            self.kernel.hierarchy.flush_data(pa)
        self.manager.run(self.setup.attacker, handle, arg=index)
        return frozenset(
            line for line, pa in enumerate(self._line_pas)
            if self.kernel.hierarchy.probe_latency(pa) <= 12)

    def _leak_bits(self, handle: int, index: int, shift: int) -> int | None:
        measured = self._probe_round(handle, index)
        for control_off, control_val in CONTROL_SLOTS:
            control = self._probe_round(handle, control_off)
            unique = measured - control
            if len(unique) == 1:
                return next(iter(unique))
            # If the secret's transmitted bits equal this control's, the
            # sets coincide; the other control (different in both bit
            # groups) disambiguates.
            control_line = (control_val >> shift) & 0x3F
            if measured == control and control_line in measured:
                return control_line
        return None

    def leak_byte(self, target_va: int, attempts: int = 3) -> int | None:
        index = target_va - self.setup.attacker.heap_va
        for _ in range(attempts):
            low = self._leak_bits(self.low, index, 0)
            high = self._leak_bits(self.high, index, 6)
            if low is not None and high is not None:
                return ((high & 0x3) << 6) | low
        return None

    def run(self, scheme_name: str = "unsafe") -> AttackResult:
        leaked = bytearray()
        unrecovered = 0
        for i in range(len(self.setup.secret)):
            byte = self.leak_byte(self.setup.secret_va + i)
            if byte is None:
                unrecovered += 1
            else:
                leaked.append(byte)
        return AttackResult(name=self.name, scheme=scheme_name,
                            secret=self.setup.secret, leaked=bytes(leaked),
                            unrecovered=unrecovered)


def vulnerable_manager(kernel) -> BPFManager:
    """The historical configuration: buggy verifier, unprivileged loads."""
    return BPFManager(kernel,
                      verifier=BPFVerifier(speculation_safe=False),
                      allow_unprivileged=True)


class EBPFInjectionOnVulnerableConfig(EBPFInjectionAttack):
    """Matrix-harness adapter: builds the historical (vulnerable) BPF
    configuration itself, so it plugs into ``run_attack`` like the other
    PoCs.  Under Perspective the loaded program is outside every installed
    ISV *and* its OOB access violates the DSV -- blocked either way."""

    def __init__(self, setup: AttackSetup) -> None:
        super().__init__(setup, vulnerable_manager(setup.kernel))
