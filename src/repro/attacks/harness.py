"""Attack x defense matrix runner (the engine behind Chapter 8).

``run_attack(attack, scheme)`` boots a fresh kernel (sharing the cached
image), installs the requested defense policy, plants a secret, runs the
PoC end to end, and reports whether the secret leaked.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.base import AttackResult, AttackSetup, make_setup
from repro.attacks.bhi import BHIPassiveAttack, EIBRSBaselineCheck
from repro.attacks.ebpf import EBPFInjectionOnVulnerableConfig
from repro.attacks.retbleed import RetbleedPassiveAttack
from repro.attacks.spectre_rsb import SpectreRSBPassiveAttack
from repro.attacks.spectre_v1 import SpectreV1ActiveAttack
from repro.attacks.spectre_v2 import (
    SpectreV2ActiveAttack,
    SpectreV2PassiveAttack,
)
from repro.core.framework import Perspective
from repro.core.views import InstructionSpeculationView
from repro.cpu.pipeline import SpeculationPolicy
from repro.defenses import PerspectivePolicy
from repro.defenses.registry import build_policy as registry_build_policy
from repro.kernel.image import KernelImage, shared_image
from repro.kernel.kernel import KernelConfig, MiniKernel
from repro.obs.events import EventJournal, journaling

#: PoC classes by the name used in the CVE registry (Table 4.1).
ATTACKS = {
    "spectre-v1-active": SpectreV1ActiveAttack,
    "spectre-v2-active": SpectreV2ActiveAttack,
    "spectre-v2-passive": SpectreV2PassiveAttack,
    "retbleed-passive": RetbleedPassiveAttack,
    "spectre-rsb-passive": SpectreRSBPassiveAttack,
    "bhi-passive": BHIPassiveAttack,
    "spectre-v2-vs-eibrs": EIBRSBaselineCheck,
    "ebpf-injection": EBPFInjectionOnVulnerableConfig,
}

#: Attacks that require an eIBRS-configured kernel.
_NEEDS_EIBRS = {"bhi-passive", "spectre-v2-vs-eibrs"}

#: Default scheme columns of the Chapter 8 matrix (the paper's rows).
#: Any scheme in :func:`repro.defenses.registry.registered_schemes` is
#: accepted by :func:`run_attack`; the full cross-paper matrix lives in
#: :mod:`repro.eval.defense_matrix`.
SCHEMES = ("unsafe", "fence", "dom", "stt", "spot", "perspective")


def non_driver_isv_functions(image: KernelImage) -> frozenset[str]:
    """A permissive syscall-surface ISV: everything except the driver tail.

    Close to what static analysis produces union'd over all applications;
    used when a PoC run needs *some* installed view without running the
    full analysis pipeline.  Driver-tail gadgets (including the hijack
    targets) are outside it.
    """
    return frozenset(name for name, info in image.info.items()
                     if info.role != "driver")


def build_perspective(kernel: MiniKernel,
                      isv_functions: frozenset[str] | None = None,
                      context_ids: list[int] | None = None,
                      harden: bool = False,
                      ) -> tuple[Perspective, PerspectivePolicy]:
    """Wire a Perspective framework + policy onto a kernel, installing the
    given ISV function set for each context (default: all processes).

    ``harden`` applies the scanner pass (the ++ flavor): functions the
    taint scanner flags inside the view are excluded before install.
    """
    framework = Perspective(kernel)
    if isv_functions is None:
        isv_functions = non_driver_isv_functions(kernel.image)
    if harden:
        from repro.scanner.kasper import scan
        flagged = scan(kernel.image, scope=isv_functions).functions()
        isv_functions = isv_functions - flagged
    if context_ids is None:
        context_ids = sorted({proc.cgroup.cg_id
                              for proc in kernel.processes.values()})
    for ctx in context_ids:
        framework.install_isv(InstructionSpeculationView(
            ctx, isv_functions, kernel.layout, source="harness"))
    policy = PerspectivePolicy(framework)
    kernel.pipeline.set_policy(policy)
    return framework, policy


def build_policy(scheme: str, kernel: MiniKernel) -> SpeculationPolicy:
    """Instantiate (and install) the policy for a scheme name.

    Delegates to the scheme registry, so any registered scheme --
    including ones added after this module was written -- can be run
    through the attack matrix.  Perspective flavors are wired through
    :func:`build_perspective` (which installs the policy itself); every
    other policy is installed here.
    """
    policy = registry_build_policy(scheme, kernel=kernel)
    if kernel.pipeline.policy is not policy:
        kernel.pipeline.set_policy(policy)
    return policy


@dataclass
class MatrixCell:
    attack: str
    scheme: str
    result: AttackResult


def run_attack(attack_name: str, scheme: str = "unsafe",
               secret: bytes = b"K3Y!",
               journal: EventJournal | None = None) -> AttackResult:
    """Boot, arm, attack; returns the PoC outcome under ``scheme``.

    Passing a ``journal`` records every enforcement decision made during
    the PoC as security events, so the run can be reconstructed after the
    fact (:meth:`EventJournal.reconstruct`).
    """
    attack_cls = ATTACKS[attack_name]
    config = KernelConfig(
        btb_hardware_isolation=attack_name in _NEEDS_EIBRS)
    kernel = MiniKernel(image=shared_image(), config=config)
    setup = make_setup(kernel, secret=secret)
    build_policy(scheme, kernel)
    attack = attack_cls(setup)
    with journaling(journal):
        return attack.run(scheme_name=scheme)


def attack_on(kernel: MiniKernel, attacker, victim, attack_name: str,
              scheme: str, secret: bytes = b"K3Y!",
              journal: EventJournal | None = None) -> AttackResult:
    """Run one PoC through an existing *armed* kernel.

    Where :func:`run_attack` boots a fresh kernel per PoC, this entry
    point drives the attack through a kernel that is already serving
    other tenants -- the adversarial-campaign path, where the attacker
    is a co-located tenant and the policy, view caches, predictors, and
    memory state are shared with live victim traffic.  The caller owns
    policy arming; the secret is (re)planted in ``victim``'s kernel heap
    before the run.

    Passing ``journal`` scopes event recording to this PoC run; leaving
    it ``None`` keeps whatever journal is already active (the campaign
    journals the whole timeline, attacks included).
    """
    attack_cls = ATTACKS[attack_name]
    if attack_name in _NEEDS_EIBRS \
            and not kernel.config.btb_hardware_isolation:
        raise ValueError(f"{attack_name} needs an eIBRS-configured kernel")
    secret_va = kernel.plant_secret(victim, secret)
    setup = AttackSetup(kernel=kernel, attacker=attacker, victim=victim,
                        secret=secret, secret_va=secret_va)
    attack = attack_cls(setup)
    if journal is None:
        return attack.run(scheme_name=scheme)
    with journaling(journal):
        return attack.run(scheme_name=scheme)


def run_matrix(attacks: tuple[str, ...] = tuple(ATTACKS),
               schemes: tuple[str, ...] = SCHEMES,
               secret: bytes = b"K3Y!") -> list[MatrixCell]:
    """The full Chapter 8 security matrix."""
    cells = []
    for attack_name in attacks:
        for scheme in schemes:
            cells.append(MatrixCell(
                attack_name, scheme,
                run_attack(attack_name, scheme, secret=secret)))
    return cells
