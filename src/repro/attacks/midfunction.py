"""Mid-function speculative hijack: why Perspective builds on CFI.

ISVs are enforced on *transmitter instructions by location*: a function
inside the view is trusted speculatively.  But an attacker who can steer
an indirect prediction into the **middle** of an ISV-trusted function
lands *past its bounds check* -- the classic Spectre v1 gadget becomes an
unconditional read.  The paper closes this with SpecCFI-style control-flow
integrity (Section 5.1): predicted targets must be valid function entries.

This PoC poisons the victim's fops-dispatch BTB entry with the address of
the access block *inside* ``ioctl_v1_gadget`` (op index 4, just after the
bounds check).  With CFI off and a permissive ISV it leaks; Perspective's
default CFI layer suppresses the hijack at the predictor.
"""

from __future__ import annotations

from repro.attacks.base import AttackResult, AttackSetup, make_setup
from repro.attacks.covert import CovertChannel
from repro.attacks.harness import build_perspective
from repro.attacks.spectre_v2 import find_op_va
from repro.cpu.isa import Op
from repro.kernel.image import KernelImage, shared_image
from repro.kernel.kernel import MiniKernel

#: Op index of the gadget's access block (first op past the bounds check).
GADGET_ACCESS_INDEX = 4


class MidFunctionHijackAttack:
    """Spectre v2 steering speculation past an in-view bounds check."""

    name = "spectre-v2-midfunction"

    def __init__(self, setup: AttackSetup) -> None:
        self.setup = setup
        self.kernel = setup.kernel
        self.channel = CovertChannel(self.kernel, setup.victim)
        image = self.kernel.image
        entry = image.layout["sys_recvfrom"]
        self.hijack_pc = find_op_va(entry, Op.ICALL)
        gadget = image.layout["ioctl_v1_gadget"]
        # Target the middle of the (ISV-trusted) gadget: the access block.
        self.target_va = gadget.va_of(GADGET_ACCESS_INDEX)
        self.victim_fd = self.kernel.syscall(
            setup.victim, "socket", args=(0,)).retval
        # The hijacked access reads victim_heap + r0, and the victim's r0
        # is its socket fd: plant the byte to leak right there.
        self.leak_offset = self.victim_fd

    def plant_byte(self, value: int) -> None:
        pa = self.setup.victim.aspace.translate(
            self.setup.victim.heap_va + self.leak_offset)
        self.kernel.memory.store(pa, value)

    def _victim_call(self) -> None:
        self.kernel.syscall(self.setup.victim, "recvfrom",
                            args=(self.victim_fd, 0, 0))

    def leak_byte(self) -> int | None:
        self.channel.flush()
        self._victim_call()
        control = self.channel.reload().hit_lines()
        self.kernel.branch_unit.btb.poison(self.hijack_pc, self.target_va,
                                           domain="kernel")
        self.channel.flush()
        self._victim_call()
        measured = self.channel.reload().hit_lines()
        return self.channel.recover_differential(measured, control)

    def run(self, scheme_name: str = "unsafe",
            retries: int = 3) -> AttackResult:
        leaked = bytearray()
        unrecovered = 0
        for byte in self.setup.secret:
            self.plant_byte(byte)
            got = None
            for _ in range(retries):
                # Early attempts can die to cold view-cache conservative
                # blocks rather than real enforcement; attackers retry.
                got = self.leak_byte()
                if got is not None:
                    break
            if got is None:
                unrecovered += 1
            else:
                leaked.append(got)
        return AttackResult(name=self.name, scheme=scheme_name,
                            secret=self.setup.secret, leaked=bytes(leaked),
                            unrecovered=unrecovered)


def run_midfunction_attack(cfi: bool, image: KernelImage | None = None,
                           secret: bytes = b"K3Y!") -> AttackResult:
    """Run the PoC under Perspective with CFI on or off.

    The ISV is permissive (it contains the gadget function) and DSV
    enforcement cannot help (the hijacked access reads the victim's *own*
    heap), so the outcome isolates exactly the CFI layer's contribution.
    """
    kernel = MiniKernel(image=image or shared_image())
    setup = make_setup(kernel, secret=secret)
    framework, policy = build_perspective(kernel)
    policy.cfi = cfi
    attack = MidFunctionHijackAttack(setup)
    return attack.run(f"perspective-cfi-{'on' if cfi else 'off'}")
