"""Retbleed (Table 4.1 row 7): return-target hijacking despite retpolines.

The victim's ``sys_recvfrom`` path contains a call chain deeper than the
16-entry RSB.  On the way back up, the two outermost returns find the RSB
underflowed, and Retbleed-vulnerable cores fall back to the *BTB* for the
return-target prediction -- a structure the attacker can poison even when
every indirect call is compiled as a retpoline.  The hijacked return lands
in the driver gadget with the secret reference still live in ``r5``.
"""

from __future__ import annotations

from repro.attacks.base import AttackResult, AttackSetup
from repro.attacks.covert import CovertChannel
from repro.cpu.isa import Op


class RetbleedPassiveAttack:
    """BTB-poisoned underflowing returns on the victim's syscall path."""

    name = "retbleed-passive"

    def __init__(self, setup: AttackSetup) -> None:
        self.setup = setup
        self.kernel = setup.kernel
        self.channel = CovertChannel(self.kernel, setup.victim)
        image = self.kernel.image
        self.gadget_va = image.layout["xilinx_usb_poc_gadget"].base_va
        # The returns that underflow are the two outermost frames of the
        # deep chain: recv_deep0 and recv_deep1.
        self.ret_pcs = []
        for name in ("recv_deep0", "recv_deep1"):
            func = image.layout[name]
            for idx, op in enumerate(func.body):
                if op.op is Op.RET:
                    self.ret_pcs.append(func.va_of(idx))
        self.victim_fd = self.kernel.syscall(
            setup.victim, "socket", args=(0,)).retval

    def _poison(self) -> None:
        # Mistraining runs in the attacker's context (see SpectreV2's
        # _poison): IBPB deployments flush it at the victim's switch-in.
        self.kernel.syscall(self.setup.attacker, "getpid")
        for pc in self.ret_pcs:
            self.kernel.branch_unit.btb.poison(pc, self.gadget_va,
                                               domain="kernel")

    def _unpoison(self) -> None:
        for pc in self.ret_pcs:
            self.kernel.branch_unit.btb.poison(pc, 0, domain="isolated")

    def _victim_call(self, byte_index: int) -> None:
        # Attacker primes the RSB empty first (its own ret-heavy code), so
        # the victim's deep chain underflows deterministically.
        self.kernel.branch_unit.rsb.clear()
        self.kernel.syscall(self.setup.victim, "recvfrom",
                            args=(self.victim_fd, 0, byte_index))

    def leak_byte(self, byte_index: int) -> int | None:
        self._unpoison()
        self.channel.flush()
        self._victim_call(byte_index)
        control = self.channel.reload().hit_lines()
        self._poison()
        self.channel.flush()
        self._victim_call(byte_index)
        measured = self.channel.reload().hit_lines()
        return self.channel.recover_differential(measured, control)

    def run(self, scheme_name: str = "unsafe",
            retries: int = 3) -> AttackResult:
        leaked = bytearray()
        unrecovered = 0
        for i in range(len(self.setup.secret)):
            byte = None
            for _ in range(retries):
                # First touches can die to cold conservative blocks in the
                # defense's view caches rather than enforcement; retry.
                byte = self.leak_byte(i)
                if byte is not None:
                    break
            if byte is None:
                unrecovered += 1
            else:
                leaked.append(byte)
        return AttackResult(name=self.name, scheme=scheme_name,
                            secret=self.setup.secret, leaked=bytes(leaked),
                            unrecovered=unrecovered)
