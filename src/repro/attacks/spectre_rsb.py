"""Spectre RSB (ret2spec-style): poisoned return-stack consumption.

The consumption point is a context switch: when the victim thread is
switched back in, its first instruction is the RET out of
``finish_task_switch`` -- but the RSB now holds entries planted by the
attacker, who ran on this core in the meantime and executed calls whose
return sites collide with the gadget address.  The victim's resume RET
mispredicts into the gadget while its restored registers (including the
secret reference in ``r5``) are live.
"""

from __future__ import annotations

from repro.attacks.base import AttackResult, AttackSetup
from repro.attacks.covert import CovertChannel
from repro.cpu.pipeline import ExecutionContext
from repro.kernel.image import (
    REG_GLOBAL,
    REG_HEAP,
    REG_KSTACK,
    REG_TASK,
    REG_USERBUF,
    SECRET_OFF,
)
from repro.kernel.layout import USER_BASE


class SpectreRSBPassiveAttack:
    """RSB poisoning consumed at the victim's context-switch resume."""

    name = "spectre-rsb-passive"

    def __init__(self, setup: AttackSetup) -> None:
        self.setup = setup
        self.kernel = setup.kernel
        self.channel = CovertChannel(self.kernel, setup.victim)
        image = self.kernel.image
        self.gadget_va = image.layout["xilinx_usb_poc_gadget"].base_va
        self.resume_func = image.layout["finish_task_switch"]
        self.switched_from = image.layout["sys_nanosleep"]

    def _poison_rsb(self) -> None:
        """The attacker's colliding call sites fill the RSB with the
        gadget address."""
        rsb = self.kernel.branch_unit.rsb
        rsb.clear()
        for _ in range(4):
            rsb.push(self.gadget_va)

    def _victim_resume(self, byte_index: int) -> None:
        """Run the victim's switch-in path: RET out of finish_task_switch
        back into its suspended nanosleep syscall."""
        victim = self.setup.victim
        regs = {
            "r5": victim.heap_va + SECRET_OFF + byte_index,  # live secret ref
            REG_HEAP: victim.heap_va,
            REG_TASK: victim.heap_va,
            REG_KSTACK: victim.kernel_stack_va,
            REG_GLOBAL: self.kernel.global_page_va,
            REG_USERBUF: USER_BASE,
            "r11": 1, "r0": 0, "r1": 0, "r2": 0, "r4": 0, "r8": victim.heap_va,
        }
        context = ExecutionContext(
            context_id=victim.cgroup.cg_id, domain="kernel",
            address_space=victim.aspace, initial_regs=regs)
        # Resume at the RET (op index 1) of finish_task_switch, returning
        # into the tail of the suspended syscall entry.
        resume_at = len(self.switched_from.body) - 1  # the final KRET
        self.kernel.pipeline.run(
            self.resume_func, context, start_index=1,
            initial_call_stack=[(self.switched_from, resume_at)])

    def leak_byte(self, byte_index: int) -> int | None:
        self.kernel.branch_unit.rsb.clear()
        self.channel.flush()
        self._victim_resume(byte_index)
        control = self.channel.reload().hit_lines()
        self._poison_rsb()
        self.channel.flush()
        self._victim_resume(byte_index)
        measured = self.channel.reload().hit_lines()
        return self.channel.recover_differential(measured, control)

    def run(self, scheme_name: str = "unsafe",
            retries: int = 3) -> AttackResult:
        leaked = bytearray()
        unrecovered = 0
        for i in range(len(self.setup.secret)):
            byte = None
            for _ in range(retries):
                # First touches can die to cold conservative blocks in the
                # defense's view caches rather than enforcement; retry.
                byte = self.leak_byte(i)
                if byte is not None:
                    break
            if byte is None:
                unrecovered += 1
            else:
                leaked.append(byte)
        return AttackResult(name=self.name, scheme=scheme_name,
                            secret=self.setup.secret, leaked=bytes(leaked),
                            unrecovered=unrecovered)
