"""Spectre v1 active attack (Figure 4.1 / Listing 2.1).

The attacker's own kernel thread runs the bounds-checked gadget on the
``sys_ioctl`` path.  Mistraining biases the bounds-check branch toward
taken; an out-of-bounds index then transiently reads
``attacker_heap[idx]`` -- which, through the kernel's monolithic direct
map, can be *any* physical byte, including the victim's secret -- and
transmits it through the attacker's own probe array.

Under Perspective, the transient access violates the attacker's DSV (the
secret's frame is owned by the victim's cgroup) and is blocked, killing
the leak at the access step.
"""

from __future__ import annotations

from repro.attacks.base import AttackResult, AttackSetup
from repro.attacks.covert import CovertChannel

#: In-heap offsets where the attacker plants known control bytes for
#: differential recovery (both beyond array1's 64-byte bound).
CONTROL_SLOTS = ((0x300, 0x5C), (0x340, 0xA7))


class SpectreV1ActiveAttack:
    """End-to-end flush+reload Spectre v1 PoC."""

    name = "spectre-v1-active"

    def __init__(self, setup: AttackSetup, syscall: str = "ioctl",
                 mistrain_rounds: int = 6) -> None:
        self.setup = setup
        self.kernel = setup.kernel
        self.syscall = syscall
        self.mistrain_rounds = mistrain_rounds
        # Active attack: the gadget runs in the attacker's kernel thread,
        # so the transmit lands in the attacker's own probe array.
        self.channel = CovertChannel(self.kernel, setup.attacker)
        self._plant_controls()

    def _plant_controls(self) -> None:
        heap = self.setup.attacker.heap_va
        for offset, value in CONTROL_SLOTS:
            pa = self.setup.attacker.aspace.translate(heap + offset)
            self.kernel.memory.store(pa, value)

    def _mistrain(self) -> None:
        """Bias the bounds check toward taken with in-bounds indices."""
        for _ in range(self.mistrain_rounds):
            self.kernel.syscall(self.setup.attacker, self.syscall, args=(1,))

    def _transient_probe(self, index: int) -> frozenset[int]:
        """One mistrain + flush + out-of-bounds call + reload round."""
        self._mistrain()
        self.channel.flush()
        self.kernel.syscall(self.setup.attacker, self.syscall, args=(index,))
        return self.channel.reload().hit_lines()

    def leak_byte(self, target_va: int, attempts: int = 3) -> int | None:
        """Recover the byte at an arbitrary kernel virtual address.

        Retries a few rounds: the first transient touch of a page can die
        to a cold conservative block in the defense's view caches rather
        than to enforcement proper, and attackers simply try again.
        """
        heap = self.setup.attacker.heap_va
        for _ in range(attempts):
            measured = self._transient_probe(target_va - heap)
            for control_off, control_val in CONTROL_SLOTS:
                control = self._transient_probe(control_off)
                byte = self.channel.recover_differential(measured, control)
                if byte is not None:
                    return byte
                # If the secret equals this control byte the sets coincide;
                # a second control slot with a different value disambiguates.
                if measured == control and control_val in measured:
                    return control_val
        return None

    def run(self, scheme_name: str = "unsafe") -> AttackResult:
        """Leak the whole planted secret byte by byte."""
        leaked = bytearray()
        unrecovered = 0
        for i in range(len(self.setup.secret)):
            byte = self.leak_byte(self.setup.secret_va + i)
            if byte is None:
                unrecovered += 1
            else:
                leaked.append(byte)
        return AttackResult(name=self.name, scheme=scheme_name,
                            secret=self.setup.secret, leaked=bytes(leaked),
                            unrecovered=unrecovered)
