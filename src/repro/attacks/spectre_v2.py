"""Spectre v2 (branch target injection) attacks, passive and active.

**Passive** (Figure 4.2): the victim's ``sys_recvfrom`` path leaves a
reference to its own secret in ``r5`` ("Function 1"), then performs an
indirect call through the file-operations pointer table.  The attacker
poisons the BTB entry for that indirect-call site so the victim's kernel
thread transiently executes a driver gadget ("Function 2") that
dereferences ``r5`` -- a speculative type confusion -- and transmits the
byte through the victim's probe array, which the attacker monitors via the
shared cache.

**Active**: the attacker hijacks *its own* indirect call into a gadget
dereferencing the first syscall argument, with ``r0`` set to any kernel VA.

Perspective blocks the passive form with ISVs (the gadget function is in
no view) and the active form with DSVs (the access violates ownership).
"""

from __future__ import annotations

from repro.attacks.base import AttackResult, AttackSetup
from repro.attacks.covert import CovertChannel
from repro.cpu.isa import Op


def find_op_va(func, op_kind: Op, occurrence: int = 0) -> int:
    """VA of the n-th op of a given kind in a function."""
    seen = 0
    for idx, op in enumerate(func.body):
        if op.op is op_kind:
            if seen == occurrence:
                return func.va_of(idx)
            seen += 1
    raise ValueError(f"{func.name} has no {op_kind} #{occurrence}")


class SpectreV2PassiveAttack:
    """BTB poisoning against the victim's fops dispatch site."""

    name = "spectre-v2-passive"

    def __init__(self, setup: AttackSetup,
                 history_collision: bool = False) -> None:
        self.setup = setup
        self.kernel = setup.kernel
        self.history_collision = history_collision
        # The transmit runs in the *victim's* context, so it lands in the
        # victim's probe array; the attacker observes it through the
        # shared cache hierarchy.
        self.channel = CovertChannel(self.kernel, setup.victim)
        image = self.kernel.image
        entry = image.layout["sys_recvfrom"]
        self.hijack_pc = find_op_va(entry, Op.ICALL)
        self.gadget_va = image.layout["xilinx_usb_poc_gadget"].base_va
        # The victim needs an open socket for recvfrom.
        self.victim_fd = self.kernel.syscall(
            setup.victim, "socket", args=(0,)).retval

    def _poison(self) -> None:
        # The injection happens while the attacker's own thread runs
        # (mistraining via colliding branches), so the core's last context
        # is the attacker's -- an IBPB-on-switch deployment flushes the
        # entry when the victim comes back in.
        self.kernel.syscall(self.setup.attacker, "getpid")
        self.kernel.branch_unit.btb.poison(
            self.hijack_pc, self.gadget_va,
            domain="user:attacker" if self.history_collision else "kernel",
            history_collision=self.history_collision)

    def _victim_call(self, byte_index: int) -> None:
        self.kernel.syscall(self.setup.victim, "recvfrom",
                            args=(self.victim_fd, 0, byte_index))

    def leak_byte(self, byte_index: int) -> int | None:
        # Control run (no poisoning): captures the victim's benign cache
        # footprint on the probe lines.
        self.channel.flush()
        self._victim_call(byte_index)
        control = self.channel.reload().hit_lines()
        # Measurement run: poisoned BTB.
        self._poison()
        self.channel.flush()
        self._victim_call(byte_index)
        measured = self.channel.reload().hit_lines()
        return self.channel.recover_differential(measured, control)

    def run(self, scheme_name: str = "unsafe",
            retries: int = 3) -> AttackResult:
        leaked = bytearray()
        unrecovered = 0
        for i in range(len(self.setup.secret)):
            byte = None
            for _ in range(retries):
                # First touches can die to cold conservative blocks in the
                # defense's view caches rather than enforcement; retry.
                byte = self.leak_byte(i)
                if byte is not None:
                    break
            if byte is None:
                unrecovered += 1
            else:
                leaked.append(byte)
        return AttackResult(name=self.name, scheme=scheme_name,
                            secret=self.setup.secret, leaked=bytes(leaked),
                            unrecovered=unrecovered)


class SpectreV2ActiveAttack:
    """BTB poisoning of the attacker's own dispatch site: the hijacked
    gadget dereferences the attacker-chosen syscall argument."""

    name = "spectre-v2-active"

    def __init__(self, setup: AttackSetup) -> None:
        self.setup = setup
        self.kernel = setup.kernel
        self.channel = CovertChannel(self.kernel, setup.attacker)
        image = self.kernel.image
        entry = image.layout["sys_read"]
        self.hijack_pc = find_op_va(entry, Op.ICALL)
        self.gadget_va = image.layout["active_v2_deref_gadget"].base_va
        self.attacker_fd = self.kernel.syscall(
            setup.attacker, "open", args=(0,)).retval

    def _probe_round(self, pointer: int) -> frozenset[int]:
        self.kernel.branch_unit.btb.poison(
            self.hijack_pc, self.gadget_va, domain="kernel")
        self.channel.flush()
        self.kernel.syscall(self.setup.attacker, "read", args=(pointer,))
        return self.channel.reload().hit_lines()

    def leak_byte(self, target_va: int) -> int | None:
        measured = self._probe_round(target_va)
        # Control: point the gadget at an attacker-known byte.
        control_va = self.setup.attacker.heap_va + 0x300
        pa = self.setup.attacker.aspace.translate(control_va)
        self.kernel.memory.store(pa, 0x5C)
        control = self._probe_round(control_va)
        return self.channel.recover_differential(measured, control)

    def run(self, scheme_name: str = "unsafe",
            retries: int = 3) -> AttackResult:
        leaked = bytearray()
        unrecovered = 0
        for i in range(len(self.setup.secret)):
            byte = None
            for _ in range(retries):
                byte = self.leak_byte(self.setup.secret_va + i)
                if byte is not None:
                    break
            if byte is None:
                unrecovered += 1
            else:
                leaked.append(byte)
        return AttackResult(name=self.name, scheme=scheme_name,
                            secret=self.setup.secret, leaked=bytes(leaked),
                            unrecovered=unrecovered)
