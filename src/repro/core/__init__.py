"""Perspective's core: speculation views, DSVMT, hardware view caches,
and the framework binding them to the kernel."""

from repro.core.admin import ApplicationPolicy, ISVAdministrator, ISVChange
from repro.core.audit import AuditOutcome, harden_isv
from repro.core.dsv import DSVRegistry
from repro.core.dsvmt import DSVMT, WALK_LATENCY
from repro.core.framework import Perspective
from repro.core.hardware import (
    HardwareCharacterization,
    ISV_BLOCK_INSTRUCTIONS,
    REFILL_LATENCY,
    ViewCache,
    isv_block_of,
)
from repro.core.isv import ISVPageTable
from repro.core.views import DataSpeculationView, InstructionSpeculationView

__all__ = [
    "ApplicationPolicy",
    "AuditOutcome",
    "ISVAdministrator",
    "ISVChange",
    "DSVMT",
    "DSVRegistry",
    "DataSpeculationView",
    "HardwareCharacterization",
    "ISVPageTable",
    "ISV_BLOCK_INSTRUCTIONS",
    "InstructionSpeculationView",
    "Perspective",
    "REFILL_LATENCY",
    "ViewCache",
    "WALK_LATENCY",
    "harden_isv",
    "isv_block_of",
]
