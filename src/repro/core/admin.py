"""System-administrator ISV management (Section 5.4).

The paper's discussion highlights that the ISV interface "enables system
administrators to install ISVs that could be applied to all or selected
applications" and to respond to new vulnerability disclosures "without
kernel patches and potentially expensive server downtime".  This module is
that operational layer:

* a **global exclusion list** of kernel functions no context may trust
  speculatively (the CVE-response knob) -- applied to every installed view
  and re-applied immediately to all running contexts when extended;
* **application policies** mapping workload names to baseline function
  sets, so fleets can ship one vetted view per application class;
* an **audit trail** recording every view change with its reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.framework import Perspective
from repro.core.views import InstructionSpeculationView


@dataclass(frozen=True)
class ISVChange:
    """One entry of the administrator's audit trail."""

    context_id: int
    action: str  # "install" | "exclude" | "shrink"
    functions_affected: int
    reason: str


@dataclass
class ApplicationPolicy:
    """A fleet-wide baseline view for one application class."""

    name: str
    functions: frozenset[str]
    description: str = ""


class ISVAdministrator:
    """Operational front end over a Perspective framework."""

    def __init__(self, framework: Perspective) -> None:
        self.framework = framework
        self._global_exclusions: set[str] = set()
        self._policies: dict[str, ApplicationPolicy] = {}
        self.audit_trail: list[ISVChange] = []

    # -- application policies -------------------------------------------

    def register_policy(self, policy: ApplicationPolicy) -> None:
        """Register (or replace) a fleet baseline for an application."""
        self._policies[policy.name] = policy

    def policy(self, name: str) -> ApplicationPolicy:
        return self._policies[name]

    def policies(self) -> list[str]:
        return sorted(self._policies)

    # -- installation -----------------------------------------------------

    def install(self, context_id: int, functions: frozenset[str],
                reason: str = "startup",
                source: str = "admin") -> InstructionSpeculationView:
        """Install a view for a context, minus the global exclusions."""
        effective = frozenset(functions) - self._global_exclusions
        isv = InstructionSpeculationView(
            context_id, effective, self.framework.kernel.image.layout,
            source=source)
        self.framework.install_isv(isv)
        self.audit_trail.append(ISVChange(
            context_id=context_id, action="install",
            functions_affected=len(effective), reason=reason))
        return isv

    def install_policy(self, context_id: int, policy_name: str,
                       reason: str = "fleet policy",
                       ) -> InstructionSpeculationView:
        """Install a registered application policy for a context."""
        policy = self._policies[policy_name]
        return self.install(context_id, policy.functions, reason=reason,
                            source=f"admin:{policy_name}")

    # -- incident response ---------------------------------------------------

    def exclude_globally(self, functions: frozenset[str] | set[str],
                         reason: str) -> int:
        """Ban functions from every current and future view.

        Running contexts are re-hardened immediately: their installed
        views shrink in place (hardware entries invalidated by the
        framework), with no kernel patch and no restart.  Returns the
        number of contexts updated.
        """
        new = set(functions) - self._global_exclusions
        self._global_exclusions.update(new)
        updated = 0
        for ctx in self.framework.contexts_with_isvs():
            isv = self.framework.isv_for(ctx)
            overlap = isv.functions & new
            if overlap:
                self.framework.shrink_isv(ctx, overlap)
                updated += 1
            self.audit_trail.append(ISVChange(
                context_id=ctx, action="exclude",
                functions_affected=len(overlap), reason=reason))
        return updated

    @property
    def global_exclusions(self) -> frozenset[str]:
        return frozenset(self._global_exclusions)

    # -- queries ---------------------------------------------------------------

    def contexts(self) -> list[int]:
        return self.framework.contexts_with_isvs()

    def surface_report(self) -> dict[int, int]:
        """Installed view size per context (monitoring hook)."""
        return {ctx: len(self.framework.isv_for(ctx))
                for ctx in self.framework.contexts_with_isvs()}
