"""Enhancing ISVs with auditing results (Sections 5.4, 6.1).

After the gadget scanner (:mod:`repro.scanner`) audits the functions inside
an ISV, every function it flags is excluded, producing the stricter *ISV++*
that blocks all identified gadgets (Table 8.2's 100% column).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.views import InstructionSpeculationView


@dataclass
class AuditOutcome:
    """Result of hardening one ISV with scanner findings."""

    original: InstructionSpeculationView
    hardened: InstructionSpeculationView
    flagged_inside: frozenset[str]

    @property
    def functions_removed(self) -> int:
        return len(self.original) - len(self.hardened)


def harden_isv(isv: InstructionSpeculationView,
               flagged_functions: frozenset[str] | set[str]) -> AuditOutcome:
    """Exclude scanner-flagged functions from an ISV, yielding ISV++.

    Only functions actually inside the ISV matter: everything outside is
    already blocked from speculative execution.
    """
    flagged_inside = frozenset(flagged_functions) & isv.functions
    hardened = isv.shrink(flagged_inside)
    return AuditOutcome(original=isv, hardened=hardened,
                        flagged_inside=flagged_inside)
