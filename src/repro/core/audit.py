"""Enhancing ISVs with auditing results (Sections 5.4, 6.1).

After the gadget scanner (:mod:`repro.scanner`) audits the functions inside
an ISV, every function it flags is excluded, producing the stricter *ISV++*
that blocks all identified gadgets (Table 8.2's 100% column).

Besides the static scanner, the security-event journal
(:mod:`repro.obs.events`) provides a *forensic* hardening source: kernel
functions observed attempting a transient leak during a recorded run can
be excluded from the view at runtime, without a kernel patch (the
incident-response flow of Section 5.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.views import InstructionSpeculationView
from repro.obs.events import EventJournal, SecurityEvent


@dataclass
class AuditOutcome:
    """Result of hardening one ISV with scanner findings."""

    original: InstructionSpeculationView
    hardened: InstructionSpeculationView
    flagged_inside: frozenset[str]

    @property
    def functions_removed(self) -> int:
        return len(self.original) - len(self.hardened)


def harden_isv(isv: InstructionSpeculationView,
               flagged_functions: frozenset[str] | set[str]) -> AuditOutcome:
    """Exclude scanner-flagged functions from an ISV, yielding ISV++.

    Only functions actually inside the ISV matter: everything outside is
    already blocked from speculative execution.
    """
    flagged_inside = frozenset(flagged_functions) & isv.functions
    hardened = isv.shrink(flagged_inside)
    return AuditOutcome(original=isv, hardened=hardened,
                        flagged_inside=flagged_inside)


def forensic_exclusions(journal: EventJournal,
                        kinds: tuple[str, ...] = ("blocked-leak",),
                        min_events: int = 1) -> frozenset[str]:
    """Kernel functions a recorded journal implicates in leak attempts.

    Counts journal events of the given ``kinds`` per kernel function and
    returns every function reaching ``min_events``.  The default -- one
    blocked transient leak is enough -- matches the fail-closed posture:
    a wrong-path load that enforcement had to stop is a gadget sighting,
    not noise.
    """
    tallies: dict[str, int] = {}
    for event in journal.events():
        if event.kind in kinds and event.kernel_fn:
            tallies[event.kernel_fn] = tallies.get(event.kernel_fn, 0) + 1
    return frozenset(fn for fn, count in tallies.items()
                     if count >= min_events)


def harden_isv_from_journal(isv: InstructionSpeculationView,
                            journal: EventJournal,
                            kinds: tuple[str, ...] = ("blocked-leak",),
                            min_events: int = 1) -> AuditOutcome:
    """Harden an ISV from recorded security events instead of the scanner.

    The forensic analogue of :func:`harden_isv`: reconstruct which
    functions hosted blocked leak attempts and exclude them.
    """
    return harden_isv(isv, forensic_exclusions(journal, kinds=kinds,
                                               min_events=min_events))


# ---------------------------------------------------------------------------
# Adaptive escalation / de-escalation (the campaign's runtime policy)
# ---------------------------------------------------------------------------

#: The Perspective flavor ladder, least to most restrictive: a static
#: (analysis-derived) ISV, a dynamic (profiled) ISV, and the
#: scanner/forensics-hardened ISV++.
ESCALATION_LADDER: tuple[str, ...] = ("static", "dynamic", "++")

#: Event kinds that count as leak evidence against a context.
EVIDENCE_KINDS: tuple[str, ...] = ("blocked-leak",)


@dataclass(frozen=True)
class EscalationDecision:
    """One epoch's verdict for one context."""

    context: int
    action: str  #: ``escalate`` | ``deescalate`` | ``hold``
    from_flavor: str
    to_flavor: str
    #: Evidence events attributed to the context this epoch.
    evidence: int
    #: Kernel functions newly implicated this epoch (sorted).
    implicated: tuple[str, ...] = ()
    reason: str = ""

    @property
    def changed(self) -> bool:
        return self.from_flavor != self.to_flavor


@dataclass
class AdaptiveIsvController:
    """Journal-driven Perspective-flavor ladder for one context.

    Escalation (Section 5.4's incident-response flow, made automatic):
    when an epoch's journal slice attributes ``min_events`` or more
    evidence events to the context, the controller climbs one rung of
    :data:`ESCALATION_LADDER` and records the implicated kernel
    functions as **sticky forensic exclusions** -- they are subtracted
    from every view the controller emits for the rest of the campaign,
    at *every* rung.  That stickiness is what makes de-escalation safe:
    a probe back down to a cheaper flavor can never re-admit a function
    that hosted a blocked leak, so a previously blocked leak cannot
    re-open.

    De-escalation is probed, never assumed: after ``probe_after_clean``
    consecutive clean epochs the controller steps one rung down.  If
    evidence reappears while probing, it re-escalates immediately and
    backs off -- the clean-epoch requirement grows by ``backoff_factor``
    plus seeded jitter (string-seeded :class:`random.Random`, so the
    schedule is byte-reproducible and ``PYTHONHASHSEED``-proof).
    """

    context: int
    start_flavor: str = "static"
    kinds: tuple[str, ...] = EVIDENCE_KINDS
    min_events: int = 1
    #: Clean epochs required before the first de-escalation probe.
    probe_after_clean: int = 2
    backoff_factor: int = 2
    max_probe_wait: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if self.start_flavor not in ESCALATION_LADDER:
            raise ValueError(
                f"unknown flavor {self.start_flavor!r}; ladder: "
                f"{ESCALATION_LADDER}")
        self.level = ESCALATION_LADDER.index(self.start_flavor)
        self.exclusions: frozenset[str] = frozenset()
        self.clean_epochs = 0
        self.probe_wait = self.probe_after_clean
        self.probing = False
        self.history: list[EscalationDecision] = []
        self._rng = random.Random(
            f"adaptive:{self.seed}:{self.context}")

    @property
    def flavor(self) -> str:
        return ESCALATION_LADDER[self.level]

    def observe(self, events: list[SecurityEvent],
                alerts: tuple = ()) -> EscalationDecision:
        """Digest one epoch's journal slice; returns the decision.

        Only events of the controller's ``kinds`` attributed to its
        ``context`` count.  ``alerts`` is a second evidence source: SLO
        burn-rate alerts (:class:`repro.obs.slo.SloAlert`) whose
        ``context`` matches the controller's each count as one evidence
        unit alongside the journal events, so a blocked-leak-rate alert
        can trigger escalation even when the raw event slice alone is
        under ``min_events``.  Evidence tallies are order-independent
        (the slice -- and the alert list -- may arrive in any
        permutation), so the decision and the exclusion set are
        invariant under reordering of either source.
        """
        evidence = [e for e in events
                    if e.kind in self.kinds and e.context == self.context]
        alert_evidence = [a for a in alerts if a.context == self.context]
        implicated = frozenset(e.kernel_fn for e in evidence
                               if e.kernel_fn)
        from_flavor = self.flavor
        if len(evidence) + len(alert_evidence) >= self.min_events:
            self.exclusions |= implicated
            self.clean_epochs = 0
            if self.probing:
                # The de-escalation probe failed: re-escalate and back
                # off -- the next probe must wait longer (seeded jitter
                # keeps distinct contexts from probing in lockstep).
                self.probing = False
                self.probe_wait = min(
                    self.max_probe_wait,
                    self.probe_wait * self.backoff_factor
                    + self._rng.randrange(2))
            if self.level < len(ESCALATION_LADDER) - 1:
                self.level += 1
                action = "escalate"
                reason = "leak-evidence" if evidence else "slo-alert"
            else:
                action, reason = "hold", "at-ladder-top"
        else:
            self.probing = False
            self.clean_epochs += 1
            if self.level > 0 and self.clean_epochs >= self.probe_wait:
                self.level -= 1
                self.clean_epochs = 0
                self.probing = True
                action, reason = "deescalate", "clean-probe"
            else:
                action, reason = "hold", "clean"
        decision = EscalationDecision(
            context=self.context, action=action,
            from_flavor=from_flavor, to_flavor=self.flavor,
            evidence=len(evidence) + len(alert_evidence),
            implicated=tuple(sorted(implicated)), reason=reason)
        self.history.append(decision)
        return decision

    def view_functions(self, base_functions: frozenset[str],
                       ) -> frozenset[str]:
        """The function set to install for the current flavor: the
        flavor's base view minus every sticky forensic exclusion."""
        return frozenset(base_functions) - self.exclusions
