"""Enhancing ISVs with auditing results (Sections 5.4, 6.1).

After the gadget scanner (:mod:`repro.scanner`) audits the functions inside
an ISV, every function it flags is excluded, producing the stricter *ISV++*
that blocks all identified gadgets (Table 8.2's 100% column).

Besides the static scanner, the security-event journal
(:mod:`repro.obs.events`) provides a *forensic* hardening source: kernel
functions observed attempting a transient leak during a recorded run can
be excluded from the view at runtime, without a kernel patch (the
incident-response flow of Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.views import InstructionSpeculationView
from repro.obs.events import EventJournal


@dataclass
class AuditOutcome:
    """Result of hardening one ISV with scanner findings."""

    original: InstructionSpeculationView
    hardened: InstructionSpeculationView
    flagged_inside: frozenset[str]

    @property
    def functions_removed(self) -> int:
        return len(self.original) - len(self.hardened)


def harden_isv(isv: InstructionSpeculationView,
               flagged_functions: frozenset[str] | set[str]) -> AuditOutcome:
    """Exclude scanner-flagged functions from an ISV, yielding ISV++.

    Only functions actually inside the ISV matter: everything outside is
    already blocked from speculative execution.
    """
    flagged_inside = frozenset(flagged_functions) & isv.functions
    hardened = isv.shrink(flagged_inside)
    return AuditOutcome(original=isv, hardened=hardened,
                        flagged_inside=flagged_inside)


def forensic_exclusions(journal: EventJournal,
                        kinds: tuple[str, ...] = ("blocked-leak",),
                        min_events: int = 1) -> frozenset[str]:
    """Kernel functions a recorded journal implicates in leak attempts.

    Counts journal events of the given ``kinds`` per kernel function and
    returns every function reaching ``min_events``.  The default -- one
    blocked transient leak is enough -- matches the fail-closed posture:
    a wrong-path load that enforcement had to stop is a gadget sighting,
    not noise.
    """
    tallies: dict[str, int] = {}
    for event in journal.events():
        if event.kind in kinds and event.kernel_fn:
            tallies[event.kernel_fn] = tallies.get(event.kernel_fn, 0) + 1
    return frozenset(fn for fn, count in tallies.items()
                     if count >= min_events)


def harden_isv_from_journal(isv: InstructionSpeculationView,
                            journal: EventJournal,
                            kinds: tuple[str, ...] = ("blocked-leak",),
                            min_events: int = 1) -> AuditOutcome:
    """Harden an ISV from recorded security events instead of the scanner.

    The forensic analogue of :func:`harden_isv`: reconstruct which
    functions hosted blocked leak attempts and exclude them.
    """
    return harden_isv(isv, forensic_exclusions(journal, kinds=kinds,
                                               min_events=min_events))
