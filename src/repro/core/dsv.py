"""DSV ownership tracking driven by allocator events (Sections 5.2, 6.1).

The :class:`DSVRegistry` is the OS-side source of truth: the buddy
allocator's ownership hooks report every (first_frame, count, owner) event,
and the registry maintains the frame -> owning-context map plus the
per-context :class:`DataSpeculationView` objects and DSVMT trees the
hardware consults.

Frames that never flow through the hooked allocators (boot-reserved global
data, per-cpu areas) are *unknown*: they belong to no DSV, and Perspective
conservatively blocks speculation on them (Section 6.1, "Resolving Unknown
Allocations").
"""

from __future__ import annotations

from repro.core.dsvmt import DSVMT
from repro.core.views import DataSpeculationView
from repro.kernel.buddy import BuddyAllocator
from repro.obs import events as ev
from repro.reliability.faultplane import fire


class DSVRegistry:
    """Frame-ownership registry feeding the per-context DSVs and DSVMTs."""

    def __init__(self) -> None:
        self._frame_owner: dict[int, int] = {}
        self._views: dict[int, DataSpeculationView] = {}
        self._dsvmts: dict[int, DSVMT] = {}
        self.assign_events = 0
        self.release_events = 0
        #: Assignment events lost to fault injection.  Dropping an assign
        #: is fail-closed (the frames stay unknown, outside every view);
        #: release events are never droppable -- they are processed
        #: transactionally with the free, since losing one would leave a
        #: stale owner behind.
        self.dropped_assign_events = 0

    # -- allocator hooks -------------------------------------------------

    def on_alloc(self, first_frame: int, count: int,
                 owner: int | None) -> None:
        if owner is None:
            return  # unowned allocation: stays outside every DSV
        if fire("dsv-assign-drop"):
            # Lost ownership event: the frames surface as *unknown* (no
            # DSV), so speculation on them is conservatively blocked for
            # every context, including the rightful owner.
            self.dropped_assign_events += 1
            ev.emit("dsv-assign-drop", context=owner,
                    reason=f"frames:{count}")
            return
        view = self.view_for(owner)
        dsvmt = self.dsvmt_for(owner)
        for frame in range(first_frame, first_frame + count):
            self._frame_owner[frame] = owner
            view.frames.add(frame)
            dsvmt.set_page(frame, True)
        self.assign_events += 1

    def on_free(self, first_frame: int, count: int,
                owner: int | None) -> None:
        if owner is None:
            return
        view = self._views.get(owner)
        dsvmt = self._dsvmts.get(owner)
        for frame in range(first_frame, first_frame + count):
            self._frame_owner.pop(frame, None)
            if view is not None:
                view.frames.discard(frame)
            if dsvmt is not None:
                dsvmt.set_page(frame, False)
        self.release_events += 1

    def attach(self, buddy: BuddyAllocator) -> None:
        """Hook the buddy allocator's ownership events."""
        buddy.on_alloc = self.on_alloc
        buddy.on_free = self.on_free

    # -- queries -----------------------------------------------------------

    def view_for(self, context_id: int) -> DataSpeculationView:
        view = self._views.get(context_id)
        if view is None:
            view = DataSpeculationView(context_id)
            self._views[context_id] = view
        return view

    def dsvmt_for(self, context_id: int) -> DSVMT:
        dsvmt = self._dsvmts.get(context_id)
        if dsvmt is None:
            dsvmt = DSVMT(context_id)
            self._dsvmts[context_id] = dsvmt
        return dsvmt

    def owner_of(self, frame: int) -> int | None:
        """Owning context of a frame, or None for unknown memory."""
        return self._frame_owner.get(frame)

    def frame_owners(self) -> dict[int, int]:
        """Snapshot of the frame -> owner map (audit/invariant checks)."""
        return dict(self._frame_owner)

    def frame_in_view(self, frame: int, context_id: int) -> bool:
        """The DSV check: does ``context_id`` own this frame?

        Unknown frames (no owner) are outside every view, so speculation on
        them is conservatively blocked.
        """
        return self._frame_owner.get(frame) == context_id

    def contexts(self) -> list[int]:
        return list(self._views)

    def owned_frames(self) -> int:
        return len(self._frame_owner)
