"""The Data Speculation View Metadata Table (Section 6.2).

A per-context three-level tree, walked in parallel to the TLB, supporting
the three contemporary page sizes (4 KB, 2 MB, 1 GB).  Each leaf entry is a
single bit: whether the 4 KB page belongs to the context's DSV.  Interior
entries can short-circuit a walk when an aligned 2 MB / 1 GB region is
uniformly inside the view (huge-page promotion).

The hardware keeps a small DSVMT cache (see
:class:`repro.core.hardware.ViewCache`); on a cache miss, rather than
stalling for the walk, Perspective conservatively blocks speculation and
refills in the background.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import events as ev
from repro.reliability.faultplane import DSVMTWalkFault, fire

#: Frames per level-2 entry (2 MB / 4 KB).
L2_SPAN = 512
#: Frames per level-1 entry (1 GB / 4 KB).
L1_SPAN = 512 * 512

#: Cycles for a full three-level walk (miss path, charged by the policy).
WALK_LATENCY = 30.0


@dataclass
class DSVMTStats:
    walks: int = 0
    leaf_lookups: int = 0
    huge_hits: int = 0  # walks answered at the 2MB/1GB level
    walk_faults: int = 0  # fault-injected aborted walks

    def as_metrics(self, prefix: str):
        """(name, value) pairs for the observability collectors."""
        yield f"{prefix}.walks", self.walks
        yield f"{prefix}.leaf_lookups", self.leaf_lookups
        yield f"{prefix}.huge_hits", self.huge_hits
        yield f"{prefix}.walk_faults", self.walk_faults


class DSVMT:
    """Three-level bit tree over physical frames for one context."""

    def __init__(self, context_id: int) -> None:
        self.context_id = context_id
        # Leaf bits: frame -> True (present means in-view).
        self._leaf: set[int] = set()
        # Population counts per interior entry, for promotion checks.
        self._l2_count: dict[int, int] = {}
        self._l1_count: dict[int, int] = {}
        self.stats = DSVMTStats()

    def set_page(self, frame: int, in_view: bool) -> None:
        """Set or clear the leaf bit for a 4 KB frame."""
        if in_view:
            if frame in self._leaf:
                return
            self._leaf.add(frame)
            delta = 1
        else:
            if frame not in self._leaf:
                return
            self._leaf.discard(frame)
            delta = -1
        l2 = frame // L2_SPAN
        l1 = frame // L1_SPAN
        self._l2_count[l2] = self._l2_count.get(l2, 0) + delta
        self._l1_count[l1] = self._l1_count.get(l1, 0) + delta
        if self._l2_count[l2] == 0:
            del self._l2_count[l2]
        if self._l1_count[l1] == 0:
            del self._l1_count[l1]

    def lookup(self, frame: int) -> bool:
        """Walk the tree for one frame (the hardware's miss path).

        Raises :class:`DSVMTWalkFault` when the fault plane aborts the
        walk; the enforcement policy must fence the load and install no
        cache entry (fail-closed).
        """
        self.stats.walks += 1
        if fire("dsvmt-walk-fail"):
            self.stats.walk_faults += 1
            ev.emit_here("dsvmt-walk", reason="fault")
            raise DSVMTWalkFault(
                f"injected DSVMT walk failure (context {self.context_id}, "
                f"frame {frame})")
        l1 = frame // L1_SPAN
        if self._l1_count.get(l1, 0) == L1_SPAN:
            self.stats.huge_hits += 1
            ev.emit_here("dsvmt-walk", reason="huge-hit")
            return True  # whole 1 GB region in view
        l2 = frame // L2_SPAN
        count = self._l2_count.get(l2, 0)
        if count == L2_SPAN:
            self.stats.huge_hits += 1
            ev.emit_here("dsvmt-walk", reason="huge-hit")
            return True  # whole 2 MB region in view
        if count == 0:
            ev.emit_here("dsvmt-walk", reason="empty")
            return False  # interior entry empty: no leaf can be set
        self.stats.leaf_lookups += 1
        ev.emit_here("dsvmt-walk", reason="leaf")
        return frame in self._leaf

    def frames(self) -> frozenset[int]:
        """All leaf frames currently in view (audit/invariant checks)."""
        return frozenset(self._leaf)

    def __contains__(self, frame: int) -> bool:
        return frame in self._leaf

    def __len__(self) -> int:
        return len(self._leaf)

    @property
    def walk_latency(self) -> float:
        return WALK_LATENCY
