"""The Perspective framework: wiring speculation views into the OS.

``Perspective`` binds a :class:`~repro.kernel.kernel.MiniKernel` to the
view machinery:

* attaches the :class:`~repro.core.dsv.DSVRegistry` to the kernel's buddy
  allocator (replaying any pre-existing allocations), so every owned frame
  lands in its context's DSV and DSVMT;
* holds the per-context ISVs (installed at "application startup" by the
  static/dynamic generators of :mod:`repro.analysis`) and their
  demand-populated bitmap pages;
* owns the hardware ISV/DSV caches shared with the enforcement policy.

The pliable interface of the paper is exactly this object: the OS adjusts
views at runtime (install, shrink, exclude vulnerable functions) and the
hardware policy consults them on every speculative load.
"""

from __future__ import annotations

from repro.core.dsv import DSVRegistry
from repro.core.hardware import ViewCache
from repro.core.isv import ISVPageTable
from repro.core.views import InstructionSpeculationView
from repro.kernel.kernel import MiniKernel


class Perspective:
    """Framework instance bound to one kernel."""

    def __init__(self, kernel: MiniKernel, *,
                 isv_cache_entries: int = 128,
                 dsv_cache_entries: int = 128,
                 cache_ways: int = 4) -> None:
        self.kernel = kernel
        self.dsv_registry = DSVRegistry()
        self.dsv_registry.attach(kernel.buddy)
        # Replay allocations made before the framework attached (processes
        # created during early boot).
        for first_frame, order, owner in kernel.buddy.allocations():
            self.dsv_registry.on_alloc(first_frame, 1 << order, owner)
        self._isvs: dict[int, InstructionSpeculationView] = {}
        self._isv_pages: dict[int, ISVPageTable] = {}
        #: Bumped on every view installation/replacement.  Policy-side
        #: memoization of per-context view objects (PerspectivePolicy)
        #: keys its validity on this counter, so a shrunken or replaced
        #: view takes effect on the very next speculative load.
        self.view_epoch = 0
        self.isv_cache = ViewCache("isv", entries=isv_cache_entries,
                                   ways=cache_ways)
        self.dsv_cache = ViewCache("dsv", entries=dsv_cache_entries,
                                   ways=cache_ways)

    # -- ISV management ---------------------------------------------------

    def install_isv(self, isv: InstructionSpeculationView) -> None:
        """Install (or replace) the ISV of ``isv.context_id``.

        Replacement invalidates the context's hardware ISV-cache entries
        and bitmap pages, so a shrunken view takes effect immediately --
        the paper's no-downtime gadget patching (Section 5.4).
        """
        self._isvs[isv.context_id] = isv
        self._isv_pages[isv.context_id] = ISVPageTable(
            isv, self.kernel.image.layout)
        self.isv_cache.invalidate_asid(isv.context_id)
        self.view_epoch += 1

    def isv_for(self, context_id: int) -> InstructionSpeculationView | None:
        return self._isvs.get(context_id)

    def isv_pages_for(self, context_id: int) -> ISVPageTable | None:
        return self._isv_pages.get(context_id)

    def shrink_isv(self, context_id: int,
                   remove: frozenset[str] | set[str]) -> InstructionSpeculationView:
        """Tighten a context's ISV at runtime (Section 5.4)."""
        isv = self._isvs[context_id]
        stricter = isv.shrink(remove)
        self.install_isv(stricter)
        return stricter

    def contexts_with_isvs(self) -> list[int]:
        return list(self._isvs)

    # -- DSV queries --------------------------------------------------------

    def frame_in_dsv(self, frame: int, context_id: int) -> bool:
        return self.dsv_registry.frame_in_view(frame, context_id)

    def reset_hardware(self) -> None:
        """Flush the view caches (e.g. between benchmark runs)."""
        self.isv_cache.flush()
        self.dsv_cache.flush()
        self.isv_cache.stats.reset()
        self.dsv_cache.stats.reset()
