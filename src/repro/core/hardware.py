"""Perspective's hardware structures: the ISV and DSV caches (Section 6.2).

Both are 128-entry, 32-set, 4-way set-associative caches located near the
pipeline (Table 7.1).  Entries are tagged with the context id (the ASID
analogue), so context switches need no flush.  On a miss the hardware
conservatively blocks speculation for the querying instruction and refills
the entry; thanks to the small kernel working set both caches hit ~99% of
the time (Section 9.2).

* The **ISV cache** is indexed by instruction VA; an entry caches the ISV
  bits for one aligned block of instructions (one 64-byte line of the ISV
  bitmap page covers 512 instruction slots).
* The **DSV cache** is indexed by data page frame; an entry caches the
  DSVMT leaf bit for one 4 KB page.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import OP_SIZE
from repro.obs import events as ev
from repro.reliability.faultplane import fire

#: Instructions covered by one ISV cache entry (64 B of bitmap = 512 bits).
ISV_BLOCK_INSTRUCTIONS = 512
ISV_BLOCK_BYTES = ISV_BLOCK_INSTRUCTIONS * OP_SIZE

#: Cycles to refill a view-cache entry (bitmap line fetch via the TLB path).
REFILL_LATENCY = 20.0


@dataclass
class ViewCacheStats:
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    #: Fault-injected misses: lookups forced to miss by the fault plane.
    injected_misses: int = 0
    #: Fault-injected parity drops: matched entries discarded as stale.
    stale_drops: int = 0
    #: Fault-injected refill aborts: fills dropped before installing.
    refill_faults: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = self.misses = self.fills = self.evictions = 0
        self.injected_misses = self.stale_drops = self.refill_faults = 0

    def as_metrics(self, prefix: str):
        """(name, value) pairs for the observability collectors."""
        yield f"{prefix}.hits", self.hits
        yield f"{prefix}.misses", self.misses
        yield f"{prefix}.fills", self.fills
        yield f"{prefix}.evictions", self.evictions
        yield f"{prefix}.injected_misses", self.injected_misses
        yield f"{prefix}.stale_drops", self.stale_drops
        yield f"{prefix}.refill_faults", self.refill_faults
        yield f"{prefix}.hit_rate", self.hit_rate


class ViewCache:
    """ASID-tagged set-associative cache of view bits.

    Keys are opaque block identifiers (ISV: instruction-VA block; DSV:
    page frame).  The cached payload is the in-view bit for that block
    granule; ``lookup`` returns the cached bit on a hit and ``None`` on a
    miss (caller blocks conservatively and calls ``fill``).

    Two fault points model degraded hardware fail-closed: a *forced miss*
    makes the lookup miss regardless of contents, and a *stale* fault
    models a parity error on the matched entry -- the hardware discards
    the entry and reports a miss rather than serving a possibly-corrupt
    bit.  Either way the caller blocks; a faulted lookup can never permit.
    """

    def __init__(self, name: str, entries: int = 128, ways: int = 4) -> None:
        if entries % ways != 0:
            raise ValueError("entries must divide by ways")
        self.name = name
        self.entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        # Each set: list of (tag, bit) ordered MRU-first.
        self._sets: list[list[tuple[tuple[int, int], bool]]] = [
            [] for _ in range(self.num_sets)]
        self.stats = ViewCacheStats()
        registered = name in ("isv", "dsv")
        self._miss_fault = f"{name}-cache-forced-miss" if registered else None
        self._stale_fault = f"{name}-cache-stale" if registered else None

    def _set_index(self, key: int) -> int:
        return key % self.num_sets

    def lookup(self, asid: int, key: int) -> bool | None:
        """Cached in-view bit for (asid, key), or None on miss."""
        if self._miss_fault is not None and fire(self._miss_fault):
            self.stats.injected_misses += 1
            self.stats.misses += 1
            return None
        ways = self._sets[self._set_index(key)]
        tag = (asid, key)
        for i, (entry_tag, bit) in enumerate(ways):
            if entry_tag == tag:
                if self._stale_fault is not None and fire(self._stale_fault):
                    # Parity fault on the matched entry: drop it and miss.
                    ways.pop(i)
                    self.stats.stale_drops += 1
                    self.stats.misses += 1
                    return None
                self.stats.hits += 1
                if i != 0:
                    ways.insert(0, ways.pop(i))
                return bit
        self.stats.misses += 1
        return None

    def fill(self, asid: int, key: int, bit: bool) -> None:
        if self._miss_fault is not None and fire("view-refill-fault"):
            # The refill aborted (bitmap-line fetch fault).  The querying
            # load was already conservatively blocked on the miss, so the
            # only safe move is to install *nothing*: the next access
            # re-misses and re-pays the refill rather than ever serving a
            # possibly-corrupt view bit.
            self.stats.refill_faults += 1
            ev.emit_here("fault-fallback",
                         reason=f"{self.name}-refill-dropped")
            return
        ways = self._sets[self._set_index(key)]
        tag = (asid, key)
        for i, (entry_tag, _) in enumerate(ways):
            if entry_tag == tag:
                ways.pop(i)
                break
        else:
            if len(ways) >= self.ways:
                ways.pop()
                self.stats.evictions += 1
        ways.insert(0, (tag, bit))
        self.stats.fills += 1

    def invalidate_asid(self, asid: int) -> int:
        """Drop every entry of one context (used when its view changes);
        returns the number of entries dropped."""
        dropped = 0
        for ways in self._sets:
            before = len(ways)
            ways[:] = [(tag, bit) for tag, bit in ways if tag[0] != asid]
            dropped += before - len(ways)
        return dropped

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()

    def resident(self) -> int:
        return sum(len(ways) for ways in self._sets)


def isv_block_of(inst_va: int) -> int:
    """ISV-cache key for an instruction VA."""
    return inst_va // ISV_BLOCK_BYTES


@dataclass(frozen=True)
class HardwareCharacterization:
    """CACTI-style figures for one structure (Table 9.1)."""

    name: str
    area_mm2: float
    access_time_ps: float
    dynamic_energy_pj: float
    leakage_power_mw: float
