"""ISV bitmap pages: the OS-side backing store of ISVs (Figure 6.1a).

Each kernel code page has a companion ISV page at a fixed VA offset holding
one bit per instruction slot.  Pages are populated *on demand*: the first
ISV-cache miss touching a code page triggers population from the context's
function-granularity view.  This keeps setup cost proportional to the code
actually executed, not the kernel size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import CodeLayout, OP_SIZE
from repro.core.views import InstructionSpeculationView
from repro.kernel.layout import ISV_PAGE_OFFSET, PAGE_SIZE


@dataclass
class ISVPageStats:
    populated_pages: int = 0
    bit_queries: int = 0


class ISVPageTable:
    """Demand-populated ISV bitmap pages for one context's ISV."""

    def __init__(self, isv: InstructionSpeculationView,
                 layout: CodeLayout) -> None:
        self.isv = isv
        self.layout = layout
        self._pages: dict[int, list[bool]] = {}  # code page no -> bits
        self.stats = ISVPageStats()

    @staticmethod
    def isv_page_va(code_va: int) -> int:
        """VA of the ISV page shadowing the code page of ``code_va``."""
        return (code_va & ~(PAGE_SIZE - 1)) + ISV_PAGE_OFFSET

    def _populate(self, code_page: int) -> list[bool]:
        base_va = code_page * PAGE_SIZE
        slots = PAGE_SIZE // OP_SIZE
        bits = [self.isv.contains_va(base_va + i * OP_SIZE)
                for i in range(slots)]
        self._pages[code_page] = bits
        self.stats.populated_pages += 1
        return bits

    def bit_for(self, inst_va: int) -> bool:
        """The ISV bit for one instruction (populating its page if new)."""
        self.stats.bit_queries += 1
        code_page = inst_va // PAGE_SIZE
        bits = self._pages.get(code_page)
        if bits is None:
            bits = self._populate(code_page)
        return bits[(inst_va % PAGE_SIZE) // OP_SIZE]

    def is_populated(self, inst_va: int) -> bool:
        return inst_va // PAGE_SIZE in self._pages

    def populated_pages(self) -> int:
        return len(self._pages)

    def invalidate(self) -> None:
        """Drop all populated pages (after the ISV is reconfigured)."""
        self._pages.clear()
