"""Speculation views: the paper's central abstraction (Section 5.1).

A *speculation view* is associated with an execution context (process /
container / cgroup) and communicates the OS's security requirements to the
hardware protection mechanism:

* a :class:`DataSpeculationView` defines the set of kernel data the context
  *owns*; speculative access outside it is blocked (mitigates **active**
  attacks);
* an :class:`InstructionSpeculationView` defines the set of kernel code the
  context trusts for speculative execution; transmitter instructions
  outside it are blocked (mitigates **passive** attacks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.isa import CodeLayout
from repro.obs import events as ev


@dataclass
class DataSpeculationView:
    """The set of physical frames owned by one execution context.

    Maintained by :class:`repro.core.dsv.DSVRegistry` from allocator
    ownership events; this object is the per-context materialization.
    """

    context_id: int
    frames: set[int] = field(default_factory=set)

    def __contains__(self, frame: int) -> bool:
        return frame in self.frames

    def __len__(self) -> int:
        return len(self.frames)


class InstructionSpeculationView:
    """The set of kernel functions a context trusts speculatively.

    Defined at function granularity (the paper's simplification in Section
    5.1); enforcement happens per instruction through the ISV bitmap pages
    and the layout's address resolution.

    ISVs are *dynamically reconfigurable* (Section 5.4): :meth:`shrink`
    produces a stricter view, e.g. to exclude newly-discovered vulnerable
    functions without a kernel patch.
    """

    def __init__(self, context_id: int, functions: frozenset[str],
                 layout: CodeLayout, source: str = "static") -> None:
        self.context_id = context_id
        self.functions = frozenset(functions)
        self.layout = layout
        self.source = source
        unknown = [f for f in self.functions if f not in layout]
        if unknown:
            raise ValueError(f"ISV references unknown functions: "
                             f"{sorted(unknown)[:5]}")

    def __contains__(self, function_name: str) -> bool:
        return function_name in self.functions

    def __len__(self) -> int:
        return len(self.functions)

    def contains_va(self, inst_va: int) -> bool:
        """Whether the instruction at ``inst_va`` belongs to the view."""
        resolved = self.layout.resolve_va(inst_va)
        if resolved is None:
            return False
        func, _ = resolved
        return func.name in self.functions

    def shrink(self, remove: frozenset[str] | set[str],
               source_suffix: str = "++") -> "InstructionSpeculationView":
        """Return a stricter ISV excluding ``remove`` (runtime tightening)."""
        removed = frozenset(remove) & self.functions
        ev.emit("isv-shrink", context=self.context_id,
                reason=f"removed:{len(removed)}", scheme=self.source)
        return InstructionSpeculationView(
            self.context_id, self.functions - frozenset(remove),
            self.layout, source=self.source + source_suffix)

    def surface_reduction(self, total_functions: int) -> float:
        """Fraction of kernel functions this ISV removes from the
        speculatively-executable surface (Table 8.1's metric)."""
        if total_functions == 0:
            return 0.0
        return 1.0 - len(self.functions) / total_functions
