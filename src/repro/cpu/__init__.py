"""CPU substrate: micro-op ISA, caches, branch prediction, and the
out-of-order pipeline with behavioural transient execution."""

from repro.cpu.branch import (
    BranchTargetBuffer,
    BranchUnit,
    ConditionalPredictor,
    RSBConfig,
    ReturnStackBuffer,
)
from repro.cpu.cache import AccessResult, CacheHierarchy, SetAssociativeCache
from repro.cpu.isa import (
    AluOp,
    CodeLayout,
    Function,
    MicroOp,
    Op,
    OP_SIZE,
    REGISTERS,
)
from repro.cpu.memsys import TLB, AddressSpace, MainMemory, PageFault
from repro.cpu.pipeline import (
    ExecResult,
    ExecutionContext,
    LoadDecision,
    LoadQuery,
    Pipeline,
    PipelineConfig,
    SpeculationPolicy,
)

__all__ = [
    "AccessResult",
    "AddressSpace",
    "AluOp",
    "BranchTargetBuffer",
    "BranchUnit",
    "CacheHierarchy",
    "CodeLayout",
    "ConditionalPredictor",
    "ExecResult",
    "ExecutionContext",
    "Function",
    "LoadDecision",
    "LoadQuery",
    "MainMemory",
    "MicroOp",
    "Op",
    "OP_SIZE",
    "PageFault",
    "Pipeline",
    "PipelineConfig",
    "REGISTERS",
    "RSBConfig",
    "ReturnStackBuffer",
    "SetAssociativeCache",
    "SpeculationPolicy",
    "TLB",
]
