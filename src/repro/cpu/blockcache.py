"""Basic-block trace memoization ("block JIT") for the micro-op interpreter.

The pipeline's per-micro-op dispatch loop is the global hot path: every
serve request, grid cell and attack PoC pays Python-level fetch/decode
/issue bookkeeping for each op (ROADMAP open item 1).  This module removes
that overhead for the committed, non-speculative common case by compiling
each function's *basic blocks* -- maximal straight-line runs of {ALU,
LOAD, STORE, FLUSH, NOP} ops, optionally absorbing a trailing BR/JMP
terminator -- into one specialized Python **region function** per kernel
function.  Every operand, virtual address, instruction-cache line and
latency constant is baked in as a literal, and an in-frame ``while``
dispatcher chains block to block (loop back-edges included) without
returning to the interpreter, so a spin loop executes entirely inside one
Python frame.  Control returns to the interpreter only at ops the region
does not compile (CALL/ICALL/IJMP/RET/FENCE/KRET) or when a per-block
replay guard fails.

Two code-generation tiers exist:

* **deep** (the default against the stock subsystem models): TLB lookup,
  L1/L2 cache probes and fills, main-memory reads/writes, the conditional
  predictor, the in-flight-prediction prune and the kernel direct-map
  translation fast path are all inlined into the generated source, so a
  replayed op performs no Python calls at all on its common path.  Within
  a block, register values and scoreboard ready-times are forwarded
  through locals and dead intermediate dictionary writes are elided
  (the architectural dictionaries always hold the final state at every
  point an outside observer -- the interpreter, the transient executor,
  a fault path -- can look).
* **call-based** (fallback): when a pipeline is built from subclassed or
  non-standard subsystem models, blocks call the same bound methods the
  interpreter does.  Deep eligibility is decided per pipeline by exact
  subsystem type (see :meth:`BlockCache._deep_eligible`).

Exactness contract
------------------

A compiled block performs *the same float operations in the same order*
as the interpreter (including the per-op ``clock += base_cpi``
accumulation, TLB/cache side effects, ROB occupancy checks and scoreboard
updates), so architectural state **and cycle counts** are byte-identical
to the interpreter -- the conformance oracle enforces this across the
corpus.  Replay of a block containing loads is only attempted when
speculation cannot interfere:

* under a *passive* policy (the UNSAFE baseline) with no event journal
  active, the generated load path reproduces the interpreter's fast path
  bit-for-bit, including STT-style taint bookkeeping, so blocks replay
  regardless of in-flight predictions; or
* under any other policy, only when every in-flight prediction has
  already resolved (``max(unresolved) <= clock``), which makes every load
  in the block architecturally non-speculative -- the policy's
  ``check_load`` is never consulted by the interpreter on that path, so
  skipping it is exact for *every* scheme.

Blocks without loads carry no speculation-sensitive semantics at all
(stores and flushes never consult the prediction window in this model)
and replay unconditionally.

Invalidation
------------

Compiled code is keyed on body content: the decode-table staleness key
(body identity, ``body.version``, ``base_va``; see
:class:`repro.cpu.isa.BodyList`) invalidates region indexes whenever a
body is mutated, re-placed, or ``invalidate_decode()`` is called.
Memoized *blocks* are additionally armed per-block on a
speculation-environment epoch -- (policy generation, ISV/DSV view epoch,
fault-plane arming generation, journal presence).  A freshly compiled
region's token slots hold the :data:`COLD` sentinel, so each block's
first execution re-interprets once (a *cold* miss, tiered-JIT style)
before its slot is armed with the live token.  When any epoch component
changes (``install_isv``/``shrink_isv`` bump the view epoch,
``faultplane.inject`` bumps the arming generation, ``set_policy`` bumps
the policy generation), the next execution of *each* armed block
re-interprets once (an *epoch-invalidation* miss, also counted in
``invalidations``) before that block's token slot is re-armed.

Counter conservation: ``hits + misses == block executions +
uncompilable-function entries`` -- every time control reaches a leader
whose block is compiled, exactly one of the two counters is bumped
(in-region replays count hits; guard or token stops hand the block back
to the interpreter and count one miss), and entering a function with no
compilable blocks while the cache is armed counts one *uncompilable*
miss.  Misses are further split by reason (:data:`MISS_REASONS`) with
``sum(miss_reasons.values()) == misses``; the pipeline attributes them
per tenant x scheme x kernel function for the serve dashboard.
"""

from __future__ import annotations

import hashlib

from repro.cpu.branch import ConditionalPredictor
from repro.cpu.cache import CacheHierarchy, SetAssociativeCache
from repro.cpu.isa import AluOp, DecodedBody, Function, MicroOp, Op
from repro.cpu.memsys import MainMemory, PageFault, TLB
from repro.obs import events as ev
from repro.reliability import faultplane

#: Ops a block may contain in its straight-line body.
_STRAIGHT = frozenset((Op.ALU, Op.LOAD, Op.STORE, Op.FLUSH, Op.NOP))

#: Ops that end a block.  BR and JMP are *absorbed* (compiled as the
#: block's terminator); the rest are left to the interpreter.
_TERMINATORS = frozenset((Op.BR, Op.JMP, Op.CALL, Op.ICALL, Op.IJMP,
                          Op.RET, Op.FENCE, Op.KRET))

_U64 = (1 << 64) - 1

#: Region stop codes (the last element of a region's return tuple).
STOP_EXIT = 0    # reached an op the region does not compile
STOP_GUARD = 1   # replay guard failed (speculation window)
STOP_STALE = 2   # the block's epoch token slot is stale (or cold)
STOP_BUDGET = 3  # remaining max_ops budget too small for the block

#: Token slots of a freshly compiled region are armed with this
#: sentinel: each block's *first* arrival token-mismatches and
#: re-interprets once (a "cold" miss, tiered-JIT style) before
#: :meth:`CompiledRegion.arm` installs the live epoch token.  The run
#: loop distinguishes cold misses from epoch invalidations by checking
#: the slot for this sentinel before re-arming.
COLD = object()

#: Miss-reason taxonomy (attribution keys used by the pipeline):
#: ``cold`` (first arrival of a compiled block), ``spec-guard``
#: (in-flight speculation refused load replay), ``op-budget``
#: (remaining committed-op budget smaller than the block),
#: ``epoch-invalidation`` (policy/view/fault/journal epoch bumped) and
#: ``uncompilable`` (run entry / CALL / ICALL / IJMP into a function
#: with no compilable blocks while the cache was armed; returns into a
#: caller are not re-counted).
MISS_REASONS = ("cold", "spec-guard", "op-budget", "epoch-invalidation",
                "uncompilable")


def run_epoch(pipeline) -> tuple:
    """The speculation-environment epoch a run's block arming keys on."""
    policy = pipeline.policy
    framework = getattr(policy, "framework", None)
    view_epoch = getattr(framework, "view_epoch", 0)
    return (pipeline._policy_gen, view_epoch, faultplane.generation(),
            ev.active_journal() is not None)


def block_leaders(body: list[MicroOp]) -> set[int]:
    """Leader indices: op 0, every op after a terminator, branch targets."""
    leaders = {0}
    limit = len(body)
    for index, op in enumerate(body):
        kind = op.op
        if kind in _TERMINATORS:
            leaders.add(index + 1)
            if kind in (Op.BR, Op.JMP) and 0 <= op.target <= limit:
                leaders.add(op.target)
    return leaders


def block_spans(body: list[MicroOp],
                leaders: set[int] | None = None,
                ) -> list[tuple[int, int, Op | None]]:
    """Compilable spans ``(start, straight_end, terminator_kind)``.

    ``start .. straight_end`` is the straight-line run;
    ``terminator_kind`` is :data:`Op.BR`/:data:`Op.JMP` when the
    terminator at ``straight_end`` is absorbed into the block, else None.
    """
    if leaders is None:
        leaders = block_leaders(body)
    limit = len(body)
    spans = []
    for start in sorted(leaders):
        if start >= limit:
            continue
        end = start
        while end < limit and body[end].op in _STRAIGHT \
                and (end == start or end not in leaders):
            end += 1
        term = None
        if end < limit and (end == start or end not in leaders):
            kind = body[end].op
            if kind in (Op.BR, Op.JMP):
                term = kind
        if end == start and term is None:
            continue  # nothing compilable at this leader
        spans.append((start, end, term))
    return spans


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------


def _alu_expr(op: MicroOp, read) -> str:
    """The interpreter's ``_alu_eval`` as an inline expression.

    ``read(reg, strict)`` yields the source expression for a register
    value (a forwarded local or a ``regs`` dictionary access).
    """
    kind = op.alu_op
    if kind is AluOp.LI:
        return repr(op.imm)
    a = read(op.src1, False)
    if kind is AluOp.MOV:
        return a
    b = read(op.src2, False) if op.src2 is not None else repr(op.imm)
    if kind is AluOp.ADD:
        return f"{a} + {b}"
    if kind is AluOp.SUB:
        return f"{a} - {b}"
    if kind is AluOp.AND:
        return f"{a} & {b}"
    if kind is AluOp.OR:
        return f"{a} | {b}"
    if kind is AluOp.XOR:
        return f"{a} ^ {b}"
    if kind is AluOp.SHL:
        return f"{a} << ({b} & 63)"
    if kind is AluOp.SHR:
        return f"{a} >> ({b} & 63)"
    if kind is AluOp.MUL:
        return f"{a} * {b}"
    if kind is AluOp.CMPLT:
        return f"1 if {a} < {b} else 0"
    if kind is AluOp.CMPLTU:
        return f"1 if ({a} & {_U64}) < ({b} & {_U64}) else 0"
    if kind is AluOp.CMPEQ:
        return f"1 if {a} == {b} else 0"
    raise ValueError(f"unknown ALU op: {kind}")


class _SegmentWriter:
    """Source emitter with in-block register value/ready-time forwarding.

    Registers written earlier in the block are read through locals rather
    than the ``regs``/``reg_ready`` dictionaries, and only the *last*
    write of each register materializes the dictionary entry -- sound in
    straight-line code because nothing outside the generated ops can
    observe the dictionaries mid-block (the transient executor only runs
    at the BR terminator, after every final write has been emitted;
    ``taint_until`` is never forwarded or deferred since its del/set
    protocol is consulted per op).
    """

    def __init__(self, last_write: dict[str, int], base: int) -> None:
        self.lines: list[str] = []
        self.val: dict[str, str] = {}  # reg -> forwarded value local
        self.rdy: dict[str, str] = {}  # reg -> forwarded ready-time local
        self.last_write = last_write
        self.base = base

    def emit(self, line: str, depth: int = 0) -> None:
        self.lines.append("    " * (self.base + depth) + line)

    def read(self, reg: str, strict: bool) -> str:
        local = self.val.get(reg)
        if local is not None:
            return local
        return f"regs[{reg!r}]" if strict else f"regs.get({reg!r}, 0)"

    def emit_readiness(self, reg: str, depth: int = 0) -> None:
        """``t = max(t, reg_ready[reg])`` via the forwarded local if any."""
        local = self.rdy.get(reg)
        if local is not None:
            self.emit(f"if {local} > t:", depth)
            self.emit(f"t = {local}", depth + 1)
        else:
            self.emit(f"_x = reg_ready.get({reg!r})", depth)
            self.emit("if _x is not None and _x > t:", depth)
            self.emit("t = _x", depth + 1)

    def emit_write(self, j: int, reg: str, value_local: str,
                   ready_local: str, depth: int = 0) -> None:
        """Record a register write; the dictionaries are updated only at
        the register's final write in the block."""
        if self.last_write[reg] == j:
            self.emit(f"regs[{reg!r}] = {value_local}", depth)
            self.emit(f"reg_ready[{reg!r}] = {ready_local}", depth)
        self.val[reg] = value_local
        self.rdy[reg] = ready_local


def _emit_fetch(w: _SegmentWriter, consts: dict, va: int, line: int,
                entry: bool) -> None:
    """Instruction fetch at a cache-line boundary.

    ``entry`` guards on the runtime incoming line; interior boundaries
    are static and always fetch.  The deep tier inlines the L1I/L2 probe
    and fill; stats/LRU/fill side effects match ``access_inst`` exactly.
    """
    depth = 0
    if entry:
        w.emit(f"if {line} != last_fetch_line:")
        depth = 1
    w.emit("facc[0] += 1", depth)
    if not consts["deep"]:
        w.emit(f"_f = _ai({va})", depth)
        w.emit("if not _f.l1_hit:", depth)
        w.emit(f"_s = _f.latency - {consts['l1_latency']}", depth + 1)
        w.emit("clock += _s", depth + 1)
        w.emit("facc[1] += _s", depth + 1)
        return
    ln_i = va // consts["l1i_line"]
    ln_2 = va // consts["l2_line"]
    stall_l2 = consts["stall_l2"]
    stall_dram = consts["stall_dram"]
    w.emit(f"_w = _i1w[{ln_i % consts['l1i_sets']}]", depth)
    w.emit(f"if {ln_i} in _w:", depth)
    w.emit("_i1s.hits += 1", depth + 1)
    w.emit(f"if _w[0] != {ln_i}:", depth + 1)
    w.emit(f"_w.remove({ln_i})", depth + 2)
    w.emit(f"_w.insert(0, {ln_i})", depth + 2)
    w.emit("else:", depth)
    w.emit("_i1s.misses += 1", depth + 1)
    w.emit(f"_w2 = _l2w[{ln_2 % consts['l2_sets']}]", depth + 1)
    w.emit(f"if {ln_2} in _w2:", depth + 1)
    w.emit("_l2s.hits += 1", depth + 2)
    w.emit(f"if _w2[0] != {ln_2}:", depth + 2)
    w.emit(f"_w2.remove({ln_2})", depth + 3)
    w.emit(f"_w2.insert(0, {ln_2})", depth + 3)
    w.emit(f"clock += {stall_l2}", depth + 2)
    w.emit(f"facc[1] += {stall_l2}", depth + 2)
    w.emit("else:", depth + 1)
    w.emit("_l2s.misses += 1", depth + 2)
    w.emit(f"if len(_w2) >= {consts['l2_ways']}:", depth + 2)
    w.emit("_w2.pop()", depth + 3)
    w.emit("_l2s.evictions += 1", depth + 3)
    w.emit(f"_w2.insert(0, {ln_2})", depth + 2)
    w.emit("_l2s.fills += 1", depth + 2)
    w.emit(f"clock += {stall_dram}", depth + 2)
    w.emit(f"facc[1] += {stall_dram}", depth + 2)
    # L1I fill: the line just missed L1I, so membership is known-false.
    w.emit(f"if len(_w) >= {consts['l1i_ways']}:", depth + 1)
    w.emit("_w.pop()", depth + 2)
    w.emit("_i1s.evictions += 1", depth + 2)
    w.emit(f"_w.insert(0, {ln_i})", depth + 1)
    w.emit("_i1s.fills += 1", depth + 1)


def _emit_translate(w: _SegmentWriter, src_expr: str, imm: int,
                    depth: int = 0) -> None:
    """``pa`` for ``src + imm``, or -1 on an architectural page fault.

    The direct-map window check mirrors the first test of the kernel
    address space's ``translate`` (``DIRECT_MAP_LO``/``HI`` are published
    by address spaces whose direct-map translation is side-effect-free);
    everything else -- including the (1, 0) sentinel window of address
    spaces without the fast path -- falls back to the bound method.
    """
    w.emit(f"va = {src_expr} + {imm}", depth)
    w.emit("if _dml <= va < _dmh:", depth)
    w.emit("pa = va - _dml", depth + 1)
    w.emit("else:", depth)
    w.emit("try:", depth + 1)
    w.emit("pa = translate(va)", depth + 2)
    w.emit("except _PF:", depth + 1)
    w.emit("pa = -1", depth + 2)


def _emit_tlb(w: _SegmentWriter, consts: dict, charge: bool,
              depth: int = 0) -> None:
    """Inline ``tlb.access(va)``: LRU + stats; ``charge`` adds the miss
    penalty to ``t`` (stores run the access at zero timing weight)."""
    w.emit("_pg = va >> 12", depth)
    w.emit("if _pg in _tl:", depth)
    w.emit("_ts.hits += 1", depth + 1)
    w.emit("if _tl[0] != _pg:", depth + 1)
    w.emit("_tl.remove(_pg)", depth + 2)
    w.emit("_tl.insert(0, _pg)", depth + 2)
    w.emit("else:", depth)
    w.emit("_ts.misses += 1", depth + 1)
    w.emit(f"if len(_tl) >= {consts['tlb_entries']}:", depth + 1)
    w.emit("_tl.pop()", depth + 2)
    w.emit("_tl.insert(0, _pg)", depth + 1)
    if charge:
        w.emit(f"t += {consts['tlb_penalty']}", depth + 1)


def _emit_spec_prune(w: _SegmentWriter, depth: int = 0) -> None:
    """Inline ``_spec_until``: ``su`` = latest unresolved prediction
    after ``t`` (0.0 if none), pruning resolved entries.  The scan
    allocates nothing in the common no-prune case; when entries have
    resolved, a second order-preserving pass rebuilds the list -- the
    same final contents the interpreter's single filtering pass leaves.
    """
    w.emit("if unresolved:", depth)
    w.emit("su = 0.0", depth + 1)
    w.emit("_np = 0", depth + 1)
    w.emit("for _r in unresolved:", depth + 1)
    w.emit("if _r > t:", depth + 2)
    w.emit("if _r > su:", depth + 3)
    w.emit("su = _r", depth + 4)
    w.emit("else:", depth + 2)
    w.emit("_np += 1", depth + 3)
    w.emit("if _np:", depth + 1)
    w.emit("unresolved[:] = [_r for _r in unresolved if _r > t]",
           depth + 2)
    w.emit("else:", depth)
    w.emit("su = 0.0", depth + 1)


def _emit_spec_prune_call(w: _SegmentWriter, depth: int = 0) -> None:
    """Call-based fallback for the unresolved-prediction prune."""
    w.emit("if unresolved:", depth)
    w.emit("su = _spec(unresolved, t)", depth + 1)
    w.emit("else:", depth)
    w.emit("su = 0.0", depth + 1)


def _emit_l1d_fill(w: _SegmentWriter, consts: dict, known_absent: bool,
                   depth: int = 0) -> None:
    """Inline ``l1d.fill(pa)`` over the precomputed ``_ln``/``_w``."""
    if known_absent:
        w.emit(f"if len(_w) >= {consts['l1d_ways']}:", depth)
        w.emit("_w.pop()", depth + 1)
        w.emit("_d1s.evictions += 1", depth + 1)
    else:
        w.emit("if _ln in _w:", depth)
        w.emit("_w.remove(_ln)", depth + 1)
        w.emit(f"elif len(_w) >= {consts['l1d_ways']}:", depth)
        w.emit("_w.pop()", depth + 1)
        w.emit("_d1s.evictions += 1", depth + 1)
    w.emit("_w.insert(0, _ln)", depth)
    w.emit("_d1s.fills += 1", depth)


def _emit_segment(body: list[MicroOp], dec: DecodedBody, start: int,
                  end: int, term: Op | None, consts: dict, slot: int,
                  first: bool) -> list[str]:
    """Emit one ``if idx == <leader>:`` arm of the region dispatcher."""
    deep = consts["deep"]
    cpi = repr(float(consts["base_cpi"]))
    rob_entries = int(consts["rob_entries"])
    br_latency = repr(float(consts["branch_resolve_latency"]))
    stt_lag = repr(float(consts["stt_resolution_lag"]))
    penalty = repr(float(consts["mispredict_penalty"]))

    last = end - 1 if term is None else end
    n_ops = last - start + 1
    last_write: dict[str, int] = {}
    has_loads = False
    for j in range(start, last + 1):
        op = body[j]
        if op.op in (Op.ALU, Op.LOAD):
            last_write[op.dst] = j
        if op.op is Op.LOAD:
            has_loads = True

    # Arm header + replay guards live one level up from the block body.
    w = _SegmentWriter(last_write, base=3)
    emit = w.emit
    emit(f"{'if' if first else 'elif'} idx == {start}:")
    emit(f"if _tks[{slot}] is not _tk:", 1)
    emit(f"_stop = {STOP_STALE}", 2)
    emit("break", 2)
    emit(f"if _rem < {n_ops}:", 1)
    emit(f"_stop = {STOP_BUDGET}", 2)
    emit("break", 2)
    if has_loads:
        emit("if not _fr and unresolved and max(unresolved) > clock:", 1)
        emit(f"_stop = {STOP_GUARD}", 2)
        emit("break", 2)
    emit("_hits += 1", 1)

    w.base = 4  # block body depth
    n_loads = 0
    for j in range(start, last + 1):
        op = body[j]
        emit(f"clock += {cpi}")
        # Fetch: line boundaries are static within a straight run; only
        # the entry op needs a runtime check against the incoming line.
        if j == start:
            _emit_fetch(w, consts, dec.vas[j], dec.lines[j], entry=True)
        elif dec.lines[j] != dec.lines[j - 1]:
            _emit_fetch(w, consts, dec.vas[j], dec.lines[j], entry=False)
        emit(f"if len(rob) >= {rob_entries}:")
        emit("_h = rob_popleft()", 1)
        emit("if _h > clock:", 1)
        emit("clock = _h", 2)

        kind = op.op
        if kind is Op.ALU:
            vloc, yloc = f"_v{j}", f"_y{j}"
            reads = dec.reads[j]
            if reads:
                emit("t = clock")
                for src in reads:
                    w.emit_readiness(src)
                t_expr = "t"
            else:
                t_expr = "clock"
            emit(f"{vloc} = {_alu_expr(op, w.read)}")
            emit(f"{yloc} = {t_expr} + 1.0")
            # Taint propagation, specialized on source arity.  Stored
            # taints are always positive resolve times, so ``taint > t``
            # (t >= 0) reduces to presence + magnitude of the source
            # taints and the ``taint = 0.0`` accumulator is not needed.
            emit("if taint_until:")
            if not reads:
                emit(f"if {op.dst!r} in taint_until:", 1)
                emit(f"del taint_until[{op.dst!r}]", 2)
            else:
                emit(f"_x = taint_until.get({reads[0]!r})", 1)
                for src in reads[1:]:
                    emit(f"_x2 = taint_until.get({src!r})", 1)
                    emit("if _x2 is not None and"
                         " (_x is None or _x2 > _x):", 1)
                    emit("_x = _x2", 2)
                emit(f"if _x is not None and _x > {t_expr}:", 1)
                emit(f"taint_until[{op.dst!r}] = _x", 2)
                emit(f"elif {op.dst!r} in taint_until:", 1)
                emit(f"del taint_until[{op.dst!r}]", 2)
            w.emit_write(j, op.dst, vloc, yloc)
            emit(f"rob_append({yloc})")

        elif kind is Op.LOAD:
            n_loads += 1
            vloc, yloc = f"_v{j}", f"_y{j}"
            emit("t = clock")
            w.emit_readiness(op.src1)
            _emit_translate(w, w.read(op.src1, True), op.imm)
            emit("if pa < 0:")
            # Committed-path fault: fixed-cost, reads zero (guard path);
            # the interpreter's fault arm touches no taint state.
            emit(f"{vloc} = 0", 1)
            emit(f"{yloc} = t + 50.0", 1)
            emit("else:")
            if deep:
                _emit_tlb(w, consts, charge=True, depth=1)
                _emit_spec_prune(w, depth=1)
                emit(f"_ln = pa // {consts['l1d_line']}", 1)
                emit(f"_w = _d1w[_ln % {consts['l1d_sets']}]", 1)
                emit("if _ln in _w:", 1)
                emit("_d1s.hits += 1", 2)
                emit("if _w[0] != _ln:", 2)
                emit("_w.remove(_ln)", 3)
                emit("_w.insert(0, _ln)", 3)
                emit(f"{yloc} = t + {consts['lat_l1']}", 2)
                emit("else:", 1)
                emit("_d1s.misses += 1", 2)
                if consts["l2_line"] == consts["l1d_line"]:
                    emit(f"_w2 = _l2w[_ln % {consts['l2_sets']}]", 2)
                    l2tag = "_ln"
                else:  # pragma: no cover - stock geometry shares the line
                    emit(f"_l2 = pa // {consts['l2_line']}", 2)
                    emit(f"_w2 = _l2w[_l2 % {consts['l2_sets']}]", 2)
                    l2tag = "_l2"
                emit(f"if {l2tag} in _w2:", 2)
                emit("_l2s.hits += 1", 3)
                emit(f"if _w2[0] != {l2tag}:", 3)
                emit(f"_w2.remove({l2tag})", 4)
                emit(f"_w2.insert(0, {l2tag})", 4)
                emit(f"{yloc} = t + {consts['lat_l2']}", 3)
                emit("else:", 2)
                emit("_l2s.misses += 1", 3)
                emit(f"if len(_w2) >= {consts['l2_ways']}:", 3)
                emit("_w2.pop()", 4)
                emit("_l2s.evictions += 1", 4)
                emit(f"_w2.insert(0, {l2tag})", 3)
                emit("_l2s.fills += 1", 3)
                emit(f"{yloc} = t + {consts['lat_dram']}", 3)
                _emit_l1d_fill(w, consts, known_absent=True, depth=2)
                emit("_x = _md.get(pa)", 1)
                emit(f"{vloc} = _x if _x is not None"
                     f" else (pa * 2654435761) & 255", 1)
            else:
                emit("t += _tlb(va)", 1)
                _emit_spec_prune_call(w, depth=1)
                emit("_acc = _ad(pa)", 1)
                emit(f"{vloc} = _ml(pa)", 1)
                emit(f"{yloc} = t + _acc.latency", 1)
            emit("if su > 0.0:", 1)
            # Speculative: replay only reaches here under a passive
            # policy (whose fast path this reproduces exactly) -- under
            # any other policy the region guard forces su == 0.0.
            emit("result.speculative_loads += 1", 2)
            emit(f"_st = taint_until.get({op.src1!r}, 0.0)", 2)
            emit(f"taint_until[{op.dst!r}] = su if su >= _st else _st", 2)
            emit(f"elif {op.dst!r} in taint_until:", 1)
            emit(f"del taint_until[{op.dst!r}]", 2)
            w.emit_write(j, op.dst, vloc, yloc)
            emit(f"rob_append({yloc})")

        elif kind is Op.STORE:
            emit("t = clock")
            for src in dec.reads[j]:
                w.emit_readiness(src)
            _emit_translate(w, w.read(op.src1, True), op.imm)
            emit("if pa >= 0:")
            if deep:
                # The zero-weight TLB access still updates TLB LRU/stats.
                _emit_tlb(w, consts, charge=False, depth=1)
                emit(f"_md[pa] = {w.read(op.src2, True)} & {_U64}", 1)
                emit(f"_ln = pa // {consts['l1d_line']}", 1)
                emit(f"_w = _d1w[_ln % {consts['l1d_sets']}]", 1)
                _emit_l1d_fill(w, consts, known_absent=False, depth=1)
            else:
                emit("clock += _tlb(va) * 0.0", 1)
                emit(f"_ms(pa, {w.read(op.src2, True)})", 1)
                emit("_fill(pa)", 1)
            emit("rob_append(t + 1.0)")

        elif kind is Op.FLUSH:
            _emit_translate(w, w.read(op.src1, True), op.imm)
            emit("if pa >= 0:")
            emit("_fd(pa)", 1)
            emit("rob_append(clock)")

        elif kind is Op.NOP:
            emit("rob_append(clock)")

        elif kind is Op.JMP:
            emit("rob_append(clock)")

        elif kind is Op.BR:
            pc = dec.vas[j]
            cond = w.read(op.src1, True)
            if deep:
                bi = (pc >> 2) % consts["bp_table"]
                emit(f"_c = _bc.get({bi}, {consts['bp_weak']})")
                emit(f"_actual = {cond} != 0")
            else:
                emit("_cond = _bu.conditional")
                emit(f"_pred = _cond.predict({pc})")
                emit(f"_actual = {cond} != 0")
            emit("t = clock")
            w.emit_readiness(op.src1)
            emit(f"resolve = t + {br_latency}")
            emit("if _stt:")
            emit(f"_tt = taint_until.get({op.src1!r}, 0.0)", 1)
            emit("if _tt > 0.0:", 1)
            emit(f"_d = _tt + {stt_lag}", 2)
            emit("if _d > resolve:", 2)
            emit("resolve = _d", 3)

            def mispredict(pred_taken: bool, depth: int) -> None:
                wrong = op.target if pred_taken else j + 1
                emit("result.mispredictions += 1", depth)
                emit(f"_rt(func, {wrong}, regs, unresolved, clock,"
                     " resolve, context, translate, result,"
                     " taint_until=taint_until)", depth)
                emit(f"clock = resolve + {penalty}", depth)

            if deep:
                # predict = counter >= 2; the update's saturating write
                # happens before the outcome comparison, as interpreted.
                emit("if _actual:")
                emit(f"_bc[{bi}] = _c + 1 if _c < 3 else 3", 1)
                emit(f"if _c >= {consts['bp_weak']}:", 1)
                emit("unresolved.append(resolve)", 2)
                emit("else:", 1)
                mispredict(pred_taken=False, depth=2)
                emit("else:")
                emit(f"_bc[{bi}] = _c - 1 if _c > 0 else 0", 1)
                emit(f"if _c >= {consts['bp_weak']}:", 1)
                mispredict(pred_taken=True, depth=2)
                emit("else:", 1)
                emit("unresolved.append(resolve)", 2)
            else:
                emit(f"_cond.update({pc}, _actual)")
                emit("if _pred == _actual:")
                emit("unresolved.append(resolve)", 1)
                emit("else:")
                emit("result.mispredictions += 1", 1)
                emit(f"_rt(func, {op.target} if _pred else {j + 1}, regs,"
                     " unresolved, clock, resolve, context, translate,"
                     " result, taint_until=taint_until)", 1)
                emit(f"clock = resolve + {penalty}", 1)
            emit("rob_append(resolve)")

        else:  # pragma: no cover - spans never include other kinds
            raise ValueError(f"uncompilable op in block: {kind}")

    emit(f"result.committed_ops += {n_ops}")
    if n_loads:
        emit(f"result.loads += {n_loads}")
    emit(f"_rem -= {n_ops}")
    emit(f"last_fetch_line = {dec.lines[last]}")
    if term is Op.BR:
        emit(f"idx = {body[end].target} if _actual else {end + 1}")
    elif term is Op.JMP:
        emit(f"idx = {body[end].target}")
    else:
        emit(f"idx = {end}")
    return w.lines


def generate_source(body: list[MicroOp], dec: DecodedBody,
                    spans: list[tuple[int, int, Op | None]],
                    consts: dict) -> str:
    """Generate the ``make_region`` factory source for one function.

    The region function holds every compiled block of the function as an
    arm of an in-frame dispatcher, so chains of blocks -- loop back-edges
    included -- replay without returning to the interpreter.  The emitted
    code replicates the interpreter's per-op semantics *exactly*: same
    float additions in the same order, same cache/TLB side effects.  (All
    timing quantities in this model are multiples of 0.25 far below
    2**50, so every float addition is exact and replay order equivalence
    is bit-for-bit.)  The factory closes over the pipeline's bound
    subsystem state; one compiled code object is shareable across
    pipelines with identical configuration.
    """
    out = [
        "def make_region(_ai, _ad, _tlb, _ml, _ms, _fill, _fd, _spec,"
        " _rt, _bu, _PF,",
        "                _i1w, _i1s, _d1w, _d1s, _l2w, _l2s, _tl, _ts,"
        " _md, _bc):",
        "    def region(regs, reg_ready, taint_until, unresolved, rob,"
        " clock, last_fetch_line, result, translate, facc, func,"
        " context, _stt, _dml, _dmh, idx, _fr, _mc, _tks, _tk):",
        "        rob_append = rob.append",
        "        rob_popleft = rob.popleft",
        "        _hits = 0",
        f"        _stop = {STOP_EXIT}",
        "        _rem = _mc - result.committed_ops",
        "        while True:",
    ]
    for slot, (start, end, term) in enumerate(spans):
        out.extend(_emit_segment(body, dec, start, end, term, consts,
                                 slot, first=slot == 0))
    out.append("            else:")
    out.append("                break")
    out.append("        return clock, idx, last_fetch_line, _hits, _stop")
    out.append("    return region")
    return "\n".join(out) + "\n"


#: Compiled code objects shared process-wide, keyed by source digest --
#: identical source is identical behaviour, so the content hash of the
#: generated code *is* the content hash of the region.
_CODE_CACHE: dict[str, object] = {}

#: Generated source shared process-wide, so short-lived pipelines over a
#: shared image (e.g. one kernel per serve cell) do not re-run codegen
#: for the same functions.  Keyed by function identity, decode version,
#: placement, and the baked-in config constants; the value pins a strong
#: reference to the function so its ``id`` can never be reused while the
#: entry lives.  Grows with the set of distinct compiled functions, like
#: ``_CODE_CACHE``.
_SOURCE_CACHE: dict[tuple, tuple[object, str]] = {}


def _factory_for(source: str, digest: str):
    code = _CODE_CACHE.get(digest)
    if code is None:
        code = compile(source, f"<region:{digest[:12]}>", "exec")
        _CODE_CACHE[digest] = code
    namespace: dict = {}
    exec(code, namespace)
    return namespace["make_region"]


class CompiledRegion:
    """One function's compiled blocks behind an in-frame dispatcher.

    ``tokens`` holds one epoch-token slot per block (indexed by
    ``slot_of[leader]``); a block replays only while its slot matches the
    run's current token, preserving per-block invalidation semantics.
    """

    __slots__ = ("fn", "tokens", "slot_of", "digest", "n_blocks")

    def __init__(self, fn, leaders: list[int], digest: str) -> None:
        self.fn = fn
        # Armed COLD: every block's first arrival re-interprets once
        # (a cold miss) before arm() installs the live epoch token.
        self.tokens = [COLD] * len(leaders)
        self.slot_of = {leader: slot for slot, leader in enumerate(leaders)}
        self.digest = digest
        self.n_blocks = len(leaders)

    def arm(self, leader: int, token) -> None:
        """Re-arm one block's slot after its cold or post-invalidation
        re-interpretation."""
        self.tokens[self.slot_of[leader]] = token


class BlockCache:
    """Per-pipeline block JIT: compiled regions + hit/miss stats.

    Compiled code objects are shared process-wide (content-hashed);
    the per-pipeline state is the binding of subsystem methods (cache
    hierarchy, TLB, memory, predictor, transient executor) plus the
    per-function region indexes and the epoch token that arms blocks.
    """

    def __init__(self, pipeline) -> None:
        self.pipeline = pipeline
        hierarchy = pipeline.hierarchy
        deep = self._deep_eligible()
        self._bindings = (
            hierarchy.access_inst, hierarchy.access_data,
            pipeline.tlb.access, pipeline.memory.load,
            pipeline.memory.store, hierarchy.l1d.fill,
            hierarchy.flush_data, pipeline._spec_until,
            pipeline._run_transient, pipeline.branch_unit, PageFault,
        ) + ((
            hierarchy.l1i._sets, hierarchy.l1i.stats,
            hierarchy.l1d._sets, hierarchy.l1d.stats,
            hierarchy.l2._sets, hierarchy.l2.stats,
            pipeline.tlb._lru, pipeline.tlb.stats,
            pipeline.memory._data,
            pipeline.branch_unit.conditional._counters,
        ) if deep else (None,) * 10)
        self._bound: dict[str, object] = {}
        self._indexes: dict[str, tuple] = {}
        self._epoch: tuple | None = None
        self._cfg_key: tuple | None = None
        self._token: object = object()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.compiled_blocks = 0
        self.compiled_functions = 0
        #: Misses split by :data:`MISS_REASONS` key; the pipeline run
        #: loop accumulates per-run dicts into this (conservation:
        #: ``sum(miss_reasons.values()) == misses``).
        self.miss_reasons: dict[str, int] = {}

    # -- epoch / config validity ---------------------------------------

    def _deep_eligible(self) -> bool:
        """Deep inlining requires the stock subsystem models: inlined
        semantics are transcribed from exactly these classes, so any
        subclass (or an enabled prefetcher, whose fills the deep data
        path does not replicate) falls back to call-based blocks."""
        p = self.pipeline
        h = p.hierarchy
        return (type(h) is CacheHierarchy
                and type(h.l1i) is SetAssociativeCache
                and type(h.l1d) is SetAssociativeCache
                and type(h.l2) is SetAssociativeCache
                and type(p.tlb) is TLB
                and type(p.memory) is MainMemory
                and type(p.branch_unit.conditional) is ConditionalPredictor)

    def _consts(self) -> dict:
        cfg = self.pipeline.config
        h = self.pipeline.hierarchy
        consts = {
            "base_cpi": cfg.base_cpi,
            "rob_entries": cfg.rob_entries,
            "l1_latency": h.L1_LATENCY,
            "branch_resolve_latency": cfg.branch_resolve_latency,
            "stt_resolution_lag": cfg.stt_resolution_lag,
            "mispredict_penalty": cfg.mispredict_penalty,
            "deep": self._deep_eligible() and not h.prefetcher,
        }
        if consts["deep"]:
            tlb = self.pipeline.tlb
            predictor = self.pipeline.branch_unit.conditional
            consts.update(
                l1i_line=h.l1i.line_bytes, l1i_sets=h.l1i.num_sets,
                l1i_ways=h.l1i.ways,
                l1d_line=h.l1d.line_bytes, l1d_sets=h.l1d.num_sets,
                l1d_ways=h.l1d.ways,
                l2_line=h.l2.line_bytes, l2_sets=h.l2.num_sets,
                l2_ways=h.l2.ways,
                lat_l1=h.L1_LATENCY,
                lat_l2=h.L1_LATENCY + h.L2_LATENCY,
                lat_dram=h.L1_LATENCY + h.L2_LATENCY + h.DRAM_LATENCY,
                stall_l2=h.L2_LATENCY,
                stall_dram=h.L2_LATENCY + h.DRAM_LATENCY,
                tlb_entries=tlb.entries, tlb_penalty=tlb.miss_penalty,
                bp_table=type(predictor).TABLE_SIZE,
                bp_weak=type(predictor).WEAKLY_TAKEN,
            )
        return consts

    def refresh(self, epoch: tuple) -> object:
        """Arm the cache for one run; returns the current epoch token.

        A changed epoch mints a new token: every compiled block still
        carrying the old token in its slot re-interprets once
        (invalidation + miss) before being re-armed.  A changed
        *pipeline config* invalidates the compiled code itself
        (constants are baked in).
        """
        # Insertion order of _consts() is fixed by its construction, so
        # the items tuple is a stable identity -- no sort needed on this
        # per-run path.
        cfg_key = tuple(self._consts().items())
        if cfg_key != self._cfg_key:
            self._cfg_key = cfg_key
            self._indexes.clear()
        if epoch != self._epoch:
            self._epoch = epoch
            self._token = object()
        return self._token

    # -- compilation ---------------------------------------------------

    def index_for(self, func: Function) -> dict[int, CompiledRegion]:
        """The region index for ``func``, rebuilt when its decode is
        stale.

        The fast path is identity + version + placement checks only --
        this runs on every CALL/ICALL/RET transition, so it must not
        rebuild (or even re-key) the decode tables.
        """
        entry = self._indexes.get(func.name)
        if entry is not None:
            body = func.body
            if entry[0] is body and entry[1] == getattr(body, "version", -1) \
                    and entry[2] == func.base_va:
                return entry[3]
        dec = func.decoded()
        index = self._compile_function(func, dec)
        # func.body read *after* decoded(): it may have re-wrapped a
        # plain-list body into a version-tracked BodyList.
        self._indexes[func.name] = (func.body, dec.version, dec.base_va,
                                    index)
        return index

    def _bind(self, source: str):
        digest = hashlib.sha256(source.encode()).hexdigest()
        fn = self._bound.get(digest)
        if fn is None:
            fn = _factory_for(source, digest)(*self._bindings)
            self._bound[digest] = fn
        return digest, fn

    def _compile_function(self, func: Function,
                          dec: DecodedBody) -> dict[int, CompiledRegion]:
        body = func.body
        spans = block_spans(body)
        if not spans:
            return {}
        cfg_key = self._cfg_key if self._cfg_key is not None \
            else tuple(self._consts().items())
        src_key = (id(func), dec.version, dec.base_va, cfg_key)
        cached = _SOURCE_CACHE.get(src_key)
        if cached is None:
            source = generate_source(body, dec, spans, self._consts())
            _SOURCE_CACHE[src_key] = (func, source)
        else:
            source = cached[1]
        digest, fn = self._bind(source)
        leaders = [start for start, _end, _term in spans]
        region = CompiledRegion(fn, leaders, digest)
        self.compiled_blocks += len(leaders)
        self.compiled_functions += 1
        return {leader: region for leader in leaders}
