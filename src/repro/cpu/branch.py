"""Branch prediction structures: conditional predictor, BTB, and RSB.

These structures are *shared across execution contexts on a core*, which is
precisely what the speculative control-flow hijacking attacks exploit:

* Spectre v1 mistrains the conditional predictor at a victim branch PC.
* Spectre v2 poisons a BTB entry so a victim indirect branch speculatively
  jumps to an attacker-chosen gadget.
* Spectre RSB poisons/underflows the return stack buffer so a victim
  ``ret`` speculatively returns to a gadget.
* BHI steers the indexing history so hardware isolation (eIBRS) picks an
  attacker-controlled target despite tagging.
* Retbleed makes deep-call-stack ``ret`` instructions fall back to the BTB,
  bypassing retpoline.

The models are small but mechanically faithful: mistraining really changes
the prediction the pipeline follows.
"""

from __future__ import annotations

from dataclasses import dataclass


class ConditionalPredictor:
    """A table of 2-bit saturating counters indexed by branch PC.

    Stands in for the L-TAGE predictor of Table 7.1: what matters for the
    attacks and the FENCE-style defenses is that (a) repeated outcomes bias
    the prediction and (b) the structure is shared between attacker and
    victim system calls on the same core.  The table is large enough that
    distinct branches rarely alias -- mistraining works through the *same*
    branch PC with attacker-chosen inputs, as in the original Spectre v1.
    """

    TABLE_SIZE = 1 << 20
    WEAKLY_TAKEN = 2

    def __init__(self) -> None:
        self._counters: dict[int, int] = {}

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.TABLE_SIZE

    def predict(self, pc: int) -> bool:
        """Predict taken (True) / not-taken (False) for the branch at pc."""
        return self._counters.get(self._index(pc), self.WEAKLY_TAKEN) >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        counter = self._counters.get(idx, self.WEAKLY_TAKEN)
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counters[idx] = counter

    def reset(self) -> None:
        self._counters.clear()

    def metrics(self):
        """(name, value) pairs for the observability collectors."""
        yield "branch.cond.entries", len(self._counters)
        yield "branch.cond.taken_biased", sum(
            1 for counter in self._counters.values() if counter >= 2)


class BranchTargetBuffer:
    """Direct-mapped BTB for indirect call/jump targets.

    ``hardware_isolation`` models eIBRS-style tagging: entries installed by
    one privilege domain are not used by another.  The BHI attack bypasses
    this isolation by colliding on branch history, modeled by the
    ``history_collision`` flag on :meth:`poison`.
    """

    ENTRIES = 4096

    def __init__(self, hardware_isolation: bool = False) -> None:
        self.hardware_isolation = hardware_isolation
        # index -> (target_va, domain, via_history_collision)
        self._entries: dict[int, tuple[int, str, bool]] = {}

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.ENTRIES

    def predict(self, pc: int, domain: str) -> int | None:
        entry = self._entries.get(self._index(pc))
        if entry is None:
            return None
        target, entry_domain, via_history = entry
        if self.hardware_isolation and entry_domain != domain and not via_history:
            # eIBRS: cross-domain entries are not consumed...
            return None
        # ...unless the attacker collided on branch history (BHI).
        return target

    def install(self, pc: int, target: int, domain: str) -> None:
        """Record an observed indirect-branch target (normal training)."""
        self._entries[self._index(pc)] = (target, domain, False)

    def poison(self, pc: int, target: int, domain: str,
               history_collision: bool = False) -> None:
        """Attacker-controlled entry injection (Spectre v2 / BHI)."""
        self._entries[self._index(pc)] = (target, domain, history_collision)

    def reset(self) -> None:
        self._entries.clear()

    def metrics(self):
        """(name, value) pairs for the observability collectors."""
        yield "branch.btb.entries", len(self._entries)
        yield "branch.btb.history_collisions", sum(
            1 for _, _, via_history in self._entries.values() if via_history)


@dataclass
class RSBConfig:
    """Return stack buffer behaviour knobs.

    ``btb_fallback_on_underflow`` models the Retbleed-vulnerable behaviour:
    when the RSB underflows (deep call stacks), the return predictor falls
    back to the BTB, which the attacker can poison even through retpolines.
    """

    entries: int = 16
    btb_fallback_on_underflow: bool = True


class ReturnStackBuffer:
    """A fixed-depth return-address stack with underflow fallback."""

    def __init__(self, config: RSBConfig | None = None) -> None:
        self.config = config or RSBConfig()
        self._stack: list[int] = []

    def push(self, return_va: int) -> None:
        if len(self._stack) >= self.config.entries:
            # Oldest entry falls off the bottom: deep call chains underflow
            # on the way back up.
            self._stack.pop(0)
        self._stack.append(return_va)

    def pop_predict(self) -> int | None:
        """Predicted return target, or None on underflow."""
        if self._stack:
            return self._stack.pop()
        return None

    def poison_top(self, target_va: int) -> None:
        """Overwrite the top entry (Spectre RSB primitive)."""
        if self._stack:
            self._stack[-1] = target_va
        else:
            self._stack.append(target_va)

    def clear(self) -> None:
        self._stack.clear()

    @property
    def depth(self) -> int:
        return len(self._stack)

    def metrics(self):
        """(name, value) pairs for the observability collectors."""
        yield "branch.rsb.depth", self.depth
        yield "branch.rsb.capacity", self.config.entries


class BranchUnit:
    """Bundles the core's shared prediction structures."""

    def __init__(self, *, hardware_isolation: bool = False,
                 rsb_config: RSBConfig | None = None) -> None:
        self.conditional = ConditionalPredictor()
        self.btb = BranchTargetBuffer(hardware_isolation=hardware_isolation)
        self.rsb = ReturnStackBuffer(rsb_config)

    def reset(self) -> None:
        self.conditional.reset()
        self.btb.reset()
        self.rsb.clear()

    def metrics(self):
        """Combined predictor-state gauges (branch.* namespace)."""
        yield from self.conditional.metrics()
        yield from self.btb.metrics()
        yield from self.rsb.metrics()
