"""Set-associative cache models.

These caches track *presence* and *recency* only (no data -- data lives in
:class:`repro.cpu.memsys.MainMemory`).  Presence is what transient-execution
attacks observe: a flush+reload covert channel distinguishes cached from
uncached lines by access latency.

The hierarchy (L1I, L1D, shared L2, DRAM) follows Table 7.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = self.misses = self.fills = self.evictions = self.flushes = 0

    def as_metrics(self, prefix: str) -> Iterator[tuple[str, float]]:
        """(name, value) pairs for the observability collectors."""
        yield f"{prefix}.hits", self.hits
        yield f"{prefix}.misses", self.misses
        yield f"{prefix}.fills", self.fills
        yield f"{prefix}.evictions", self.evictions
        yield f"{prefix}.flushes", self.flushes
        yield f"{prefix}.hit_rate", self.hit_rate


class SetAssociativeCache:
    """A generic N-way set-associative cache with LRU replacement.

    Lines are identified by physical address.  ``touch_lru`` allows callers
    (e.g. the Delay-on-Miss scheme, which must not update replacement state
    for speculative hits) to suppress recency updates.
    """

    def __init__(self, name: str, size_bytes: int, line_bytes: int,
                 ways: int, hit_latency: int) -> None:
        if size_bytes % (line_bytes * ways) != 0:
            raise ValueError("cache geometry does not divide evenly")
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.hit_latency = hit_latency
        self.num_sets = size_bytes // (line_bytes * ways)
        # Each set is a list of line tags ordered most- to least-recently used.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _index(self, paddr: int) -> tuple[int, int]:
        line = paddr // self.line_bytes
        return line % self.num_sets, line

    def lookup(self, paddr: int, *, touch_lru: bool = True) -> bool:
        """Probe for ``paddr``; returns True on hit.  Counts stats."""
        set_idx, tag = self._index(paddr)
        ways = self._sets[set_idx]
        if tag in ways:
            self.stats.hits += 1
            if touch_lru:
                ways.remove(tag)
                ways.insert(0, tag)
            return True
        self.stats.misses += 1
        return False

    def peek(self, paddr: int) -> bool:
        """Presence check with no stats or LRU side effects."""
        set_idx, tag = self._index(paddr)
        return tag in self._sets[set_idx]

    def fill(self, paddr: int) -> None:
        """Install the line containing ``paddr`` (evicting LRU if needed)."""
        set_idx, tag = self._index(paddr)
        ways = self._sets[set_idx]
        if tag in ways:
            ways.remove(tag)
        elif len(ways) >= self.ways:
            ways.pop()
            self.stats.evictions += 1
        ways.insert(0, tag)
        self.stats.fills += 1

    def flush_line(self, paddr: int) -> bool:
        """Evict the line containing ``paddr``; returns True if present."""
        set_idx, tag = self._index(paddr)
        ways = self._sets[set_idx]
        if tag in ways:
            ways.remove(tag)
            self.stats.flushes += 1
            return True
        return False

    def flush_all(self) -> None:
        for ways in self._sets:
            ways.clear()

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)


@dataclass
class AccessResult:
    """Outcome of a hierarchy access: where it hit and total latency."""

    level: str  # "l1", "l2", "dram"
    latency: int
    l1_hit: bool = field(init=False)

    def __post_init__(self) -> None:
        self.l1_hit = self.level == "l1"


class CacheHierarchy:
    """L1 + shared L2 + DRAM latency model (Table 7.1 parameters).

    One hierarchy instance models a core's private L1s in front of the
    shared L2.  The covert-channel observer and the victim share the same
    hierarchy object, which is what makes cache attacks possible.
    """

    L1I_SIZE = 32 * 1024
    L1D_SIZE = 32 * 1024
    L1I_WAYS = 4
    L1D_WAYS = 8
    LINE = 64
    L1_LATENCY = 2
    L2_SIZE = 2 * 1024 * 1024
    L2_WAYS = 16
    L2_LATENCY = 8
    DRAM_LATENCY = 100  # 50 ns round trip at 2.0 GHz

    def __init__(self, *, prefetcher: bool = False) -> None:
        self.l1i = SetAssociativeCache(
            "l1i", self.L1I_SIZE, self.LINE, self.L1I_WAYS, self.L1_LATENCY)
        self.l1d = SetAssociativeCache(
            "l1d", self.L1D_SIZE, self.LINE, self.L1D_WAYS, self.L1_LATENCY)
        self.l2 = SetAssociativeCache(
            "l2", self.L2_SIZE, self.LINE, self.L2_WAYS, self.L2_LATENCY)
        #: Next-line prefetch on demand misses (Table 7.1's "1 hardware
        #: prefetcher").  Off by default: the calibrated workloads use
        #: either page strides (which it cannot help) or sub-line strides
        #: (which never miss), so enabling it only perturbs attack
        #: tooling; it exists for fidelity experiments.
        self.prefetcher = prefetcher
        self.prefetches = 0

    def access_data(self, paddr: int, *, fill: bool = True,
                    touch_lru: bool = True) -> AccessResult:
        """Data-side access.  ``fill=False`` models a probe that must not
        perturb cache state (used by attack tooling to measure latency):
        it goes through the stats-free ``peek`` path, so probing neither
        installs lines nor skews the hit/miss counters the breakdown
        experiment reports."""
        if not fill:
            if self.l1d.peek(paddr):
                return AccessResult("l1", self.L1_LATENCY)
            if self.l2.peek(paddr):
                return AccessResult("l2", self.L1_LATENCY + self.L2_LATENCY)
            return AccessResult(
                "dram", self.L1_LATENCY + self.L2_LATENCY + self.DRAM_LATENCY)
        if self.l1d.lookup(paddr, touch_lru=touch_lru):
            return AccessResult("l1", self.L1_LATENCY)
        if self.l2.lookup(paddr, touch_lru=touch_lru):
            self.l1d.fill(paddr)
            self._maybe_prefetch(paddr)
            return AccessResult("l2", self.L1_LATENCY + self.L2_LATENCY)
        self.l2.fill(paddr)
        self.l1d.fill(paddr)
        self._maybe_prefetch(paddr)
        return AccessResult(
            "dram", self.L1_LATENCY + self.L2_LATENCY + self.DRAM_LATENCY)

    def _maybe_prefetch(self, paddr: int) -> None:
        if not self.prefetcher:
            return
        next_line = (paddr // self.LINE + 1) * self.LINE
        # A line resident at any level is not prefetched again: re-filling
        # an L2-resident line would inflate both ``fills`` and
        # ``prefetches`` without changing observable presence.
        if self.l1d.peek(next_line) or self.l2.peek(next_line):
            return
        self.l2.fill(next_line)
        self.l1d.fill(next_line)
        self.prefetches += 1

    def access_inst(self, paddr: int) -> AccessResult:
        """Instruction-side access (fetch path)."""
        if self.l1i.lookup(paddr):
            return AccessResult("l1", self.L1_LATENCY)
        if self.l2.lookup(paddr):
            self.l1i.fill(paddr)
            return AccessResult("l2", self.L1_LATENCY + self.L2_LATENCY)
        self.l2.fill(paddr)
        self.l1i.fill(paddr)
        return AccessResult(
            "dram", self.L1_LATENCY + self.L2_LATENCY + self.DRAM_LATENCY)

    def is_l1d_hit(self, paddr: int) -> bool:
        """Non-perturbing L1D presence check (Delay-on-Miss predicate)."""
        return self.l1d.peek(paddr)

    def probe_latency(self, paddr: int) -> int:
        """Measure access latency without changing cache state.

        This is the reload half of flush+reload: the attacker times an
        access to learn whether the victim touched the line.
        """
        if self.l1d.peek(paddr):
            return self.L1_LATENCY
        if self.l2.peek(paddr):
            return self.L1_LATENCY + self.L2_LATENCY
        return self.L1_LATENCY + self.L2_LATENCY + self.DRAM_LATENCY

    def flush_data(self, paddr: int) -> None:
        """clflush: evict the line from the whole hierarchy.

        x86 clflush invalidates the line from *every* level, including
        the instruction cache -- missing the L1I would let lines survive
        a "whole hierarchy" flush whenever code and data share a line
        (or an attacker probes a fetched address).
        """
        self.l1i.flush_line(paddr)
        self.l1d.flush_line(paddr)
        self.l2.flush_line(paddr)

    def reset_stats(self) -> None:
        self.l1i.stats.reset()
        self.l1d.stats.reset()
        self.l2.stats.reset()

    def metrics(self) -> Iterator[tuple[str, float]]:
        """Per-level stats plus prefetch count, for the obs collectors."""
        for level in (self.l1i, self.l1d, self.l2):
            yield from level.stats.as_metrics(f"cache.{level.name}")
            yield f"cache.{level.name}.resident_lines", \
                level.resident_lines()
        yield "cache.prefetches", self.prefetches
