"""Micro-op instruction set for the out-of-order core model.

The simulator executes *micro-op programs*: each kernel function in the
synthetic kernel image (see :mod:`repro.kernel.image`) is compiled to a
sequence of micro-ops.  The ISA is deliberately small -- just enough to
express the code patterns that matter for transient-execution attacks and
their defenses:

* ``LOAD`` is the *transmitter* class of instruction the paper protects
  (Chapter 5): its execution leaves a microarchitectural trace in the cache.
* ``BR`` (conditional branch) is the Spectre v1 entry point.
* ``ICALL``/``IJMP``/``RET`` are the speculative control-flow hijacking
  entry points (Spectre v2 / Spectre RSB / BHI / Retbleed).
* ``FENCE`` models ``lfence``-style serialization used by spot mitigations.

Micro-ops operate over a small named register file.  Addresses are virtual;
the pipeline translates them through the executing context's address space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Op(enum.Enum):
    """Micro-op kinds understood by the pipeline."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BR = "br"
    JMP = "jmp"
    IJMP = "ijmp"
    CALL = "call"
    ICALL = "icall"
    RET = "ret"
    FENCE = "fence"
    FLUSH = "flush"  # clflush-style: evict a line (used by covert channels)
    NOP = "nop"
    KRET = "kret"  # return from kernel to userspace (end of program)


class AluOp(enum.Enum):
    """Operations supported by the ``ALU`` micro-op."""

    MOV = "mov"
    LI = "li"
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MUL = "mul"
    CMPLT = "cmplt"  # dst = 1 if src1 < src2 else 0 (signed)
    CMPLTU = "cmpltu"  # unsigned compare: negatives wrap to huge values
    CMPEQ = "cmpeq"  # dst = 1 if src1 == src2 else 0


#: Register names available to generated programs.  ``r0`` conventionally
#: holds syscall arguments on kernel entry; the kernel image generator
#: assigns the remaining registers freely.
REGISTERS = tuple(f"r{i}" for i in range(16))


@dataclass(frozen=True, slots=True)
class MicroOp:
    """A single micro-op.

    Fields are interpreted per :class:`Op`:

    * ``ALU``: ``dst = alu_op(src1, src2 or imm)``
    * ``LOAD``: ``dst = MEM[reg(src1) + imm]``
    * ``STORE``: ``MEM[reg(src1) + imm] = reg(src2)``
    * ``BR``: branch to op index ``target`` within the current function when
      ``reg(src1) != 0``
    * ``JMP``: unconditional branch to op index ``target``
    * ``CALL``: call function named ``callee``
    * ``ICALL``/``IJMP``: indirect call/jump to the function whose *code
      address* is in ``reg(src1)``
    * ``FLUSH``: evict the line containing ``reg(src1) + imm``
    """

    op: Op
    dst: str | None = None
    src1: str | None = None
    src2: str | None = None
    imm: int = 0
    target: int = -1
    callee: str | None = None
    alu_op: AluOp | None = None
    #: Free-form tag used by the kernel image generator and the gadget
    #: scanner, e.g. ``"gadget-access"`` or ``"gadget-transmit"``.
    tag: str | None = None

    def reads(self) -> tuple[str, ...]:
        """Registers this op reads (used for dependency tracking)."""
        regs = []
        if self.src1 is not None:
            regs.append(self.src1)
        if self.src2 is not None:
            regs.append(self.src2)
        return tuple(regs)

    def is_transmitter(self) -> bool:
        """Whether the op can leak data through a covert channel.

        Following the paper (Section 5.1) we treat loads as the transmitter
        class: their execution changes cache state observably.
        """
        return self.op is Op.LOAD


def alu(dst: str, alu_op: AluOp, src1: str | None = None,
        src2: str | None = None, imm: int = 0, tag: str | None = None) -> MicroOp:
    """Convenience constructor for ALU micro-ops."""
    return MicroOp(Op.ALU, dst=dst, src1=src1, src2=src2, imm=imm,
                   alu_op=alu_op, tag=tag)


def li(dst: str, value: int) -> MicroOp:
    """Load-immediate: ``dst = value``."""
    return MicroOp(Op.ALU, dst=dst, imm=value, alu_op=AluOp.LI)


def load(dst: str, base: str, imm: int = 0, tag: str | None = None) -> MicroOp:
    """Memory load: ``dst = MEM[reg(base) + imm]``."""
    return MicroOp(Op.LOAD, dst=dst, src1=base, imm=imm, tag=tag)


def store(base: str, src: str, imm: int = 0, tag: str | None = None) -> MicroOp:
    """Memory store: ``MEM[reg(base) + imm] = reg(src)``."""
    return MicroOp(Op.STORE, src1=base, src2=src, imm=imm, tag=tag)


def br(cond: str, target: int, tag: str | None = None) -> MicroOp:
    """Conditional branch taken when ``reg(cond) != 0``."""
    return MicroOp(Op.BR, src1=cond, target=target, tag=tag)


def jmp(target: int) -> MicroOp:
    """Unconditional intra-function jump."""
    return MicroOp(Op.JMP, target=target)


def call(callee: str, tag: str | None = None) -> MicroOp:
    """Direct call to a named function."""
    return MicroOp(Op.CALL, callee=callee, tag=tag)


def icall(base: str, tag: str | None = None) -> MicroOp:
    """Indirect call through a register holding a function code address."""
    return MicroOp(Op.ICALL, src1=base, tag=tag)


def ijmp(base: str, tag: str | None = None) -> MicroOp:
    """Indirect jump through a register holding a function code address."""
    return MicroOp(Op.IJMP, src1=base, tag=tag)


def ret() -> MicroOp:
    """Return from the current function."""
    return MicroOp(Op.RET)


def fence() -> MicroOp:
    """Serializing fence (lfence)."""
    return MicroOp(Op.FENCE)


def flush(base: str, imm: int = 0) -> MicroOp:
    """Flush the cache line containing ``reg(base) + imm``."""
    return MicroOp(Op.FLUSH, src1=base, imm=imm)


def nop() -> MicroOp:
    return MicroOp(Op.NOP)


def kret() -> MicroOp:
    """Terminate kernel execution and return to userspace."""
    return MicroOp(Op.KRET)


#: Size in bytes of one encoded micro-op.  Instruction virtual addresses are
#: ``function.base_va + index * OP_SIZE``; the ISV bitmap has one bit per
#: micro-op slot (Section 6.2).
OP_SIZE = 4


def _rebuild_body(ops: list, version: int) -> "BodyList":
    body = BodyList(ops)
    body.version = version
    return body


class BodyList(list):
    """A function body that counts its own mutations.

    Every mutating list operation bumps ``version``, which the decode
    tables (:meth:`Function.decoded`) and the block JIT
    (:mod:`repro.cpu.blockcache`) use as their staleness key.  This closes
    the hole where an *in-place, same-length* op replacement (e.g. the
    image generator's gadget splicing) left a stale decode live unless the
    caller remembered to call :meth:`Function.invalidate_decode` -- the
    stale state is now unrepresentable rather than merely detectable.
    """

    __slots__ = ("version",)

    def __init__(self, iterable=()) -> None:
        super().__init__(iterable)
        self.version = 0

    def bump(self) -> None:
        """Force-invalidate derived state (decode tables, compiled blocks)."""
        self.version += 1

    def __reduce__(self):
        return (_rebuild_body, (list(self), self.version))

    def __setitem__(self, index, value) -> None:
        super().__setitem__(index, value)
        self.version += 1

    def __delitem__(self, index) -> None:
        super().__delitem__(index)
        self.version += 1

    def __iadd__(self, other):
        result = super().__iadd__(other)
        self.version += 1
        return result

    def __imul__(self, factor):
        result = super().__imul__(factor)
        self.version += 1
        return result

    def append(self, value) -> None:
        super().append(value)
        self.version += 1

    def extend(self, iterable) -> None:
        super().extend(iterable)
        self.version += 1

    def insert(self, index, value) -> None:
        super().insert(index, value)
        self.version += 1

    def pop(self, index=-1):
        value = super().pop(index)
        self.version += 1
        return value

    def remove(self, value) -> None:
        super().remove(value)
        self.version += 1

    def clear(self) -> None:
        super().clear()
        self.version += 1

    def sort(self, **kwargs) -> None:
        super().sort(**kwargs)
        self.version += 1

    def reverse(self) -> None:
        super().reverse()
        self.version += 1


@dataclass(frozen=True, slots=True)
class DecodedBody:
    """Precomputed per-op tables the pipeline's fetch/issue loop consults.

    One entry per op *plus one* for the implicit-RET slot at
    ``index == len(body)``, so the hot loop never branches on the
    end-of-function case.  ``length``/``base_va``/``version`` are the
    validity key: a decode is stale once the body grows/shrinks, the
    function is (re)placed in a layout, or any in-place op replacement
    bumps the :class:`BodyList` mutation counter.
    """

    vas: tuple[int, ...]
    lines: tuple[int, ...]  # instruction cache lines (va // 64)
    reads: tuple[tuple[str, ...], ...]
    length: int
    base_va: int
    version: int = 0


@dataclass
class Function:
    """A unit of kernel (or userspace) code: a named micro-op sequence.

    ``base_va`` is assigned when the function is placed into a
    :class:`CodeLayout`.  Metadata fields carry ground truth used by the
    analyses (they are *not* consulted by the pipeline).
    """

    name: str
    body: list[MicroOp] = field(default_factory=BodyList)
    base_va: int = 0
    #: Direct callees (function names), derivable from the body; cached here.
    callees: tuple[str, ...] = ()
    #: Functions only reachable from here through indirect calls.  Static
    #: analysis cannot see these edges (Section 5.3, Figure 5.3a).
    indirect_callees: tuple[str, ...] = ()
    #: Whether the function contains a transient-execution gadget and of
    #: which covert-channel class ("mds", "port", "cache") -- ground truth
    #: for the scanner evaluation.
    gadget_class: str | None = None
    #: Lazily-built decode tables (see :meth:`decoded`); never compared or
    #: shown -- it is a pure cache over ``body``/``base_va``.
    _decoded: DecodedBody | None = field(
        default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.body, BodyList):
            self.body = BodyList(self.body)

    def __len__(self) -> int:
        return len(self.body)

    @property
    def end_va(self) -> int:
        return self.base_va + len(self.body) * OP_SIZE

    def va_of(self, index: int) -> int:
        """Virtual address of the op at ``index``."""
        return self.base_va + index * OP_SIZE

    def contains_va(self, va: int) -> bool:
        return self.base_va <= va < self.end_va

    def decoded(self) -> DecodedBody:
        """The cached decode of this body (recomputed when stale).

        Staleness is keyed on ``(len(body), base_va, body.version)``:
        growth/shrink, layout (re)placement, *and* in-place op replacement
        (every :class:`BodyList` mutator bumps the version) all force a
        re-decode, so a stale decode can never be replayed silently --
        callers no longer need to remember :meth:`invalidate_decode`.
        """
        body = self.body
        if not isinstance(body, BodyList):
            # A caller assigned a plain list; adopt it so mutation
            # tracking resumes (the decode below is freshly computed).
            body = self.body = BodyList(body)
        dec = self._decoded
        if dec is not None and dec.length == len(body) \
                and dec.base_va == self.base_va \
                and dec.version == body.version:
            return dec
        base = self.base_va
        vas = tuple(base + i * OP_SIZE for i in range(len(body) + 1))
        dec = DecodedBody(
            vas=vas,
            lines=tuple(va // 64 for va in vas),
            reads=tuple(op.reads() for op in body) + ((),),
            length=len(body),
            base_va=base,
            version=body.version)
        self._decoded = dec
        return dec

    def invalidate_decode(self) -> None:
        """Force-drop derived state (decode tables, compiled blocks).

        Mutations through :class:`BodyList` are tracked automatically;
        this remains for callers that mutated the body through an alias
        that bypassed the tracked methods.
        """
        self._decoded = None
        body = self.body
        if isinstance(body, BodyList):
            body.bump()
        else:
            self.body = BodyList(body)


class CodeLayout:
    """Assigns virtual addresses to functions and maps addresses back.

    Models the kernel text segment: each function occupies a fixed-size
    slot of ``stride_ops`` micro-op slots starting at ``text_base``, so
    bodies may grow (e.g. when the image generator splices in a gadget
    pattern) without disturbing neighbouring addresses.  Indirect branches
    carry raw code addresses in registers, which the layout resolves back
    to ``(function, op index)`` targets.
    """

    def __init__(self, text_base: int, stride_ops: int = 512) -> None:
        self.text_base = text_base
        self.stride_ops = stride_ops
        self._functions: dict[str, Function] = {}
        self._next_va = text_base
        # Sorted list of (base_va, function) for address lookup.
        self._by_va: list[tuple[int, Function]] = []

    def add(self, func: Function) -> Function:
        """Place ``func`` in the layout, assigning its base address."""
        if func.name in self._functions:
            raise ValueError(f"duplicate function name: {func.name}")
        if len(func.body) >= self.stride_ops:
            raise ValueError(
                f"{func.name}: body of {len(func.body)} ops exceeds the "
                f"layout stride of {self.stride_ops}")
        func.base_va = self._next_va
        self._next_va += self.stride_ops * OP_SIZE
        self._functions[func.name] = func
        self._by_va.append((func.base_va, func))
        return func

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __getitem__(self, name: str) -> Function:
        return self._functions[name]

    def get(self, name: str) -> Function | None:
        return self._functions.get(name)

    def functions(self) -> list[Function]:
        return list(self._functions.values())

    def names(self) -> list[str]:
        return list(self._functions)

    def resolve_va(self, va: int) -> tuple[Function, int] | None:
        """Map a code address to ``(function, op index)``, or ``None``."""
        # Binary search over the sorted base addresses.
        lo, hi = 0, len(self._by_va)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._by_va[mid][0] <= va:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None
        base, func = self._by_va[lo - 1]
        if not func.contains_va(va):
            return None
        return func, (va - base) // OP_SIZE

    @property
    def text_end(self) -> int:
        return self._next_va

    def overlay(self) -> "OverlayCodeLayout":
        """A per-instance view that can grow without mutating this layout.

        Runtime code loading (eBPF programs) adds functions to a kernel
        instance, but the base image is shared across many kernels; the
        overlay keeps additions local.
        """
        return OverlayCodeLayout(self)


class OverlayCodeLayout:
    """A :class:`CodeLayout` plus instance-local additions.

    Local functions are placed in a dedicated region far above the base
    text segment (the BPF/JIT area), so base and overlay address ranges
    never collide and ``resolve_va`` can dispatch by range.
    """

    #: VA distance from the base text start to the overlay (JIT) region.
    OVERLAY_REGION_OFFSET = 0x0000_0010_0000_0000

    def __init__(self, base: CodeLayout) -> None:
        self.base = base
        self.stride_ops = base.stride_ops
        self._local = CodeLayout(
            base.text_base + self.OVERLAY_REGION_OFFSET,
            stride_ops=base.stride_ops)

    @property
    def text_base(self) -> int:
        return self.base.text_base

    @property
    def overlay_base(self) -> int:
        return self._local.text_base

    def add(self, func: Function) -> Function:
        """Place a function in the overlay (JIT) region."""
        if func.name in self.base:
            raise ValueError(
                f"{func.name} already exists in the base image")
        return self._local.add(func)

    def __contains__(self, name: str) -> bool:
        return name in self._local or name in self.base

    def __getitem__(self, name: str) -> Function:
        found = self._local.get(name)
        if found is not None:
            return found
        return self.base[name]

    def get(self, name: str) -> Function | None:
        found = self._local.get(name)
        if found is not None:
            return found
        return self.base.get(name)

    def functions(self) -> list[Function]:
        return self.base.functions() + self._local.functions()

    def names(self) -> list[str]:
        return self.base.names() + self._local.names()

    def local_names(self) -> list[str]:
        return self._local.names()

    def resolve_va(self, va: int) -> tuple[Function, int] | None:
        if va >= self._local.text_base:
            return self._local.resolve_va(va)
        return self.base.resolve_va(va)
