"""Memory system: main memory values, address translation, and the TLB.

``MainMemory`` stores architectural values (the cache models in
:mod:`repro.cpu.cache` track presence/timing only).  Translation is
delegated to an :class:`AddressSpace`, implemented by the kernel model:
kernel direct-map addresses translate linearly, userspace addresses go
through per-process page tables.
"""

from __future__ import annotations

from dataclasses import dataclass


class PageFault(Exception):
    """Raised on translation failure (unmapped virtual address)."""

    def __init__(self, va: int, message: str = "") -> None:
        super().__init__(message or f"page fault at VA {va:#x}")
        self.va = va


class AddressSpace:
    """Translation interface the pipeline uses.

    The kernel model provides the real implementation
    (:class:`repro.kernel.process.ProcessAddressSpace`).  The identity
    mapping here is handy for unit tests and bare-metal attack demos.
    """

    def translate(self, va: int) -> int:
        """Return the physical address backing ``va``.

        Raises :class:`PageFault` when the address is unmapped.
        """
        return va


class MainMemory:
    """Byte-addressed sparse main memory.

    Unwritten locations read as a deterministic function of their address
    so experiments are reproducible without initializing all of memory.
    """

    def __init__(self) -> None:
        self._data: dict[int, int] = {}

    def load(self, paddr: int) -> int:
        value = self._data.get(paddr)
        if value is not None:
            return value
        # Deterministic background pattern: distinct per address, stable
        # across runs, and never equal to planted secrets (which are
        # explicitly stored).
        return (paddr * 2654435761) & 0xFF

    def store(self, paddr: int, value: int) -> None:
        self._data[paddr] = value & 0xFFFFFFFFFFFFFFFF

    def store_bytes(self, paddr: int, data: bytes) -> None:
        for offset, byte in enumerate(data):
            self._data[paddr + offset] = byte

    def load_bytes(self, paddr: int, length: int) -> bytes:
        return bytes(self.load(paddr + i) & 0xFF for i in range(length))

    def __len__(self) -> int:
        return len(self._data)

    def digest(self) -> str:
        """SHA-256 over the written locations, in address order.

        The architectural-memory fingerprint for differential conformance
        checks: two runs agree iff every store landed at the same address
        with the same value (unwritten locations are a pure function of
        their address, so they cannot diverge).
        """
        import hashlib
        h = hashlib.sha256()
        for paddr in sorted(self._data):
            h.update(paddr.to_bytes(8, "little"))
            h.update(self._data[paddr].to_bytes(8, "little"))
        return h.hexdigest()

    def metrics(self):
        """(name, value) pairs for the observability collectors."""
        yield "memory.touched_locations", len(self._data)


@dataclass
class TLBStats:
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_metrics(self, prefix: str):
        """(name, value) pairs for the observability collectors."""
        yield f"{prefix}.hits", self.hits
        yield f"{prefix}.misses", self.misses
        yield f"{prefix}.hit_rate", self.hit_rate


class TLB:
    """Small fully-associative TLB with LRU replacement.

    Used for translation timing and to model the KPTI cost: switching page
    tables on kernel entry/exit flushes non-global entries, so spot-mitigated
    kernels pay extra TLB misses (Section 9.1 "spot software mitigations").
    """

    def __init__(self, entries: int = 64, miss_penalty: int = 20) -> None:
        self.entries = entries
        self.miss_penalty = miss_penalty
        self._lru: list[int] = []  # page numbers, most recent first
        self.stats = TLBStats()

    def access(self, va: int) -> int:
        """Returns extra cycles for this translation (0 on hit)."""
        page = va >> 12
        if page in self._lru:
            self._lru.remove(page)
            self._lru.insert(0, page)
            self.stats.hits += 1
            return 0
        self.stats.misses += 1
        if len(self._lru) >= self.entries:
            self._lru.pop()
        self._lru.insert(0, page)
        return self.miss_penalty

    def flush(self) -> None:
        """Full flush (KPTI-style CR3 write without PCID)."""
        self._lru.clear()

    def metrics(self):
        """(name, value) pairs for the observability collectors."""
        yield from self.stats.as_metrics("tlb")
        yield "tlb.resident", len(self._lru)
        yield "tlb.capacity", self.entries
