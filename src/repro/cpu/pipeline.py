"""Out-of-order core model with behavioural transient execution.

This is the reproduction's stand-in for the gem5 O3 core of the paper's
methodology (Table 7.1).  It is a scoreboard-style latency model rather than
a full cycle-accurate pipeline, but it is *behaviourally* faithful where it
matters for the paper:

* **Transient windows are real.**  When a branch (conditional or indirect)
  is mispredicted, the pipeline fetches and executes wrong-path micro-ops
  against a shadow register file.  Wrong-path loads perturb the shared cache
  hierarchy before the squash -- which is exactly the signal transient
  execution attacks recover via flush+reload.
* **Defense schemes gate speculative loads.**  Before a load executes under
  an unresolved prediction, the active :class:`SpeculationPolicy` decides
  whether it may proceed.  A blocked load stalls until its *visibility
  point* -- when no older instruction can squash it (Section 6.2,
  "Controlling Speculation") -- which is how the FENCE / DOM / STT /
  Perspective schemes all take effect, with very different frequencies.
* **Prediction state is shared.**  The conditional predictor, BTB and RSB
  persist across runs on the same core, so mistraining and poisoning by an
  attacker context carry over into the victim's kernel execution.

Timing is tracked with a register scoreboard + ROB occupancy ring, so
dependence chains through delayed loads compound -- this is what makes
kernel-spinning system calls (select/poll/epoll) catastrophically slow under
FENCE (228% in the paper) while straight-line syscalls barely notice.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.cpu.blockcache import COLD, BlockCache, run_epoch
from repro.cpu.branch import BranchUnit
from repro.cpu.cache import CacheHierarchy
from repro.cpu.isa import AluOp, CodeLayout, Function, MicroOp, Op, OP_SIZE
from repro.cpu.memsys import AddressSpace, MainMemory, PageFault, TLB
from repro.obs import events as ev
from repro.obs import registry as obs
from repro.obs import reqtrace as rt


@dataclass
class PipelineConfig:
    """Core parameters, following Table 7.1 of the paper."""

    fetch_width: int = 8
    rob_entries: int = 192
    load_queue_entries: int = 62
    store_queue_entries: int = 32
    #: Average issue cost per op.  The core is 8-issue, but kernel code
    #: sustains nowhere near that IPC; 0.25 models the typical ILP of
    #: syscall paths so fixed costs (trap, KPTI) stay in proportion.
    base_cpi: float = 0.25
    branch_resolve_latency: float = 7.0
    ret_resolve_latency: float = 6.0
    mispredict_penalty: float = 10.0
    btb_miss_penalty: float = 8.0
    retpoline_penalty: float = 60.0
    #: Extra resolution delay for tainted branches under STT-style
    #: implicit-channel protection (squash/wakeup broadcast round).
    stt_resolution_lag: float = 4.0
    #: Enforce load/store-queue occupancy (Table 7.1's 62 LQ / 32 SQ
    #: entries) in addition to the ROB.  Off by default: the evaluated
    #: workloads never sustain enough memory-level parallelism for the
    #: queues to bind before the ROB does, and the check costs model time.
    enforce_lsq: bool = False
    max_transient_ops: int = 64
    max_committed_ops: int = 2_000_000  # runaway-program backstop
    #: Basic-block trace memoization (see :mod:`repro.cpu.blockcache`):
    #: straight-line micro-op runs are compiled to specialized replay
    #: functions and dispatched whenever speculation cannot interfere.
    #: Byte-exact against the interpreter (cycles included); off by
    #: default so existing snapshots and configs are unchanged.  Ignored
    #: when ``enforce_lsq`` is set (blocks skip LQ/SQ bookkeeping).
    enable_block_cache: bool = False


@dataclass
class LoadQuery:
    """Everything a defense scheme may consult about a speculative load."""

    inst_va: int
    load_va: int
    load_pa: int
    context_id: int
    domain: str
    speculative: bool
    transient: bool  # on a wrong path that will squash (ground truth)
    tainted: bool  # address depends on speculatively-loaded data
    l1_hit: bool


@dataclass
class LoadDecision:
    """Outcome of a policy check for one speculative load.

    ``invisible`` implements InvisiSpec-style speculation: the load
    executes (data returns, dependents proceed) but leaves *no trace* in
    the cache hierarchy; at the visibility point it replays to install the
    line, costing ``extra_latency`` on top of the uncached access.
    """

    allow: bool
    reason: str = ""
    extra_latency: float = 0.0
    invisible: bool = False

    ALLOW = None  # type: LoadDecision  # filled in below


LoadDecision.ALLOW = LoadDecision(True)


class SpeculationPolicy:
    """Base defense-scheme interface; the default is the UNSAFE baseline."""

    name = "unsafe"

    def check_load(self, query: LoadQuery) -> LoadDecision:
        """Called for every load issued while speculative."""
        return LoadDecision.ALLOW

    def kernel_entry_cost(self, context_id: int) -> float:
        """Extra cycles charged when entering the kernel (e.g. KPTI)."""
        return 0.0

    def kernel_exit_cost(self, context_id: int) -> float:
        return 0.0

    def retpoline_enabled(self) -> bool:
        """Whether indirect branches are compiled as retpolines."""
        return False

    def dom_lru_freeze(self) -> bool:
        """Delay-on-Miss: speculative L1 hits must not update LRU state."""
        return False

    def delays_tainted_branch_resolution(self) -> bool:
        """STT-style implicit-channel protection: a branch whose condition
        is tainted may not resolve (and squash/broadcast) until the
        tainting load reaches its visibility point."""
        return False

    def flush_branch_state_on_context_switch(self) -> bool:
        """IBPB-style barrier: indirect-branch predictor state is flushed
        when the kernel starts running on behalf of a different context,
        so one context's (mis)training cannot steer another's speculation.
        Table 4.1 rows 8-9 are cases where deployments *missed* this."""
        return False

    def cfi_enabled(self) -> bool:
        """SpecCFI-style speculative control-flow integrity: predicted
        indirect-branch targets that are not valid function entries are
        not followed speculatively (the front end stalls instead).

        Perspective assumes this layer (Section 5.1): without it, an
        attacker could hijack speculation into the *middle* of an
        ISV-trusted function, past its bounds checks."""
        return False

    def reset_stats(self) -> None:
        """Clear any per-run counters a scheme keeps."""


@dataclass
class ExecutionContext:
    """The execution context a program runs under.

    ``context_id`` identifies the owning cgroup/process for DSV checks;
    ``domain`` is the predictor-isolation domain ("user:<pid>" or "kernel").
    """

    context_id: int
    domain: str = "kernel"
    address_space: AddressSpace = field(default_factory=AddressSpace)
    initial_regs: dict[str, int] = field(default_factory=dict)


@dataclass
class ExecResult:
    """Aggregate outcome of one program execution."""

    cycles: float = 0.0
    committed_ops: int = 0
    transient_ops: int = 0
    loads: int = 0
    speculative_loads: int = 0
    fenced_loads: dict[str, int] = field(default_factory=dict)
    mispredictions: int = 0
    indirect_mispredictions: int = 0
    transient_loads_executed: int = 0
    transient_loads_blocked: int = 0
    #: Speculative control transfers suppressed by the CFI label check.
    cfi_suppressions: int = 0
    #: Cycles committed-path loads spent waiting at their visibility
    #: point because a policy blocked them (the *cost* behind the fence
    #: counts of Table 10.1).
    fence_stall_cycles: float = 0.0
    regs: dict[str, int] = field(default_factory=dict)

    @property
    def total_fenced(self) -> int:
        return sum(self.fenced_loads.values())

    @property
    def fences_per_kiloinstruction(self) -> float:
        if self.committed_ops == 0:
            return 0.0
        return 1000.0 * self.total_fenced / self.committed_ops

    def record_fence(self, reason: str) -> None:
        self.fenced_loads[reason] = self.fenced_loads.get(reason, 0) + 1

    def merge(self, other: "ExecResult") -> None:
        """Accumulate another run into this one (workload aggregation)."""
        self.cycles += other.cycles
        self.committed_ops += other.committed_ops
        self.transient_ops += other.transient_ops
        self.loads += other.loads
        self.speculative_loads += other.speculative_loads
        self.mispredictions += other.mispredictions
        self.indirect_mispredictions += other.indirect_mispredictions
        self.transient_loads_executed += other.transient_loads_executed
        self.transient_loads_blocked += other.transient_loads_blocked
        self.cfi_suppressions += other.cfi_suppressions
        self.fence_stall_cycles += other.fence_stall_cycles
        if other.fenced_loads:
            merged = self.fenced_loads
            for reason, count in other.fenced_loads.items():
                merged[reason] = merged.get(reason, 0) + count
            # Canonical key order: merged results must not depend on the
            # order the parts arrive in (pool workers gather out of order).
            self.fenced_loads = dict(sorted(merged.items()))


class _Unavailable:
    """Sentinel for transient register values that never materialized
    (their producing load was blocked by a defense)."""

    __repr__ = lambda self: "<unavailable>"  # noqa: E731


UNAVAILABLE = _Unavailable()


class Pipeline:
    """The core: executes micro-op programs under a speculation policy."""

    def __init__(self, layout: CodeLayout, memory: MainMemory,
                 hierarchy: CacheHierarchy | None = None,
                 branch_unit: BranchUnit | None = None,
                 config: PipelineConfig | None = None,
                 tlb: TLB | None = None) -> None:
        self.layout = layout
        self.memory = memory
        self.hierarchy = hierarchy or CacheHierarchy()
        self.branch_unit = branch_unit or BranchUnit()
        self.config = config or PipelineConfig()
        self.tlb = tlb or TLB()
        #: Monotonic count of ``set_policy`` calls -- part of the block
        #: JIT's epoch key, so a policy swap invalidates memoized blocks.
        self._policy_gen = 0
        #: Lazily-built :class:`repro.cpu.blockcache.BlockCache`.
        self._blockcache = None
        self.set_policy(SpeculationPolicy())
        #: Optional observer called with (function, context) whenever the
        #: committed path enters a function -- the kernel tracing subsystem
        #: (ftrace stand-in) hooks in here to build dynamic ISV profiles.
        self.trace_hook = None

    def set_policy(self, policy: SpeculationPolicy) -> None:
        self.policy = policy
        self._policy_gen += 1
        # A *passive* policy statically allows every speculative load with
        # no side effects (the UNSAFE baseline).  The load path then skips
        # building the LoadQuery entirely -- semantics are unchanged
        # because the base check_load reads nothing and always returns
        # ALLOW.  Detected structurally (check_load not overridden) or by
        # an explicit ``passive_allow`` opt-in; DOM-style LRU freezing
        # disqualifies a policy because the allow path would differ.
        cls = type(policy)
        self._passive_allow = (
            (cls.check_load is SpeculationPolicy.check_load
             or getattr(cls, "passive_allow", False))
            and cls.dom_lru_freeze is SpeculationPolicy.dom_lru_freeze)

    # ------------------------------------------------------------------
    # Main execution loop
    # ------------------------------------------------------------------

    def run(self, entry: str | Function, context: ExecutionContext,
            *, charge_kernel_entry: bool = False, start_index: int = 0,
            initial_call_stack: list[tuple[Function, int]] | None = None,
            ) -> ExecResult:
        """Execute a program to completion (KRET / final RET) and return
        timing plus speculation statistics.

        ``start_index`` and ``initial_call_stack`` support resuming in the
        middle of a call chain -- how the kernel model expresses a context
        switch's resume path, whose first RET consumes whatever the RSB
        holds (the Spectre-RSB consumption point).
        """
        cfg = self.config
        func = self.layout[entry] if isinstance(entry, str) else entry
        entry_name = func.name
        #: Front-end accounting for the observability plane (kept in
        #: locals -- ExecResult stays serialization-stable).
        fetch_lines = 0
        fetch_stall = 0.0
        result = ExecResult()
        regs: dict[str, int] = dict(context.initial_regs)
        reg_ready: dict[str, float] = {}
        taint_until: dict[str, float] = {}
        unresolved: list[float] = []  # resolve times of in-flight predictions
        rob: deque[float] = deque()
        # Load/store queues (only consulted when cfg.enforce_lsq is set).
        lq: deque[float] = deque()
        sq: deque[float] = deque()
        call_stack: list[tuple[Function, int]] = \
            list(initial_call_stack) if initial_call_stack else []
        clock = 0.0
        if charge_kernel_entry:
            clock += self.policy.kernel_entry_cost(context.context_id)
        idx = start_index
        last_fetch_line = -1

        translate = context.address_space.translate
        body = func.body
        dec = func.decoded()
        trace = self.trace_hook
        if trace is not None:
            trace(func, context)

        # --- block JIT arming (see repro.cpu.blockcache) --------------
        #: Fetch accounting delegated to compiled blocks: [lines, stall].
        facc = [0, 0.0]
        blocks = None
        bc = None
        bc_token = None
        bc_hits = bc_misses = bc_invalidations = 0
        #: Lazily-allocated per-run miss attribution: (reason, fn) -> n.
        bc_attr = None
        fast_replay = False
        stt_delays = False
        #: Side-effect-free direct-map window for compiled blocks, read
        #: off the *exact* address-space type so a subclass overriding
        #: ``translate`` never inherits the fast path.  The (1, 0) empty
        #: window makes the inline test statically false.
        _as_dict = type(context.address_space).__dict__
        dml = _as_dict.get("DIRECT_MAP_LO", 1)
        dmh = _as_dict.get("DIRECT_MAP_HI", 0)
        if cfg.enable_block_cache and not cfg.enforce_lsq:
            bc = self._blockcache
            if bc is None:
                bc = self._blockcache = BlockCache(self)
            bc_token = bc.refresh(run_epoch(self))
            # Passive policies (UNSAFE baseline) replay blocks even under
            # in-flight predictions: the generated load path reproduces
            # the interpreter's fast path exactly.  Anything else replays
            # only when every prediction has resolved.
            fast_replay = self._passive_allow \
                and ev.active_journal() is None
            stt_delays = self.policy.delays_tainted_branch_resolution()
            blocks = bc.index_for(func)
            if not blocks:
                bc_misses += 1
                bc_attr = {("uncompilable", func.name): 1}
        max_commit = cfg.max_committed_ops

        while True:
            reg = blocks.get(idx) if blocks is not None else None
            if reg is not None:
                # Enter the function's compiled region: it replays every
                # block it can (chaining through loops in-frame) and
                # reports why it stopped.  Whatever ``idx`` it returns is
                # executed by the interpreter below -- a stale or guarded
                # block re-interprets exactly once, and an uncompiled op
                # is simply not ours.  ``hits + misses`` therefore equals
                # the number of arrivals at compiled leaders.
                clock, idx, last_fetch_line, replayed, stop = reg.fn(
                    regs, reg_ready, taint_until, unresolved, rob, clock,
                    last_fetch_line, result, translate, facc, func,
                    context, stt_delays, dml, dmh, idx, fast_replay,
                    max_commit, reg.tokens, bc_token)
                bc_hits += replayed
                if stop == 2:
                    # Token mismatch: either the block's first-ever
                    # arrival (slot still holds the COLD sentinel) or the
                    # speculation environment changed since it was
                    # memoized.  Re-interpret once below, then re-arm.
                    slot = reg.slot_of[idx]
                    if reg.tokens[slot] is COLD:
                        reason = "cold"
                    else:
                        reason = "epoch-invalidation"
                        bc_invalidations += 1
                    bc_misses += 1
                    reg.tokens[slot] = bc_token
                elif stop:  # STOP_GUARD or STOP_BUDGET
                    bc_misses += 1
                    reason = "spec-guard" if stop == 1 else "op-budget"
                else:
                    reason = None
                if reason is not None:
                    if bc_attr is None:
                        bc_attr = {}
                    key = (reason, func.name)
                    bc_attr[key] = bc_attr.get(key, 0) + 1
            if idx >= len(body):
                # Fall off the end of a function: implicit return.
                op = _IMPLICIT_RET
            else:
                op = body[idx]

            if result.committed_ops >= cfg.max_committed_ops:
                raise RuntimeError(
                    f"program exceeded {cfg.max_committed_ops} committed ops "
                    f"(in {func.name})")

            # --- front end: fetch bandwidth, I-cache, ROB occupancy -----
            clock += cfg.base_cpi
            fetch_line = dec.lines[idx]
            if fetch_line != last_fetch_line:
                last_fetch_line = fetch_line
                fetch_lines += 1
                access = self.hierarchy.access_inst(dec.vas[idx])
                if not access.l1_hit:
                    stall = access.latency - self.hierarchy.L1_LATENCY
                    clock += stall
                    fetch_stall += stall
            if len(rob) >= cfg.rob_entries:
                head = rob.popleft()
                if head > clock:
                    clock = head
            kind = op.op
            result.committed_ops += 1

            # --- per-op semantics ---------------------------------------
            if kind is Op.ALU:
                t = clock
                taint = 0.0
                for src in dec.reads[idx]:
                    ready = reg_ready.get(src)
                    if ready is not None and ready > t:
                        t = ready
                    stamp = taint_until.get(src)
                    if stamp is not None and stamp > taint:
                        taint = stamp
                regs[op.dst] = _alu_eval(op, regs)
                reg_ready[op.dst] = t + 1.0
                if taint > t:
                    taint_until[op.dst] = taint
                elif op.dst in taint_until:
                    del taint_until[op.dst]
                rob.append(t + 1.0)

            elif kind is Op.LOAD:
                if cfg.enforce_lsq and len(lq) >= cfg.load_queue_entries:
                    head = lq.popleft()
                    if head > clock:
                        clock = head
                clock = self._do_load(op, func, idx, regs, reg_ready,
                                      taint_until, unresolved, clock,
                                      context, translate, result, rob)
                if cfg.enforce_lsq:
                    lq.append(rob[-1])

            elif kind is Op.STORE:
                if cfg.enforce_lsq and len(sq) >= cfg.store_queue_entries:
                    head = sq.popleft()
                    if head > clock:
                        clock = head
                t = clock
                for src in dec.reads[idx]:
                    ready = reg_ready.get(src)
                    if ready is not None and ready > t:
                        t = ready
                va = regs[op.src1] + op.imm
                try:
                    pa = translate(va)
                except PageFault:
                    pa = None
                if pa is not None:
                    clock += self.tlb.access(va) * 0.0  # stores off critical path
                    self.memory.store(pa, regs[op.src2])
                    self.hierarchy.l1d.fill(pa)
                rob.append(t + 1.0)
                if cfg.enforce_lsq:
                    sq.append(t + 1.0)

            elif kind is Op.BR:
                clock, idx, rob_entry = self._do_branch(
                    op, func, idx, regs, reg_ready, taint_until, unresolved,
                    clock, context, translate, result)
                # The branch occupies its ROB slot until it resolves, so
                # chains of late-resolving branches throttle commit.
                rob.append(rob_entry)
                continue  # idx already advanced

            elif kind is Op.JMP:
                idx = op.target
                rob.append(clock)
                continue

            elif kind is Op.CALL:
                callee = self.layout[op.callee]
                self.branch_unit.rsb.push(dec.vas[idx + 1])
                call_stack.append((func, idx + 1))
                func, body, idx = callee, callee.body, 0
                dec = callee.decoded()
                if bc is not None:
                    blocks = bc.index_for(func)
                    if not blocks:
                        bc_misses += 1
                        if bc_attr is None:
                            bc_attr = {}
                        key = ("uncompilable", func.name)
                        bc_attr[key] = bc_attr.get(key, 0) + 1
                last_fetch_line = -1
                rob.append(clock)
                if trace is not None:
                    trace(func, context)
                continue

            elif kind in (Op.ICALL, Op.IJMP):
                clock, new_func = self._do_indirect(
                    op, func, idx, regs, reg_ready, unresolved, clock,
                    context, translate, result)
                if kind is Op.ICALL:
                    self.branch_unit.rsb.push(dec.vas[idx + 1])
                    call_stack.append((func, idx + 1))
                func, body, idx = new_func, new_func.body, 0
                dec = new_func.decoded()
                if bc is not None:
                    blocks = bc.index_for(func)
                    if not blocks:
                        bc_misses += 1
                        if bc_attr is None:
                            bc_attr = {}
                        key = ("uncompilable", func.name)
                        bc_attr[key] = bc_attr.get(key, 0) + 1
                last_fetch_line = -1
                rob.append(clock)
                if trace is not None:
                    trace(func, context)
                continue

            elif kind is Op.RET:
                if not call_stack:
                    break  # return from the entry function: done
                clock = self._do_return(func, idx, regs, call_stack,
                                        unresolved, clock, context,
                                        translate, result)
                func, idx = call_stack.pop()
                body = func.body
                dec = func.decoded()
                if bc is not None:
                    blocks = bc.index_for(func)
                last_fetch_line = -1
                rob.append(clock)
                continue

            elif kind is Op.FENCE:
                t = clock
                for resolve in unresolved:
                    if resolve > t:
                        t = resolve
                for ready in reg_ready.values():
                    if ready > t:
                        t = ready
                clock = t
                unresolved.clear()
                taint_until.clear()
                rob.append(clock)

            elif kind is Op.FLUSH:
                va = regs[op.src1] + op.imm
                try:
                    pa = translate(va)
                except PageFault:
                    pa = None
                if pa is not None:
                    self.hierarchy.flush_data(pa)
                rob.append(clock)

            elif kind is Op.NOP:
                rob.append(clock)

            elif kind is Op.KRET:
                break

            idx += 1

        # Drain: the program is not done when its last op issues but when
        # everything in flight completes (the return to userspace cannot
        # retire past incomplete older instructions).
        for done in rob:
            if done > clock:
                clock = done
        for resolve in unresolved:
            if resolve > clock:
                clock = resolve
        if charge_kernel_entry:
            clock += self.policy.kernel_exit_cost(context.context_id)
        result.cycles = clock
        result.regs = regs
        if bc is not None:
            bc.hits += bc_hits
            bc.misses += bc_misses
            bc.invalidations += bc_invalidations
            if bc_attr is not None:
                reasons = bc.miss_reasons
                for (reason, _fn), count in bc_attr.items():
                    reasons[reason] = reasons.get(reason, 0) + count
        registry = obs.active_registry()
        if registry is not None:
            self._publish_run(registry, entry_name, result,
                              fetch_lines + facc[0], fetch_stall + facc[1],
                              bc, bc_hits, bc_misses, bc_invalidations,
                              bc_attr, context)
        if rt._ACTIVE is not None:
            bc_miss: dict[str, int] = {}
            if bc_attr is not None:
                for (reason, _fn), count in bc_attr.items():
                    bc_miss[reason] = bc_miss.get(reason, 0) + count
            rt.step("pipeline", entry_name, result.cycles,
                    fetch_stall=fetch_stall + facc[1],
                    fence_stall=result.fence_stall_cycles,
                    bc_hits=bc_hits, bc_miss=bc_miss)
        # Keep journal cycle stamps monotonic across runs: the next run's
        # events land after everything this run emitted.
        ev.advance(result.cycles)
        return result

    def _publish_run(self, registry, entry_name: str, result: ExecResult,
                     fetch_lines: int, fetch_stall: float,
                     bc=None, bc_hits: int = 0, bc_misses: int = 0,
                     bc_invalidations: int = 0, bc_attr=None,
                     context=None) -> None:
        """Publish one run's speculation statistics to the obs plane.

        Deferred to run completion so the hot loop pays nothing beyond
        two local accumulations; publishing only *reads* the result, so
        enabling observability cannot change any measured number.
        """
        registry.add("pipeline.runs")
        registry.add("pipeline.fetch.lines", fetch_lines)
        registry.add("pipeline.fetch.stall_cycles", fetch_stall)
        registry.add("pipeline.execute.loads", result.loads)
        registry.add("pipeline.execute.speculative_loads",
                     result.speculative_loads)
        registry.add("pipeline.commit.ops", result.committed_ops)
        registry.add("pipeline.transient.ops", result.transient_ops)
        registry.add("pipeline.transient.loads_executed",
                     result.transient_loads_executed)
        registry.add("pipeline.transient.loads_blocked",
                     result.transient_loads_blocked)
        registry.add("pipeline.mispredict.conditional",
                     result.mispredictions)
        registry.add("pipeline.mispredict.indirect",
                     result.indirect_mispredictions)
        registry.add("pipeline.cfi_suppressions", result.cfi_suppressions)
        registry.add("pipeline.fence.stall_cycles",
                     result.fence_stall_cycles)
        if bc is not None:
            # Block JIT counters: published only when the cache is armed,
            # so cache-off snapshots stay byte-identical.
            registry.add("pipeline.blockcache.hits", bc_hits)
            registry.add("pipeline.blockcache.misses", bc_misses)
            registry.add("pipeline.blockcache.invalidations",
                         bc_invalidations)
            registry.gauge("pipeline.blockcache.compiled_blocks",
                           bc.compiled_blocks)
            if bc_attr:
                # Miss attribution: per-reason totals plus tenant x
                # scheme x kernel-function counters for the dashboard.
                # Conservation: the per-reason counters sum to
                # pipeline.blockcache.misses.
                ctx = context.context_id if context is not None else 0
                # Registry-derived label, not the raw policy name: names
                # like "spot-kpti+retpoline" contain metric-hostile
                # characters, and the registry collision-checks labels so
                # two schemes can never silently share attr counters.
                from repro.defenses.registry import policy_metric_label
                scheme = policy_metric_label(self.policy)
                for (reason, fn), count in bc_attr.items():
                    registry.add(f"pipeline.blockcache.miss.{reason}",
                                 count)
                    registry.add(
                        "pipeline.blockcache.attr."
                        f"c{ctx}.{scheme}.{fn}.{reason}", count)
        for reason, count in result.fenced_loads.items():
            registry.add(f"pipeline.fence.reason.{reason}", count)
        total_fenced = result.total_fenced
        if total_fenced:
            # Per-entry-function fence attribution: the counter the
            # differential profiler joins against the span tree to build
            # the paper's Figure 9-style per-function breakdown.
            registry.add(f"pipeline.fence.by_fn.{entry_name}", total_fenced)
        registry.observe("pipeline.run_cycles", result.cycles)
        # Span attribution: the kernel-function node keeps the cycles not
        # explained by a stall phase.  In this scoreboard model stalls are
        # per-instruction waits that can overlap compute (and each other)
        # on the critical path, so the raw components may exceed the wall
        # cycles; the phase shares are scaled to the overlap-free stall
        # time, keeping the subtree sum exactly equal to the run's cycles
        # (the exact per-component figures live in the pipeline.*
        # counters).
        fence_stall = result.fence_stall_cycles
        stall = fence_stall + fetch_stall
        covered = min(stall, result.cycles)
        scale = covered / stall if stall > 0.0 else 0.0
        with registry.span(f"fn/{entry_name}"):
            registry.tick(result.cycles - covered)
            with registry.span("phase/fetch_stall"):
                registry.tick(fetch_stall * scale)
            with registry.span("phase/fence_stall"):
                registry.tick(fence_stall * scale)

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------

    def _spec_until(self, unresolved: list[float], t: float) -> float:
        """Latest in-flight resolution time after ``t`` (0.0 if none).

        Also prunes resolved entries to keep the list small.
        """
        if not unresolved:
            return 0.0
        latest = 0.0
        keep = []
        for resolve in unresolved:
            if resolve > t:
                keep.append(resolve)
                if resolve > latest:
                    latest = resolve
        if len(keep) != len(unresolved):
            unresolved[:] = keep
        return latest

    def _do_load(self, op: MicroOp, func: Function, idx: int,
                 regs: dict, reg_ready: dict, taint_until: dict,
                 unresolved: list[float], clock: float,
                 context: ExecutionContext, translate, result: ExecResult,
                 rob: deque) -> float:
        t = clock
        ready = reg_ready.get(op.src1)
        if ready is not None and ready > t:
            t = ready
        va = regs[op.src1] + op.imm
        try:
            pa = translate(va)
        except PageFault:
            # Architectural fault on the committed path: model as a
            # fixed-cost fault that reads zero (the kernel image generator
            # never emits faulting committed loads; this is a guard).
            regs[op.dst] = 0
            reg_ready[op.dst] = t + 50.0
            rob.append(t + 50.0)
            result.loads += 1
            return clock

        t += self.tlb.access(va)
        spec_until = self._spec_until(unresolved, t)
        speculative = spec_until > 0.0
        result.loads += 1

        src_taint = taint_until.get(op.src1, 0.0)
        tainted = src_taint > t
        if speculative:
            result.speculative_loads += 1
            if self._passive_allow and ev.active_journal() is None:
                # UNSAFE fast path: the decision is statically ALLOW with
                # no latency, no LRU freeze, and no event emission, so the
                # query (and the stats-free L1 probe feeding it) can be
                # skipped without changing any measured number.
                access = self.hierarchy.access_data(pa)
                regs[op.dst] = self.memory.load(pa)
                done = t + access.latency
                reg_ready[op.dst] = done
                taint_until[op.dst] = max(spec_until, src_taint)
                rob.append(done)
                return clock
            l1_hit = self.hierarchy.is_l1d_hit(pa)
            journal = ev.active_journal()
            if journal is not None:
                ev.set_site(t, context.context_id, func.va_of(idx),
                            func.name, self.policy.name)
            decision = self.policy.check_load(LoadQuery(
                inst_va=func.va_of(idx), load_va=va, load_pa=pa,
                context_id=context.context_id, domain=context.domain,
                speculative=True, transient=False, tainted=tainted,
                l1_hit=l1_hit))
            if not decision.allow:
                # Stall to the visibility point: no older instruction can
                # squash the load once all in-flight predictions resolve.
                result.record_fence(decision.reason or self.policy.name)
                if journal is not None:
                    journal.emit(
                        "fence", cycle=t, context=context.context_id,
                        pc=func.va_of(idx), kernel_fn=func.name,
                        reason=decision.reason or self.policy.name,
                        scheme=self.policy.name)
                stalled_to = max(t, spec_until) + decision.extra_latency
                result.fence_stall_cycles += stalled_to - t
                t = stalled_to
                speculative = False
            else:
                t += decision.extra_latency

        if speculative and decision.invisible:
            # InvisiSpec: read around the caches into a speculative
            # buffer; the line installs only at the replay (the committed
            # path always reaches its VP, so the fill happens -- late).
            latency = self.hierarchy.probe_latency(pa) \
                + decision.extra_latency
            self.hierarchy.access_data(pa)  # the VP-time replay/install
            regs[op.dst] = self.memory.load(pa)
            done = max(t, spec_until) + latency
            reg_ready[op.dst] = t + latency
            taint_until[op.dst] = max(spec_until, src_taint)
            rob.append(done)
            return clock

        touch_lru = not (speculative and self.policy.dom_lru_freeze())
        access = self.hierarchy.access_data(pa, touch_lru=touch_lru)
        regs[op.dst] = self.memory.load(pa)
        done = t + access.latency
        reg_ready[op.dst] = done
        if speculative:
            # STT-style taint: data stays tainted until the youngest
            # prediction the load sits under resolves.
            taint_until[op.dst] = max(spec_until, src_taint)
        elif op.dst in taint_until:
            del taint_until[op.dst]
        rob.append(done)
        return clock

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------

    def _do_branch(self, op: MicroOp, func: Function, idx: int,
                   regs: dict, reg_ready: dict, taint_until: dict,
                   unresolved: list[float], clock: float,
                   context: ExecutionContext, translate,
                   result: ExecResult) -> tuple[float, int, bool]:
        pc = func.va_of(idx)
        predictor = self.branch_unit.conditional
        predicted_taken = predictor.predict(pc)
        actual_taken = regs[op.src1] != 0
        t = clock
        ready = reg_ready.get(op.src1)
        if ready is not None and ready > t:
            t = ready
        resolve = t + self.config.branch_resolve_latency
        if self.policy.delays_tainted_branch_resolution():
            # The tainting load reaches its VP only once older predictions
            # resolve; the squash/wakeup broadcast then costs another
            # resolution round -- the serialization that gives STT its
            # residual cost on data-dependent kernel spin loops.
            taint = taint_until.get(op.src1, 0.0)
            if taint > 0.0:
                delayed = taint + self.config.stt_resolution_lag
                if delayed > resolve:
                    resolve = delayed
        predictor.update(pc, actual_taken)
        if predicted_taken == actual_taken:
            unresolved.append(resolve)
        else:
            result.mispredictions += 1
            wrong_idx = op.target if predicted_taken else idx + 1
            self._run_transient(func, wrong_idx, regs, unresolved, clock,
                                resolve, context, translate, result,
                                taint_until=taint_until)
            clock = resolve + self.config.mispredict_penalty
        next_idx = op.target if actual_taken else idx + 1
        return clock, next_idx, resolve

    def _do_indirect(self, op: MicroOp, func: Function, idx: int,
                     regs: dict, reg_ready: dict, unresolved: list[float],
                     clock: float, context: ExecutionContext, translate,
                     result: ExecResult) -> tuple[float, Function]:
        pc = func.va_of(idx)
        actual_va = regs[op.src1]
        resolved = self.layout.resolve_va(actual_va)
        if resolved is None:
            raise RuntimeError(
                f"indirect branch in {func.name} to unmapped VA {actual_va:#x}")
        target_func, _ = resolved

        t = clock
        ready = reg_ready.get(op.src1)
        if ready is not None and ready > t:
            t = ready

        if self.policy.retpoline_enabled():
            # Retpoline: the indirect branch never speculates; pays a fixed
            # construct cost instead (capture loop + pause).
            clock = t + self.config.retpoline_penalty
            return clock, target_func

        predicted_va = self.branch_unit.btb.predict(pc, context.domain)
        resolve = t + self.config.branch_resolve_latency
        if predicted_va is not None and self.policy.cfi_enabled() \
                and not self._is_valid_cfi_target(predicted_va):
            # SpecCFI: the predicted target fails the label check; the
            # front end stalls until the branch resolves architecturally.
            result.cfi_suppressions += 1
            predicted_va = None
            clock = resolve
        if predicted_va is None:
            clock = max(clock, t + self.config.btb_miss_penalty)
        elif predicted_va == actual_va:
            unresolved.append(resolve)
        else:
            result.indirect_mispredictions += 1
            wrong = self.layout.resolve_va(predicted_va)
            if wrong is not None:
                wrong_func, wrong_idx = wrong
                self._run_transient(wrong_func, wrong_idx, regs, unresolved,
                                    clock, resolve, context, translate,
                                    result)
            clock = resolve + self.config.mispredict_penalty
        self.branch_unit.btb.install(pc, actual_va, context.domain)
        return clock, target_func

    def _is_valid_cfi_target(self, va: int) -> bool:
        """CFI label check: indirect control flow may only land on a
        function entry point."""
        resolved = self.layout.resolve_va(va)
        return resolved is not None and resolved[1] == 0

    def _do_return(self, func: Function, idx: int, regs: dict,
                   call_stack: list[tuple[Function, int]],
                   unresolved: list[float], clock: float,
                   context: ExecutionContext, translate,
                   result: ExecResult) -> float:
        actual_func, actual_idx = call_stack[-1]
        actual_va = actual_func.va_of(actual_idx)
        predicted_va = self.branch_unit.rsb.pop_predict()
        if predicted_va is None and \
                self.branch_unit.rsb.config.btb_fallback_on_underflow:
            # Retbleed-vulnerable behaviour: RSB underflow falls back to the
            # BTB, which an attacker can poison.
            predicted_va = self.branch_unit.btb.predict(
                func.va_of(idx), context.domain)
        if predicted_va is not None and predicted_va != actual_va \
                and self.policy.cfi_enabled() \
                and not self._is_valid_cfi_target(predicted_va):
            result.cfi_suppressions += 1
            predicted_va = None
        resolve = clock + self.config.ret_resolve_latency
        if predicted_va is None:
            clock += self.config.btb_miss_penalty
        elif predicted_va == actual_va:
            unresolved.append(resolve)
        else:
            result.indirect_mispredictions += 1
            wrong = self.layout.resolve_va(predicted_va)
            if wrong is not None:
                wrong_func, wrong_idx = wrong
                # The hijacked path inherits live register values -- the
                # speculative type confusion of Figure 4.2: a pointer left
                # in a register is reinterpreted by the gadget.
                self._run_transient(wrong_func, wrong_idx, regs, unresolved,
                                    clock, resolve, context, translate,
                                    result)
            clock = resolve + self.config.mispredict_penalty
        return clock

    # ------------------------------------------------------------------
    # Transient (wrong-path) execution
    # ------------------------------------------------------------------

    def _run_transient(self, func: Function, idx: int, regs: dict,
                       unresolved: list[float], clock: float, resolve: float,
                       context: ExecutionContext, translate,
                       result: ExecResult,
                       taint_until: dict | None = None) -> None:
        """Execute wrong-path micro-ops until the squash.

        Register state is a shadow copy (`inherit_regs` defaults to the
        committed-path registers -- that inheritance is what makes the
        speculative type confusion of passive attacks work: a register
        holding a pointer is reinterpreted by the hijacked target).
        Architectural memory and register state are untouched; the *only*
        lasting effects are cache fills by allowed loads, which is the
        covert-channel transmission the attacker later measures.
        """
        budget = min(
            self.config.max_transient_ops,
            max(0, int((resolve - clock) * self.config.fetch_width)))
        if budget <= 0:
            return
        shadow: dict[str, object] = dict(regs)
        # STT-style taint over the wrong path: registers written by
        # speculative loads are tainted; a load is a blockable transmitter
        # only when its *address* is tainted.  Taint inherited from the
        # committed path carries over.
        shadow_taint: set[str] = set()
        if taint_until:
            shadow_taint.update(
                reg for reg, until in taint_until.items() if until > clock)
        shadow_stack: list[tuple[Function, int]] = []
        body = func.body
        executed = 0
        while executed < budget:
            if idx >= len(body):
                if not shadow_stack:
                    break
                func, idx = shadow_stack.pop()
                body = func.body
                continue
            op = body[idx]
            executed += 1
            result.transient_ops += 1
            kind = op.op
            if kind is Op.ALU:
                value = _alu_eval_shadow(op, shadow)
                shadow[op.dst] = value
                if any(src in shadow_taint for src in op.reads()):
                    shadow_taint.add(op.dst)
                else:
                    shadow_taint.discard(op.dst)
            elif kind is Op.LOAD:
                base = shadow.get(op.src1, UNAVAILABLE)
                if base is UNAVAILABLE:
                    shadow[op.dst] = UNAVAILABLE
                    idx += 1
                    continue
                va = base + op.imm
                try:
                    pa = translate(va)
                except PageFault:
                    # Speculative faults are suppressed; the load squashes
                    # without architectural effect and returns nothing.
                    shadow[op.dst] = UNAVAILABLE
                    idx += 1
                    continue
                journal = ev.active_journal()
                if self._passive_allow and journal is None:
                    # Same UNSAFE fast path as the committed-side load.
                    self.hierarchy.access_data(pa)
                    shadow[op.dst] = self.memory.load(pa)
                    shadow_taint.add(op.dst)
                    result.transient_loads_executed += 1
                    idx += 1
                    continue
                if journal is not None:
                    ev.set_site(clock, context.context_id, func.va_of(idx),
                                func.name, self.policy.name)
                decision = self.policy.check_load(LoadQuery(
                    inst_va=func.va_of(idx), load_va=va, load_pa=pa,
                    context_id=context.context_id, domain=context.domain,
                    speculative=True, transient=True,
                    tainted=op.src1 in shadow_taint,
                    l1_hit=self.hierarchy.is_l1d_hit(pa)))
                if decision.allow:
                    if not decision.invisible:
                        # The cache fill IS the covert-channel transmit;
                        # invisible (InvisiSpec) loads read into a
                        # speculative buffer that squashes with the path,
                        # leaving nothing for the receiver to measure.
                        touch = not self.policy.dom_lru_freeze()
                        self.hierarchy.access_data(pa, touch_lru=touch)
                    shadow[op.dst] = self.memory.load(pa)
                    shadow_taint.add(op.dst)
                    result.transient_loads_executed += 1
                else:
                    result.record_fence(decision.reason or self.policy.name)
                    result.transient_loads_blocked += 1
                    shadow[op.dst] = UNAVAILABLE
                    if journal is not None:
                        # A blocked *wrong-path* load is a stopped leak
                        # attempt: the covert-channel transmit that never
                        # happened.
                        journal.emit(
                            "blocked-leak", cycle=clock,
                            context=context.context_id,
                            pc=func.va_of(idx), kernel_fn=func.name,
                            reason=decision.reason or self.policy.name,
                            scheme=self.policy.name)
            elif kind is Op.STORE:
                pass  # transient stores never become visible
            elif kind is Op.BR:
                cond = shadow.get(op.src1, UNAVAILABLE)
                if cond is UNAVAILABLE:
                    break  # control flow depends on an unavailable value
                if cond != 0:
                    idx = op.target
                    continue
            elif kind is Op.JMP:
                idx = op.target
                continue
            elif kind is Op.CALL:
                callee = self.layout.get(op.callee)
                if callee is None:
                    break
                shadow_stack.append((func, idx + 1))
                func, body, idx = callee, callee.body, 0
                continue
            elif kind in (Op.ICALL, Op.IJMP):
                target_va = shadow.get(op.src1, UNAVAILABLE)
                if target_va is UNAVAILABLE:
                    break
                resolved = self.layout.resolve_va(target_va)
                if resolved is None:
                    break
                new_func, new_idx = resolved
                if kind is Op.ICALL:
                    shadow_stack.append((func, idx + 1))
                func, idx = new_func, new_idx
                body = func.body
                continue
            elif kind is Op.RET:
                if not shadow_stack:
                    break
                func, idx = shadow_stack.pop()
                body = func.body
                continue
            elif kind is Op.FENCE:
                break  # lfence stops speculation dead
            elif kind is Op.FLUSH:
                base = shadow.get(op.src1, UNAVAILABLE)
                if base is not UNAVAILABLE:
                    try:
                        self.hierarchy.flush_data(translate(base + op.imm))
                    except PageFault:
                        pass
            elif kind is Op.KRET:
                break
            idx += 1


_IMPLICIT_RET = MicroOp(Op.RET)


def _alu_eval(op: MicroOp, regs: dict[str, int]) -> int:
    """Evaluate an ALU op against architectural registers."""
    kind = op.alu_op
    if kind is AluOp.LI:
        return op.imm
    a = regs.get(op.src1, 0)
    if kind is AluOp.MOV:
        return a
    b = regs.get(op.src2, 0) if op.src2 is not None else op.imm
    if kind is AluOp.ADD:
        return a + b
    if kind is AluOp.SUB:
        return a - b
    if kind is AluOp.AND:
        return a & b
    if kind is AluOp.OR:
        return a | b
    if kind is AluOp.XOR:
        return a ^ b
    if kind is AluOp.SHL:
        return a << (b & 63)
    if kind is AluOp.SHR:
        return a >> (b & 63)
    if kind is AluOp.MUL:
        return a * b
    if kind is AluOp.CMPLT:
        return 1 if a < b else 0
    if kind is AluOp.CMPLTU:
        # Unsigned 64-bit compare: the semantics real bounds checks use,
        # where a negative index wraps to a huge value and fails.
        return 1 if (a & _U64) < (b & _U64) else 0
    if kind is AluOp.CMPEQ:
        return 1 if a == b else 0
    raise ValueError(f"unknown ALU op: {kind}")


_U64 = (1 << 64) - 1


def _alu_eval_shadow(op: MicroOp, shadow: dict) -> object:
    """ALU evaluation over shadow registers, propagating unavailability."""
    kind = op.alu_op
    if kind is AluOp.LI:
        return op.imm
    a = shadow.get(op.src1, 0)
    if a is UNAVAILABLE:
        return UNAVAILABLE
    if kind is AluOp.MOV:
        return a
    if op.src2 is not None:
        b = shadow.get(op.src2, 0)
        if b is UNAVAILABLE:
            return UNAVAILABLE
    else:
        b = op.imm
    if kind is AluOp.ADD:
        return a + b
    if kind is AluOp.SUB:
        return a - b
    if kind is AluOp.AND:
        return a & b
    if kind is AluOp.OR:
        return a | b
    if kind is AluOp.XOR:
        return a ^ b
    if kind is AluOp.SHL:
        return a << (b & 63)
    if kind is AluOp.SHR:
        return a >> (b & 63)
    if kind is AluOp.MUL:
        return a * b
    if kind is AluOp.CMPLT:
        return 1 if a < b else 0
    if kind is AluOp.CMPLTU:
        return 1 if (a & _U64) < (b & _U64) else 0
    if kind is AluOp.CMPEQ:
        return 1 if a == b else 0
    raise ValueError(f"unknown ALU op: {kind}")
