"""Defense schemes evaluated in the paper (Chapter 7) and beyond: the
unsafe baseline, hardware-only schemes, Perspective, spot mitigations,
and related-work alternatives (SafeSpec, ConTExT) -- all behind the
scheme registry (:mod:`repro.defenses.registry`)."""

from repro.defenses.base import CountingPolicy, FenceStats
from repro.defenses.context import ConTExTPolicy
from repro.defenses.perspective import PerspectivePolicy
from repro.defenses.registry import (
    SchemeCapabilities,
    SchemeRegistrationError,
    SchemeSpec,
    build_policy,
    derive_metric_label,
    get_scheme,
    policy_metric_label,
    register_scheme,
    registered_schemes,
    scheme_capabilities,
    unregister_scheme,
)
from repro.defenses.safespec import SafeSpecPolicy
from repro.defenses.schemes import (
    DelayOnMissPolicy,
    FencePolicy,
    InvisiSpecPolicy,
    STTPolicy,
    UnsafePolicy,
)
from repro.defenses.spot import (
    KPTI_SWITCH_COST,
    KPTI_TLB_PRESSURE,
    SpotMitigationPolicy,
)

__all__ = [
    "ConTExTPolicy",
    "CountingPolicy",
    "DelayOnMissPolicy",
    "FencePolicy",
    "FenceStats",
    "InvisiSpecPolicy",
    "KPTI_SWITCH_COST",
    "KPTI_TLB_PRESSURE",
    "PerspectivePolicy",
    "STTPolicy",
    "SafeSpecPolicy",
    "SchemeCapabilities",
    "SchemeRegistrationError",
    "SchemeSpec",
    "SpotMitigationPolicy",
    "UnsafePolicy",
    "build_policy",
    "derive_metric_label",
    "get_scheme",
    "policy_metric_label",
    "register_scheme",
    "registered_schemes",
    "scheme_capabilities",
    "unregister_scheme",
]
