"""Defense schemes evaluated in the paper (Chapter 7): the unsafe
baseline, hardware-only schemes, Perspective, and spot mitigations."""

from repro.defenses.base import CountingPolicy, FenceStats
from repro.defenses.perspective import PerspectivePolicy
from repro.defenses.schemes import (
    DelayOnMissPolicy,
    FencePolicy,
    InvisiSpecPolicy,
    STTPolicy,
    UnsafePolicy,
)
from repro.defenses.spot import (
    KPTI_SWITCH_COST,
    KPTI_TLB_PRESSURE,
    SpotMitigationPolicy,
)

__all__ = [
    "CountingPolicy",
    "DelayOnMissPolicy",
    "FencePolicy",
    "FenceStats",
    "InvisiSpecPolicy",
    "KPTI_SWITCH_COST",
    "KPTI_TLB_PRESSURE",
    "PerspectivePolicy",
    "STTPolicy",
    "SpotMitigationPolicy",
    "UnsafePolicy",
]
