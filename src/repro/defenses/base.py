"""Defense-scheme base utilities.

Every scheme implements :class:`repro.cpu.pipeline.SpeculationPolicy`; the
pipeline consults ``check_load`` for each load issued while speculation is
unresolved, and a blocked load waits for its visibility point (Section 6.2).
This module adds a small stats mixin so schemes report fence counts per
source uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.pipeline import LoadDecision, LoadQuery, SpeculationPolicy


@dataclass
class FenceStats:
    """Per-source fence counters (Table 10.1 aggregates these)."""

    by_reason: dict[str, int] = field(default_factory=dict)

    def record(self, reason: str) -> None:
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.by_reason.values())

    def reset(self) -> None:
        self.by_reason.clear()


class CountingPolicy(SpeculationPolicy):
    """Base class recording a fence event per blocking decision."""

    def __init__(self) -> None:
        self.fence_stats = FenceStats()

    def block(self, reason: str,
              extra_latency: float = 0.0) -> LoadDecision:
        self.fence_stats.record(reason)
        return LoadDecision(False, reason=reason, extra_latency=extra_latency)

    def reset_stats(self) -> None:
        self.fence_stats.reset()


__all__ = ["CountingPolicy", "FenceStats", "LoadDecision", "LoadQuery",
           "SpeculationPolicy"]
