"""ConTExT [Schwarz et al., NDSS'20]: non-transient memory tagging.

ConTExT lets the OS mark pages holding secrets as *non-transient*.  The
hardware propagates the tag through the page tables into the TLB and
cache lines; a transient-execution load that touches a tagged line gets
a dummy value instead of the data, and real propagation stalls until
the load is at the head of the ROB (i.e. non-speculative).  Everything
untagged speculates at full speed, which is why ConTExT's overhead is
near zero: protection is paid only where secrets actually live.

Model mapping: :meth:`repro.kernel.kernel.MiniKernel.plant_secret` tags
the frames it writes (``MiniKernel.tag_non_transient``), and this policy
blocks speculative loads whose physical frame is tagged.  A blocked
committed-path load stalls to its visibility point -- architecturally
identical to "dummy value now, real value at retire", because no
dependent consumed the dummy.  A blocked wrong-path load returns nothing
and squashes, so the secret never reaches a covert-channel transmitter.
"""

from __future__ import annotations

from repro.cpu.pipeline import LoadDecision, LoadQuery
from repro.defenses.base import CountingPolicy
from repro.defenses.registry import SchemeCapabilities, register_scheme
from repro.kernel.layout import PAGE_SHIFT


class ConTExTPolicy(CountingPolicy):
    """Block speculative loads to frames tagged non-transient."""

    name = "context"

    def __init__(self, kernel) -> None:
        super().__init__()
        #: The kernel owns the tag set (``non_transient_frames``); the
        #: policy reads it live, so tagging after arming still protects.
        self.kernel = kernel

    def check_load(self, query: LoadQuery) -> LoadDecision:
        if (query.load_pa >> PAGE_SHIFT) in self.kernel.non_transient_frames:
            return self.block("context-tagged")
        return LoadDecision.ALLOW


def _make_context(framework=None, kernel=None):
    if kernel is None:
        raise ValueError(
            "scheme 'context' needs the kernel that owns the "
            "non-transient tags (pass kernel=)")
    return ConTExTPolicy(kernel)


register_scheme(
    "context", _make_context,
    SchemeCapabilities(speculative_loads="restricted", transient_fill=True,
                       needs_kernel=True),
    summary="secret pages tagged non-transient; speculative loads to "
            "tagged frames stall, everything else runs free")
