"""The Perspective enforcement policy (Section 6.2).

For every speculative load the hardware checks, in parallel:

* **ISV**: does the load instruction belong to the context's instruction
  speculation view?  The ISV cache is consulted first; on a miss the load
  is conservatively blocked while the entry refills from the (demand-
  populated) ISV bitmap page.  A context with *no installed ISV* trusts no
  kernel code speculatively -- installing views is what relaxes protection.
* **DSV**: does the target page belong to the context's data speculation
  view?  Same conservative-miss handling through the DSV cache, refilled
  by a DSVMT walk.

A blocked load proceeds at its visibility point; on hits, LRU bits are not
updated until the VP either (handled by the pipeline's squash semantics --
wrong-path blocked loads never touch the cache at all).
"""

from __future__ import annotations

from repro.core.dsvmt import WALK_LATENCY
from repro.core.framework import Perspective
from repro.core.hardware import REFILL_LATENCY, isv_block_of
from repro.obs import events as ev
from repro.reliability.faultplane import DSVMTWalkFault
from repro.cpu.pipeline import LoadDecision, LoadQuery
from repro.defenses.base import CountingPolicy
from repro.defenses.registry import SchemeCapabilities, register_scheme
from repro.kernel.layout import PAGE_SHIFT


class PerspectivePolicy(CountingPolicy):
    """Hardware enforcement of DSVs + ISVs via the view caches."""

    name = "perspective"

    def __init__(self, framework: Perspective,
                 enforce_isv: bool = True,
                 enforce_dsv: bool = True,
                 cfi: bool = True,
                 treat_unknown_as_owned: bool = False) -> None:
        super().__init__()
        self.framework = framework
        self.enforce_isv = enforce_isv
        self.enforce_dsv = enforce_dsv
        #: Perspective builds on SpecCFI-style control-flow integrity
        #: (Section 5.1): without it, speculation could be hijacked into
        #: the middle of an ISV-trusted function, past its bounds checks.
        self.cfi = cfi
        #: Sensitivity knob (Section 9.2, "Unknown Allocations"): when set,
        #: memory outside *every* DSV (boot globals, per-cpu) is allowed
        #: rather than conservatively blocked, isolating the overhead that
        #: unknown allocations contribute.  Insecure; measurement only.
        self.treat_unknown_as_owned = treat_unknown_as_owned
        # Per-context memo of (ISV, bitmap pages): resolved once per view
        # epoch instead of on every speculative load.  Invalidated when
        # the framework installs/replaces any view (framework.view_epoch),
        # so runtime shrinking still takes effect immediately.  Only the
        # *object references* are memoized -- every bitmap query and cache
        # lookup still runs, keeping all measured stats identical.
        self._view_memo: dict[int, tuple] = {}
        self._view_epoch = framework.view_epoch

    def _views_for(self, ctx: int) -> tuple:
        fw = self.framework
        if self._view_epoch != fw.view_epoch:
            self._view_memo.clear()
            self._view_epoch = fw.view_epoch
        views = self._view_memo.get(ctx)
        if views is None:
            views = (fw.isv_for(ctx), fw.isv_pages_for(ctx))
            self._view_memo[ctx] = views
        return views

    def cfi_enabled(self) -> bool:
        return self.cfi

    def check_load(self, query: LoadQuery) -> LoadDecision:
        ctx = query.context_id
        if self.enforce_isv:
            decision = self._check_isv(ctx, query)
            if decision is not None:
                return decision
        if self.enforce_dsv:
            decision = self._check_dsv(ctx, query)
            if decision is not None:
                return decision
        return LoadDecision.ALLOW

    # -- ISV side ---------------------------------------------------------

    def _check_isv(self, ctx: int, query: LoadQuery) -> LoadDecision | None:
        isv, pages = self._views_for(ctx)
        if isv is None:
            # No view installed: nothing is trusted speculatively.
            ev.emit_here("isv-miss", reason="no-view")
            return self.block("isv")
        cache = self.framework.isv_cache
        block_key = isv_block_of(query.inst_va)
        cached = cache.lookup(ctx, block_key)
        if cached is None:
            # Conservative block on miss; refill from the bitmap page.
            ev.emit_here("isv-miss", reason="cache-refill")
            bit = pages.bit_for(query.inst_va)
            cache.fill(ctx, block_key, bit)
            return self.block("isv", extra_latency=REFILL_LATENCY)
        if not cached:
            ev.emit_here("isv-miss", reason="untrusted")
            return self.block("isv")
        return None

    # -- DSV side --------------------------------------------------------

    def _check_dsv(self, ctx: int, query: LoadQuery) -> LoadDecision | None:
        frame = query.load_pa >> PAGE_SHIFT
        registry = self.framework.dsv_registry
        if self.treat_unknown_as_owned \
                and registry.owner_of(frame) is None:
            return None
        cache = self.framework.dsv_cache
        cached = cache.lookup(ctx, frame)
        if cached is None:
            try:
                in_view = registry.dsvmt_for(ctx).lookup(frame)
            except DSVMTWalkFault:
                # Fail closed: a failed walk fences the load and leaves
                # no cache entry -- the next access re-walks.
                return self.block("dsv", extra_latency=WALK_LATENCY)
            if not in_view:
                ev.emit_here("dsv-ownership-miss", reason="walk")
            cache.fill(ctx, frame, in_view)
            return self.block("dsv", extra_latency=WALK_LATENCY)
        if not cached:
            ev.emit_here("dsv-ownership-miss", reason="cached")
            return self.block("dsv")
        return None


def _make_perspective(harden: bool):
    """Perspective flavors share one policy class; the flavor lives in
    which ISVs the *caller* installs.  With a ``framework`` the caller
    already built the views (eval environments, conformance, serving);
    with only a ``kernel`` the attack-harness path wires a permissive
    syscall-surface view (hardened for the ++ flavor) and installs the
    policy itself."""
    def make(framework=None, kernel=None):
        if framework is not None:
            return PerspectivePolicy(framework)
        if kernel is not None:
            from repro.attacks.harness import build_perspective
            _, policy = build_perspective(kernel, harden=harden)
            return policy
        raise ValueError(
            "Perspective schemes need a framework (or a kernel to wire "
            "one onto); pass framework= or kernel=")
    return make


_PERSPECTIVE_CAPS = SchemeCapabilities(
    speculative_loads="restricted", transient_fill=True,
    needs_framework=True)

register_scheme(
    "perspective-static", _make_perspective(harden=False),
    _PERSPECTIVE_CAPS,
    summary="Perspective with static-analysis ISVs")
register_scheme(
    "perspective", _make_perspective(harden=False), _PERSPECTIVE_CAPS,
    summary="Perspective with dynamic (traced) ISVs")
register_scheme(
    "perspective++", _make_perspective(harden=True), _PERSPECTIVE_CAPS,
    summary="dynamic ISVs hardened with scanner findings")
