"""The defense-scheme registry: one policy point, many papers.

Every defense evaluated in this reproduction gates the same hardware
policy point ("when may a speculative load issue / when may its fill
commit to shared structures"), so schemes are interchangeable behind
:class:`repro.cpu.pipeline.SpeculationPolicy`.  This module replaces the
closed if/elif scheme enums that used to live in ``repro.eval.envs`` and
``repro.attacks.harness`` with a registry:

* :func:`register_scheme` -- declare a scheme once (name, capability
  flags, factory).  Registration is idempotent for identical specs and a
  hard error for conflicting ones, including *metric-label* collisions
  (two schemes whose names sanitize to the same string-keyed metric
  label would silently merge their observability counters).
* :func:`build_policy` -- the single constructor every consumer calls
  (eval environments, the conformance oracle, the attack harness, the
  serve engine).  Perspective flavors need the ``framework`` the views
  live in; kernel-coupled schemes (ConTExT's non-transient tags) need
  the ``kernel``.
* :class:`SchemeCapabilities` -- machine-checkable contract of what the
  scheme permits.  The hypothesis property suite derives its invariants
  from these flags (e.g. a scheme with ``transient_fill=False`` may
  never return a decision that lets a wrong-path load install a new
  cache line), so a mislabelled scheme fails its own registration tests.

Adding a scheme is one file: subclass ``CountingPolicy``, call
``register_scheme`` at module bottom, and list the module in
``_BUILTIN_MODULES`` (or import it from anywhere before lookup).  The
matrix test-suite (``tests/test_defense_matrix.py``) parameterizes over
:func:`registered_schemes`, so a scheme registered without conformance
and attack-matrix coverage fails collection, not silently.
"""

from __future__ import annotations

import importlib
import re
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "SchemeCapabilities",
    "SchemeSpec",
    "SchemeRegistrationError",
    "register_scheme",
    "unregister_scheme",
    "get_scheme",
    "registered_schemes",
    "scheme_capabilities",
    "build_policy",
    "derive_metric_label",
    "policy_metric_label",
]

#: Modules whose import registers the built-in schemes.  Imported lazily
#: on first registry lookup so this module stays import-cycle free (the
#: pipeline may import us while a defense module imports the pipeline).
_BUILTIN_MODULES = (
    "repro.defenses.schemes",
    "repro.defenses.spot",
    "repro.defenses.safespec",
    "repro.defenses.context",
    "repro.defenses.perspective",
)

#: Allowed values of :attr:`SchemeCapabilities.speculative_loads`.
_SPECULATIVE_LOAD_MODES = ("always", "restricted", "never")

_NAME_RE = re.compile(r"^[a-z0-9+._-]+$")


class SchemeRegistrationError(ValueError):
    """A conflicting re-registration or metric-label collision."""


@dataclass(frozen=True)
class SchemeCapabilities:
    """What a scheme permits at the speculation policy point.

    These flags are a *contract*, not documentation: the property suite
    (``tests/test_registry_properties.py``) generates random load
    queries and checks every registered scheme's decisions against its
    declared capabilities.
    """

    #: When a speculative load may issue: ``"always"`` (every decision
    #: allows), ``"restricted"`` (depends on the query), ``"never"``
    #: (every speculative load stalls to its visibility point).
    speculative_loads: str
    #: May a *wrong-path* (transient) load's fill commit to the shared
    #: cache hierarchy?  ``False`` means fills are blocked, redirected
    #: into shadow/speculative buffers (``LoadDecision.invisible``), or
    #: only L1 hits -- which install nothing new -- are allowed; a
    #: passive cache probe can then never observe a transient fill.
    transient_fill: bool
    #: Does the scheme track taint on speculatively-loaded data (and
    #: therefore delay tainted branch resolution, STT-style)?
    taint_tracking: bool = False
    #: Factory needs the Perspective ``framework`` the views live in.
    needs_framework: bool = False
    #: Factory needs the ``kernel`` (e.g. ConTExT's non-transient tags).
    needs_kernel: bool = False

    def __post_init__(self) -> None:
        if self.speculative_loads not in _SPECULATIVE_LOAD_MODES:
            raise ValueError(
                f"speculative_loads must be one of "
                f"{_SPECULATIVE_LOAD_MODES}, got "
                f"{self.speculative_loads!r}")


@dataclass(frozen=True)
class SchemeSpec:
    """One registered scheme: identity, contract, and constructor."""

    name: str
    capabilities: SchemeCapabilities
    #: ``factory(framework=..., kernel=...) -> SpeculationPolicy``.
    factory: Callable[..., Any] = field(compare=False)
    #: Sanitized, registry-unique label used in string-keyed metrics
    #: (``pipeline.blockcache.attr.c{ctx}.{label}.{fn}.{reason}``).
    metric_label: str = ""
    summary: str = ""


_REGISTRY: dict[str, SchemeSpec] = {}
_METRIC_LABELS: dict[str, str] = {}
_builtins_loaded = False


def derive_metric_label(name: str) -> str:
    """Metric-safe label for a scheme name.

    Metric keys are dot-joined, so the label may contain only
    ``[a-z0-9_-]``; ``+`` becomes ``p`` (``perspective++`` ->
    ``perspectivepp``) and any other foreign character collapses to
    ``-``.  Sanitization can merge distinct names, which is exactly why
    :func:`register_scheme` rejects label collisions up front instead of
    letting two schemes share counters at runtime.
    """
    label = name.lower().replace("+", "p")
    label = re.sub(r"[^a-z0-9_-]+", "-", label).strip("-")
    return label or "scheme"


def policy_metric_label(policy: Any) -> str:
    """The metric label for a live policy instance.

    Policies built by :func:`build_policy` carry the registry's
    collision-checked label; directly-instantiated policies (tests,
    ad-hoc harnesses) fall back to sanitizing their ``name``.
    """
    label = getattr(policy, "metric_label", None)
    if label:
        return label
    return derive_metric_label(getattr(policy, "name", "scheme"))


def register_scheme(name: str, factory: Callable[..., Any],
                    capabilities: SchemeCapabilities, *,
                    metric_label: str | None = None,
                    summary: str = "") -> SchemeSpec:
    """Register a scheme; idempotent for identical specs.

    Raises :class:`SchemeRegistrationError` when ``name`` is already
    registered with a different spec, or when the (possibly derived)
    ``metric_label`` collides with another scheme's.
    """
    if not _NAME_RE.match(name):
        raise SchemeRegistrationError(
            f"invalid scheme name {name!r} (want [a-z0-9+._-]+)")
    label = derive_metric_label(name) if metric_label is None \
        else metric_label
    spec = SchemeSpec(name=name, capabilities=capabilities,
                      factory=factory, metric_label=label,
                      summary=summary)
    existing = _REGISTRY.get(name)
    if existing is not None:
        if existing == spec and existing.factory is spec.factory:
            return existing  # idempotent re-registration
        raise SchemeRegistrationError(
            f"scheme {name!r} is already registered with a different "
            f"spec")
    owner = _METRIC_LABELS.get(label)
    if owner is not None:
        raise SchemeRegistrationError(
            f"metric label {label!r} of scheme {name!r} collides with "
            f"scheme {owner!r}; pass an explicit metric_label=")
    _REGISTRY[name] = spec
    _METRIC_LABELS[label] = name
    return spec


def unregister_scheme(name: str) -> None:
    """Remove a scheme (test hygiene for temporary registrations)."""
    spec = _REGISTRY.pop(name, None)
    if spec is not None:
        _METRIC_LABELS.pop(spec.metric_label, None)


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True  # set first: modules may re-enter lookups
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def get_scheme(name: str) -> SchemeSpec:
    """Look up a registered scheme; ``ValueError`` with the known list
    otherwise (same contract the old closed enums had)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown scheme {name!r} (known: {known})") from None


def registered_schemes() -> tuple[str, ...]:
    """Sorted names of every registered scheme."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def scheme_capabilities(name: str) -> SchemeCapabilities:
    return get_scheme(name).capabilities


def build_policy(scheme: str, framework: Any = None,
                 kernel: Any = None) -> Any:
    """Construct the enforcement policy for a registered scheme.

    The single constructor behind ``repro.eval.envs.build_policy`` and
    ``repro.attacks.harness.build_policy``, so the scheme vocabulary
    cannot drift between the measurement, conformance, serving, and
    attack planes.  ``framework``/``kernel`` are passed through to the
    factory; schemes that need one and did not get it raise a
    ``ValueError`` naming the missing dependency.  The returned policy
    carries the registry's ``metric_label``.
    """
    spec = get_scheme(scheme)
    policy = spec.factory(framework=framework, kernel=kernel)
    policy.metric_label = spec.metric_label
    return policy
