"""SafeSpec [Khasawneh et al., DAC'19]: shadow speculative structures.

SafeSpec duplicates the structures speculation can pollute -- caches and
TLBs -- into *shadow* copies.  A speculative load fills the shadow
structure only; when the load retires the shadow entry is committed into
the real cache/TLB, and when the path squashes the shadow entry is
discarded.  The shared hierarchy therefore never holds a transiently-
filled line, so a passive flush+reload probe sees nothing.

In this model the shadow structures map onto the pipeline's *invisible*
load mechanism (the same hardware point InvisiSpec uses): the load's
data returns to dependents immediately, nothing is installed in the
shared hierarchy, and the fill happens at the visibility point -- which
for a committed-path load is exactly the retire-time shadow commit, and
for a wrong-path load never happens (the squash discards the shadow
entry).  SafeSpec differs from InvisiSpec in cost, not mechanism: the
shadow structures are *searched* like the real ones, so there is no
replay round-trip, only a small commit-at-retire charge.
"""

from __future__ import annotations

from repro.cpu.pipeline import LoadDecision, LoadQuery
from repro.defenses.base import CountingPolicy
from repro.defenses.registry import SchemeCapabilities, register_scheme


class SafeSpecPolicy(CountingPolicy):
    """Speculative loads fill shadow structures, committed at retire."""

    name = "safespec"

    #: Cycles to move a shadow entry into the real hierarchy at retire.
    #: Much cheaper than InvisiSpec's replay round-trip (10.0): the
    #: shadow cache already holds the line; commit is a local transfer.
    SHADOW_COMMIT_LATENCY = 2.0

    def __init__(self) -> None:
        super().__init__()
        #: Shadow-structure bookkeeping (observational only -- the
        #: decision below never depends on these, so stats cannot change
        #: measured behaviour).
        self.shadow_fills = 0
        self.shadow_commits = 0
        self.shadow_squashes = 0

    def check_load(self, query: LoadQuery) -> LoadDecision:
        self.fence_stats.record("shadow-fill")
        self.shadow_fills += 1
        if query.transient:
            # Wrong path (ground truth): the shadow entry will be
            # discarded at squash, leaving the shared hierarchy clean.
            self.shadow_squashes += 1
        else:
            self.shadow_commits += 1
        return LoadDecision(True, reason="shadow-fill",
                            extra_latency=self.SHADOW_COMMIT_LATENCY,
                            invisible=True)

    def reset_stats(self) -> None:
        super().reset_stats()
        self.shadow_fills = 0
        self.shadow_commits = 0
        self.shadow_squashes = 0


register_scheme(
    "safespec",
    lambda framework=None, kernel=None: SafeSpecPolicy(),
    SchemeCapabilities(speculative_loads="always", transient_fill=False),
    summary="shadow speculative cache/TLB structures, squashed or "
            "committed at retire")
