"""Baseline and hardware-only defense schemes (Chapter 7's configurations).

* :class:`UnsafePolicy` -- the unprotected baseline ("UNSAFE").
* :class:`FencePolicy` -- delay every speculative load until all prior
  branches resolve ("FENCE"); simplest, slowest (47.5% on LEBench).
* :class:`DelayOnMissPolicy` -- DOM [Sakalis et al., ISCA'19]: speculative
  L1 hits proceed (without touching replacement state); misses wait.
* :class:`STTPolicy` -- Speculative Taint Tracking [Yu et al., MICRO'19]:
  only transmitters whose operands depend on speculatively-accessed data
  are delayed.

These are hardware-only: they need no OS information, which is exactly why
they must be conservative (FENCE/DOM) or complex (STT) -- the trade-off
Perspective's pliable interface escapes.
"""

from __future__ import annotations

from repro.cpu.pipeline import LoadDecision, LoadQuery, SpeculationPolicy
from repro.defenses.base import CountingPolicy
from repro.defenses.registry import SchemeCapabilities, register_scheme


class UnsafePolicy(SpeculationPolicy):
    """No protection: every speculative load proceeds."""

    name = "unsafe"
    #: Opt into the pipeline's passive fast path: check_load is total,
    #: side-effect free, and always ALLOW (see Pipeline.set_policy).
    passive_allow = True

    def check_load(self, query: LoadQuery) -> LoadDecision:
        return LoadDecision.ALLOW


class FencePolicy(CountingPolicy):
    """Delay all speculative loads until prior branches resolve."""

    name = "fence"

    def check_load(self, query: LoadQuery) -> LoadDecision:
        return self.block("fence")


class DelayOnMissPolicy(CountingPolicy):
    """Delay-on-Miss: speculative L1 hits are (invisibly) allowed."""

    name = "dom"

    def check_load(self, query: LoadQuery) -> LoadDecision:
        if query.l1_hit:
            return LoadDecision.ALLOW
        return self.block("dom-miss")

    def dom_lru_freeze(self) -> bool:
        return True


class InvisiSpecPolicy(CountingPolicy):
    """InvisiSpec [Yan et al., MICRO'18]: invisible speculation.

    Speculative loads execute into a speculative buffer -- dependents get
    their data, but the cache hierarchy is untouched until the load
    reaches its visibility point and replays.  Covert-channel transmits
    therefore never materialize; the cost is the replay traffic and the
    loss of speculative cache warming.
    """

    name = "invisispec"

    #: Replay round-trip at the visibility point (validation or reload).
    REPLAY_LATENCY = 10.0

    def check_load(self, query: LoadQuery) -> LoadDecision:
        self.fence_stats.record("invisible")
        return LoadDecision(True, reason="invisible",
                            extra_latency=self.REPLAY_LATENCY,
                            invisible=True)


class STTPolicy(CountingPolicy):
    """Speculative Taint Tracking: delay tainted transmitters only.

    Loads with untainted addresses issue freely; loads whose address
    depends on speculatively-accessed data are delayed, and branches with
    tainted conditions may not resolve early (implicit channels), which is
    where STT's residual overhead on kernel-spinning syscalls comes from.
    """

    name = "stt"

    def check_load(self, query: LoadQuery) -> LoadDecision:
        if query.tainted:
            return self.block("stt-tainted")
        return LoadDecision.ALLOW

    def delays_tainted_branch_resolution(self) -> bool:
        return True


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------


def _simple(policy_cls):
    """Factory for schemes that need neither framework nor kernel."""
    def make(framework=None, kernel=None):
        return policy_cls()
    return make


register_scheme(
    "unsafe", _simple(UnsafePolicy),
    SchemeCapabilities(speculative_loads="always", transient_fill=True),
    summary="unprotected baseline; every speculative load proceeds")

register_scheme(
    "fence", _simple(FencePolicy),
    SchemeCapabilities(speculative_loads="never", transient_fill=False),
    summary="delay every speculative load until prior branches resolve")

register_scheme(
    "dom", _simple(DelayOnMissPolicy),
    SchemeCapabilities(speculative_loads="restricted",
                       transient_fill=False),
    summary="Delay-on-Miss: L1 hits proceed (LRU frozen), misses wait")

register_scheme(
    "stt", _simple(STTPolicy),
    SchemeCapabilities(speculative_loads="restricted", transient_fill=True,
                       taint_tracking=True),
    summary="Speculative Taint Tracking: delay tainted transmitters only")

register_scheme(
    "invisispec", _simple(InvisiSpecPolicy),
    SchemeCapabilities(speculative_loads="always", transient_fill=False),
    summary="invisible speculation: loads fill a speculative buffer and "
            "replay at the visibility point")
