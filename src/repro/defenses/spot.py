"""Deployed "spot" software mitigations: KPTI + retpoline (Section 9.1).

These are the mitigations shipping Linux kernels actually use, and the
paper's point of comparison: they target *specific variants* (KPTI for
Meltdown, retpoline for Spectre v2) rather than the attack taxonomy, so
they leave Spectre v1-style unauthorized data access entirely unmitigated
while still costing 14.5% on LEBench (5% on applications).

* **KPTI** separates user/kernel page tables: every kernel entry and exit
  pays a CR3 switch plus TLB refill pressure.
* **Retpoline** compiles indirect branches into a speculation-capturing
  construct: no BTB-driven speculation (blocking Spectre v2), at a fixed
  per-indirect-branch cost.
"""

from __future__ import annotations

from repro.cpu.pipeline import LoadDecision, LoadQuery
from repro.defenses.base import CountingPolicy
from repro.defenses.registry import SchemeCapabilities, register_scheme

#: Cycles per direction for the KPTI CR3 write + trampoline, scaled to
#: this model's syscall costs (absolute syscall cycles here are lower
#: than real kernels'; the *relative* KPTI tax is what is calibrated).
KPTI_SWITCH_COST = 14.0
#: Amortized extra TLB-miss cost per kernel entry caused by the split
#: page tables (non-PCID behaviour).
KPTI_TLB_PRESSURE = 8.0


class SpotMitigationPolicy(CountingPolicy):
    """KPTI, retpoline, and/or IBPB -- no speculative-load blocking.

    ``ibpb`` adds the indirect-branch prediction barrier on context
    switches.  Shipping kernels frequently got this combination wrong
    (Table 4.1 rows 8-9: missing retpolines or IBPB in KVM, improper use
    of the hardware controls), which is why each piece is independently
    toggleable here.
    """

    def __init__(self, kpti: bool = True, retpoline: bool = True,
                 ibpb: bool = False) -> None:
        super().__init__()
        self.kpti = kpti
        self.retpoline = retpoline
        self.ibpb = ibpb
        parts = [p for p, on in (("kpti", kpti), ("retpoline", retpoline),
                                 ("ibpb", ibpb)) if on]
        self.name = "spot-" + "+".join(parts) if parts else "spot-none"

    def flush_branch_state_on_context_switch(self) -> bool:
        return self.ibpb

    def check_load(self, query: LoadQuery) -> LoadDecision:
        # Spot mitigations never restrict speculative data access: this is
        # precisely why Spectre v1 gadgets keep producing CVEs (Table 4.1).
        return LoadDecision.ALLOW

    def kernel_entry_cost(self, context_id: int) -> float:
        if not self.kpti:
            return 0.0
        return KPTI_SWITCH_COST + KPTI_TLB_PRESSURE

    def kernel_exit_cost(self, context_id: int) -> float:
        return KPTI_SWITCH_COST if self.kpti else 0.0

    def retpoline_enabled(self) -> bool:
        return self.retpoline


def _make_spot(**flags):
    def make(framework=None, kernel=None):
        return SpotMitigationPolicy(**flags)
    return make


_SPOT_CAPS = SchemeCapabilities(speculative_loads="always",
                                transient_fill=True)

register_scheme(
    "spot", _make_spot(kpti=True, retpoline=True), _SPOT_CAPS,
    summary="deployed Linux mitigations: KPTI + retpoline")
register_scheme(
    "spot-nokpti", _make_spot(kpti=False, retpoline=True), _SPOT_CAPS,
    summary="retpoline only (KPTI off)")
register_scheme(
    "spot-ibpb", _make_spot(kpti=True, retpoline=True, ibpb=True),
    _SPOT_CAPS,
    summary="KPTI + retpoline + IBPB on context switch")
