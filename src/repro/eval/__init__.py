"""Evaluation harness: experiment runners, sensitivity analyses, and the
table/figure renderers regenerating the paper's results."""

from repro.eval.envs import (
    ALL_SCHEMES,
    COMPARISON_SCHEMES,
    PERF_SCHEMES,
    PerfEnv,
    build_isv_for,
    make_env,
)
from repro.eval.metrics import (
    FenceBreakdown,
    SchemeSummary,
    geomean,
    normalized,
    overhead_pct,
)
from repro.eval.report import (
    EvaluationArtifacts,
    render_campaign_report,
    run_full_evaluation,
    security_matrix_text,
    security_matrix_text_from_cells,
)
from repro.eval.runner import (
    AppsExperiment,
    BreakdownExperiment,
    GadgetExperiment,
    KasperExperiment,
    LEBenchExperiment,
    SurfaceExperiment,
    run_apps_experiment,
    run_breakdown_experiment,
    run_gadget_experiment,
    run_kasper_experiment,
    run_lebench_experiment,
    run_surface_experiment,
)
from repro.eval.sensitivity import (
    SlabSensitivityResult,
    UnknownAllocationsResult,
    run_slab_sensitivity,
    run_unknown_allocations,
)
from repro.eval.export import export_all
from repro.eval.sweeps import (
    SweepResult,
    sweep_branch_resolve_latency,
    sweep_rob_entries,
)
from repro.eval.validate import (
    CLAIMS,
    Claim,
    ClaimOutcome,
    Scorecard,
    validate_claims,
)

__all__ = [
    "ALL_SCHEMES",
    "CLAIMS",
    "Claim",
    "ClaimOutcome",
    "Scorecard",
    "validate_claims",
    "AppsExperiment",
    "BreakdownExperiment",
    "COMPARISON_SCHEMES",
    "EvaluationArtifacts",
    "FenceBreakdown",
    "GadgetExperiment",
    "KasperExperiment",
    "LEBenchExperiment",
    "PERF_SCHEMES",
    "PerfEnv",
    "SchemeSummary",
    "SlabSensitivityResult",
    "SurfaceExperiment",
    "SweepResult",
    "export_all",
    "sweep_branch_resolve_latency",
    "sweep_rob_entries",
    "UnknownAllocationsResult",
    "build_isv_for",
    "geomean",
    "make_env",
    "normalized",
    "overhead_pct",
    "run_apps_experiment",
    "run_breakdown_experiment",
    "run_full_evaluation",
    "run_gadget_experiment",
    "run_kasper_experiment",
    "run_lebench_experiment",
    "render_campaign_report",
    "run_slab_sensitivity",
    "run_surface_experiment",
    "run_unknown_allocations",
    "security_matrix_text",
    "security_matrix_text_from_cells",
]
