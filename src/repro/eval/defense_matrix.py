"""The cross-paper defense-comparison matrix.

One table no single paper has: every registered defense scheme held to

* the **conformance oracle** -- architectural digests equal to the
  unsafe baseline across the seeded trace corpus (cycles exempt);
* the **attack matrix** -- the full active/passive PoC suite from
  Chapter 8;
* the **overhead columns** -- LEBench geomean overhead and fences per
  kilo-instruction, measured in the same environments as Figure 9.2.

The grid (``defense-matrix`` in :mod:`repro.exec.grids`) decomposes the
table into independent cells -- one per (scheme, seed) conformance run,
one attack row per scheme, one perf row per scheme -- so the parallel
engine runs it with byte-exact worker parity, and CI diff-gates the
assembled ``benchmarks/out/defense_matrix.json`` snapshot.

CLI::

    python -m repro.eval.defense_matrix -o defense_matrix.json
    python -m repro.eval.defense_matrix --workers 4 --no-cache
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Any

from repro.attacks.harness import ATTACKS, run_attack
from repro.eval.envs import RARE_EVERY, make_env
from repro.eval.metrics import geomean
from repro.serve.conformance import (
    _ARCH_KEYS,
    CONFORMANCE_SCHEMES,
    generate_trace,
    run_trace_under,
)
from repro.workloads.lebench import run_lebench

#: The eight columns of the cross-paper table: both fencing extremes,
#: taint tracking, the shadow-structure family, memory tagging, the
#: deployed-software point, and the hardened Perspective flavor.
MATRIX_SCHEMES = CONFORMANCE_SCHEMES

#: PoCs grouped the way the paper's matrices slice them.  The eIBRS
#: baseline check is a control (blocked even on unsafe hardware), so it
#: is excluded from the leak counts.
ACTIVE_ATTACKS = ("spectre-v1-active", "spectre-v2-active",
                  "ebpf-injection")
PASSIVE_ATTACKS = ("spectre-v2-passive", "retbleed-passive",
                   "spectre-rsb-passive", "bhi-passive")
BASELINE_CHECKS = ("spectre-v2-vs-eibrs",)


# ---------------------------------------------------------------------------
# Cells (each independently executable by a pool worker)
# ---------------------------------------------------------------------------


def conformance_cell(scheme: str, seed: int, steps: int = 14,
                     tenants: int = 2) -> dict[str, Any]:
    """One (scheme, seed) conformance run, reduced to a comparable hash
    of the architectural keys (cycles recorded, never compared)."""
    trace = generate_trace(seed, steps=steps, tenants=tenants)
    digest = run_trace_under(scheme, trace, tenants=tenants)
    arch = {key: digest[key] for key in _ARCH_KEYS}
    blob = json.dumps(arch, sort_keys=True).encode()
    return {"arch_sha": hashlib.sha256(blob).hexdigest(),
            "cycles": digest["cycles"],
            "fenced_loads": digest["fenced_loads"]}


def attacks_cell(scheme: str) -> dict[str, str]:
    """Every PoC against one scheme: ``attack -> blocked|leaked``."""
    return {attack: "blocked" if run_attack(attack, scheme).blocked
            else "leaked"
            for attack in sorted(ATTACKS)}


def perf_cell(scheme: str, rare_every: int = RARE_EVERY) -> dict[str, Any]:
    """LEBench cycles plus fence totals for one scheme, from one run."""
    env = make_env("lebench", scheme)
    stats: list = []
    cycles = run_lebench(env.kernel, env.proc, rare_every=rare_every,
                         collect_stats=stats)
    return {"cycles": cycles,
            "fenced_loads": sum(s.exec.total_fenced for s in stats),
            "committed_ops": sum(s.exec.committed_ops for s in stats)}


def defense_matrix_cell(cp: dict[str, Any]) -> Any:
    """Grid dispatch: one cell of the defense-matrix experiment."""
    kind = cp["kind"]
    if kind == "conformance":
        return conformance_cell(cp["scheme"], cp["seed"],
                                steps=cp["steps"], tenants=cp["tenants"])
    if kind == "attacks":
        return attacks_cell(cp["scheme"])
    if kind == "perf":
        return perf_cell(cp["scheme"], rare_every=cp["rare_every"])
    raise ValueError(f"unknown defense-matrix cell kind {cp['kind']!r}")


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------


def assemble_matrix(params: dict[str, Any],
                    payloads: dict[tuple, Any]) -> dict[str, Any]:
    """Fold the cell payloads into the cross-paper table.

    Pure JSON folds in declared cell order, so the output is
    byte-identical at any worker count; every float is rounded once,
    here, so the snapshot is stable.
    """
    schemes = list(params["schemes"])
    seeds = list(params["seeds"])
    table: dict[str, Any] = {
        "schemes": schemes,
        "conformance_seeds": len(seeds),
        "conformance": {},
        "attacks": {},
        "security": {},
        "performance": {},
    }

    base_scheme = schemes[0]
    for scheme in schemes:
        diverging = [
            seed for seed in seeds
            if payloads[("conformance", scheme, str(seed))]["arch_sha"]
            != payloads[("conformance", base_scheme, str(seed))]["arch_sha"]
        ]
        table["conformance"][scheme] = {
            "ok": not diverging,
            "diverging_seeds": diverging,
            "corpus_fenced_loads": sum(
                payloads[("conformance", scheme, str(seed))]["fenced_loads"]
                for seed in seeds),
        }

    unsafe_row = payloads[("attacks", "unsafe")] \
        if ("attacks", "unsafe") in payloads else None
    for scheme in schemes:
        row = payloads[("attacks", scheme)]
        table["attacks"][scheme] = dict(row)
        leaking = [a for a in ACTIVE_ATTACKS + PASSIVE_ATTACKS
                   if unsafe_row is None or unsafe_row[a] == "leaked"]
        blocked = [a for a in leaking if row[a] == "blocked"]
        table["security"][scheme] = {
            "leaks_blocked": f"{len(blocked)}/{len(leaking)}",
            "active_blocked": sum(1 for a in ACTIVE_ATTACKS
                                  if a in leaking and row[a] == "blocked"),
            "passive_blocked": sum(1 for a in PASSIVE_ATTACKS
                                   if a in leaking and row[a] == "blocked"),
        }

    unsafe_cycles = payloads[("perf", "unsafe")]["cycles"]
    for scheme in schemes:
        cell = payloads[("perf", scheme)]
        ratios = [cell["cycles"][test] / unsafe_cycles[test]
                  for test in unsafe_cycles]
        fences_per_kinst = (1000.0 * cell["fenced_loads"]
                            / cell["committed_ops"]
                            if cell["committed_ops"] else 0.0)
        table["performance"][scheme] = {
            "overhead_geomean_pct": round(100.0 * (geomean(ratios) - 1.0),
                                          4),
            "fences_per_kinst": round(fences_per_kinst, 4),
            "fenced_loads": cell["fenced_loads"],
        }
    return table


def render_table(table: dict[str, Any]) -> str:
    """Human-readable cross-paper comparison (docs/performance.md)."""
    lines = [
        f"{'scheme':<16} {'conformance':<12} {'leaks blocked':<14} "
        f"{'overhead':>9} {'fences/kinst':>13}",
    ]
    for scheme in table["schemes"]:
        conf = "ok" if table["conformance"][scheme]["ok"] else "DIVERGED"
        sec = table["security"][scheme]["leaks_blocked"]
        perf = table["performance"][scheme]
        lines.append(
            f"{scheme:<16} {conf:<12} {sec:<14} "
            f"{perf['overhead_geomean_pct']:>8.2f}% "
            f"{perf['fences_per_kinst']:>13.2f}")
    return "\n".join(lines)


def run_defense_matrix(schemes: tuple[str, ...] = MATRIX_SCHEMES,
                       seeds: range | list[int] = range(20), *,
                       workers: int = 1, use_cache: bool = True,
                       cache_dir: str | None = None) -> dict[str, Any]:
    """Run the full matrix on the parallel engine; returns the table."""
    from repro.exec.engine import run_experiment
    table, _report = run_experiment(
        "defense-matrix", {"schemes": list(schemes),
                           "seeds": list(seeds)},
        workers=workers, use_cache=use_cache, cache_dir=cache_dir)
    return table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.defense_matrix",
        description="Cross-paper defense matrix: conformance + attacks "
                    "+ overhead for every scheme column.")
    parser.add_argument("-o", "--output", metavar="FILE", default=None,
                        help="write the table as JSON (byte-stable)")
    parser.add_argument("--seeds", type=int, default=20, metavar="N",
                        help="conformance corpus size (default: 20)")
    parser.add_argument("--workers", type=int, default=1, metavar="N")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--cache-dir", metavar="DIR", default=None)
    args = parser.parse_args(argv)

    table = run_defense_matrix(
        seeds=range(args.seeds), workers=max(1, args.workers),
        use_cache=not args.no_cache, cache_dir=args.cache_dir)
    blob = json.dumps(table, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(blob)
    print(render_table(table))
    bad = [s for s in table["schemes"]
           if not table["conformance"][s]["ok"]]
    if bad:
        print(f"CONFORMANCE DIVERGENCE: {', '.join(bad)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
