"""Measurement environments: kernel + workload + defense scheme.

Implements Chapter 7's configurations:

* ``unsafe``              -- unprotected baseline
* ``fence``               -- delay all speculative loads
* ``dom`` / ``stt``       -- hardware-only comparison points (Section 9.1)
* ``spot`` / ``spot-nokpti`` -- deployed Linux mitigations
* ``perspective-static``  -- FENCE hardware + Perspective with static ISVs
* ``perspective``         -- same with dynamic (traced) ISVs
* ``perspective++``       -- dynamic ISVs hardened with scanner findings

Perspective environments follow the paper's deployment flow: the workload
is profiled offline (tracing, no rare paths), the ISV is generated and
installed at startup, and only then is the enforcement policy armed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.binary import APPLICATIONS
from repro.analysis.static_isv import generate_static_isv
from repro.core.audit import harden_isv
from repro.core.framework import Perspective
from repro.core.views import InstructionSpeculationView
from repro.cpu.pipeline import SpeculationPolicy
from repro.defenses.registry import build_policy as registry_build_policy
from repro.kernel.image import shared_image
from repro.kernel.kernel import MiniKernel
from repro.kernel.process import Process
from repro.scanner.kasper import scan
from repro.workloads.apps import APP_SPECS, AppWorkload
from repro.workloads.driver import Driver
from repro.workloads.lebench import exercise_all

PERF_SCHEMES = ("unsafe", "fence", "perspective-static", "perspective",
                "perspective++")
COMPARISON_SCHEMES = ("unsafe", "dom", "stt", "invisispec", "spot",
                      "spot-nokpti")
ALL_SCHEMES = ("unsafe", "fence", "dom", "stt", "invisispec", "safespec",
               "context", "spot", "spot-nokpti", "perspective-static",
               "perspective", "perspective++")

#: Rare-path injection period during measurement runs (profiling uses 0).
RARE_EVERY = 12


@dataclass
class PerfEnv:
    """One armed measurement environment."""

    workload_name: str
    scheme: str
    kernel: MiniKernel
    proc: Process
    policy: SpeculationPolicy
    framework: Perspective | None = None
    isv: InstructionSpeculationView | None = None


def _profile_functions(kernel: MiniKernel, proc: Process,
                       workload_name: str) -> frozenset[str]:
    """Offline profiling pass: trace the workload's kernel functions.

    Rare paths are never triggered during profiling -- the source of the
    residual dynamic-ISV fences measured in Section 9.2.
    """
    kernel.tracer.start()
    if workload_name == "lebench":
        exercise_all(Driver(kernel, proc, rare_every=0))
    else:
        workload = AppWorkload(kernel, proc, APP_SPECS[workload_name],
                               rare_every=0)
        workload.serve(6, measure=False)
    kernel.tracer.stop()
    return kernel.tracer.traced_functions(proc.cgroup.cg_id)


def build_isv_for(kernel: MiniKernel, proc: Process, workload_name: str,
                  flavor: str) -> InstructionSpeculationView:
    """Generate the ISV for a scheme flavor: static, dynamic, or ++."""
    ctx = proc.cgroup.cg_id
    if flavor == "static":
        binary = APPLICATIONS[workload_name]
        return generate_static_isv(kernel.image, binary, ctx)
    functions = _profile_functions(kernel, proc, workload_name)
    isv = InstructionSpeculationView(ctx, functions, kernel.image.layout,
                                     source="dynamic")
    if flavor == "dynamic":
        return isv
    if flavor == "++":
        report = scan(kernel.image, scope=isv.functions)
        return harden_isv(isv, report.functions()).hardened
    raise ValueError(f"unknown ISV flavor {flavor!r}")


_PERSPECTIVE_FLAVORS = {
    "perspective-static": "static",
    "perspective": "dynamic",
    "perspective++": "++",
}


def perspective_flavor(scheme: str) -> str | None:
    """ISV flavor for a Perspective scheme name, else ``None``."""
    return _PERSPECTIVE_FLAVORS.get(scheme)


def build_policy(scheme: str, framework: Perspective | None = None,
                 kernel: MiniKernel | None = None) -> SpeculationPolicy:
    """Construct the enforcement policy for a scheme name.

    Thin forwarder to the scheme registry
    (:func:`repro.defenses.registry.build_policy`), kept so every
    measurement consumer -- :func:`make_env`, the multi-tenant engine
    (:mod:`repro.serve.engine`), and the conformance oracle -- shares one
    scheme vocabulary.  Perspective flavors require the ``framework`` the
    views live in; kernel-coupled schemes (ConTExT's non-transient tags)
    require the ``kernel``; every other scheme ignores both.
    """
    if scheme in _PERSPECTIVE_FLAVORS and framework is None \
            and kernel is None:
        raise ValueError(f"scheme {scheme!r} needs a Perspective "
                         f"framework")
    return registry_build_policy(scheme, framework=framework,
                                 kernel=kernel)


def make_env(workload_name: str, scheme: str, *,
             image: "KernelImage | None" = None) -> PerfEnv:
    """Boot a kernel, create the workload process, arm the scheme.

    Every scheme runs the same offline profiling pass first (Perspective
    needs it to build views; the others discard it), so all measurement
    environments start from identical microarchitectural history.

    ``image`` lets grid runners thread one prebuilt :func:`shared_image`
    through every cell instead of re-resolving it per environment; the
    default is the process-wide shared image either way, so results are
    identical.
    """
    kernel = MiniKernel(image=shared_image() if image is None else image)
    proc = kernel.create_process(workload_name)
    framework = None
    isv = None
    if scheme in _PERSPECTIVE_FLAVORS:
        isv = build_isv_for(kernel, proc, workload_name,
                            _PERSPECTIVE_FLAVORS[scheme])
        if _PERSPECTIVE_FLAVORS[scheme] == "static":
            _profile_functions(kernel, proc, workload_name)  # parity only
        framework = Perspective(kernel)
        framework.install_isv(isv)
        policy: SpeculationPolicy = build_policy(scheme, framework)
    else:
        _profile_functions(kernel, proc, workload_name)  # history parity
        policy = build_policy(scheme, kernel=kernel)
    kernel.pipeline.set_policy(policy)
    return PerfEnv(workload_name=workload_name, scheme=scheme,
                   kernel=kernel, proc=proc, policy=policy,
                   framework=framework, isv=isv)
