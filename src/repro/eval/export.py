"""JSON export of experiment results (for external plotting/CI diffing).

Each exporter flattens an experiment object into plain dicts; ``export_all``
bundles whatever results are supplied plus provenance (image fingerprint,
package version) into one document.
"""

from __future__ import annotations

import json
from typing import Any

import repro
from repro.analysis.profiles import image_fingerprint
from repro.kernel.image import shared_image


def lebench_to_dict(exp) -> dict[str, Any]:
    return {
        "schemes": list(exp.schemes),
        "cycles": {scheme: dict(per_test)
                   for scheme, per_test in exp.cycles.items()},
        "normalized": {
            scheme: {test: exp.normalized_latency(test, scheme)
                     for test in exp.cycles["unsafe"]}
            for scheme in exp.schemes},
        "average_overhead_pct": {
            scheme: exp.average_overhead_pct(scheme)
            for scheme in exp.schemes if scheme != "unsafe"},
    }


def apps_to_dict(exp) -> dict[str, Any]:
    apps = list(exp.total_cycles_per_request)
    return {
        "schemes": list(exp.schemes),
        "rps": {app: {scheme: exp.rps(app, scheme)
                      for scheme in exp.schemes} for app in apps},
        "normalized_rps": {
            app: {scheme: exp.normalized_rps(app, scheme)
                  for scheme in exp.schemes} for app in apps},
        "average_throughput_overhead_pct": {
            scheme: exp.average_throughput_overhead_pct(scheme)
            for scheme in exp.schemes if scheme != "unsafe"},
    }


def surface_to_dict(exp) -> dict[str, Any]:
    return {
        "total_functions": exp.total_functions,
        "static_isv_size": dict(exp.static_isv_size),
        "dynamic_isv_size": dict(exp.dynamic_isv_size),
        "reduction": {
            app: {"static": exp.reduction(app, "static"),
                  "dynamic": exp.reduction(app, "dynamic")}
            for app in exp.static_isv_size},
    }


def gadgets_to_dict(exp) -> dict[str, Any]:
    return {
        "total_by_class": dict(exp.total_by_class),
        "search_space_functions": dict(exp.search_space_functions),
        "blocked": {app: {flavor: dict(classes)
                          for flavor, classes in rows.items()}
                    for app, rows in exp.blocked.items()},
    }


def kasper_to_dict(exp) -> dict[str, Any]:
    return {"speedups": dict(exp.speedups), "average": exp.average}


def scorecard_to_dict(card) -> dict[str, Any]:
    return {
        "all_ok": card.all_ok,
        "claims": [{
            "id": outcome.claim.claim_id,
            "paper": outcome.claim.paper_value,
            "measured": outcome.measured,
            "band": [outcome.claim.low, outcome.claim.high],
            "ok": outcome.ok,
        } for outcome in card.outcomes],
    }


def export_all(lebench=None, apps=None, surface=None, gadgets=None,
               kasper=None, scorecard=None, indent: int = 2) -> str:
    """Bundle every supplied result into one JSON document."""
    doc: dict[str, Any] = {
        "reproduction": "perspective-isca2024",
        "version": repro.__version__,
        "image_fingerprint": image_fingerprint(shared_image()),
    }
    if lebench is not None:
        doc["lebench"] = lebench_to_dict(lebench)
    if apps is not None:
        doc["apps"] = apps_to_dict(apps)
    if surface is not None:
        doc["surface"] = surface_to_dict(surface)
    if gadgets is not None:
        doc["gadgets"] = gadgets_to_dict(gadgets)
    if kasper is not None:
        doc["kasper"] = kasper_to_dict(kasper)
    if scorecard is not None:
        doc["scorecard"] = scorecard_to_dict(scorecard)
    return json.dumps(doc, indent=indent, sort_keys=True)
