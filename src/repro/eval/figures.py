"""Text renderers for the paper's figures (ASCII bar charts).

Figures 9.1-9.3 are bar charts; the renderers print one bar per
(workload, scheme) so the series' shape can be compared with the paper.
"""

from __future__ import annotations

from repro.eval.runner import (
    AppsExperiment,
    KasperExperiment,
    LEBenchExperiment,
)


def _bar(value: float, scale: float = 20.0, cap: float = 4.0) -> str:
    clipped = min(value, cap)
    return "#" * max(1, int(round(clipped * scale / cap)))


def figure_9_1(exp: KasperExperiment) -> str:
    """Speedup of Kasper's gadget discovery rate (gadgets/hour)."""
    lines = ["Figure 9.1: Kasper gadget-discovery-rate speedup with ISVs",
             "-" * 70]
    for app, speedup in exp.speedups.items():
        lines.append(f"{app:<10} {speedup:>5.2f}x  {_bar(speedup)}")
    lines.append(f"{'average':<10} {exp.average:>5.2f}x")
    lines.append("(paper: 1.14x-2.23x per app, 1.57x on average)")
    return "\n".join(lines)


def figure_9_2(exp: LEBenchExperiment) -> str:
    """LEBench normalized latency per scheme."""
    schemes = [s for s in exp.schemes if s != "unsafe"]
    lines = ["Figure 9.2: LEBench latency normalized to UNSAFE",
             "-" * 70,
             f"{'test':<16} " + " ".join(f"{s[:10]:>10}" for s in schemes)]
    for test in exp.cycles["unsafe"]:
        cells = " ".join(f"{exp.normalized_latency(test, s):>10.2f}"
                         for s in schemes)
        lines.append(f"{test:<16} {cells}")
    lines.append(f"{'average':<16} "
                 + " ".join(f"{1 + exp.average_overhead_pct(s) / 100:>10.2f}"
                            for s in schemes))
    lines.append("(paper averages: FENCE 1.475, PERSPECTIVE-STATIC 1.041, "
                 "PERSPECTIVE 1.036, PERSPECTIVE++ 1.035; "
                 "select/poll up to 3.28 under FENCE)")
    return "\n".join(lines)


def figure_9_3(exp: AppsExperiment) -> str:
    """Datacenter application throughput normalized to UNSAFE."""
    schemes = [s for s in exp.schemes if s != "unsafe"]
    apps = list(exp.total_cycles_per_request)
    lines = ["Figure 9.3: Requests/second normalized to UNSAFE",
             "-" * 70,
             f"{'app':<12} {'UNSAFE rps':>12} "
             + " ".join(f"{s[:10]:>10}" for s in schemes)]
    for app in apps:
        cells = " ".join(f"{exp.normalized_rps(app, s):>10.3f}"
                         for s in schemes)
        lines.append(f"{app:<12} {exp.rps(app, 'unsafe'):>12.0f} {cells}")
    lines.append(f"{'average ovh':<25} "
                 + " ".join(
                     f"{exp.average_throughput_overhead_pct(s):>9.1f}%"
                     for s in schemes))
    lines.append("(paper: FENCE -5.7% average; Perspective family "
                 "-1.2% to -1.3%; baselines 11.5K/18K/55K/40.7K rps)")
    return "\n".join(lines)
