"""Derived metrics: normalization, fence breakdowns, and summaries."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.pipeline import ExecResult


def normalized(value: float, baseline: float) -> float:
    """value / baseline (1.0 = parity with UNSAFE).

    A zero baseline means the measurement that should anchor the ratio
    never ran; silently returning 0.0 here used to masquerade as "no
    overhead" in downstream tables.
    """
    if baseline == 0:
        raise ValueError(
            f"normalized: zero baseline for value {value!r} -- the "
            "baseline measurement is missing or empty")
    return value / baseline


def overhead_pct(value: float, baseline: float) -> float:
    """Percentage slowdown over the baseline."""
    return 100.0 * (normalized(value, baseline) - 1.0)


def geomean(values: list[float]) -> float:
    if not values:
        raise ValueError("geomean of an empty sequence is undefined")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


@dataclass
class FenceBreakdown:
    """ISV-vs-DSV fence attribution (Table 10.1)."""

    isv_fences: int = 0
    dsv_fences: int = 0
    other_fences: int = 0
    committed_ops: int = 0

    @classmethod
    def from_exec(cls, exec_result: ExecResult) -> "FenceBreakdown":
        out = cls(committed_ops=exec_result.committed_ops)
        for reason, count in exec_result.fenced_loads.items():
            if reason == "isv":
                out.isv_fences += count
            elif reason == "dsv":
                out.dsv_fences += count
            else:
                out.other_fences += count
        return out

    @property
    def total(self) -> int:
        return self.isv_fences + self.dsv_fences + self.other_fences

    @property
    def isv_share(self) -> float:
        """Fraction of fences attributable to ISVs."""
        denom = self.isv_fences + self.dsv_fences
        return self.isv_fences / denom if denom else 0.0

    @property
    def dsv_share(self) -> float:
        denom = self.isv_fences + self.dsv_fences
        return self.dsv_fences / denom if denom else 0.0

    def fences_per_kiloinstruction(self, kind: str) -> float:
        if self.committed_ops == 0:
            # Zero committed instructions means the measurement backing
            # this breakdown never ran; returning 0.0 here used to
            # masquerade as "no fences" in Table 10.1 (the same failure
            # mode normalized()/geomean() now reject).
            raise ValueError(
                "fences_per_kiloinstruction: no committed instructions -- "
                "the breakdown measurement is missing or empty")
        count = {"isv": self.isv_fences, "dsv": self.dsv_fences,
                 "total": self.total}[kind]
        return 1000.0 * count / self.committed_ops


@dataclass
class SchemeSummary:
    """Aggregate for one (workload, scheme) measurement."""

    workload: str
    scheme: str
    cycles: float
    committed_ops: int
    breakdown: FenceBreakdown = field(default_factory=FenceBreakdown)
    isv_cache_hit_rate: float = 0.0
    dsv_cache_hit_rate: float = 0.0
