"""Full-evaluation driver: regenerate every table and figure in one pass.

``run_full_evaluation`` executes each experiment of Chapters 8-9 and
returns the rendered artifacts; ``write_experiments_report`` additionally
records paper-vs-measured values (the source of EXPERIMENTS.md).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro.attacks.harness import SCHEMES, run_matrix
from repro.eval import figures, tables
from repro.eval.envs import ALL_SCHEMES
from repro.eval.runner import (
    run_apps_experiment,
    run_breakdown_experiment,
    run_gadget_experiment,
    run_kasper_experiment,
    run_lebench_experiment,
    run_surface_experiment,
)
from repro.eval.sensitivity import run_slab_sensitivity, run_unknown_allocations


@dataclass
class EvaluationArtifacts:
    """Rendered output of the full evaluation."""

    sections: dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        out = io.StringIO()
        for title, body in self.sections.items():
            out.write(f"\n{'=' * 78}\n{title}\n{'=' * 78}\n{body}\n")
        return out.getvalue()


def security_matrix_text_from_cells(cells,
                                    schemes: tuple[str, ...] | None = None,
                                    ) -> str:
    """Render the Chapter 8 matrix from already-run PoC cells."""
    if schemes is None:
        seen: list[str] = []
        for cell in cells:
            if cell.scheme not in seen:
                seen.append(cell.scheme)
        schemes = tuple(seen)
    lines = ["Security matrix (Chapter 8): leak/blocked per attack x scheme",
             "-" * 70]
    by_attack: dict[str, dict[str, str]] = {}
    for cell in cells:
        outcome = "LEAKED" if cell.result.success else "blocked"
        by_attack.setdefault(cell.attack, {})[cell.scheme] = outcome
    header = f"{'attack':<22} " + " ".join(f"{s:>12}" for s in schemes)
    lines.append(header)
    for attack, per_scheme in by_attack.items():
        lines.append(f"{attack:<22} "
                     + " ".join(f"{per_scheme.get(s, '-'):>12}"
                                for s in schemes))
    lines.append("(expected: every attack leaks under unsafe -- except the "
                 "eIBRS control -- Retbleed/RSB leak under spot, and "
                 "Perspective blocks everything)")
    return "\n".join(lines)


def security_matrix_text(schemes=("unsafe", "spot", "perspective")) -> str:
    """Chapter 8 PoC matrix: every attack under every scheme."""
    return security_matrix_text_from_cells(run_matrix(schemes=schemes),
                                           tuple(schemes))


def run_full_evaluation(fast: bool = False) -> EvaluationArtifacts:
    """Regenerate every table and figure.

    ``fast`` trims scheme lists so the pass finishes quickly (used by the
    quickstart example); the benchmarks run the full configuration.
    """
    artifacts = EvaluationArtifacts()
    artifacts.sections["Table 4.1 (CVE taxonomy)"] = tables.table_4_1()
    artifacts.sections["Table 7.1 (simulation parameters)"] = \
        tables.table_7_1()

    surface = run_surface_experiment()
    artifacts.sections["Table 8.1 (attack surface)"] = \
        tables.table_8_1(surface)

    gadgets = run_gadget_experiment()
    artifacts.sections["Table 8.2 (gadget reduction)"] = \
        tables.table_8_2(gadgets)

    artifacts.sections["Security PoC matrix (Sections 8.1-8.2)"] = \
        security_matrix_text(
            schemes=("unsafe", "perspective") if fast
            else ("unsafe", "spot", "perspective"))

    kasper = run_kasper_experiment(n_seeds=6 if fast else 16)
    artifacts.sections["Figure 9.1 (Kasper speedup)"] = \
        figures.figure_9_1(kasper)

    schemes = ("unsafe", "fence", "perspective") if fast else ALL_SCHEMES
    lebench = run_lebench_experiment(schemes=schemes)
    artifacts.sections["Figure 9.2 (LEBench)"] = figures.figure_9_2(lebench)

    apps = run_apps_experiment(schemes=schemes,
                               requests=20 if fast else None)
    artifacts.sections["Figure 9.3 (datacenter apps)"] = \
        figures.figure_9_3(apps)

    artifacts.sections["Table 9.1 (hardware characterization)"] = \
        tables.table_9_1()

    breakdown = run_breakdown_experiment(
        workloads=("lebench", "httpd") if fast
        else ("lebench",) + tuple(a for a in apps.total_cycles_per_request))
    artifacts.sections["Table 10.1 (fence breakdown)"] = \
        tables.table_10_1(breakdown)

    unknown = run_unknown_allocations()
    artifacts.sections["Sensitivity: unknown allocations"] = (
        f"LEBench overhead full: {unknown.overhead_full_pct:+.1f}%  "
        f"with unknown allowed: "
        f"{unknown.overhead_unknown_allowed_pct:+.1f}%  "
        f"unknown contribution: "
        f"{unknown.unknown_contribution_pct:+.1f} points\n"
        "(paper: unknown allocations cause 1.5% of the LEBench overhead)")

    slab = run_slab_sensitivity(requests=24 if fast else 60)
    slab_lines = []
    for app in slab.secure_utilization:
        slab_lines.append(
            f"{app:<10} util secure {slab.secure_utilization[app]:.3f} "
            f"baseline {slab.baseline_utilization[app]:.3f} "
            f"(overhead {slab.memory_overhead_pct(app):+.2f}%)  "
            f"page-return ratio {100 * slab.page_return_ratio[app]:.2f}%  "
            f"reassign/s {slab.reassignments_per_second[app]:.0f}")
    slab_lines.append(f"average memory overhead "
                      f"{slab.average_memory_overhead_pct():+.2f}% "
                      "(paper: 0.91%)")
    slab_lines.append("(paper reassignment: redis 0.23%/96 per s; httpd, "
                      "nginx, memcached 0.01%/0.01%/0.003% and 4/3/2 per s)")
    artifacts.sections["Sensitivity: secure slab allocator"] = \
        "\n".join(slab_lines)
    return artifacts


# ---------------------------------------------------------------------------
# Resilient-campaign rendering (repro.reliability.campaign)
# ---------------------------------------------------------------------------

#: Campaign experiment name -> (section title, renderer taking the
#: reconstructed experiment object).
_CAMPAIGN_SECTIONS = {
    "surface": ("Table 8.1 (attack surface)", tables.table_8_1),
    "gadgets": ("Table 8.2 (gadget reduction)", tables.table_8_2),
    "security": ("Security PoC matrix (Sections 8.1-8.2)",
                 security_matrix_text_from_cells),
    "kasper": ("Figure 9.1 (Kasper speedup)", figures.figure_9_1),
    "lebench": ("Figure 9.2 (LEBench)", figures.figure_9_2),
    "apps": ("Figure 9.3 (datacenter apps)", figures.figure_9_3),
    "breakdown": ("Table 10.1 (fence breakdown)", tables.table_10_1),
}


def render_campaign_report(state,
                           experiments: tuple[str, ...] | None = None,
                           ) -> EvaluationArtifacts:
    """Render whatever a (possibly partial) campaign produced.

    ``state`` is a :class:`repro.reliability.campaign.CampaignState`.
    Experiments that failed after retry exhaustion -- or that a supplied
    ``experiments`` schedule lists but the journal has no record for --
    render as ``—`` placeholders, and a failure summary section reports
    what went wrong instead of the whole report aborting.
    """
    artifacts = EvaluationArtifacts()
    artifacts.sections["Table 4.1 (CVE taxonomy)"] = tables.table_4_1()
    artifacts.sections["Table 7.1 (simulation parameters)"] = \
        tables.table_7_1()
    if experiments is None:
        experiments = tuple(name for name in _CAMPAIGN_SECTIONS
                            if name in state.payloads
                            or name in state.failures)
    for name in experiments:
        if name not in _CAMPAIGN_SECTIONS:
            continue
        title, renderer = _CAMPAIGN_SECTIONS[name]
        result = state.result(name)
        if result is not None:
            artifacts.sections[title] = renderer(result)
        elif name in state.failures:
            artifacts.sections[title] = tables.unavailable(
                title, f"experiment {name!r} failed after "
                f"{state.attempts.get(name, '?')} attempt(s)")
        else:
            artifacts.sections[title] = tables.unavailable(
                title, f"experiment {name!r} not yet run "
                "(campaign interrupted; resume from the journal)")
    artifacts.sections["Table 9.1 (hardware characterization)"] = \
        tables.table_9_1()
    if state.failures:
        lines = ["Failed experiments (rendered above as "
                 f"{tables.MISSING}):"]
        for name, error in sorted(state.failures.items()):
            lines.append(f"  {name:<12} attempts="
                         f"{state.attempts.get(name, '?')}  {error}")
    else:
        lines = ["All campaign experiments completed."]
    artifacts.sections["Campaign failure summary"] = "\n".join(lines)
    return artifacts
