"""Experiment runners: one function per table/figure of the evaluation.

Each runner assembles fresh environments, measures, and returns a plain
data object that the formatting layer (:mod:`repro.eval.tables`,
:mod:`repro.eval.figures`) renders in the paper's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.binary import APPLICATIONS
from repro.analysis.static_isv import static_isv_functions
from repro.core.audit import harden_isv
from repro.eval.envs import PERF_SCHEMES, RARE_EVERY, build_isv_for, make_env
from repro.eval.metrics import FenceBreakdown, geomean, normalized
from repro.kernel.image import shared_image
from repro.kernel.kernel import MiniKernel
from repro.scanner.kasper import discovery_speedup, scan
from repro.workloads.apps import APP_NAMES, APP_SPECS, AppWorkload
from repro.workloads.clients import CLIENTS
from repro.workloads.lebench import run_lebench

# ---------------------------------------------------------------------------
# Figure 9.2: LEBench normalized latency
# ---------------------------------------------------------------------------


@dataclass
class LEBenchExperiment:
    """Per-test cycles and normalized latency under every scheme."""

    schemes: tuple[str, ...]
    cycles: dict[str, dict[str, float]] = field(default_factory=dict)

    def normalized_latency(self, test: str, scheme: str) -> float:
        return normalized(self.cycles[scheme][test],
                          self.cycles["unsafe"][test])

    def average_overhead_pct(self, scheme: str) -> float:
        tests = self.cycles["unsafe"].keys()
        mean = geomean([self.normalized_latency(t, scheme) for t in tests])
        return 100.0 * (mean - 1.0)

    def max_overhead_pct(self, scheme: str) -> tuple[str, float]:
        """Worst-overhead test for a scheme.

        When every test speeds up (overhead <= 0, e.g. a caching scheme
        on a cold baseline) this returns the least-negative test rather
        than an empty name with a fabricated 0.0.
        """
        worst_test, worst = "", float("-inf")
        for test in self.cycles["unsafe"]:
            over = self.normalized_latency(test, scheme) - 1.0
            if over > worst:
                worst_test, worst = test, over
        if not worst_test:
            raise ValueError("max_overhead_pct: no LEBench tests measured")
        return worst_test, 100.0 * worst


def lebench_cell(scheme: str, rare_every: int = RARE_EVERY,
                 image=None) -> dict[str, float]:
    """One (scheme) cell of the LEBench grid: per-test average cycles.

    Shared by the serial runner and the parallel engine
    (:mod:`repro.exec`), which is what makes the two paths byte-identical
    by construction.
    """
    env = make_env("lebench", scheme, image=image)
    return run_lebench(env.kernel, env.proc, rare_every=rare_every)


def run_lebench_experiment(schemes: tuple[str, ...] = PERF_SCHEMES,
                           rare_every: int = RARE_EVERY,
                           ) -> LEBenchExperiment:
    """Run the LEBench suite under every scheme (Figure 9.2)."""
    if "unsafe" not in schemes:
        schemes = ("unsafe",) + tuple(schemes)
    experiment = LEBenchExperiment(schemes=tuple(schemes))
    image = shared_image()
    for scheme in schemes:
        experiment.cycles[scheme] = lebench_cell(
            scheme, rare_every=rare_every, image=image)
    return experiment


# ---------------------------------------------------------------------------
# Figure 9.3: datacenter application throughput
# ---------------------------------------------------------------------------


@dataclass
class AppsExperiment:
    """Per-app requests-per-second (simulated) under every scheme."""

    schemes: tuple[str, ...]
    #: app -> scheme -> cycles per request (kernel + fixed user budget).
    total_cycles_per_request: dict[str, dict[str, float]] = \
        field(default_factory=dict)
    kernel_cycles_per_request: dict[str, dict[str, float]] = \
        field(default_factory=dict)

    CORE_HZ = 2.0e9  # Table 7.1

    def rps(self, app: str, scheme: str) -> float:
        return self.CORE_HZ / self.total_cycles_per_request[app][scheme]

    def normalized_rps(self, app: str, scheme: str) -> float:
        return self.rps(app, scheme) / self.rps(app, "unsafe")

    def average_throughput_overhead_pct(self, scheme: str) -> float:
        mean = geomean([self.normalized_rps(app, scheme)
                        for app in self.total_cycles_per_request])
        return 100.0 * (1.0 - mean)


def apps_cell(app: str, scheme: str, requests: int | None = None,
              rare_every: int = RARE_EVERY, image=None) -> float:
    """One (app, scheme) cell of the apps grid: kernel cycles/request."""
    env = make_env(app, scheme, image=image)
    workload = AppWorkload(env.kernel, env.proc, APP_SPECS[app],
                           rare_every=rare_every)
    batch = requests if requests is not None \
        else CLIENTS[app].sampled_requests
    workload.serve(24, measure=False)  # warmup to steady state
    result = workload.serve(batch)
    return result.kernel_cycles_per_request


def run_apps_experiment(schemes: tuple[str, ...] = PERF_SCHEMES,
                        apps: tuple[str, ...] = APP_NAMES,
                        requests: int | None = None,
                        rare_every: int = RARE_EVERY) -> AppsExperiment:
    """Serve client batches per app x scheme (Figure 9.3)."""
    if "unsafe" not in schemes:
        schemes = ("unsafe",) + tuple(schemes)
    experiment = AppsExperiment(schemes=tuple(schemes))
    image = shared_image()
    for app in apps:
        per_scheme_kernel: dict[str, float] = {}
        for scheme in schemes:
            per_scheme_kernel[scheme] = apps_cell(
                app, scheme, requests=requests, rare_every=rare_every,
                image=image)
        # Userspace budget from the paper's kernel-time fraction at the
        # UNSAFE baseline; identical across schemes (user code is not
        # gated by kernel speculation control).
        f = APP_SPECS[app].kernel_time_fraction
        user = per_scheme_kernel["unsafe"] * (1.0 - f) / f
        experiment.kernel_cycles_per_request[app] = per_scheme_kernel
        experiment.total_cycles_per_request[app] = {
            scheme: kernel + user
            for scheme, kernel in per_scheme_kernel.items()}
    return experiment


# ---------------------------------------------------------------------------
# Table 8.1: attack-surface reduction
# ---------------------------------------------------------------------------


@dataclass
class SurfaceExperiment:
    total_functions: int
    static_isv_size: dict[str, int] = field(default_factory=dict)
    dynamic_isv_size: dict[str, int] = field(default_factory=dict)

    def reduction(self, app: str, flavor: str) -> float:
        size = (self.static_isv_size if flavor == "static"
                else self.dynamic_isv_size)[app]
        return 1.0 - size / self.total_functions


def surface_cell(app: str, image=None) -> dict[str, int]:
    """One (app) cell of the surface grid: static/dynamic ISV sizes."""
    if image is None:
        image = shared_image()
    static_size = len(static_isv_functions(image, APPLICATIONS[app]))
    kernel = MiniKernel(image=image)
    proc = kernel.create_process(app)
    isv = build_isv_for(kernel, proc, app, "dynamic")
    return {"static": static_size, "dynamic": len(isv),
            "total_functions": image.total_functions}


def run_surface_experiment(apps: tuple[str, ...] = ("lebench",) + APP_NAMES,
                           ) -> SurfaceExperiment:
    """Compute per-app static and dynamic ISV sizes (Table 8.1)."""
    image = shared_image()
    experiment = SurfaceExperiment(total_functions=image.total_functions)
    for app in apps:
        cell = surface_cell(app, image=image)
        experiment.static_isv_size[app] = cell["static"]
        experiment.dynamic_isv_size[app] = cell["dynamic"]
    return experiment


# ---------------------------------------------------------------------------
# Table 8.2: gadget reduction, and Figure 9.1: Kasper speedup
# ---------------------------------------------------------------------------


@dataclass
class GadgetExperiment:
    #: app -> flavor ("ISV-S" | "ISV" | "ISV++") -> class -> blocked frac.
    blocked: dict[str, dict[str, dict[str, float]]] = field(
        default_factory=dict)
    total_by_class: dict[str, int] = field(default_factory=dict)
    search_space_functions: dict[str, int] = field(default_factory=dict)


def run_gadget_experiment(apps: tuple[str, ...] = ("lebench",) + APP_NAMES,
                          ) -> GadgetExperiment:
    """Per-app gadget blocking for ISV-S / ISV / ISV++ (Table 8.2)."""
    image = shared_image()
    report = scan(image)
    experiment = GadgetExperiment(total_by_class=report.by_class())
    for app in apps:
        static_fns = static_isv_functions(image, APPLICATIONS[app])
        kernel = MiniKernel(image=image)
        proc = kernel.create_process(app)
        dynamic_isv = build_isv_for(kernel, proc, app, "dynamic")
        flagged = scan(image, scope=dynamic_isv.functions).functions()
        hardened = harden_isv(dynamic_isv, flagged).hardened
        experiment.search_space_functions[app] = len(dynamic_isv)
        experiment.blocked[app] = {
            "ISV-S": {cls: report.blocked_fraction(static_fns, cls)
                      for cls in ("mds", "port", "cache")},
            "ISV": {cls: report.blocked_fraction(dynamic_isv.functions, cls)
                    for cls in ("mds", "port", "cache")},
            "ISV++": {cls: report.blocked_fraction(hardened.functions, cls)
                      for cls in ("mds", "port", "cache")},
        }
    return experiment


@dataclass
class KasperExperiment:
    #: app -> discovery-rate speedup (bounded / unbounded).
    speedups: dict[str, float] = field(default_factory=dict)

    @property
    def average(self) -> float:
        return geomean(list(self.speedups.values()))


def run_kasper_experiment(apps: tuple[str, ...] = ("lebench",) + APP_NAMES,
                          hours: float = 35.0,
                          n_seeds: int = 16) -> KasperExperiment:
    """ISV-bounded fuzzing speedups per app (Figure 9.1), averaged over
    ``n_seeds`` fuzzing seeds per paired campaign."""
    image = shared_image()
    experiment = KasperExperiment()
    for i, app in enumerate(apps):
        kernel = MiniKernel(image=image)
        proc = kernel.create_process(app)
        isv = build_isv_for(kernel, proc, app, "dynamic")
        result = discovery_speedup(image, app, isv.functions,
                                   hours=hours, seed=11 + i,
                                   n_seeds=n_seeds)
        experiment.speedups[app] = result.speedup
    return experiment


# ---------------------------------------------------------------------------
# Table 10.1 + sensitivity (Section 9.2)
# ---------------------------------------------------------------------------


@dataclass
class BreakdownExperiment:
    #: workload -> scheme -> FenceBreakdown
    breakdowns: dict[str, dict[str, FenceBreakdown]] = field(
        default_factory=dict)
    isv_cache_hit_rate: dict[str, dict[str, float]] = field(
        default_factory=dict)
    dsv_cache_hit_rate: dict[str, dict[str, float]] = field(
        default_factory=dict)
    #: Observability snapshot (``MetricsRegistry.snapshot()``) when the
    #: experiment ran with ``observe=True``; not part of the journal
    #: payload, so campaigns stay byte-compatible either way.
    metrics: dict | None = None


def breakdown_cell(workload: str, scheme: str, requests: int = 30,
                   image=None, registry=None) -> dict:
    """One (workload, scheme) cell of the breakdown grid.

    Returns the raw fence-breakdown fields and view-cache hit rates; when
    ``registry`` is given, also collects the per-env gauges into it under
    the cell's prefix (exactly what the serial loop does).  Run inside an
    ``observing(...)`` scope to capture the hot-path counters too.
    """
    env = make_env(workload, scheme, image=image)
    if workload == "lebench":
        from repro.workloads.driver import Driver
        from repro.workloads.lebench import exercise_all
        driver = Driver(env.kernel, env.proc, rare_every=RARE_EVERY)
        exercise_all(driver)
        exercise_all(driver)
        driver_stats = driver.stats
    else:
        app_workload = AppWorkload(env.kernel, env.proc,
                                   APP_SPECS[workload],
                                   rare_every=RARE_EVERY)
        app_workload.serve(requests)
        driver_stats = app_workload.driver.stats
    fb = FenceBreakdown.from_exec(driver_stats.exec)
    fw = env.framework
    if registry is not None:
        from repro.obs.collect import collect_env
        collect_env(registry, env.kernel, fw,
                    prefix=f"{workload}.{scheme}")
    return {
        "breakdown": {"isv_fences": fb.isv_fences,
                      "dsv_fences": fb.dsv_fences,
                      "other_fences": fb.other_fences,
                      "committed_ops": fb.committed_ops},
        "isv_cache_hit_rate": fw.isv_cache.stats.hit_rate,
        "dsv_cache_hit_rate": fw.dsv_cache.stats.hit_rate,
    }


def run_breakdown_experiment(
        workloads: tuple[str, ...] = ("lebench",) + APP_NAMES,
        schemes: tuple[str, ...] = ("perspective-static", "perspective",
                                    "perspective++"),
        requests: int = 30,
        observe: bool = False,
        journal: "EventJournal | None" = None) -> BreakdownExperiment:
    """Fence attribution and view-cache hit rates under Perspective.

    With ``observe=True`` every cell runs inside its own fresh
    :class:`repro.obs.MetricsRegistry`; the per-cell snapshots (hot-path
    counters, span timings, and per-env collector gauges) merge in
    declared cell order into ``experiment.metrics``.  The per-cell
    structure is deliberate: it is exactly what the parallel engine
    (:mod:`repro.exec`) does, so serial and parallel metrics stay
    byte-identical down to float-addition order.  A ``journal``
    additionally records every enforcement decision as a security event.
    The measured numbers are identical either way -- the observability
    plane only reads simulated state.
    """
    from contextlib import nullcontext

    from repro.obs import MetricsRegistry, observing
    from repro.obs.events import journaling
    experiment = BreakdownExperiment()
    merged: MetricsRegistry | None = None
    image = shared_image()
    # observe=False must not disturb any registry an outer caller (e.g.
    # a campaign) already activated, hence nullcontext over observing(None);
    # same for the journal.
    with journaling(journal) if journal is not None else nullcontext():
        for workload in workloads:
            experiment.breakdowns[workload] = {}
            experiment.isv_cache_hit_rate[workload] = {}
            experiment.dsv_cache_hit_rate[workload] = {}
            for scheme in schemes:
                registry = MetricsRegistry() if observe else None
                with observing(registry) if registry is not None \
                        else nullcontext():
                    cell = breakdown_cell(workload, scheme,
                                          requests=requests,
                                          image=image, registry=registry)
                if registry is not None:
                    if merged is None:
                        merged = registry
                    else:
                        merged.merge(registry)
                experiment.breakdowns[workload][scheme] = \
                    FenceBreakdown(**cell["breakdown"])
                experiment.isv_cache_hit_rate[workload][scheme] = \
                    cell["isv_cache_hit_rate"]
                experiment.dsv_cache_hit_rate[workload][scheme] = \
                    cell["dsv_cache_hit_rate"]
    if merged is not None:
        experiment.metrics = merged.snapshot()
    return experiment
