"""Sensitivity analyses of Section 9.2.

* **Unknown allocations**: rerun LEBench with unknown memory allowed to
  speculate, isolating the share of Perspective's overhead that
  conservative blocking of no-DSV memory causes (paper: 1.5 points on
  LEBench, marginal on applications).
* **Memory fragmentation**: the secure slab allocator's per-cgroup page
  lists cost some utilization (paper: 0.91% overhead on the slabtop
  active/total ratio).
* **Domain reassignment**: how often slab frees empty a page and return it
  to the buddy allocator (paper: redis 0.23% of frees / 96 per second;
  httpd, nginx, memcached at 0.01% / 0.003% and single digits per second).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.defenses.perspective import PerspectivePolicy
from repro.eval.envs import RARE_EVERY, make_env
from repro.eval.metrics import geomean
from repro.kernel.image import shared_image
from repro.kernel.kernel import KernelConfig, MiniKernel
from repro.workloads.apps import APP_NAMES, APP_SPECS, AppWorkload
from repro.workloads.lebench import run_lebench

CORE_HZ = 2.0e9


@dataclass
class UnknownAllocationsResult:
    """LEBench overhead with vs without unknown-allocation blocking."""

    overhead_full_pct: float
    overhead_unknown_allowed_pct: float

    @property
    def unknown_contribution_pct(self) -> float:
        """Overhead points attributable to unknown allocations."""
        return self.overhead_full_pct - self.overhead_unknown_allowed_pct


def unknown_allocations_cell(scheme: str, rare_every: int = RARE_EVERY,
                             treat_unknown: bool = False,
                             ) -> dict[str, float]:
    """One cell of the unknown-allocations grid: LEBench cycles under
    ``scheme``, optionally with unknown memory allowed to speculate.

    Shared by the serial runner and :mod:`repro.exec`.
    """
    env = make_env("lebench", scheme)
    if treat_unknown:
        policy = env.policy
        assert isinstance(policy, PerspectivePolicy)
        policy.treat_unknown_as_owned = True
    return run_lebench(env.kernel, env.proc, rare_every=rare_every)


def unknown_overhead_pct(cycles: dict[str, float],
                         baseline: dict[str, float]) -> float:
    """Geomean LEBench overhead of ``cycles`` vs ``baseline``, percent."""
    mean = geomean([cycles[t] / baseline[t] for t in baseline])
    return 100.0 * (mean - 1.0)


def run_unknown_allocations(rare_every: int = RARE_EVERY,
                            ) -> UnknownAllocationsResult:
    """Quantify the unknown-allocation share of Perspective's overhead."""
    baseline = unknown_allocations_cell("unsafe", rare_every=rare_every)

    def overhead(treat_unknown: bool) -> float:
        cycles = unknown_allocations_cell("perspective",
                                          rare_every=rare_every,
                                          treat_unknown=treat_unknown)
        return unknown_overhead_pct(cycles, baseline)

    return UnknownAllocationsResult(
        overhead_full_pct=overhead(False),
        overhead_unknown_allowed_pct=overhead(True))


@dataclass
class SlabSensitivityResult:
    """Fragmentation and domain-reassignment figures per application."""

    #: app -> slab utilization under the secure allocator.
    secure_utilization: dict[str, float] = field(default_factory=dict)
    #: app -> slab utilization under the baseline allocator.
    baseline_utilization: dict[str, float] = field(default_factory=dict)
    #: app -> fraction of object frees returning a page to the buddy.
    page_return_ratio: dict[str, float] = field(default_factory=dict)
    #: app -> page returns per simulated second.
    reassignments_per_second: dict[str, float] = field(default_factory=dict)
    #: app -> cache lines holding objects of multiple owners (baseline
    #: allocator only; always zero under the secure allocator).
    baseline_collocations: dict[str, int] = field(default_factory=dict)

    def memory_overhead_pct(self, app: str) -> float:
        """Utilization loss of the secure allocator vs the baseline."""
        base = self.baseline_utilization[app]
        if base == 0:
            return 0.0
        return 100.0 * (1.0 - self.secure_utilization[app] / base)

    def average_memory_overhead_pct(self) -> float:
        apps = list(self.secure_utilization)
        return sum(self.memory_overhead_pct(a) for a in apps) / len(apps)


def run_slab_sensitivity(apps: tuple[str, ...] = APP_NAMES,
                         requests: int = 60,
                         background_tenants: int = 3,
                         ) -> SlabSensitivityResult:
    """Measure slab fragmentation and reassignment under real churn.

    Each application shares its kernel with a few background tenants in
    other cgroups, since the secure allocator's fragmentation cost only
    appears when multiple contexts would otherwise pack together.
    """
    result = SlabSensitivityResult()
    image = shared_image()
    for app in apps:
        cell = slab_sensitivity_cell(app, requests=requests,
                                     background_tenants=background_tenants,
                                     image=image)
        result.secure_utilization[app] = cell["secure_utilization"]
        result.baseline_utilization[app] = cell["baseline_utilization"]
        result.page_return_ratio[app] = cell["page_return_ratio"]
        result.reassignments_per_second[app] = \
            cell["reassignments_per_second"]
        result.baseline_collocations[app] = cell["baseline_collocations"]
    return result


def slab_sensitivity_cell(app: str, requests: int = 60,
                          background_tenants: int = 3,
                          image=None) -> dict[str, float]:
    """One (app) cell of the slab-sensitivity grid: both allocator
    configurations measured back to back, exactly as the serial loop
    body does.  Shared by the serial runner and :mod:`repro.exec`."""
    if image is None:
        image = shared_image()
    per_config: dict[bool, tuple[float, float, float, int]] = {}
    for secure in (True, False):
        kernel = MiniKernel(image=image, config=KernelConfig(
            secure_slab=secure, slab_warm_objects=6000))
        proc = kernel.create_process(app)
        tenants = [kernel.create_process(f"tenant{i}")
                   for i in range(background_tenants)]
        # Background slab churn: small live object populations per
        # tenant plus steady open/close traffic.
        tenant_fds: list[list[int]] = []
        for tenant in tenants:
            fds = [kernel.syscall(tenant, "open", args=(j,)).retval
                   for j in range(4)]
            tenant_fds.append(fds)
        workload = AppWorkload(kernel, proc, APP_SPECS[app],
                               rare_every=0)
        run = workload.serve(requests)
        for tenant, fds in zip(tenants, tenant_fds):
            for fd in fds[:2]:
                kernel.syscall(tenant, "close", args=(fd,))
            kernel.syscall(tenant, "open", args=(9,))
        stats = kernel.slab.stats
        seconds = run.kernel_cycles / CORE_HZ
        per_second = (stats.reassignment_frees / seconds
                      if seconds > 0 else 0.0)
        per_config[secure] = (
            kernel.slab.utilization(), stats.page_return_ratio,
            per_second, kernel.slab.collocated_owner_pairs())
    return {
        "secure_utilization": per_config[True][0],
        "baseline_utilization": per_config[False][0],
        "page_return_ratio": per_config[True][1],
        "reassignments_per_second": per_config[True][2],
        "baseline_collocations": per_config[False][3],
    }
