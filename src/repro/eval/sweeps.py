"""Microarchitectural parameter sweeps.

The paper fixes one core configuration (Table 7.1); these sweeps show how
the headline overheads move with the structures that matter, which is both
a sanity check on the model (overheads must respond in the physically
sensible direction) and the ablation data a reviewer would ask for:

* **branch resolution latency** -- the speculation-window length; FENCE's
  cost grows with it, Perspective's barely moves (its fences are rare);
* **ROB size** -- deeper windows help the unprotected baseline overlap
  misses more than they help FENCE (whose chains are data-limited), so
  the *relative* overhead grows slightly and saturates;
* **view-cache entries** -- Perspective's conservative-miss rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.framework import Perspective
from repro.core.views import InstructionSpeculationView
from repro.defenses import FencePolicy, PerspectivePolicy, UnsafePolicy
from repro.eval.metrics import geomean
from repro.kernel.image import shared_image
from repro.kernel.kernel import KernelConfig, MiniKernel
from repro.workloads.lebench import build_tests, run_lebench

#: Representative LEBench subset for sweeps (one per behavioural class).
SWEEP_TESTS = ("getpid", "read", "mmap", "select")


@dataclass
class SweepResult:
    """Overhead (percent vs unsafe at the same point) per swept value."""

    parameter: str
    scheme: str
    overhead_pct: dict[float, float] = field(default_factory=dict)

    def values(self) -> list[float]:
        return sorted(self.overhead_pct)

    def render(self) -> str:
        lines = [f"{self.parameter} sweep under {self.scheme}:"]
        for value in self.values():
            lines.append(f"  {value:>8g}: {self.overhead_pct[value]:+6.1f}%")
        return "\n".join(lines)


def _measure(scheme: str, pipeline_overrides: dict) -> float:
    """Geomean LEBench-subset overhead of ``scheme`` vs unsafe, with the
    same pipeline configuration applied to both."""
    tests = [t for t in build_tests() if t.name in SWEEP_TESTS]
    cycles = {}
    for name in ("unsafe", scheme):
        config = KernelConfig()
        for attr, value in pipeline_overrides.items():
            setattr(config.pipeline, attr, value)
        kernel = MiniKernel(image=shared_image(), config=config)
        proc = kernel.create_process("sweep")
        if name == "perspective":
            framework = Perspective(kernel)
            functions = frozenset(
                n for n, i in kernel.image.info.items()
                if i.role != "driver")
            framework.install_isv(InstructionSpeculationView(
                proc.cgroup.cg_id, functions, kernel.image.layout,
                source="sweep"))
            kernel.pipeline.set_policy(PerspectivePolicy(framework))
        elif name == "fence":
            kernel.pipeline.set_policy(FencePolicy())
        else:
            kernel.pipeline.set_policy(UnsafePolicy())
        cycles[name] = run_lebench(kernel, proc, tests=tests)
    ratios = [cycles[scheme][t] / cycles["unsafe"][t] for t in cycles[scheme]]
    return 100.0 * (geomean(ratios) - 1.0)


def sweep_branch_resolve_latency(
        values=(4.0, 7.0, 12.0, 20.0),
        scheme: str = "fence") -> SweepResult:
    """Overhead vs speculation-window length."""
    result = SweepResult("branch_resolve_latency", scheme)
    for value in values:
        result.overhead_pct[value] = _measure(
            scheme, {"branch_resolve_latency": value})
    return result


def sweep_rob_entries(values=(48, 96, 192, 384),
                      scheme: str = "fence") -> SweepResult:
    """Overhead vs reorder-buffer depth."""
    result = SweepResult("rob_entries", scheme)
    for value in values:
        result.overhead_pct[value] = _measure(scheme,
                                              {"rob_entries": value})
    return result
