"""Text renderers for every table of the paper.

Each function takes the matching experiment result (where one is needed)
and returns the table as a string shaped like the paper's, so benchmark
output can be diffed against the published numbers by eye.
"""

from __future__ import annotations

from repro.attacks.cves import TABLE_4_1
from repro.eval.runner import (
    BreakdownExperiment,
    GadgetExperiment,
    SurfaceExperiment,
)
from repro.hw_model.cacti import table_9_1 as cacti_rows
from repro.kernel.image import ImageConfig


#: Placeholder for cells/tables whose experiment failed or never ran.
MISSING = "—"


def _rule(width: int = 78) -> str:
    return "-" * width


def unavailable(title: str, reason: str = "experiment unavailable") -> str:
    """Render a placeholder block instead of aborting the whole report.

    Used by the resilient campaign path when an experiment is marked
    failed after retry exhaustion (or was never scheduled).
    """
    return "\n".join([title, _rule(), f"{MISSING}  ({reason})"])


def table_4_1() -> str:
    """CVE taxonomy of speculative-execution vulnerabilities."""
    lines = ["Table 4.1: Speculative execution vulnerabilities targeting "
             "the Linux kernel", _rule()]
    for rec in TABLE_4_1:
        ids = ", ".join(rec.identifiers[:2])
        if len(rec.identifiers) > 2:
            ids += f", +{len(rec.identifiers) - 2} more"
        lines.append(f"{rec.row}. [{rec.primitive.name.lower():>12}] "
                     f"gap={rec.gap.value:<34} {ids}")
        lines.append(f"   {rec.description} -- origin: {rec.origin} "
                     f"(PoC: {rec.poc})")
    return "\n".join(lines)


def table_7_1() -> str:
    """Full-system simulation parameters."""
    from repro.cpu.cache import CacheHierarchy
    from repro.cpu.pipeline import PipelineConfig
    cfg = PipelineConfig()
    rows = [
        ("Architecture", "out-of-order x86-like cores at 2.0 GHz"),
        ("Core", f"{cfg.fetch_width}-issue, out-of-order, "
                 f"{cfg.load_queue_entries} LQ / "
                 f"{cfg.store_queue_entries} SQ entries, "
                 f"{cfg.rob_entries} ROB entries, "
                 "large-table conditional predictor, 4096-entry BTB, "
                 "16-entry RAS"),
        ("Private L1-I", f"{CacheHierarchy.L1I_SIZE // 1024} KB, 64 B line, "
                         f"{CacheHierarchy.L1I_WAYS}-way, "
                         f"{CacheHierarchy.L1_LATENCY}-cycle RT"),
        ("Private L1-D", f"{CacheHierarchy.L1D_SIZE // 1024} KB, 64 B line, "
                         f"{CacheHierarchy.L1D_WAYS}-way, "
                         f"{CacheHierarchy.L1_LATENCY}-cycle RT"),
        ("Shared L2", f"{CacheHierarchy.L2_SIZE // (1024 * 1024)} MB slice, "
                      f"64 B line, {CacheHierarchy.L2_WAYS}-way, "
                      f"{CacheHierarchy.L2_LATENCY}-cycle RT"),
        ("DRAM", f"{CacheHierarchy.DRAM_LATENCY}-cycle RT after L2 "
                 "(50 ns at 2 GHz)"),
        ("ISV Cache", "128 entries, 32 sets, 4-way; 57 bits/entry"),
        ("DSV Cache", "128 entries, 32 sets, 4-way; 53 bits/entry"),
        ("OS kernel", f"synthetic image, {ImageConfig().total_functions} "
                      "functions (Linux v5.4.49 at 1/10 scale)"),
    ]
    lines = ["Table 7.1: Full-System Simulation Parameters", _rule()]
    lines += [f"{name:<14} {value}" for name, value in rows]
    return "\n".join(lines)


def table_8_1(exp: SurfaceExperiment | None) -> str:
    """Attack-surface reduction with Perspective."""
    if exp is None:
        return unavailable("Table 8.1: Attack surface reduction with "
                           "Perspective")
    apps = list(exp.static_isv_size)
    lines = ["Table 8.1: Attack surface reduction with Perspective",
             _rule(),
             "Config | " + " | ".join(f"{a:>9}" for a in apps)]
    for flavor, label in (("static", "ISV-S"), ("dynamic", "ISV")):
        cells = " | ".join(f"{100 * exp.reduction(a, flavor):>8.0f}%"
                           for a in apps)
        lines.append(f"{label:<6} | {cells}")
    lines.append(f"(paper: ISV-S 90-92%, ISV 94-96%; "
                 f"total functions {exp.total_functions})")
    return "\n".join(lines)


def table_8_2(exp: GadgetExperiment | None) -> str:
    """MDS / Port / Cache gadget reduction per ISV flavor."""
    if exp is None:
        return unavailable("Table 8.2: Perspective's MDS/Port/Cache gadget "
                           "reduction")
    scale = ImageConfig().gadget_report_scale
    lines = ["Table 8.2: Perspective's MDS/Port/Cache gadget reduction",
             _rule(),
             "Benchmark  | ISV-S           | ISV             | ISV++"]
    for app, rows in exp.blocked.items():
        cells = []
        for flavor in ("ISV-S", "ISV", "ISV++"):
            frac = rows[flavor]
            cells.append(" / ".join(f"{100 * frac[c]:.0f}%"
                                    for c in ("mds", "port", "cache")))
        lines.append(f"{app:<10} | {cells[0]:<15} | {cells[1]:<15} | "
                     f"{cells[2]}")
    total = sum(exp.total_by_class.values())
    lines.append(
        f"(gadget population {total} = "
        + " / ".join(f"{exp.total_by_class[c]} {c}"
                     for c in ("mds", "port", "cache"))
        + f"; x{scale} = paper scale 1533 = 805/509/219)")
    lines.append("(paper: ISV-S 78-87%, ISV 91-93%, ISV++ 100%)")
    return "\n".join(lines)


def table_9_1() -> str:
    """Hardware structure characterization (CACTI, 22 nm)."""
    lines = ["Table 9.1: Hardware Structure Characterization", _rule(),
             f"{'Configuration':<12} {'Area':>12} {'Access':>9} "
             f"{'Dyn.Energy':>11} {'Leak.Power':>11}"]
    for row in cacti_rows():
        lines.append(f"{row.name:<12} {row.area_mm2:>9.4f}mm2 "
                     f"{row.access_time_ps:>7.0f}ps "
                     f"{row.dynamic_energy_pj:>9.2f}pJ "
                     f"{row.leakage_power_mw:>9.2f}mW")
    lines.append("(paper: DSV 0.0024mm2/114ps/1.21pJ/0.78mW, "
                 "ISV 0.0025mm2/115ps/1.29pJ/0.79mW)")
    return "\n".join(lines)


def table_10_1(exp: BreakdownExperiment | None) -> str:
    """Percentage of fenced instructions due to ISV and DSV."""
    if exp is None:
        return unavailable("Table 10.1: Fenced instructions due to ISV "
                           "vs DSV")
    lines = ["Table 10.1: Fenced instructions due to ISV vs DSV", _rule()]
    flavor_label = {"perspective-static": "ISV-S/DSV",
                    "perspective": "ISV/DSV",
                    "perspective++": "ISV++/DSV"}
    workloads = list(exp.breakdowns)
    header = "Config     | " + " | ".join(f"{w:>10}" for w in workloads)
    lines.append(header)
    schemes = list(next(iter(exp.breakdowns.values())))
    for scheme in schemes:
        cells = []
        for w in workloads:
            fb = exp.breakdowns[w][scheme]
            cells.append(f"{100 * fb.isv_share:>3.0f}%/"
                         f"{100 * fb.dsv_share:.0f}%")
        lines.append(f"{flavor_label.get(scheme, scheme):<10} | "
                     + " | ".join(f"{c:>10}" for c in cells))
    lines.append("(paper: ISV-S/DSV ~20%/80%, ISV/DSV ~15-23%/77-88%)")
    # Fence rates per kiloinstruction for the dynamic-ISV configuration.
    if "perspective" in schemes:
        rates = []
        for w in workloads:
            fb = exp.breakdowns[w]["perspective"]
            rates.append(f"{w}: isv {fb.fences_per_kiloinstruction('isv'):.1f}"
                         f" dsv {fb.fences_per_kiloinstruction('dsv'):.1f}")
        lines.append("fence rates /kiloinstruction -- " + "; ".join(rates))
        lines.append("(paper: on average 9 ISV and 37 DSV fences per "
                     "kiloinstruction)")
    return "\n".join(lines)
