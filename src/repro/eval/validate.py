"""Machine-readable registry of the paper's quantitative claims.

``EXPERIMENTS.md`` narrates paper-vs-measured; this module encodes the
same claims as data so they can be *checked*: each claim names the paper
value, the tolerance band the reproduction targets, and an extractor over
the experiment results.  ``validate_claims`` runs every extractor and
returns a structured scorecard -- the regression gate for the headline
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class Claim:
    """One quantitative claim from the paper."""

    claim_id: str
    description: str
    paper_value: float
    low: float
    high: float
    unit: str = "%"

    def check(self, measured: float) -> bool:
        return self.low <= measured <= self.high


@dataclass
class ClaimOutcome:
    claim: Claim
    measured: float

    @property
    def ok(self) -> bool:
        return self.claim.check(self.measured)


#: The headline claims, with the reproduction's accepted bands.
CLAIMS: tuple[Claim, ...] = (
    Claim("fence-lebench-avg", "FENCE average overhead on LEBench",
          47.5, 30.0, 70.0),
    Claim("fence-select-worst", "FENCE worst-case on select-family tests "
          "(paper: up to 228%)", 228.0, 150.0, 320.0),
    Claim("dom-lebench-avg", "Delay-on-Miss average overhead on LEBench",
          23.1, 12.0, 40.0),
    Claim("stt-lebench-avg", "STT average overhead on LEBench",
          3.7, 0.5, 12.0),
    Claim("spot-lebench-avg", "KPTI+retpoline average overhead on LEBench",
          14.5, 8.0, 25.0),
    Claim("perspective-lebench-avg", "Perspective (dynamic ISVs) average "
          "overhead on LEBench", 3.6, -0.5, 8.0),
    Claim("fence-apps-avg", "FENCE average throughput loss on datacenter "
          "apps", 5.7, 2.0, 10.0),
    Claim("perspective-apps-avg", "Perspective average throughput loss on "
          "datacenter apps", 1.2, -1.0, 3.0),
    Claim("isv-static-surface", "Static-ISV attack-surface reduction "
          "(minimum across apps)", 90.0, 88.0, 94.0),
    Claim("isv-dynamic-surface", "Dynamic-ISV attack-surface reduction "
          "(minimum across apps)", 94.0, 93.0, 98.0),
    Claim("kasper-speedup-avg", "Average Kasper discovery-rate speedup "
          "(x)", 1.57, 1.2, 2.3, unit="x"),
    Claim("isvpp-gadgets-blocked", "Gadgets blocked by ISV++ (minimum)",
          100.0, 100.0, 100.0),
)


def claim(claim_id: str) -> Claim:
    for item in CLAIMS:
        if item.claim_id == claim_id:
            return item
    raise KeyError(claim_id)


@dataclass
class Scorecard:
    outcomes: list[ClaimOutcome] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def render(self) -> str:
        lines = [f"{'claim':<26} {'paper':>8} {'measured':>9} "
                 f"{'band':>16} {'ok':>4}"]
        for outcome in self.outcomes:
            c = outcome.claim
            lines.append(
                f"{c.claim_id:<26} {c.paper_value:>7.1f}{c.unit} "
                f"{outcome.measured:>8.2f}{c.unit} "
                f"[{c.low:.1f}, {c.high:.1f}]"
                f"{'  OK' if outcome.ok else '  FAIL':>6}")
        return "\n".join(lines)


def validate_claims(lebench=None, apps=None, surface=None, gadgets=None,
                    kasper=None) -> Scorecard:
    """Check every claim whose experiment result was supplied.

    Pass the objects returned by the ``repro.eval.runner`` experiment
    functions; claims without their experiment are skipped.
    """
    card = Scorecard()

    def add(claim_id: str, measured: float) -> None:
        card.outcomes.append(ClaimOutcome(claim(claim_id), measured))

    if lebench is not None:
        schemes = set(lebench.schemes)
        if "fence" in schemes:
            add("fence-lebench-avg", lebench.average_overhead_pct("fence"))
            worst = max(
                100 * (lebench.normalized_latency(t, "fence") - 1)
                for t in ("select", "poll", "epoll"))
            add("fence-select-worst", worst)
        if "dom" in schemes:
            add("dom-lebench-avg", lebench.average_overhead_pct("dom"))
        if "stt" in schemes:
            add("stt-lebench-avg", lebench.average_overhead_pct("stt"))
        if "spot" in schemes:
            add("spot-lebench-avg", lebench.average_overhead_pct("spot"))
        if "perspective" in schemes:
            add("perspective-lebench-avg",
                lebench.average_overhead_pct("perspective"))
    if apps is not None:
        schemes = set(apps.schemes)
        if "fence" in schemes:
            add("fence-apps-avg",
                apps.average_throughput_overhead_pct("fence"))
        if "perspective" in schemes:
            add("perspective-apps-avg",
                apps.average_throughput_overhead_pct("perspective"))
    if surface is not None:
        add("isv-static-surface", 100 * min(
            surface.reduction(app, "static")
            for app in surface.static_isv_size))
        add("isv-dynamic-surface", 100 * min(
            surface.reduction(app, "dynamic")
            for app in surface.dynamic_isv_size))
    if gadgets is not None:
        add("isvpp-gadgets-blocked", 100 * min(
            min(rows["ISV++"].values())
            for rows in gadgets.blocked.values()))
    if kasper is not None:
        add("kasper-speedup-avg", kasper.average)
    return card
