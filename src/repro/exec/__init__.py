"""repro.exec -- the deterministic parallel experiment engine.

Every grid-shaped runner in the evaluation (LEBench, applications,
breakdown, attack surface, sweeps, sensitivity analyses) decomposes into
independent (workload, scheme, params) **cells**.  This package runs
those cells through:

* :mod:`repro.exec.engine` -- process-pool scatter/gather with seeded,
  order-independent merging, byte-identical to the serial ``run_*``
  functions at any worker count;
* :mod:`repro.exec.cache` -- a content-addressed on-disk result cache,
  so re-runs (and unrelated code edits) replay instantly;
* :mod:`repro.exec.fingerprint` -- cell addresses derived from the cell
  configuration plus the source of every ``repro`` module the cell's
  entry points transitively import;
* :mod:`repro.exec.grids` -- the registry describing each experiment's
  cells and how to reassemble them.

See ``python -m repro.exec --help`` for the CLI and
``docs/performance.md`` for the full story.
"""

from repro.exec.cache import ResultCache, ResultCacheStats, default_cache_dir
from repro.exec.engine import (
    EngineConfig,
    ExperimentEngine,
    IsolatedResult,
    RunReport,
    run_experiment,
    run_in_subprocess,
)
from repro.exec.fingerprint import (
    cell_fingerprint,
    code_fingerprint,
    import_closure,
)
from repro.exec.grids import GRIDS, Grid, get_grid, grid_names

__all__ = [
    "GRIDS",
    "EngineConfig",
    "ExperimentEngine",
    "Grid",
    "IsolatedResult",
    "ResultCache",
    "ResultCacheStats",
    "RunReport",
    "cell_fingerprint",
    "code_fingerprint",
    "default_cache_dir",
    "get_grid",
    "grid_names",
    "import_closure",
    "run_experiment",
    "run_in_subprocess",
]
