"""CLI for the parallel experiment engine.

Examples::

    python -m repro.exec --list
    python -m repro.exec lebench --workers 4
    python -m repro.exec suite --workers 4 --cache-dir /tmp/exec-cache
    python -m repro.exec breakdown --no-cache --json
    python -m repro.exec --wipe-cache

Results are byte-identical to the serial ``run_*`` functions at any
worker count; see docs/performance.md.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from typing import Any

from repro.exec.engine import EngineConfig, ExperimentEngine
from repro.exec.grids import grid_names

#: The full table/figure suite (what benchmarks/bench_parallel_eval.py
#: measures): every perf-relevant grid of the evaluation chapters.
SUITE = ("lebench", "apps", "breakdown", "surface")


def _jsonable(result: Any) -> Any:
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return dataclasses.asdict(result)
    return result


def _describe(name: str, result: Any) -> list[str]:
    """A few headline numbers per experiment, for the human-readable
    default output."""
    lines: list[str] = []
    if name == "lebench":
        for scheme in result.schemes:
            if scheme == "unsafe":
                continue
            lines.append(f"  {scheme}: "
                         f"{result.average_overhead_pct(scheme):+.2f}% "
                         f"geomean LEBench overhead")
    elif name == "apps":
        for scheme in result.schemes:
            if scheme == "unsafe":
                continue
            pct = result.average_throughput_overhead_pct(scheme)
            lines.append(f"  {scheme}: {pct:+.2f}% mean throughput loss")
    elif name == "surface":
        for app in result.dynamic_isv_size:
            lines.append(
                f"  {app}: ISV {result.dynamic_isv_size[app]}"
                f"/{result.total_functions} functions "
                f"({100 * result.reduction(app, 'dynamic'):.1f}% cut)")
    elif name == "breakdown":
        for workload, per_scheme in result.isv_cache_hit_rate.items():
            rates = ", ".join(f"{s}={r:.3f}"
                              for s, r in per_scheme.items())
            lines.append(f"  {workload} ISV-cache hit rate: {rates}")
    elif name in ("sweep-branch", "sweep-rob"):
        for value, pct in result.overhead_pct.items():
            lines.append(f"  {result.parameter}={value}: {pct:+.2f}% "
                         f"({result.scheme})")
    elif name == "unknown-allocations":
        lines.append(f"  full: {result.overhead_full_pct:+.2f}%  "
                     f"unknown-allowed: "
                     f"{result.overhead_unknown_allowed_pct:+.2f}%  "
                     f"contribution: "
                     f"{result.unknown_contribution_pct:+.2f} pts")
    elif name == "slab-sensitivity":
        lines.append(f"  mean slab memory overhead: "
                     f"{result.average_memory_overhead_pct():.2f}%")
    elif name == "defense-matrix":
        from repro.eval.defense_matrix import render_table
        lines.extend("  " + line
                     for line in render_table(result).splitlines())
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec",
        description="Run evaluation experiments on the parallel engine "
                    "with content-addressed result caching.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (see --list), or 'suite' "
                             f"for {'+'.join(SUITE)}")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="process-pool width (default: 1, serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the result cache entirely")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="cache root (default: $REPRO_EXEC_CACHE or "
                             "~/.cache/repro/exec)")
    parser.add_argument("--json", action="store_true",
                        help="print each result as JSON instead of the "
                             "headline summary")
    parser.add_argument("--list", action="store_true",
                        help="list known experiments and exit")
    parser.add_argument("--wipe-cache", action="store_true",
                        help="delete every cached result, then run any "
                             "named experiments")
    args = parser.parse_args(argv)

    if args.list:
        for name in grid_names():
            print(name)
        return 0

    engine = ExperimentEngine(EngineConfig(
        workers=max(1, args.workers), use_cache=not args.no_cache,
        cache_dir=args.cache_dir))

    if args.wipe_cache:
        removed = engine.cache.wipe()
        print(f"wiped {removed} cached result"
              f"{'' if removed == 1 else 's'} from {engine.cache.root}")
        if not args.experiments:
            return 0

    if not args.experiments:
        parser.error("no experiments given (try --list or 'suite')")

    names: list[str] = []
    for name in args.experiments:
        names.extend(SUITE if name == "suite" else [name])
    known = set(grid_names())
    unknown = [n for n in names if n not in known]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)} "
                     f"(see --list)")

    for name in names:
        start = time.perf_counter()
        result, report = engine.run(name)
        elapsed = time.perf_counter() - start
        print(f"{report.summary()}, {elapsed:.2f}s")
        if args.json:
            print(json.dumps(_jsonable(result), indent=2, sort_keys=True))
        else:
            for line in _describe(name, result):
                print(line)

    stats = engine.cache.stats
    if not args.no_cache:
        print(f"cache totals: {stats.hits} hit, {stats.misses} miss, "
              f"{stats.stores} stored at {engine.cache.root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
