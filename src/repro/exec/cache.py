"""Content-addressed on-disk result cache for experiment cells.

Layout: one JSON file per cell under ``<root>/<fp[:2]>/<fp>.json`` where
``fp`` is the cell fingerprint (:mod:`repro.exec.fingerprint`).  Each
record stores the experiment name, cell key, cell parameters, and the
cell's JSON payload, so entries are self-describing and inspectable with
any JSON tool.  Writes are atomic (temp file + rename), so a killed run
never leaves a truncated record; unreadable records count as misses and
are overwritten.

The default root is ``~/.cache/repro/exec``, overridable with the
``REPRO_EXEC_CACHE`` environment variable or per-instance.  Hit/miss/
store counts are exported through :mod:`repro.obs` as
``exec.cache.hits`` / ``exec.cache.misses`` / ``exec.cache.stores``
whenever a registry is observing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs import registry as obs

ENV_VAR = "REPRO_EXEC_CACHE"


def default_cache_dir() -> Path:
    env = os.environ.get(ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "exec"


@dataclass
class ResultCacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0


@dataclass
class ResultCache:
    """Content-addressed store of cell payloads."""

    root: Path = field(default_factory=default_cache_dir)
    stats: ResultCacheStats = field(default_factory=ResultCacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def _path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        """The stored record for ``fingerprint``, or ``None`` on a miss."""
        try:
            text = self._path(fingerprint).read_text(encoding="utf-8")
            record = json.loads(text)
        except (OSError, ValueError):
            self.stats.misses += 1
            obs.add("exec.cache.misses")
            return None
        if not isinstance(record, dict) or "payload" not in record:
            self.stats.misses += 1
            obs.add("exec.cache.misses")
            return None
        self.stats.hits += 1
        obs.add("exec.cache.hits")
        return record

    def put(self, fingerprint: str, record: dict[str, Any]) -> None:
        """Atomically store ``record`` under ``fingerprint``."""
        path = self._path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(record, sort_keys=False, separators=(",", ":")),
            encoding="utf-8")
        os.replace(tmp, path)
        self.stats.stores += 1
        obs.add("exec.cache.stores")

    def entries(self) -> list[Path]:
        """Every record file currently in the cache, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json"))

    def wipe(self) -> int:
        """Delete every record; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
