"""The parallel experiment engine: scatter cells, gather payloads.

:class:`ExperimentEngine` runs any registered grid
(:mod:`repro.exec.grids`) by decomposing it into independent cells,
resolving each cell against the content-addressed result cache
(:mod:`repro.exec.cache`), executing the remaining cells -- inline, or
scattered over a process pool when ``workers > 1`` -- and assembling the
experiment object in declared cell order.

Determinism contract, enforced by the parity tests:

* every cell runs the *same per-cell function* the serial runner calls,
  in a fresh environment, so cell outputs do not depend on which process
  (or how many siblings) computed them;
* gathered payloads are keyed by cell key and assembled in declared grid
  order, never in pool completion order;
* every payload is round-tripped through JSON (preserving dict insertion
  order) before assembly, so a cache replay and a fresh execution are
  indistinguishable down to float-arithmetic iteration order.

Consequently ``engine.run("lebench")`` is byte-identical to
``run_lebench_experiment()`` at any worker count, cold or warm cache.

The engine is not meant to run inside an outer ``observing(...)`` scope:
pool workers are separate processes, so an outer registry would capture
only the scatter/gather bookkeeping, not the cells' hot paths.  Grids
that need metrics capture them per cell (see the breakdown grid's
``observe`` parameter).  The subprocess transport that the campaign
runner (:mod:`repro.reliability.campaign`) uses for crash/timeout
isolation lives here too (:func:`run_in_subprocess`), so both layers
share one fork-with-spawn-fallback implementation.
"""

from __future__ import annotations

import json
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.exec.cache import ResultCache, default_cache_dir
from repro.exec.fingerprint import (
    cell_fingerprint,
    code_fingerprint,
    import_closure,
)
from repro.exec.grids import get_grid
from repro.obs import registry as obs

Key = tuple[str, ...]


def _mp_context():
    """Fork when the platform offers it (cheap, inherits the warmed
    image cache), spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context("spawn")


def _roundtrip(payload: Any) -> Any:
    # No sort_keys: dict insertion order must survive so assemble-time
    # float reductions (geomeans etc.) iterate exactly as the serial
    # runner does, whether the payload is fresh or replayed from cache.
    return json.loads(json.dumps(payload))


def _run_cell_task(grid_name: str, key: list[str] | Key,
                   cell_params: dict[str, Any]) -> Any:
    """Top-level pool task: re-look up the grid by name (grids are
    registered at import time, so this works under fork and spawn
    alike) and run one cell."""
    grid = get_grid(grid_name)
    return _roundtrip(grid.run_cell(tuple(key), cell_params))


@dataclass
class RunReport:
    """What one engine run did: cells, cache traffic, parallelism."""

    experiment: str
    workers: int
    cache_enabled: bool
    cells_total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    stored: int = 0

    def summary(self) -> str:
        cache = (f"cache {self.cache_hits} hit / "
                 f"{self.cache_misses} miss"
                 if self.cache_enabled else "cache off")
        return (f"{self.experiment}: {self.cells_total} cells, "
                f"{self.executed} executed on {self.workers} "
                f"worker{'s' if self.workers != 1 else ''}, {cache}")


@dataclass
class EngineConfig:
    """Knobs for :class:`ExperimentEngine`."""

    workers: int = 1
    use_cache: bool = True
    cache_dir: str | Path | None = None


class ExperimentEngine:
    """Scatter/gather executor for grid-shaped experiments."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()
        root = (Path(self.config.cache_dir)
                if self.config.cache_dir is not None
                else default_cache_dir())
        self.cache = ResultCache(root=root)

    def run(self, experiment: str,
            params: dict[str, Any] | None = None,
            **overrides: Any) -> tuple[Any, RunReport]:
        """Run one experiment; returns ``(result, report)``.

        ``result`` is the same object the serial ``run_*`` function
        returns; ``params``/``overrides`` override the grid defaults.
        """
        grid = get_grid(experiment)
        merged = grid.normalize(
            {**grid.defaults(), **(params or {}), **overrides})
        cells = grid.cells(merged)
        report = RunReport(experiment=experiment,
                           workers=self.config.workers,
                           cache_enabled=self.config.use_cache,
                           cells_total=len(cells))
        code_fp = code_fingerprint(import_closure(grid.entry_modules))

        payloads: dict[Key, Any] = {}
        fingerprints: dict[Key, str] = {}
        pending: list[tuple[Key, dict[str, Any]]] = []
        for key, cell_params in cells:
            fp = cell_fingerprint(experiment, key, cell_params, code_fp)
            fingerprints[key] = fp
            if self.config.use_cache:
                record = self.cache.get(fp)
                if record is not None:
                    payloads[key] = record["payload"]
                    report.cache_hits += 1
                    continue
                report.cache_misses += 1
            pending.append((key, cell_params))

        obs.add("exec.cells.total", len(cells))
        obs.add("exec.cells.executed", len(pending))
        for (key, cell_params), payload in zip(
                pending, self._execute(experiment, pending)):
            payloads[key] = payload
            if self.config.use_cache:
                self.cache.put(fingerprints[key], {
                    "experiment": experiment, "key": list(key),
                    "params": cell_params, "payload": payload})
                report.stored += 1
            report.executed += 1

        result = grid.assemble(merged, payloads)
        return result, report

    def _execute(self, experiment: str,
                 pending: list[tuple[Key, dict[str, Any]]]) -> list[Any]:
        if not pending:
            return []
        workers = min(self.config.workers, len(pending))
        if workers <= 1:
            return [_run_cell_task(experiment, key, cell_params)
                    for key, cell_params in pending]
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=_mp_context()) as pool:
            futures = [pool.submit(_run_cell_task, experiment, list(key),
                                   cell_params)
                       for key, cell_params in pending]
            # Gather in submission order; completion order is irrelevant.
            return [future.result() for future in futures]


def run_experiment(experiment: str,
                   params: dict[str, Any] | None = None,
                   *, workers: int = 1, use_cache: bool = True,
                   cache_dir: str | Path | None = None,
                   **overrides: Any) -> tuple[Any, RunReport]:
    """One-shot convenience wrapper around :class:`ExperimentEngine`."""
    engine = ExperimentEngine(EngineConfig(
        workers=workers, use_cache=use_cache, cache_dir=cache_dir))
    return engine.run(experiment, params, **overrides)


# ---------------------------------------------------------------------------
# Shared subprocess transport (crash/timeout isolation)
# ---------------------------------------------------------------------------


@dataclass
class IsolatedResult:
    """Outcome of :func:`run_in_subprocess`."""

    #: The single message the worker sent, or ``None`` if it never did.
    message: Any
    exitcode: int | None
    #: The worker exceeded the timeout and was terminated.
    timed_out: bool = False


def run_in_subprocess(worker: Callable[..., None],
                      args: tuple[Any, ...] = (),
                      timeout_s: float | None = None) -> IsolatedResult:
    """Run ``worker(*args, conn)`` in its own process; receive one message.

    The worker gets a one-way pipe connection as its last argument and is
    expected to ``conn.send(...)`` exactly once.  A worker that blows the
    timeout is terminated (``timed_out=True``); one that dies without
    sending yields ``message=None`` with its exit code.  This is the
    isolation transport behind both the engine's campaign port and
    :class:`repro.reliability.campaign.CampaignRunner`.
    """
    ctx = _mp_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=worker, args=(*args, child_conn))
    proc.start()
    child_conn.close()
    message: Any = None
    # poll() returning True means the worker sent something OR its end of
    # the pipe closed (crash); False means the timeout genuinely expired.
    signalled = parent_conn.poll(timeout_s)
    if signalled:
        try:
            message = parent_conn.recv()
        except EOFError:
            message = None
    timed_out = False
    proc.join(timeout=5.0 if signalled else 0.0)
    if proc.is_alive():
        proc.terminate()
        proc.join()
        timed_out = not signalled
    parent_conn.close()
    return IsolatedResult(message=message, exitcode=proc.exitcode,
                          timed_out=timed_out)
