"""Content fingerprints for experiment cells.

The result cache (:mod:`repro.exec.cache`) is addressed by a fingerprint
of *everything that determines a cell's output*: the cell's own
configuration plus the source of every ``repro`` module the cell's entry
points transitively import.  The import closure is computed statically
(an AST walk over each module's source -- nothing is executed), so
fingerprinting is cheap and has no side effects.

The rules, as enforced by the tests:

* editing any module inside a cell's import closure changes its
  fingerprint (the cached result is invalidated);
* editing a module *outside* the closure leaves the fingerprint
  unchanged (unrelated edits replay from cache);
* the fingerprint is independent of dict ordering, machine, and process
  (canonical JSON + sha256 over sorted module lists).
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
import json
from typing import Any

#: Only first-party modules participate in fingerprints.  Third-party
#: and stdlib dependencies are pinned by the environment, not the cache.
PACKAGE_ROOT = "repro"

_SOURCE_CACHE: dict[str, bytes | None] = {}
_CLOSURE_CACHE: dict[tuple[str, ...], tuple[str, ...]] = {}


def clear_caches() -> None:
    """Drop the per-process source/closure caches (tests, long sessions)."""
    _SOURCE_CACHE.clear()
    _CLOSURE_CACHE.clear()


def _module_source(module: str) -> bytes | None:
    """Raw source bytes of ``module``, or ``None`` if it is not a plain
    ``.py`` file (or not an importable module at all).

    Resolution goes through :func:`importlib.util.find_spec`, so the
    bytes fingerprinted are exactly the bytes that would execute.
    """
    try:
        spec = importlib.util.find_spec(module)
    except (ImportError, AttributeError, ValueError):
        return None
    if spec is None or spec.origin is None \
            or not spec.origin.endswith(".py"):
        return None
    try:
        with open(spec.origin, "rb") as fh:
            return fh.read()
    except OSError:
        return None


def _source(module: str) -> bytes | None:
    if module not in _SOURCE_CACHE:
        _SOURCE_CACHE[module] = _module_source(module)
    return _SOURCE_CACHE[module]


def _imported_modules(source: bytes) -> set[str]:
    """``repro.*`` module names a source file may import.

    ``from repro.x import y`` contributes both ``repro.x`` and
    ``repro.x.y`` -- the latter resolves to a source file only when
    ``y`` is a submodule, and is otherwise discarded by :func:`_source`.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return set()
    prefix = PACKAGE_ROOT + "."
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == PACKAGE_ROOT \
                        or alias.name.startswith(prefix):
                    found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                continue  # the repo uses absolute imports throughout
            mod = node.module or ""
            if mod == PACKAGE_ROOT or mod.startswith(prefix):
                found.add(mod)
                for alias in node.names:
                    found.add(f"{mod}.{alias.name}")
    return found


def import_closure(roots: tuple[str, ...] | list[str]) -> tuple[str, ...]:
    """Transitive ``repro.*`` import closure of ``roots``, sorted.

    Ancestor packages are included (their ``__init__`` executes on
    import).  Purely static: modules are parsed, never imported.
    """
    key = tuple(sorted(set(roots)))
    cached = _CLOSURE_CACHE.get(key)
    if cached is not None:
        return cached
    seen: set[str] = set()
    queue: list[str] = list(key)
    while queue:
        name = queue.pop()
        candidates = [name]
        while "." in name:
            name = name.rsplit(".", 1)[0]
            candidates.append(name)
        for cand in candidates:
            if cand in seen:
                continue
            src = _source(cand)
            if src is None:
                continue  # not a module (e.g. an imported function name)
            seen.add(cand)
            queue.extend(m for m in _imported_modules(src)
                         if m not in seen)
    closure = tuple(sorted(seen))
    _CLOSURE_CACHE[key] = closure
    return closure


def code_fingerprint(modules: tuple[str, ...] | list[str]) -> str:
    """sha256 over the sorted (module name, source hash) pairs."""
    digest = hashlib.sha256()
    for module in sorted(set(modules)):
        src = _source(module)
        if src is None:
            continue
        digest.update(module.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(hashlib.sha256(src).digest())
        digest.update(b"\x00")
    return digest.hexdigest()


def cell_fingerprint(experiment: str, key: tuple[str, ...],
                     cell_params: dict[str, Any], code_fp: str) -> str:
    """Content address of one cell: config + code version, canonical."""
    blob = json.dumps(
        {"experiment": experiment, "key": list(key),
         "params": cell_params, "code": code_fp},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
