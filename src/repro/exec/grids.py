"""Grid definitions: every grid-shaped runner decomposed into cells.

A :class:`Grid` describes one experiment as

* ``cells(params)`` -- the independent (workload, scheme, params) cells,
  in the exact order the serial runner visits them;
* ``run_cell(key, cell_params)`` -- one cell's computation, delegating
  to the *same* per-cell function the serial runner calls
  (``repro.eval.runner.lebench_cell`` etc.), which is what makes the
  parallel path byte-identical to the serial one by construction;
* ``assemble(params, payloads)`` -- rebuild the experiment object from
  the per-cell payloads, iterating in declared cell order (never in
  pool completion order);
* ``entry_modules`` -- the modules whose transitive ``repro.*`` import
  closure fingerprints the cell's code version for the result cache.

Cell payloads are JSON values (the engine round-trips them through
``json`` either way), so a cell replayed from the on-disk cache is
indistinguishable from a freshly executed one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable

from repro.eval.envs import PERF_SCHEMES, RARE_EVERY
from repro.eval.metrics import FenceBreakdown
from repro.eval.runner import (
    AppsExperiment,
    BreakdownExperiment,
    LEBenchExperiment,
    SurfaceExperiment,
    apps_cell,
    breakdown_cell,
    lebench_cell,
    surface_cell,
)
from repro.eval.sensitivity import (
    SlabSensitivityResult,
    UnknownAllocationsResult,
    slab_sensitivity_cell,
    unknown_allocations_cell,
    unknown_overhead_pct,
)
from repro.eval.sweeps import SweepResult, _measure
from repro.workloads.apps import APP_NAMES, APP_SPECS

Key = tuple[str, ...]
CellList = list[tuple[Key, dict[str, Any]]]


@dataclass(frozen=True)
class Grid:
    """One grid-shaped experiment, decomposed for the engine."""

    name: str
    #: Roots of the static import closure that fingerprints cell code.
    entry_modules: tuple[str, ...]
    defaults: Callable[[], dict[str, Any]]
    normalize: Callable[[dict[str, Any]], dict[str, Any]]
    cells: Callable[[dict[str, Any]], CellList]
    run_cell: Callable[[Key, dict[str, Any]], Any]
    assemble: Callable[[dict[str, Any], dict[Key, Any]], Any]


def _identity(params: dict[str, Any]) -> dict[str, Any]:
    return params


def _with_unsafe(params: dict[str, Any]) -> dict[str, Any]:
    schemes = list(params["schemes"])
    if "unsafe" not in schemes:
        schemes = ["unsafe"] + schemes
    return {**params, "schemes": schemes}


# ---------------------------------------------------------------------------
# LEBench (Figure 9.2)
# ---------------------------------------------------------------------------


def _lebench_cells(params: dict[str, Any]) -> CellList:
    return [((scheme,), {"scheme": scheme,
                         "rare_every": params["rare_every"]})
            for scheme in params["schemes"]]


def _lebench_run(key: Key, cp: dict[str, Any]) -> Any:
    return {"cycles": lebench_cell(cp["scheme"],
                                   rare_every=cp["rare_every"])}


def _lebench_assemble(params: dict[str, Any],
                      payloads: dict[Key, Any]) -> LEBenchExperiment:
    exp = LEBenchExperiment(schemes=tuple(params["schemes"]))
    for scheme in params["schemes"]:
        exp.cycles[scheme] = dict(payloads[(scheme,)]["cycles"])
    return exp


# ---------------------------------------------------------------------------
# Datacenter applications (Figure 9.3)
# ---------------------------------------------------------------------------


def _apps_cells(params: dict[str, Any]) -> CellList:
    return [((app, scheme), {"app": app, "scheme": scheme,
                             "requests": params["requests"],
                             "rare_every": params["rare_every"]})
            for app in params["apps"]
            for scheme in params["schemes"]]


def _apps_run(key: Key, cp: dict[str, Any]) -> Any:
    return {"kernel_cycles_per_request": apps_cell(
        cp["app"], cp["scheme"], requests=cp["requests"],
        rare_every=cp["rare_every"])}


def _apps_assemble(params: dict[str, Any],
                   payloads: dict[Key, Any]) -> AppsExperiment:
    exp = AppsExperiment(schemes=tuple(params["schemes"]))
    for app in params["apps"]:
        per_scheme_kernel = {
            scheme: payloads[(app, scheme)]["kernel_cycles_per_request"]
            for scheme in params["schemes"]}
        # Same userspace-budget arithmetic, in the same order, as
        # run_apps_experiment.
        f = APP_SPECS[app].kernel_time_fraction
        user = per_scheme_kernel["unsafe"] * (1.0 - f) / f
        exp.kernel_cycles_per_request[app] = per_scheme_kernel
        exp.total_cycles_per_request[app] = {
            scheme: kernel + user
            for scheme, kernel in per_scheme_kernel.items()}
    return exp


# ---------------------------------------------------------------------------
# Attack-surface reduction (Table 8.1)
# ---------------------------------------------------------------------------


def _surface_cells(params: dict[str, Any]) -> CellList:
    return [((app,), {"app": app}) for app in params["apps"]]


def _surface_run(key: Key, cp: dict[str, Any]) -> Any:
    return surface_cell(cp["app"])


def _surface_assemble(params: dict[str, Any],
                      payloads: dict[Key, Any]) -> SurfaceExperiment:
    first = payloads[(params["apps"][0],)]
    exp = SurfaceExperiment(total_functions=first["total_functions"])
    for app in params["apps"]:
        cell = payloads[(app,)]
        exp.static_isv_size[app] = cell["static"]
        exp.dynamic_isv_size[app] = cell["dynamic"]
    return exp


# ---------------------------------------------------------------------------
# Fence breakdown / view-cache hit rates (Table 10.1)
# ---------------------------------------------------------------------------


def _breakdown_cells(params: dict[str, Any]) -> CellList:
    return [((workload, scheme), {"workload": workload, "scheme": scheme,
                                  "requests": params["requests"],
                                  "observe": params["observe"]})
            for workload in params["workloads"]
            for scheme in params["schemes"]]


def _breakdown_run(key: Key, cp: dict[str, Any]) -> Any:
    if not cp["observe"]:
        return breakdown_cell(cp["workload"], cp["scheme"],
                              requests=cp["requests"])
    from repro.kernel.image import shared_image
    from repro.obs import MetricsRegistry, observing
    # The serial runner builds the image before entering its observing()
    # scope but runs every cell (make_env and profiling included) inside
    # it; the cell registry must cover exactly the same region.
    image = shared_image()
    registry = MetricsRegistry()
    with observing(registry):
        out = breakdown_cell(cp["workload"], cp["scheme"],
                             requests=cp["requests"], image=image,
                             registry=registry)
    out["metrics"] = registry.snapshot()
    return out


def _breakdown_assemble(params: dict[str, Any],
                        payloads: dict[Key, Any]) -> BreakdownExperiment:
    exp = BreakdownExperiment()
    merged = None
    for workload in params["workloads"]:
        exp.breakdowns[workload] = {}
        exp.isv_cache_hit_rate[workload] = {}
        exp.dsv_cache_hit_rate[workload] = {}
        for scheme in params["schemes"]:
            cell = payloads[(workload, scheme)]
            exp.breakdowns[workload][scheme] = \
                FenceBreakdown(**cell["breakdown"])
            exp.isv_cache_hit_rate[workload][scheme] = \
                cell["isv_cache_hit_rate"]
            exp.dsv_cache_hit_rate[workload][scheme] = \
                cell["dsv_cache_hit_rate"]
            if params["observe"]:
                from repro.obs import MetricsRegistry
                part = MetricsRegistry.from_snapshot(cell["metrics"])
                if merged is None:
                    merged = part
                else:
                    merged.merge(part)
    if merged is not None:
        exp.metrics = merged.snapshot()
    return exp


# ---------------------------------------------------------------------------
# Microarchitectural sweeps
# ---------------------------------------------------------------------------


def _sweep_cells(parameter: str):
    def cells(params: dict[str, Any]) -> CellList:
        return [((json.dumps(value),),
                 {"parameter": parameter, "value": value,
                  "scheme": params["scheme"]})
                for value in params["values"]]
    return cells


def _sweep_run(key: Key, cp: dict[str, Any]) -> Any:
    return {"overhead_pct": _measure(cp["scheme"],
                                     {cp["parameter"]: cp["value"]})}


def _sweep_assemble(parameter: str):
    def assemble(params: dict[str, Any],
                 payloads: dict[Key, Any]) -> SweepResult:
        result = SweepResult(parameter, params["scheme"])
        for value in params["values"]:
            result.overhead_pct[value] = \
                payloads[(json.dumps(value),)]["overhead_pct"]
        return result
    return assemble


# ---------------------------------------------------------------------------
# Sensitivity analyses (Section 9.2)
# ---------------------------------------------------------------------------


def _unknown_cells(params: dict[str, Any]) -> CellList:
    rare = params["rare_every"]
    return [
        (("baseline",), {"scheme": "unsafe", "rare_every": rare,
                         "treat_unknown": False}),
        (("full",), {"scheme": "perspective", "rare_every": rare,
                     "treat_unknown": False}),
        (("unknown-allowed",), {"scheme": "perspective",
                                "rare_every": rare,
                                "treat_unknown": True}),
    ]


def _unknown_run(key: Key, cp: dict[str, Any]) -> Any:
    return {"cycles": unknown_allocations_cell(
        cp["scheme"], rare_every=cp["rare_every"],
        treat_unknown=cp["treat_unknown"])}


def _unknown_assemble(params: dict[str, Any], payloads: dict[Key, Any],
                      ) -> UnknownAllocationsResult:
    baseline = payloads[("baseline",)]["cycles"]
    return UnknownAllocationsResult(
        overhead_full_pct=unknown_overhead_pct(
            payloads[("full",)]["cycles"], baseline),
        overhead_unknown_allowed_pct=unknown_overhead_pct(
            payloads[("unknown-allowed",)]["cycles"], baseline))


def _slab_cells(params: dict[str, Any]) -> CellList:
    return [((app,), {"app": app, "requests": params["requests"],
                      "background_tenants": params["background_tenants"]})
            for app in params["apps"]]


def _slab_run(key: Key, cp: dict[str, Any]) -> Any:
    return slab_sensitivity_cell(
        cp["app"], requests=cp["requests"],
        background_tenants=cp["background_tenants"])


def _slab_assemble(params: dict[str, Any], payloads: dict[Key, Any],
                   ) -> SlabSensitivityResult:
    result = SlabSensitivityResult()
    for app in params["apps"]:
        cell = payloads[(app,)]
        result.secure_utilization[app] = cell["secure_utilization"]
        result.baseline_utilization[app] = cell["baseline_utilization"]
        result.page_return_ratio[app] = cell["page_return_ratio"]
        result.reassignments_per_second[app] = \
            cell["reassignments_per_second"]
        result.baseline_collocations[app] = cell["baseline_collocations"]
    return result


# ---------------------------------------------------------------------------
# Multi-tenant serving (repro.serve)
# ---------------------------------------------------------------------------


def _serve_cells(params: dict[str, Any]) -> CellList:
    config_keys = ("scheme", "requests_per_tenant", "mean_interarrival",
                   "queue_bound", "profiles", "rare_every",
                   "profile_requests",
                   # Sharding knobs (repro.serve.shard): their presence
                   # routes cells through the sharded engine.
                   "shards", "placement", "migrate_every",
                   "service_model", "memo_warmup", "memo_period",
                   # Observation-only extras (repro.serve.engine
                   # serve_cell): the report bytes are identical with or
                   # without them.
                   "block_cache", "trace", "slo_window")
    base = {k: params[k] for k in config_keys if k in params}
    return [((str(seed), str(tenants)),
             {**base, "seed": seed, "tenants": tenants,
              "observe": params["observe"]})
            for seed in params["seeds"]
            for tenants in params["tenants"]]


def _serve_run(key: Key, cp: dict[str, Any]) -> Any:
    from repro.serve.engine import serve_cell
    return serve_cell(cp, observe=cp["observe"])


def _serve_assemble(params: dict[str, Any],
                    payloads: dict[Key, Any]) -> dict[str, Any]:
    """JSON-able sweep summary; per-cell registries merge in declared
    cell order, so the merged snapshot is worker-count invariant."""
    cells = []
    merged = None
    traces = None
    rollup = None
    for seed in params["seeds"]:
        for tenants in params["tenants"]:
            cell = dict(payloads[(str(seed), str(tenants))])
            if params["observe"]:
                from repro.obs import MetricsRegistry
                part = MetricsRegistry.from_snapshot(cell.pop("metrics"))
                if merged is None:
                    merged = part
                else:
                    merged.merge(part)
            if params.get("trace"):
                from repro.obs.reqtrace import TraceRecorder
                part_tr = TraceRecorder.from_snapshot(cell.pop("traces"))
                if traces is None:
                    traces = part_tr
                else:
                    traces.merge(part_tr)
            if params.get("slo_window"):
                from repro.obs.slo import SloRollup
                part_slo = SloRollup.from_snapshot(cell.pop("slo"))
                if rollup is None:
                    rollup = part_slo
                else:
                    rollup.merge(part_slo)
            cells.append(cell)
    out: dict[str, Any] = {"cells": cells}
    if merged is not None:
        out["metrics"] = merged.snapshot()
    if traces is not None:
        out["traces"] = traces.snapshot()
    if rollup is not None:
        out["slo"] = rollup.snapshot()
    return out


# ---------------------------------------------------------------------------
# Sharded scaling curves (repro.serve.shard): one cell per shard
# ---------------------------------------------------------------------------


def _scale_cells(params: dict[str, Any]) -> CellList:
    """One cell per (scheme, tenants, shards, shard-index): each shard
    of each experiment runs as its own worker-schedulable cell, since
    shards share no kernel state and the placement plan is a pure
    function of the config."""
    config_keys = ("seed", "requests_per_tenant", "mean_interarrival",
                   "queue_bound", "profiles", "rare_every",
                   "profile_requests", "placement", "migrate_every",
                   "service_model", "memo_warmup", "memo_period",
                   "block_cache")
    base = {k: params[k] for k in config_keys if k in params}
    return [((scheme, str(tenants), str(shards), str(shard)),
             {**base, "scheme": scheme, "tenants": tenants,
              "shards": shards, "shard": shard})
            for scheme in params["schemes"]
            for tenants in params["tenants"]
            for shards in params["shards"]
            for shard in range(shards)]


def _scale_run(key: Key, cp: dict[str, Any]) -> Any:
    from repro.serve.shard import scale_shard_cell
    return scale_shard_cell(cp)


def _scale_assemble(params: dict[str, Any],
                    payloads: dict[Key, Any]) -> dict[str, Any]:
    """Scaling rows, merged per experiment in declared shard order
    (pure integer/float folds over JSON payloads: byte-exact under any
    worker fan-out)."""
    from repro.serve.shard import merge_scale_shards
    rows = []
    for scheme in params["schemes"]:
        for tenants in params["tenants"]:
            for shards in params["shards"]:
                cells = [payloads[(scheme, str(tenants), str(shards),
                                   str(shard))]
                         for shard in range(shards)]
                rows.append(merge_scale_shards(scheme, tenants, shards,
                                               cells))
    return {"experiments": rows}


# ---------------------------------------------------------------------------
# Adversarial serving campaign (repro.serve.campaign)
# ---------------------------------------------------------------------------


def _campaign_cells(params: dict[str, Any]) -> CellList:
    spec_keys = ("start_flavor", "victims", "attackers", "epochs",
                 "requests_per_epoch", "mean_interarrival", "queue_bound",
                 "profiles", "rare_every", "profile_requests",
                 "secret_hex", "min_events", "probe_after_clean",
                 "slo_factor", "slo_window_cycles", "slo_alert_evidence")
    base = {k: params[k] for k in spec_keys if k in params}
    return [((str(seed), scenario),
             {**base, "seed": seed, "scenario": scenario,
              "observe": params["observe"]})
            for seed in params["seeds"]
            for scenario in params["scenarios"]]


def _campaign_run(key: Key, cp: dict[str, Any]) -> Any:
    from repro.serve.campaign import campaign_cell
    return campaign_cell(cp, observe=cp["observe"])


def _campaign_assemble(params: dict[str, Any],
                       payloads: dict[Key, Any]) -> dict[str, Any]:
    """JSON-able campaign summary; per-cell registries merge in declared
    cell order, so the merged snapshot is worker-count invariant."""
    cells = []
    merged = None
    for seed in params["seeds"]:
        for scenario in params["scenarios"]:
            cell = dict(payloads[(str(seed), scenario)])
            if params["observe"]:
                from repro.obs import MetricsRegistry
                part = MetricsRegistry.from_snapshot(cell.pop("metrics"))
                if merged is None:
                    merged = part
                else:
                    merged.merge(part)
            cells.append(cell)
    out: dict[str, Any] = {"cells": cells}
    if merged is not None:
        out["metrics"] = merged.snapshot()
    return out


# ---------------------------------------------------------------------------
# Cross-paper defense matrix (conformance + attacks + overhead)
# ---------------------------------------------------------------------------


def _defense_defaults() -> dict[str, Any]:
    from repro.serve.conformance import CONFORMANCE_SCHEMES
    return {"schemes": list(CONFORMANCE_SCHEMES),
            "seeds": list(range(20)), "steps": 14, "tenants": 2,
            "rare_every": RARE_EVERY}


def _defense_cells(params: dict[str, Any]) -> CellList:
    cells: CellList = []
    for scheme in params["schemes"]:
        for seed in params["seeds"]:
            cells.append((("conformance", scheme, str(seed)),
                          {"kind": "conformance", "scheme": scheme,
                           "seed": seed, "steps": params["steps"],
                           "tenants": params["tenants"]}))
    for scheme in params["schemes"]:
        cells.append((("attacks", scheme),
                      {"kind": "attacks", "scheme": scheme}))
    for scheme in params["schemes"]:
        cells.append((("perf", scheme),
                      {"kind": "perf", "scheme": scheme,
                       "rare_every": params["rare_every"]}))
    return cells


def _defense_run(key: Key, cp: dict[str, Any]) -> Any:
    from repro.eval.defense_matrix import defense_matrix_cell
    return defense_matrix_cell(cp)


def _defense_assemble(params: dict[str, Any],
                      payloads: dict[Key, Any]) -> dict[str, Any]:
    from repro.eval.defense_matrix import assemble_matrix
    return assemble_matrix(params, payloads)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


GRIDS: dict[str, Grid] = {}


def _register(grid: Grid) -> Grid:
    GRIDS[grid.name] = grid
    return grid


_register(Grid(
    name="lebench",
    entry_modules=("repro.eval.runner",),
    defaults=lambda: {"schemes": list(PERF_SCHEMES),
                      "rare_every": RARE_EVERY},
    normalize=_with_unsafe,
    cells=_lebench_cells,
    run_cell=_lebench_run,
    assemble=_lebench_assemble,
))

_register(Grid(
    name="apps",
    entry_modules=("repro.eval.runner",),
    defaults=lambda: {"schemes": list(PERF_SCHEMES),
                      "apps": list(APP_NAMES), "requests": None,
                      "rare_every": RARE_EVERY},
    normalize=_with_unsafe,
    cells=_apps_cells,
    run_cell=_apps_run,
    assemble=_apps_assemble,
))

_register(Grid(
    name="surface",
    entry_modules=("repro.eval.runner",),
    defaults=lambda: {"apps": ["lebench"] + list(APP_NAMES)},
    normalize=_identity,
    cells=_surface_cells,
    run_cell=_surface_run,
    assemble=_surface_assemble,
))

_register(Grid(
    name="breakdown",
    entry_modules=("repro.eval.runner",),
    defaults=lambda: {"workloads": ["lebench"] + list(APP_NAMES),
                      "schemes": ["perspective-static", "perspective",
                                  "perspective++"],
                      "requests": 30, "observe": False},
    normalize=_identity,
    cells=_breakdown_cells,
    run_cell=_breakdown_run,
    assemble=_breakdown_assemble,
))

_register(Grid(
    name="sweep-branch",
    entry_modules=("repro.eval.sweeps",),
    defaults=lambda: {"values": [4.0, 7.0, 12.0, 20.0],
                      "scheme": "fence"},
    normalize=_identity,
    cells=_sweep_cells("branch_resolve_latency"),
    run_cell=_sweep_run,
    assemble=_sweep_assemble("branch_resolve_latency"),
))

_register(Grid(
    name="sweep-rob",
    entry_modules=("repro.eval.sweeps",),
    defaults=lambda: {"values": [48, 96, 192, 384], "scheme": "fence"},
    normalize=_identity,
    cells=_sweep_cells("rob_entries"),
    run_cell=_sweep_run,
    assemble=_sweep_assemble("rob_entries"),
))

_register(Grid(
    name="unknown-allocations",
    entry_modules=("repro.eval.sensitivity",),
    defaults=lambda: {"rare_every": RARE_EVERY},
    normalize=_identity,
    cells=_unknown_cells,
    run_cell=_unknown_run,
    assemble=_unknown_assemble,
))

_register(Grid(
    name="serve",
    entry_modules=("repro.serve.engine",),
    defaults=lambda: {"seeds": [0, 1], "tenants": [2, 3],
                      "scheme": "perspective", "requests_per_tenant": 6,
                      "mean_interarrival": 12_000.0, "queue_bound": 0,
                      "rare_every": RARE_EVERY, "observe": True},
    normalize=_identity,
    cells=_serve_cells,
    run_cell=_serve_run,
    assemble=_serve_assemble,
))

_register(Grid(
    name="serve-scale",
    entry_modules=("repro.serve.shard",),
    defaults=lambda: {"schemes": ["unsafe", "perspective"],
                      "tenants": [4, 8], "shards": [1, 2, 4],
                      "seed": 0, "requests_per_tenant": 400,
                      "mean_interarrival": 40_000.0, "queue_bound": 0,
                      "rare_every": 0, "profile_requests": 2,
                      "placement": "least-loaded", "migrate_every": 100,
                      "service_model": "memo", "memo_warmup": 1,
                      "memo_period": 24, "block_cache": True},
    normalize=_identity,
    cells=_scale_cells,
    run_cell=_scale_run,
    assemble=_scale_assemble,
))

_register(Grid(
    name="campaign",
    entry_modules=("repro.serve.campaign",),
    defaults=lambda: {"seeds": [0, 1],
                      "scenarios": ["none", "ibpb-storm", "refill-storm",
                                    "admission-storm"],
                      "observe": True},
    normalize=_identity,
    cells=_campaign_cells,
    run_cell=_campaign_run,
    assemble=_campaign_assemble,
))

_register(Grid(
    name="defense-matrix",
    entry_modules=("repro.eval.defense_matrix",),
    defaults=_defense_defaults,
    normalize=_with_unsafe,
    cells=_defense_cells,
    run_cell=_defense_run,
    assemble=_defense_assemble,
))

_register(Grid(
    name="slab-sensitivity",
    entry_modules=("repro.eval.sensitivity",),
    defaults=lambda: {"apps": list(APP_NAMES), "requests": 60,
                      "background_tenants": 3},
    normalize=_identity,
    cells=_slab_cells,
    run_cell=_slab_run,
    assemble=_slab_assemble,
))


def get_grid(name: str) -> Grid:
    try:
        return GRIDS[name]
    except KeyError:
        known = ", ".join(sorted(GRIDS))
        raise KeyError(
            f"unknown experiment {name!r} (known: {known})") from None


def grid_names() -> list[str]:
    return sorted(GRIDS)
