"""Analytical hardware models (CACTI-style SRAM characterization)."""

from repro.hw_model.cacti import (
    Cacti22nm,
    DSV_CACHE_CONFIG,
    ISV_CACHE_CONFIG,
    SRAMCharacterization,
    SRAMConfig,
    table_9_1,
)

__all__ = [
    "Cacti22nm",
    "DSV_CACHE_CONFIG",
    "ISV_CACHE_CONFIG",
    "SRAMCharacterization",
    "SRAMConfig",
    "table_9_1",
]
