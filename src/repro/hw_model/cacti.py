"""CACTI-style SRAM characterization (Table 9.1).

The paper sizes the ISV and DSV caches with CACTI 7 at 22 nm.  This module
implements a small analytical SRAM model -- area, access time, dynamic
energy, and leakage as functions of capacity, associativity, and entry
width -- with technology constants fitted so the two structures of Table
9.1 come out at the published figures, and sensible scaling elsewhere
(area/leakage roughly linear in bits; access time and energy growing with
capacity and associativity).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2, sqrt


@dataclass(frozen=True)
class SRAMConfig:
    """Geometry of one tagged SRAM structure."""

    name: str
    entries: int
    entry_bits: int
    ways: int

    @property
    def total_bits(self) -> int:
        return self.entries * self.entry_bits


@dataclass(frozen=True)
class SRAMCharacterization:
    """CACTI-style outputs for one structure at 22 nm."""

    name: str
    area_mm2: float
    access_time_ps: float
    dynamic_energy_pj: float
    leakage_power_mw: float


class Cacti22nm:
    """Analytical 22 nm SRAM model.

    Constants are fitted to Table 9.1's two data points:

    * DSV cache (128 entries x 53 bits, 4-way): 0.0024 mm2, 114 ps,
      1.21 pJ, 0.78 mW
    * ISV cache (128 entries x 57 bits, 4-way): 0.0025 mm2, 115 ps,
      1.29 pJ, 0.79 mW
    """

    #: mm2 per bit (linear term) and fixed periphery overhead.
    AREA_PER_BIT_MM2 = 2.6e-7
    AREA_PERIPHERY_MM2 = 6.4e-4

    #: Access time: wordline/bitline delay grows with sqrt(bits); the
    #: comparator adds per-way cost.
    TIME_BASE_PS = 71.0
    TIME_PER_SQRT_BIT_PS = 0.328
    TIME_PER_WAY_PS = 1.5

    #: Dynamic energy: per-bit sensing plus per-way tag compare.
    ENERGY_PER_BIT_PJ = 1.5625e-4
    ENERGY_PER_WAY_PJ = 0.018
    ENERGY_BASE_PJ = 0.078

    #: Leakage scales with bit count.
    LEAK_PER_BIT_MW = 1.953e-5
    LEAK_BASE_MW = 0.6477

    def characterize(self, config: SRAMConfig) -> SRAMCharacterization:
        bits = config.total_bits
        area = self.AREA_PERIPHERY_MM2 + bits * self.AREA_PER_BIT_MM2
        access = (self.TIME_BASE_PS
                  + self.TIME_PER_SQRT_BIT_PS * sqrt(bits)
                  + self.TIME_PER_WAY_PS * config.ways
                  + 2.0 * log2(max(2, config.entries // config.ways)))
        energy = (self.ENERGY_BASE_PJ
                  + bits * self.ENERGY_PER_BIT_PJ
                  + config.ways * self.ENERGY_PER_WAY_PJ)
        leak = self.LEAK_BASE_MW + bits * self.LEAK_PER_BIT_MW
        return SRAMCharacterization(
            name=config.name,
            area_mm2=round(area, 4),
            access_time_ps=round(access),
            dynamic_energy_pj=round(energy, 2),
            leakage_power_mw=round(leak, 2))


#: The two Perspective structures of Table 9.1 (entry widths include tag,
#: ASID, valid and payload bits as reported by the paper).
DSV_CACHE_CONFIG = SRAMConfig("DSV Cache", entries=128, entry_bits=53, ways=4)
ISV_CACHE_CONFIG = SRAMConfig("ISV Cache", entries=128, entry_bits=57, ways=4)


def table_9_1() -> list[SRAMCharacterization]:
    """Regenerate Table 9.1's rows."""
    model = Cacti22nm()
    return [model.characterize(DSV_CACHE_CONFIG),
            model.characterize(ISV_CACHE_CONFIG)]
