"""Miniature OS model: allocators, processes, syscalls, tracing, seccomp,
and the synthetic kernel image."""

from repro.kernel.buddy import BuddyAllocator, OutOfMemory
from repro.kernel.cgroup import Cgroup, CgroupRegistry, KERNEL_CGROUP_ID
from repro.kernel.ebpf import (
    BPFManager,
    BPFProgram,
    BPFVerifier,
    MAP_SIZE,
    VerifierError,
)
from repro.kernel.image import (
    FOPS_KINDS,
    ImageConfig,
    KernelImage,
    PROBE_ARRAY_OFF,
    RARE_PATH_MAGIC,
    SECRET_OFF,
    SyscallSpec,
)
from repro.kernel.kernel import (
    GLOBAL_PAGE_FRAME,
    KernelConfig,
    MiniKernel,
    SYSCALL_TRAP_COST,
    SyscallResult,
)
from repro.kernel.layout import (
    DIRECT_MAP_BASE,
    KERNEL_TEXT_BASE,
    PAGE_SIZE,
    TOTAL_FRAMES,
    direct_map_pa,
    direct_map_va,
)
from repro.kernel.process import (
    KernelMappings,
    OpenFile,
    Process,
    ProcessAddressSpace,
    VmArea,
)
from repro.kernel.seccomp import (
    Action,
    ArgCheck,
    ArgCmp,
    FilterRule,
    SeccompFilter,
    SeccompViolation,
)
from repro.kernel.slab import (
    SIZE_CLASSES,
    SecureSlabAllocator,
    SlabAllocator,
    size_class_for,
)
from repro.kernel.tracing import KernelTracer

__all__ = [
    "Action",
    "BPFManager",
    "BPFProgram",
    "BPFVerifier",
    "MAP_SIZE",
    "VerifierError",
    "ArgCheck",
    "ArgCmp",
    "BuddyAllocator",
    "Cgroup",
    "CgroupRegistry",
    "DIRECT_MAP_BASE",
    "FOPS_KINDS",
    "FilterRule",
    "GLOBAL_PAGE_FRAME",
    "ImageConfig",
    "KERNEL_CGROUP_ID",
    "KERNEL_TEXT_BASE",
    "KernelConfig",
    "KernelImage",
    "KernelMappings",
    "KernelTracer",
    "MiniKernel",
    "OpenFile",
    "OutOfMemory",
    "PAGE_SIZE",
    "PROBE_ARRAY_OFF",
    "Process",
    "ProcessAddressSpace",
    "RARE_PATH_MAGIC",
    "SECRET_OFF",
    "SIZE_CLASSES",
    "SYSCALL_TRAP_COST",
    "SeccompFilter",
    "SeccompViolation",
    "SecureSlabAllocator",
    "SlabAllocator",
    "SyscallResult",
    "SyscallSpec",
    "TOTAL_FRAMES",
    "VmArea",
    "direct_map_pa",
    "direct_map_va",
    "size_class_for",
]
