"""Buddy (page) allocator with ownership tracking.

This is the kernel's primary physical-frame allocator.  Perspective hooks
allocation and free events: ``alloc_pages()`` obtains the cgroup of the
current execution context and associates the allocated frames with that
context's DSV for the corresponding direct-map pages; freeing disassociates
them (Section 6.1, "Data speculation views with cgroups").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.kernel.layout import TOTAL_FRAMES
from repro.reliability.faultplane import fire


class OutOfMemory(Exception):
    """No free block of the requested order is available."""


@dataclass
class BuddyStats:
    allocations: int = 0
    frees: int = 0
    splits: int = 0
    merges: int = 0
    #: Fault-injected transient allocation failures.
    injected_failures: int = 0

    def as_metrics(self, prefix: str):
        """(name, value) pairs for the observability collectors."""
        yield f"{prefix}.allocations", self.allocations
        yield f"{prefix}.frees", self.frees
        yield f"{prefix}.splits", self.splits
        yield f"{prefix}.merges", self.merges
        yield f"{prefix}.injected_failures", self.injected_failures


#: Callback signature: (first_frame, num_frames, owner_id | None).
OwnershipHook = Callable[[int, int, int | None], None]


class BuddyAllocator:
    """Binary-buddy allocator over a flat range of physical frames.

    Frames ``[0, reserved)`` are excluded (boot-reserved memory).  Owners
    are opaque integer ids (cgroup ids in the kernel model).
    """

    MAX_ORDER = 10

    def __init__(self, total_frames: int = TOTAL_FRAMES,
                 reserved_frames: int = 0) -> None:
        if total_frames <= reserved_frames:
            raise ValueError("no allocatable frames")
        self.total_frames = total_frames
        self.reserved_frames = reserved_frames
        self.stats = BuddyStats()
        self._free: list[set[int]] = [set() for _ in range(self.MAX_ORDER + 1)]
        self._allocated: dict[int, int] = {}  # first frame -> order
        self._owner: dict[int, int | None] = {}  # first frame -> owner id
        self.on_alloc: OwnershipHook | None = None
        self.on_free: OwnershipHook | None = None
        self._seed_free_lists()

    def _seed_free_lists(self) -> None:
        frame = self.reserved_frames
        end = self.total_frames
        while frame < end:
            # Largest aligned block that fits.
            order = self.MAX_ORDER
            while order > 0 and (frame % (1 << order) != 0
                                 or frame + (1 << order) > end):
                order -= 1
            self._free[order].add(frame)
            frame += 1 << order

    # ------------------------------------------------------------------

    def alloc_pages(self, order: int = 0, owner: int | None = None) -> int:
        """Allocate ``2**order`` contiguous frames; returns the first frame.

        ``owner`` is recorded and passed to the ownership hook, which the
        Perspective framework uses to populate the owner's DSV.
        """
        if not 0 <= order <= self.MAX_ORDER:
            raise ValueError(f"order {order} out of range")
        if fire("buddy-alloc-fail"):
            # Transient failure injected *before* any state changes: no
            # frame is carved, no owner recorded, no hook fired -- the
            # failure can only surface as "no allocation", never as a
            # stale owner.
            self.stats.injected_failures += 1
            raise OutOfMemory("injected transient allocation failure")
        found = None
        for o in range(order, self.MAX_ORDER + 1):
            if self._free[o]:
                found = o
                break
        if found is None:
            raise OutOfMemory(f"no free block of order >= {order}")
        frame = min(self._free[found])
        self._free[found].discard(frame)
        # Split down to the requested order, returning buddies to free lists.
        while found > order:
            found -= 1
            buddy = frame + (1 << found)
            self._free[found].add(buddy)
            self.stats.splits += 1
        self._allocated[frame] = order
        self._owner[frame] = owner
        self.stats.allocations += 1
        if self.on_alloc is not None:
            self.on_alloc(frame, 1 << order, owner)
        return frame

    def free_pages(self, frame: int) -> None:
        """Free a block previously returned by :meth:`alloc_pages`."""
        order = self._allocated.pop(frame, None)
        if order is None:
            raise ValueError(f"frame {frame} is not an allocated block head")
        owner = self._owner.pop(frame, None)
        self.stats.frees += 1
        if self.on_free is not None:
            self.on_free(frame, 1 << order, owner)
        # Coalesce with the buddy while possible.
        while order < self.MAX_ORDER:
            buddy = frame ^ (1 << order)
            if buddy < self.reserved_frames or buddy not in self._free[order]:
                break
            self._free[order].discard(buddy)
            frame = min(frame, buddy)
            order += 1
            self.stats.merges += 1
        self._free[order].add(frame)

    # ------------------------------------------------------------------

    def allocations(self) -> list[tuple[int, int, int | None]]:
        """Live allocations as (first_frame, order, owner) tuples -- used
        to replay ownership into a DSV registry attached after boot."""
        return [(frame, order, self._owner.get(frame))
                for frame, order in self._allocated.items()]

    def owner_of(self, frame: int) -> int | None:
        """Owner of the allocated block containing ``frame`` (block head)."""
        return self._owner.get(frame)

    def order_of(self, frame: int) -> int | None:
        return self._allocated.get(frame)

    def free_frames(self) -> int:
        return sum(len(blocks) << order
                   for order, blocks in enumerate(self._free))

    def allocated_frames(self) -> int:
        return sum(1 << order for order in self._allocated.values())

    def check_invariants(self) -> None:
        """Every frame is free, allocated, or reserved -- exactly once."""
        seen: set[int] = set()
        for order, blocks in enumerate(self._free):
            for head in blocks:
                block = range(head, head + (1 << order))
                if seen.intersection(block):
                    raise AssertionError("overlapping free blocks")
                seen.update(block)
        for head, order in self._allocated.items():
            block = range(head, head + (1 << order))
            if seen.intersection(block):
                raise AssertionError("frame both free and allocated")
            seen.update(block)
        expected = set(range(self.reserved_frames, self.total_frames))
        if seen != expected:
            missing = expected - seen
            extra = seen - expected
            raise AssertionError(
                f"frame accounting broken: missing={sorted(missing)[:5]} "
                f"extra={sorted(extra)[:5]}")
