"""Control groups: the execution-context handle Perspective attaches DSVs to.

The paper's implementation (Section 6.1) tracks resource ownership per
cgroup: each container/workload runs in its own cgroup, and the buddy and
secure-slab allocators tag frames with the cgroup id of the allocating
context.  Kernel threads get distinct cgroups for stronger isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Reserved cgroup id for memory owned by the kernel itself (boot-time
#: structures that are explicitly kernel-global, not "unknown").
KERNEL_CGROUP_ID = 0


@dataclass(frozen=True)
class Cgroup:
    """A control group (execution context for speculation views)."""

    cg_id: int
    name: str

    def __str__(self) -> str:
        return f"cgroup#{self.cg_id}({self.name})"


class CgroupRegistry:
    """Allocates cgroup ids and resolves them back to cgroups."""

    def __init__(self) -> None:
        self._by_id: dict[int, Cgroup] = {}
        self._by_name: dict[str, Cgroup] = {}
        self._next_id = KERNEL_CGROUP_ID
        self.create("kernel")  # id 0

    def create(self, name: str) -> Cgroup:
        if name in self._by_name:
            raise ValueError(f"cgroup {name!r} already exists")
        cg = Cgroup(self._next_id, name)
        self._next_id += 1
        self._by_id[cg.cg_id] = cg
        self._by_name[name] = cg
        return cg

    def get(self, cg_id: int) -> Cgroup:
        return self._by_id[cg_id]

    def by_name(self, name: str) -> Cgroup:
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self._by_id)

    def all(self) -> list[Cgroup]:
        return list(self._by_id.values())
