"""eBPF-style program loading with a speculation-aware verifier.

Rows 3-4 of Table 4.1 are verifier bugs: programs that are architecturally
safe (every out-of-bounds access is guarded by a branch) but *speculatively*
unsafe -- the guard branch can be mistrained, turning the loaded program
into an attacker-injected transient-execution gadget inside the kernel.
Section 4.2 notes the two deployed mitigations: fixing the verification
logic (require index *masking*, which bounds the address on every path the
hardware can take) and disallowing unprivileged loads.

This module reproduces that whole story:

* :class:`BPFVerifier` statically checks submitted micro-op programs.  In
  ``speculation_safe=False`` mode (the historical verifier) a
  branch-guarded access passes; in the fixed mode only masked indexing
  does.
* :class:`BPFManager` verifies, loads (into the kernel's per-instance
  overlay code region -- the JIT area), and runs programs on behalf of a
  process, enforcing the unprivileged-load policy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cpu.isa import AluOp, Function, MicroOp, Op
from repro.cpu.pipeline import ExecutionContext
from repro.kernel.process import Process

#: Registers a BPF program may write.
BPF_WRITABLE = frozenset({"r5", "r6", "r7", "r8", "r9"})
#: Registers a BPF program may read (arguments + map base + scratch).
BPF_READABLE = BPF_WRITABLE | {"r0", "r15"}
#: Bytes of the per-context map area the program may address (from r15).
MAP_SIZE = 4096
MAP_MASK = MAP_SIZE - 1
MAX_PROGRAM_OPS = 256


class VerifierError(Exception):
    """The submitted program failed verification."""


@dataclass
class BPFProgram:
    """A program as submitted by userspace."""

    name: str
    body: list[MicroOp]


@dataclass
class LoadedProgram:
    """A verified program installed in the kernel's JIT area."""

    handle: int
    owner_pid: int
    function: Function
    speculation_safe: bool


class BPFVerifier:
    """Static safety checker for submitted programs.

    Architectural rules (always enforced):

    * only ``BPF_WRITABLE`` registers are written, only ``BPF_READABLE``
      read; no calls, indirect branches, or kernel-exit ops;
    * branch targets stay inside the program; the program ends with RET;
    * every memory access is based on ``r15`` (the map area) and provably
      within ``MAP_SIZE``: either a constant offset, or a register offset
      that is *bounded* on the access path.

    Boundedness is where the speculation bug lives: the historical
    verifier (``speculation_safe=False``) accepts a **branch guard**
    (``if (idx < bound) use(idx)``) as proof -- true architecturally,
    false transiently.  The fixed verifier accepts only **masking**
    (``idx &= MAP_MASK``), which bounds the value on every path the
    hardware can take.
    """

    def __init__(self, speculation_safe: bool = True) -> None:
        self.speculation_safe = speculation_safe

    def verify(self, program: BPFProgram) -> None:
        body = program.body
        if not body or len(body) > MAX_PROGRAM_OPS:
            raise VerifierError("empty or oversized program")
        if body[-1].op is not Op.RET:
            raise VerifierError("program must end with RET")
        # Abstract value tracking (flow-insensitive, like the sloppy
        # original): which registers are provably bounded below MAP_SIZE,
        # and how; which hold a map-area pointer derived from a bounded
        # index.
        masked: set[str] = set()
        guarded: set[str] = set()
        ptr_masked: set[str] = set()
        ptr_guarded: set[str] = set()

        def invalidate(reg: str) -> None:
            masked.discard(reg)
            guarded.discard(reg)
            ptr_masked.discard(reg)
            ptr_guarded.discard(reg)

        for idx, op in enumerate(body):
            kind = op.op
            if kind in (Op.CALL, Op.ICALL, Op.IJMP, Op.KRET, Op.FLUSH):
                raise VerifierError(f"op {idx}: {kind.value} is forbidden")
            for src in op.reads():
                if src not in BPF_READABLE:
                    raise VerifierError(f"op {idx}: reads {src}")
            if op.dst is not None and op.dst not in BPF_WRITABLE:
                raise VerifierError(f"op {idx}: writes {op.dst}")
            if kind in (Op.BR, Op.JMP):
                if not 0 <= op.target <= len(body):
                    raise VerifierError(f"op {idx}: branch out of range")
            if kind in (Op.LOAD, Op.STORE):
                self._check_access(idx, op, ptr_masked, ptr_guarded)
            if kind is Op.LOAD:
                invalidate(op.dst)
                continue
            if kind is not Op.ALU:
                continue
            # ALU transfer function.
            if op.alu_op is AluOp.AND and op.src2 is None \
                    and 0 <= op.imm <= MAP_MASK:
                invalidate(op.dst)
                masked.add(op.dst)
            elif op.alu_op in (AluOp.CMPLT, AluOp.CMPLTU) \
                    and op.src2 is None and 0 < op.imm <= MAP_SIZE:
                # The flag's source is architecturally bounded on the
                # branch-taken path (a later BR consumes the flag).
                guarded.add(op.src1)
                invalidate(op.dst)
            elif op.alu_op is AluOp.ADD and op.src2 is not None \
                    and "r15" in (op.src1, op.src2):
                index = op.src2 if op.src1 == "r15" else op.src1
                invalidate(op.dst)
                if index in masked:
                    ptr_masked.add(op.dst)
                elif index in guarded:
                    ptr_guarded.add(op.dst)
            elif op.dst is not None:
                invalidate(op.dst)

    def _check_access(self, idx: int, op: MicroOp, ptr_masked: set[str],
                      ptr_guarded: set[str]) -> None:
        base = op.src1
        if base == "r15":
            if not 0 <= op.imm < MAP_SIZE:
                raise VerifierError(f"op {idx}: constant offset {op.imm} "
                                    "outside the map area")
            return
        if base in ptr_masked:
            return
        if base in ptr_guarded and not self.speculation_safe:
            # The historical verifier's hole: a branch guard bounds the
            # index architecturally but NOT transiently (rows 3-4 of
            # Table 4.1).
            return
        raise VerifierError(
            f"op {idx}: address register {base} is not provably bounded"
            + ("" if not self.speculation_safe
               else " (branch guards do not bound transient execution; "
                    "mask the index with AND instead)"))


class BPFManager:
    """Loads and runs verified programs for a kernel instance."""

    def __init__(self, kernel, verifier: BPFVerifier | None = None,
                 allow_unprivileged: bool = False) -> None:
        self.kernel = kernel
        self.verifier = verifier or BPFVerifier(speculation_safe=True)
        #: SUSE/upstream hardening: unprivileged users may not load
        #: programs at all (Section 4.2's second mitigation).
        self.allow_unprivileged = allow_unprivileged
        self._handles = itertools.count(1)
        self.loaded: dict[int, LoadedProgram] = {}

    def load(self, proc: Process, program: BPFProgram,
             privileged: bool = False) -> int:
        """Verify and install a program; returns its handle."""
        if not privileged and not self.allow_unprivileged:
            raise PermissionError(
                "unprivileged BPF program loading is disabled")
        self.verifier.verify(program)
        handle = next(self._handles)
        function = Function(name=f"bpf_prog_{handle}_{program.name}",
                            body=list(program.body) )
        self.kernel.layout.add(function)
        loaded = LoadedProgram(handle=handle, owner_pid=proc.pid,
                               function=function,
                               speculation_safe=self.verifier.speculation_safe)
        self.loaded[handle] = loaded
        return handle

    def run(self, proc: Process, handle: int,
            arg: int = 0):
        """Execute a loaded program on behalf of ``proc``.

        The program runs as kernel code with r0 = the user-supplied
        argument and r15 = the direct-map address of the context's map
        area (its heap block), exactly like an attached BPF hook firing.
        """
        loaded = self.loaded[handle]
        if loaded.owner_pid != proc.pid:
            raise PermissionError("program belongs to another process")
        regs = {"r0": arg, "r15": proc.heap_va, "r5": 0, "r6": 0,
                "r7": 0, "r8": 0, "r9": 0}
        context = ExecutionContext(
            context_id=proc.cgroup.cg_id, domain="kernel",
            address_space=proc.aspace, initial_regs=regs)
        return self.kernel.pipeline.run(loaded.function, context,
                                        charge_kernel_entry=True)

    def unload(self, handle: int) -> None:
        del self.loaded[handle]
