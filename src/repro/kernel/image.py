"""Synthetic kernel image: the reproduction's stand-in for Linux's text.

The paper's analyses run over the real Linux kernel (28K functions, with
1533 potential transient-execution gadgets found by Kasper).  Here we
generate a *synthetic kernel image*: a deterministic population of micro-op
functions with

* a system-call surface (~45 syscalls) whose entry functions call into
  per-subsystem implementation trees plus shared helpers,
* indirect-call dispatch through function-pointer tables living in global
  (boot-reserved, "unknown") memory -- the file_operations pattern that
  makes static call graphs incomplete (Figure 5.3a),
* *error paths*: direct callees that normal executions never take, so
  static ISVs include them but dynamic ISVs do not (Section 5.3),
* *rare paths*: argument-triggered calls that profiling runs miss, so
  dynamic ISVs occasionally fence benign execution (Section 9.2's ISV
  fence rate),
* a long tail of driver/module functions unreachable from any syscall --
  the bulk of the passive attack surface ISVs remove (Table 8.1), and
* a seeded population of transient-execution gadgets in the paper's
  MDS/Port/Cache class ratios (805/509/219 of 1533), enriched in
  commonly-reachable code as real CVEs are (Table 4.1 discusses gadgets in
  both hot paths like ptrace/eBPF and cold drivers).

Scale: 2,800 functions -- a 10x-scaled Linux keeping the paper's *ratios*
(ISVs cover ~5-10% of functions, the gadget search space shrinks 28K -> 1.4K
in the paper and 2.8K -> ~0.14-0.28K here).

Everything is generated from a single seed; two images built with the same
config are identical, so analyses, attacks and benchmarks are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.cpu.isa import (
    AluOp,
    CodeLayout,
    Function,
    MicroOp,
    Op,
    alu,
    br,
    call,
    icall,
    jmp,
    kret,
    li,
    load,
    ret,
    store,
)
from repro.kernel.layout import KERNEL_TEXT_BASE

# ---------------------------------------------------------------------------
# Register conventions (see module docstring of repro.cpu.isa)
# ---------------------------------------------------------------------------
#: Syscall arguments (attacker-controllable data).
REG_ARG0, REG_ARG1, REG_ARG2 = "r0", "r1", "r2"
#: Scratch registers generated bodies may clobber.  r3 is reserved for
#: loop counters and r4 for the fops slot offset, so generated code never
#: writes them (it may read them).
SCRATCH = ("r3", "r4", "r5", "r6", "r7", "r8", "r9")
WRITABLE_SCRATCH = ("r5", "r6", "r7", "r8")
#: User buffer VA for copy_from/to_user-style accesses.
REG_USERBUF = "r10"
#: Iteration count for kernel-spinning syscalls (select/poll/epoll).
REG_SPIN = "r11"
#: Kernel stack VA (vmalloc; tracked into the process DSV).
REG_KSTACK = "r12"
#: task_struct VA (secure-slab object owned by the context).
REG_TASK = "r13"
#: Global/unknown kernel data page VA (boot-reserved: belongs to NO DSV).
REG_GLOBAL = "r14"
#: Context-owned heap page VA in the direct map (buddy-allocated).
REG_HEAP = "r15"

#: Value of ``r1`` that triggers an entry function's rare path.
RARE_PATH_MAGIC = 0x5A5A

# Offsets of well-known objects inside the global data page.
GLOBAL_ARRAY1_SIZE_OFF = 0x40  # the Spectre-v1 bounds value
GLOBAL_FOPS_TABLE_OFF = 0x100  # function-pointer table (8 bytes/slot)
#: Offset within a context's heap region where the flush+reload probe
#: array lives (256 cache lines).  Only the hand-written PoC gadgets
#: transmit here; generated code never touches it (the fd-scan loops walk
#: the first 64 KiB only), so the channel is noise-free for the receiver.
PROBE_ARRAY_OFF = 0x10000
#: Transmit buffer used by the *generated* gadget population (scanner
#: fodder); distinct from the PoC probe array.
GADGET_SCRATCH_OFF = 0x14000
#: Offset within a context's heap region where its secret byte sits.
SECRET_OFF = 0x240

#: File-operation families dispatched through the global pointer table.
FOPS_KINDS = ("ext4", "pipe", "sock", "proc", "tmpfs", "dev")


@dataclass
class ImageConfig:
    """Knobs controlling image generation (defaults reproduce the paper's
    ratios at 1/10 Linux scale)."""

    seed: int = 20240759
    total_functions: int = 2800
    n_helpers: int = 55
    #: Gadget population at 1/10 Linux scale (Kasper's 1533 findings:
    #: 805 MDS / 509 Port / 219 Cache).  Scaling the gadget count with the
    #: function count preserves the *density* that drives both the Table
    #: 8.2 fractions and the cost of excluding flagged functions (ISV++).
    gadget_total: int = 153
    gadget_mds: int = 80
    gadget_port: int = 51
    gadget_cache: int = 22
    #: Factor to scale reported gadget counts back to paper scale.
    gadget_report_scale: int = 10
    #: Gadget-placement weight multiplier for syscall-reachable functions
    #: relative to driver functions (real gadgets skew toward hot code).
    reachable_gadget_weight: float = 2.7
    #: Ops per driver function (they only matter as scan/attack surface).
    driver_body_ops: int = 12


@dataclass
class FunctionInfo:
    """Ground-truth metadata about one kernel function."""

    name: str
    role: str  # entry | impl | leaf | error | rare | helper | fops | driver
    syscall: str | None = None
    #: Covert-channel classes of the gadgets embedded in this function
    #: ("mds" / "port" / "cache"), in body order.  Hot kernel functions
    #: often contain several distinct gadgets, which is why ISVs covering
    #: ~9% of functions still hold 13-22% of Kasper's findings.
    gadgets: tuple[str, ...] = ()
    #: Statically-visible direct callees (CALL ops).
    callees: tuple[str, ...] = ()
    #: Targets reachable only through indirect calls here.
    indirect_callees: tuple[str, ...] = ()

    @property
    def gadget_class(self) -> str | None:
        """Primary gadget class (None when the function is clean)."""
        return self.gadgets[0] if self.gadgets else None


@dataclass
class SyscallSpec:
    """One system call: entry point plus behavioural class."""

    nr: int
    name: str
    entry: str
    #: tiny | io | spin | alloc | net -- drives workload cost profiles.
    weight_class: str
    #: Whether the entry honours REG_SPIN as an iteration count.
    spin: bool = False
    #: Whether the entry dispatches through the fops pointer table.
    uses_fops: bool = False


#: (name, class, spin, uses_fops) for the modeled syscall surface.
_SYSCALL_CATALOG: tuple[tuple[str, str, bool, bool], ...] = (
    ("read", "io", False, True),
    ("write", "io", False, True),
    ("pread64", "io", False, True),
    ("pwrite64", "io", False, True),
    ("readv", "io", False, True),
    ("writev", "io", False, True),
    ("open", "io", False, False),
    ("close", "tiny", False, False),
    ("stat", "io", False, False),
    ("fstat", "tiny", False, False),
    ("lseek", "tiny", False, False),
    ("mmap", "alloc", False, False),
    ("munmap", "alloc", False, False),
    ("brk", "alloc", False, False),
    ("mprotect", "alloc", False, False),
    ("page_fault", "alloc", False, False),  # exception entry, not a syscall
    ("ioctl", "io", False, False),
    ("access", "tiny", False, False),
    ("pipe", "io", False, False),
    ("select", "spin", True, False),
    ("poll", "spin", True, False),
    ("epoll_create", "tiny", False, False),
    ("epoll_ctl", "tiny", False, False),
    ("epoll_wait", "spin", True, False),
    ("dup", "tiny", False, False),
    ("socket", "net", False, False),
    ("connect", "net", False, False),
    ("accept", "net", False, False),
    ("sendto", "net", False, True),
    ("recvfrom", "net", False, True),
    ("sendmsg", "net", False, True),
    ("recvmsg", "net", False, True),
    ("bind", "net", False, False),
    ("listen", "tiny", False, False),
    ("fork", "alloc", False, False),
    ("execve", "alloc", False, False),
    ("exit", "tiny", False, False),
    ("wait4", "tiny", False, False),
    ("kill", "tiny", False, False),
    ("getpid", "tiny", False, False),
    ("getuid", "tiny", False, False),
    ("futex", "spin", True, False),
    ("sched_yield", "tiny", False, False),
    ("nanosleep", "tiny", False, False),
    ("getdents", "io", False, False),
    ("fcntl", "tiny", False, False),
    # Broader POSIX surface: unused by the evaluated workloads (so the
    # calibration is untouched) but part of the kernel's attack surface
    # and of what static binary analysis may drag into an ISV.
    ("uname", "tiny", False, False),
    ("gettimeofday", "tiny", False, False),
    ("clock_gettime", "tiny", False, False),
    ("getrusage", "tiny", False, False),
    ("setsockopt", "net", False, False),
    ("getsockopt", "net", False, False),
    ("shutdown", "net", False, False),
    ("chdir", "tiny", False, False),
    ("getcwd", "tiny", False, False),
    ("mkdir", "io", False, False),
    ("unlink", "io", False, False),
    ("rename", "io", False, False),
    ("symlink", "io", False, False),
    ("readlink", "io", False, False),
    ("chmod", "tiny", False, False),
    ("umask", "tiny", False, False),
)

#: Shared helper names (the kernel's hot common code).
_HELPER_NAMES = (
    "copy_from_user", "copy_to_user", "kmalloc", "kfree", "fget", "fput",
    "mutex_lock", "mutex_unlock", "spin_lock", "spin_unlock",
    "get_current", "capable", "security_hook", "audit_log",
    "rcu_read_lock", "rcu_read_unlock", "dget", "dput", "iget", "iput",
    "alloc_pages_helper", "free_pages_helper", "lru_add", "lru_del",
    "wake_up", "wait_event", "schedule_helper", "preempt_disable",
    "preempt_enable", "memset_k", "memcpy_k", "strncpy_k",
    "atomic_inc", "atomic_dec", "refcount_get", "refcount_put",
    "list_add", "list_del", "hash_lookup", "hash_insert",
    "signal_pending", "task_lock", "task_unlock", "pid_lookup",
    "cred_get", "cred_put", "ns_get", "ns_put", "timer_add",
    "timer_del", "workqueue_add", "vfs_perm", "path_lookup",
    "dcache_lookup", "inode_perm",
)


class KernelImage:
    """The generated kernel: code layout + ground-truth metadata."""

    def __init__(self, config: ImageConfig | None = None) -> None:
        self.config = config or ImageConfig()
        self.layout = CodeLayout(KERNEL_TEXT_BASE)
        self.info: dict[str, FunctionInfo] = {}
        self.syscalls: dict[str, SyscallSpec] = {}
        self.syscall_by_nr: dict[int, SyscallSpec] = {}
        #: family -> list of implementing function names (FOPS dispatch).
        self.fops_impls: dict[str, list[str]] = {}
        #: Writes to install into the global data page at boot:
        #: offset -> function name whose base VA must be stored there.
        self.global_pointer_slots: dict[int, str] = {}
        #: Plain values to install into the global page at boot.
        self.global_values: dict[int, int] = {GLOBAL_ARRAY1_SIZE_OFF: 64}
        #: Functions the gadget population must not touch: hand-written
        #: PoC scaffolding, and the innermost copy/scan loops (real Kasper
        #: findings sit in handler/validation code, not in the tight
        #: memcpy-style loops).
        self._gadget_excluded: set[str] = set()
        self._build()

    # ------------------------------------------------------------------
    # Queries used by analyses and experiments
    # ------------------------------------------------------------------

    def function_names(self) -> list[str]:
        return self.layout.names()

    @property
    def total_functions(self) -> int:
        return len(self.info)

    def gadget_functions(self, gadget_class: str | None = None) -> list[str]:
        """Functions containing at least one gadget (of the given class)."""
        return [name for name, info in self.info.items()
                if info.gadgets
                and (gadget_class is None or gadget_class in info.gadgets)]

    def gadget_count(self, gadget_class: str | None = None) -> int:
        """Total embedded gadgets (of the given class) across the image."""
        return sum(
            len(info.gadgets) if gadget_class is None
            else sum(1 for g in info.gadgets if g == gadget_class)
            for info in self.info.values())

    def direct_call_graph(self) -> dict[str, tuple[str, ...]]:
        """Statically-visible call edges only (what radare2-style binary
        analysis can recover; indirect edges are invisible)."""
        return {name: info.callees for name, info in self.info.items()}

    def entry_for(self, syscall_name: str) -> Function:
        return self.layout[self.syscalls[syscall_name].entry]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _rng(self, tag: str) -> random.Random:
        return random.Random(f"{self.config.seed}:{tag}")

    def _build(self) -> None:
        self._build_helpers()
        self._build_fops()
        self._build_syscalls()
        self._build_poc_functions()
        self._build_drivers()
        self._place_gadgets()
        self._finalize_layout()

    def _recompute_callees(self, name: str) -> None:
        """Refresh call-graph metadata after splicing ops into a body."""
        func = self.layout[name]
        callees = tuple(op.callee for op in func.body
                        if op.callee is not None)
        func.callees = callees
        self.info[name].callees = callees

    def _add(self, name: str, role: str, body: list[MicroOp],
             syscall: str | None = None,
             indirect_callees: tuple[str, ...] = ()) -> None:
        callees = tuple(op.callee for op in body
                        if op.callee is not None)
        func = Function(name=name, body=body, callees=callees,
                        indirect_callees=indirect_callees)
        self.layout.add(func)
        self.info[name] = FunctionInfo(
            name=name, role=role, syscall=syscall, callees=callees,
            indirect_callees=indirect_callees)

    # -- body generation helpers ---------------------------------------

    def _gen_segment(self, rng: random.Random, out: list[MicroOp],
                     n_ops: int) -> None:
        """Emit ~n_ops of generic kernel code: loads from the context's
        bases, dependent ALU work, and forward branches whose conditions
        derive from recently loaded data (error/flag checks follow loads
        in real kernel code, which is what couples the load stream into
        the branch stream under restrictive speculation schemes)."""
        bases = (REG_TASK, REG_HEAP, REG_HEAP, REG_KSTACK, REG_GLOBAL,
                 REG_TASK, REG_HEAP, REG_GLOBAL, REG_USERBUF)
        emitted = 0
        last_load_dst: str | None = None
        while emitted < n_ops:
            choice = rng.random()
            if choice < 0.30:
                base = rng.choice(bases)
                offset = rng.randrange(0, 3968, 8)
                dst = rng.choice(WRITABLE_SCRATCH)
                out.append(load(dst, base, imm=offset))
                last_load_dst = dst
                emitted += 1
            elif choice < 0.50 and emitted + 4 <= n_ops:
                # Flag check on the most recent load's value, skipping a
                # scratch shadow block.  Deterministic per address, so the
                # predictor trains on it.
                if last_load_dst is not None and rng.random() < 0.6:
                    cond_src = last_load_dst
                else:
                    cond_src = rng.choice(SCRATCH[1:])
                out.append(alu("r6", AluOp.AND, cond_src, imm=1))
                branch_at = len(out)
                out.append(br("r6", target=-1))
                for _ in range(rng.randint(1, 2)):
                    out.append(load("r9", rng.choice(
                        (REG_TASK, REG_HEAP, REG_GLOBAL)),
                        imm=rng.randrange(0, 3968, 8)))
                out[branch_at] = br("r6", target=len(out))
                last_load_dst = None
                emitted += 4
            else:
                a = rng.choice(SCRATCH)
                dst = rng.choice(WRITABLE_SCRATCH)
                op_kind = rng.choice(
                    (AluOp.ADD, AluOp.XOR, AluOp.AND, AluOp.SHR))
                out.append(alu(dst, op_kind, a, imm=rng.randrange(1, 255)))
                emitted += 1

    def _gen_loop(self, rng: random.Random, out: list[MicroOp],
                  count_reg_or_imm, body_ops: int) -> None:
        """Emit a counted loop; count comes from a register (spin syscalls)
        or an immediate."""
        if isinstance(count_reg_or_imm, str):
            out.append(alu("r3", AluOp.MOV, count_reg_or_imm))
        else:
            out.append(li("r3", count_reg_or_imm))
        loop_start = len(out)
        # Loop body: a load whose address varies with the counter feeding
        # a data-dependent branch (the fd-state check of a select/poll
        # scan).  Under FENCE-style schemes the load may not issue until
        # the previous iteration's branch resolves, whose condition waited
        # on the previous load: the resulting serialization chain is what
        # makes kernel-spinning syscalls catastrophically slow (the 228%
        # select/poll overheads of Figure 9.2).
        # Page-strided scan: successive fd entries live one page apart (a
        # sparse fd table), so the lines conflict in one L1 set and the
        # scan misses to L2 every iteration once the set cycles -- the
        # access pattern that makes Delay-on-Miss as slow as FENCE here.
        out.append(alu("r5", AluOp.SHL, "r3", imm=12))
        out.append(alu("r5", AluOp.AND, "r5", imm=0xF000))
        out.append(alu("r6", AluOp.ADD, REG_HEAP, "r5"))
        out.append(load("r7", "r6", imm=0x840))
        out.append(alu("r8", AluOp.AND, "r7", imm=1))
        cond_branch_at = len(out)
        out.append(br("r8", target=-1))
        out.append(load("r9", REG_TASK, imm=rng.randrange(0, 3968, 8)))
        out[cond_branch_at] = br("r8", target=len(out))
        extra = max(0, body_ops - 10)
        self._gen_segment(rng, out, extra)
        out.append(alu("r3", AluOp.SUB, "r3", imm=1))
        out.append(br("r3", target=loop_start))

    def _gen_helper_body(self, rng: random.Random) -> list[MicroOp]:
        out: list[MicroOp] = []
        self._gen_segment(rng, out, rng.randint(12, 30))
        out.append(ret())
        return out

    # -- kernel sections -------------------------------------------------

    def _build_helpers(self) -> None:
        for name in _HELPER_NAMES[:self.config.n_helpers]:
            self._add(name, "helper", self._gen_helper_body(self._rng(name)))

    def _build_fops(self) -> None:
        """File-operation implementations + the global pointer table."""
        slot = 0
        for kind in FOPS_KINDS:
            impls = []
            for opname in ("read", "write"):
                name = f"{kind}_{opname}"
                rng = self._rng(name)
                out: list[MicroOp] = []
                self._gen_segment(rng, out, rng.randint(18, 40))
                for helper in rng.sample(
                        ("memcpy_k", "rcu_read_lock", "rcu_read_unlock",
                         "atomic_inc"), 2):
                    out.append(call(helper))
                self._gen_segment(rng, out, rng.randint(10, 22))
                out.append(ret())
                self._add(name, "fops", out)
                impls.append(name)
                self.global_pointer_slots[
                    GLOBAL_FOPS_TABLE_OFF + slot * 8] = name
                slot += 1
            self.fops_impls[kind] = impls

    def fops_slot_offset(self, kind: str, opname: str) -> int:
        """Global-page offset of the pointer to ``<kind>_<opname>``."""
        target = f"{kind}_{opname}"
        for offset, name in self.global_pointer_slots.items():
            if name == target:
                return offset
        raise KeyError(target)

    def _build_syscalls(self) -> None:
        nr = 0
        for name, weight_class, spin, uses_fops in _SYSCALL_CATALOG:
            entry = f"sys_{name}"
            self._build_one_syscall(name, entry, weight_class, spin,
                                    uses_fops)
            spec = SyscallSpec(nr=nr, name=name, entry=entry,
                               weight_class=weight_class, spin=spin,
                               uses_fops=uses_fops)
            self.syscalls[name] = spec
            self.syscall_by_nr[nr] = spec
            nr += 1

    def _build_one_syscall(self, name: str, entry: str, weight_class: str,
                           spin: bool, uses_fops: bool) -> None:
        rng = self._rng(entry)

        # Implementation tree: two impl functions, one leaf each (plus the
        # shared-helper fan-in), keeping per-syscall private functions near
        # Linux's ratio of syscall-reachable code to total kernel text.
        impl_names = []
        for i in range(2):
            leaves = []
            for j in range(1):
                leaf = f"{name}_leaf{i}{j}"
                leaf_rng = self._rng(leaf)
                out: list[MicroOp] = []
                if (spin or weight_class in ("io", "net", "alloc")) \
                        and i == 0 and j == 0:
                    self._gadget_excluded.add(leaf)
                if spin and i == 0 and j == 0:
                    # The kernel-spinning inner loop (fd scan in
                    # select/poll/epoll): iteration count from userspace.
                    self._gen_loop(leaf_rng, out, REG_SPIN, body_ops=11)
                elif weight_class in ("io", "net") and i == 0 and j == 0:
                    # copy_{from,to}_user-style loop: trip count scales
                    # with the requested transfer size (r11), so big-read
                    # and big-write spend proportionally longer in-kernel.
                    # Each chunk re-checks a loaded state word (fault
                    # pending / short copy), coupling the load stream into
                    # the branch stream as copy_from_user's access_ok /
                    # exception checks do.
                    out.append(alu("r3", AluOp.MOV, REG_SPIN))
                    loop_start = len(out)
                    # Two copy chunks per fault/short-copy check.
                    for chunk in (0, 1):
                        out.append(alu("r5", AluOp.SHL, "r3", imm=3))
                        out.append(alu("r5", AluOp.AND, "r5",
                                       imm=0xF80 | (chunk << 3)))
                        out.append(alu("r6", AluOp.ADD, REG_USERBUF, "r5"))
                        out.append(load("r7", "r6"))
                        out.append(alu("r6", AluOp.ADD, REG_HEAP, "r5"))
                        out.append(store("r6", "r7"))
                    out.append(alu("r8", AluOp.AND, "r7", imm=1))
                    skip_branch_at = len(out)
                    out.append(br("r8", target=-1))
                    out.append(load("r9", REG_TASK, imm=64))
                    out[skip_branch_at] = br("r8", target=len(out))
                    out.append(alu("r3", AluOp.SUB, "r3", imm=2))
                    out.append(alu("r8", AluOp.CMPLT, "r3", imm=1))
                    out.append(alu("r8", AluOp.XOR, "r8", imm=1))
                    out.append(br("r8", target=loop_start))
                    # Post-transfer accounting against kernel-global
                    # counters (page-cache / socket-buffer statistics):
                    # global state belongs to no DSV, so Perspective pays
                    # one bounded fence chain per I/O call here -- the DSV
                    # share of its application overhead.
                    out.append(load("r9", REG_GLOBAL, imm=0x900))
                    out.append(alu("r8", AluOp.AND, "r9", imm=1))
                    acct_branch_at = len(out)
                    out.append(br("r8", target=-1))
                    out.append(load("r9", REG_GLOBAL, imm=0x940))
                    out[acct_branch_at] = br("r8", target=len(out))
                elif weight_class == "alloc" and i == 0 and j == 0:
                    # Page-zeroing / pte-fill loop over fresh allocations:
                    # loads target the *new page* base handed in r8 by the
                    # impl, so DSVMT-cold pages are exercised (Section 9.1,
                    # big-fork / page-fault overhead).  The pte-state check
                    # couples each chunk's load into the branch stream.
                    # Walks the 4 pages of the freshly-allocated block
                    # (fault-around granularity): each page's struct-page
                    # update reads the mem_map array -- kernel-global,
                    # "unknown" memory outside every DSV -- and its state
                    # bits gate the next step.  This is the paper's
                    # big-fork / page-fault DSV overhead and the Section
                    # 9.2 unknown-allocation sensitivity.
                    out.append(alu("r5", AluOp.MOV, "r8"))
                    out.append(li("r3", 4))
                    loop_start = len(out)
                    out.append(load("r7", "r5"))
                    out.append(store("r5", "r7", imm=8))
                    out.append(alu("r6", AluOp.SHL, "r3", imm=5))
                    out.append(alu("r6", AluOp.ADD, REG_GLOBAL, "r6"))
                    out.append(load("r9", "r6", imm=0x800))
                    out.append(alu("r6", AluOp.AND, "r9", imm=1))
                    pte_branch_at = len(out)
                    out.append(br("r6", target=-1))
                    out.append(load("r9", "r5", imm=16))
                    out[pte_branch_at] = br("r6", target=len(out))
                    out.append(alu("r5", AluOp.ADD, "r5", imm=4096))
                    out.append(alu("r3", AluOp.SUB, "r3", imm=1))
                    out.append(br("r3", target=loop_start))
                else:
                    self._gen_segment(leaf_rng, out, leaf_rng.randint(18, 40))
                out.append(ret())
                self._add(leaf, "leaf", out, syscall=name)
                leaves.append(leaf)

            impl = f"{name}_impl{i}"
            impl_rng = self._rng(impl)
            out = []
            self._gen_segment(impl_rng, out, impl_rng.randint(14, 30))
            for helper in impl_rng.sample(_HELPER_NAMES[:self.config.n_helpers],
                                          impl_rng.randint(2, 4)):
                out.append(call(helper))
            for leaf in leaves:
                out.append(call(leaf))
            self._gen_segment(impl_rng, out, impl_rng.randint(8, 18))
            out.append(ret())
            self._add(impl, "impl", out, syscall=name)
            impl_names.append(impl)

        # Error path: statically visible, dynamically never executed.
        err = f"{name}_error_path"
        err_rng = self._rng(err)
        err_body: list[MicroOp] = []
        self._gen_segment(err_rng, err_body, err_rng.randint(12, 24))
        err_body.append(call("audit_log"))
        err_body.append(ret())
        self._add(err, "error", err_body, syscall=name)

        # Rare path: direct callee taken only when r1 == RARE_PATH_MAGIC.
        rare = f"{name}_rare_path"
        rare_rng = self._rng(rare)
        rare_body: list[MicroOp] = []
        self._gen_segment(rare_rng, rare_body, rare_rng.randint(14, 28))
        rare_body.append(ret())
        self._add(rare, "rare", rare_body, syscall=name)

        # Entry function.
        out = []
        # Argument validation: branch to the error path when arg0 has the
        # poison bit (never set by benign workloads; static analysis still
        # records the edge).
        out.append(alu("r6", AluOp.SHR, REG_ARG0, imm=62))
        out.append(alu("r6", AluOp.AND, "r6", imm=1))
        err_branch_at = len(out)
        out.append(br("r6", target=-1))
        out.append(jmp(-1))  # patched: skip over error call
        out[err_branch_at] = br("r6", target=len(out))
        out.append(call(err))
        err_join = len(out)
        out[err_branch_at + 1] = jmp(err_join)

        # Rare path trigger on r1.
        out.append(li("r7", RARE_PATH_MAGIC))
        out.append(alu("r6", AluOp.CMPEQ, REG_ARG1, "r7"))
        rare_branch_at = len(out)
        out.append(br("r6", target=-1))
        out.append(jmp(-1))
        out[rare_branch_at] = br("r6", target=len(out))
        out.append(call(rare))
        rare_join = len(out)
        out[rare_branch_at + 1] = jmp(rare_join)

        self._gen_segment(rng, out, rng.randint(10, 22))

        if uses_fops:
            # Indirect dispatch through the global fops pointer table.  The
            # slot offset arrives in r4 (the kernel computes it from the fd
            # when setting up the syscall), so the callee is invisible to
            # static analysis.
            out.append(alu("r5", AluOp.ADD, REG_GLOBAL, "r4"))
            out.append(load("r9", "r5", tag="fops-pointer"))
            out.append(icall("r9", tag="fops-dispatch"))

        for impl in impl_names:
            out.append(call(impl))
        self._gen_segment(rng, out, rng.randint(6, 14))
        out.append(kret())

        indirect = tuple(
            impl for impls in self.fops_impls.values() for impl in impls
        ) if uses_fops else ()
        self._add(entry, "entry", out, syscall=name,
                  indirect_callees=indirect)

    # -- proof-of-concept functions --------------------------------------

    def _build_poc_functions(self) -> None:
        """Hand-written functions the attack PoCs rely on."""
        # (1) Spectre v1 gadget on the sys_ioctl path (active attack).
        # Mirrors Listing 2.1: bounds check on the user-controlled r0,
        # then array1[idx] -> array2[value * 64].
        out: list[MicroOp] = [
            load("r5", REG_GLOBAL, imm=GLOBAL_ARRAY1_SIZE_OFF,
                 tag="gadget-bound"),
            # Unsigned bounds check, as in Listing 2.1: a negative or
            # huge index architecturally fails; only mistrained
            # speculation gets past it.
            alu("r6", AluOp.CMPLTU, REG_ARG0, "r5"),
        ]
        branch_at = len(out)
        out.append(br("r6", target=-1, tag="gadget-branch"))
        out.append(ret())  # out-of-bounds: bail (architecturally)
        out[branch_at] = br("r6", target=len(out), tag="gadget-branch")
        out.extend([
            alu("r7", AluOp.ADD, REG_HEAP, REG_ARG0, tag="gadget-index"),
            load("r8", "r7", tag="gadget-access"),
            alu("r9", AluOp.AND, "r8", imm=0xFF),
            alu("r9", AluOp.SHL, "r9", imm=6),
            alu("r9", AluOp.ADD, "r9", REG_HEAP),
            alu("r9", AluOp.ADD, "r9", imm=PROBE_ARRAY_OFF),
            load("r3", "r9", tag="gadget-transmit"),
            ret(),
        ])
        self._add("ioctl_v1_gadget", "leaf", out, syscall="ioctl")
        self.info["ioctl_v1_gadget"].gadgets = ("cache",)
        # Wire it into sys_ioctl's entry (append before KRET).
        entry = self.layout["sys_ioctl"]
        entry.body.insert(len(entry.body) - 1, call("ioctl_v1_gadget"))
        self._recompute_callees("sys_ioctl")

        # (2) A victim helper that leaves a pointer to the caller's secret
        # in r5 and then returns: "Function 1" of the passive attack in
        # Figure 4.2.  Inserted *before* the fops indirect call of
        # sys_recvfrom, so at the hijackable ICALL (and the deep-return
        # chain below) r5 still holds the secret reference.
        # r2 (the syscall's third argument, e.g. a buffer cursor) offsets
        # the reference -- benign per-call variation the victim makes and
        # the attacker merely observes.
        out = [
            alu("r5", AluOp.ADD, REG_HEAP, imm=SECRET_OFF),
            alu("r5", AluOp.ADD, "r5", REG_ARG2),
            alu("r6", AluOp.XOR, "r6", "r6"),
            ret(),
        ]
        self._add("recv_secret_ref_helper", "leaf", out, syscall="recvfrom")

        # Deep call chain (depth 18 > 16 RSB entries): the outermost
        # returns underflow the RSB, and on Retbleed-vulnerable cores the
        # predictor falls back to the (poisonable) BTB.
        depth = 18
        for i in reversed(range(depth)):
            body: list[MicroOp] = [alu("r6", AluOp.ADD, "r6", imm=1)]
            if i + 1 < depth:
                body.append(call(f"recv_deep{i + 1}"))
            body.append(ret())
            self._add(f"recv_deep{i}", "leaf", body, syscall="recvfrom")

        entry = self.layout["sys_recvfrom"]
        icall_at = next(i for i, op in enumerate(entry.body)
                        if op.op is Op.ICALL)
        entry.body.insert(icall_at, call("recv_deep0"))
        entry.body.insert(icall_at, call("recv_secret_ref_helper"))
        self._recompute_callees("sys_recvfrom")

        # (3) The hijack target ("Function 2" of Figure 4.2): a driver
        # function never reachable from syscalls, containing a universal
        # read gadget that dereferences r5 and transmits through the
        # current heap's probe array.  Outside every ISV.
        out = [
            load("r6", "r5", tag="gadget-access"),
            alu("r7", AluOp.AND, "r6", imm=0xFF),
            alu("r7", AluOp.SHL, "r7", imm=6),
            alu("r7", AluOp.ADD, "r7", REG_HEAP),
            alu("r7", AluOp.ADD, "r7", imm=PROBE_ARRAY_OFF),
            load("r8", "r7", tag="gadget-transmit"),
            ret(),
        ]
        self._add("xilinx_usb_poc_gadget", "driver", out)
        self.info["xilinx_usb_poc_gadget"].gadgets = ("cache",)

        # (3b) A second hijack target that dereferences the *first syscall
        # argument* -- the active-v2 gadget: the attacker's own kernel
        # thread is hijacked into it with r0 = any kernel VA.
        out = [
            load("r6", REG_ARG0, tag="gadget-access"),
            alu("r7", AluOp.AND, "r6", imm=0xFF),
            alu("r7", AluOp.SHL, "r7", imm=6),
            alu("r7", AluOp.ADD, "r7", REG_HEAP),
            alu("r7", AluOp.ADD, "r7", imm=PROBE_ARRAY_OFF),
            load("r8", "r7", tag="gadget-transmit"),
            ret(),
        ]
        self._add("active_v2_deref_gadget", "driver", out)
        self.info["active_v2_deref_gadget"].gadgets = ("cache",)

        # (4) The scheduler's resume path: the first op a thread executes
        # when switched back in is the RET out of finish_task_switch, which
        # consumes whatever the RSB holds -- the Spectre-RSB consumption
        # point (the attacker ran on this core in the meantime).
        out = [
            alu("r6", AluOp.ADD, "r6", imm=1),
            ret(),
        ]
        self._add("finish_task_switch", "helper", out)

    # -- driver tail ------------------------------------------------------

    def _build_drivers(self) -> None:
        remaining = self.config.total_functions - len(self.info)
        if remaining < 0:
            raise ValueError(
                f"total_functions={self.config.total_functions} is smaller "
                f"than the fixed sections ({len(self.info)} functions: "
                "helpers + fops + syscalls + PoCs); use at least "
                f"{len(self.info)}")
        module = 0
        while remaining > 0:
            module += 1
            group = min(remaining, 8)
            names = [f"drv{module}_fn{i}" for i in range(group)]
            for i, name in enumerate(names):
                rng = self._rng(name)
                out: list[MicroOp] = []
                self._gen_segment(rng, out, self.config.driver_body_ops)
                # Intra-module call edges form small trees.
                if i + 1 < group and rng.random() < 0.5:
                    out.append(call(names[i + 1]))
                out.append(ret())
                self._add(name, "driver", out)
            remaining -= group

    # -- gadget population --------------------------------------------------

    def _place_gadgets(self) -> None:
        """Mark ``gadget_total`` functions as containing a potential
        transient-execution gadget, class-partitioned per Kasper's counts.

        Reachable (non-driver) functions get ``reachable_gadget_weight``;
        this reproduces the paper's finding that ISVs containing ~5-9% of
        functions still contain 7-22% of the gadgets (Table 8.2).
        """
        rng = self._rng("gadgets")
        candidates = []
        weights = []
        for name, info in self.info.items():
            if info.gadget_class is not None:
                continue  # PoC gadgets already placed
            if info.role == "entry":
                continue  # entries stay clean; gadgets live in callees
            if name.startswith("recv_deep") or name in (
                    "recv_secret_ref_helper", "finish_task_switch"):
                continue  # hand-written PoC scaffolding stays byte-exact
            if name in self._gadget_excluded:
                continue  # tight copy/scan loops hold no Kasper findings
            candidates.append(name)
            weights.append(1.0 if info.role == "driver"
                           else self.config.reachable_gadget_weight)

        # Three hand-written PoC gadgets are already placed (all "cache").
        classes = (["mds"] * self.config.gadget_mds
                   + ["port"] * self.config.gadget_port
                   + ["cache"] * (self.config.gadget_cache - 3))
        rng.shuffle(classes)

        # Weighted sample WITH replacement: hot functions accumulate
        # several distinct gadgets, matching Kasper's concentration.
        np_rng = np.random.default_rng(self.config.seed ^ 0x9E3779B9)
        probs = np.asarray(weights, dtype=float)
        probs /= probs.sum()
        picked = np_rng.choice(len(candidates), size=len(classes),
                               replace=True, p=probs)
        per_function: dict[str, list[str]] = {}
        for i, gadget_class in zip(picked, classes):
            per_function.setdefault(candidates[i], []).append(gadget_class)
        for name, gadget_classes in per_function.items():
            self.info[name].gadgets = tuple(gadget_classes)
            self._embed_gadget_pattern(name, count=len(gadget_classes))

    def _embed_gadget_pattern(self, name: str, count: int = 1) -> None:
        """Insert ``count`` recognizable (to the taint scanner) gadget
        sequences into the function body: each is a user-influenced access
        feeding a dependent transmitter."""
        func = self.layout[name]
        pattern = [
            alu("r7", AluOp.ADD, REG_HEAP, REG_ARG0, tag="gadget-index"),
            load("r8", "r7", tag="gadget-access"),
            alu("r9", AluOp.AND, "r8", imm=0x3F),
            alu("r9", AluOp.SHL, "r9", imm=6),
            alu("r9", AluOp.ADD, "r9", REG_HEAP),
            alu("r9", AluOp.ADD, "r9", imm=GADGET_SCRATCH_OFF),
            load("r8", "r9", tag="gadget-transmit"),
        ] * count
        insert_at = max(0, len(func.body) - 1)  # before the final ret
        # Splice in, fixing any branch targets that pointed past the
        # insertion point.
        fixed = []
        for op in func.body:
            if op.target >= insert_at and op.op.name in ("BR", "JMP"):
                fixed.append(MicroOp(op.op, dst=op.dst, src1=op.src1,
                                     src2=op.src2, imm=op.imm,
                                     target=op.target + len(pattern),
                                     callee=op.callee, alu_op=op.alu_op,
                                     tag=op.tag))
            else:
                fixed.append(op)
        func.body[:] = fixed[:insert_at] + pattern + fixed[insert_at:]

    def _finalize_layout(self) -> None:
        if len(self.info) != self.config.total_functions:
            raise AssertionError(
                f"built {len(self.info)} functions, expected "
                f"{self.config.total_functions}")


#: Process-wide image cache, explicitly keyed by generation seed.  An
#: ``lru_cache(maxsize=2)`` sat here before: interleaving three or more
#: seeds in one process (a sweep, or a `repro.exec` worker that services
#: shards of different configs) silently evicted and *regenerated*
#: images mid-run, so the "shared" instance an experiment held was not
#: the one later kernels got -- and worker processes could disagree with
#: a serial run about which instances were live.  An explicit dict has
#: no eviction: one instance per seed for the life of the process, and
#: test/experiment setup can reset it deterministically.
_SHARED_IMAGES: dict[int, KernelImage] = {}


def shared_image(seed: int = ImageConfig.seed) -> KernelImage:
    """A process-wide cached default image, one instance per seed.

    The image is immutable after construction and contains no runtime
    state, so experiments, attacks and tests can share one instance across
    many kernel instances instead of paying generation time repeatedly.
    Repeated calls with the same seed return the *same* object no matter
    how many other seeds were requested in between.
    """
    image = _SHARED_IMAGES.get(seed)
    if image is None:
        image = _SHARED_IMAGES[seed] = KernelImage(ImageConfig(seed=seed))
    return image


def clear_shared_images() -> None:
    """Drop every cached image (deterministic experiment/test setup)."""
    _SHARED_IMAGES.clear()
