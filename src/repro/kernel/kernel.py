"""The miniature operating system: processes, syscalls, and allocators.

``MiniKernel`` wires the substrates together the way the paper's modified
Linux does (Section 6.1):

* the buddy allocator tags frames with the allocating cgroup and fires
  ownership hooks that the Perspective framework uses to maintain DSVs;
* the secure slab allocator keeps per-cgroup page lists so implicit
  (kmalloc-style) allocations never collocate distrusting contexts;
* system calls dispatch, after an optional seccomp filter, into entry
  functions of the synthetic kernel image executed on the out-of-order
  pipeline -- which is where speculation (and its defenses) happen;
* the tracing subsystem observes committed kernel function entries to
  build dynamic ISV profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.branch import BranchUnit
from repro.cpu.cache import CacheHierarchy
from repro.cpu.memsys import MainMemory
from repro.cpu.pipeline import ExecResult, ExecutionContext, Pipeline, \
    PipelineConfig, SpeculationPolicy
from repro.kernel.buddy import BuddyAllocator
from repro.kernel.cgroup import Cgroup, CgroupRegistry
from repro.kernel.image import (
    FOPS_KINDS,
    KernelImage,
    REG_ARG0,
    REG_ARG1,
    REG_ARG2,
    REG_GLOBAL,
    REG_HEAP,
    REG_KSTACK,
    REG_SPIN,
    REG_TASK,
    REG_USERBUF,
    SECRET_OFF,
)
from repro.kernel.layout import (
    BOOT_RESERVED_FRAMES,
    PAGE_SIZE,
    TOTAL_FRAMES,
    USER_BASE,
    direct_map_va,
    pa_of_frame,
)
from repro.kernel.process import (
    KernelMappings,
    OpenFile,
    Process,
    ProcessAddressSpace,
    VmArea,
)
from repro.kernel.seccomp import Action, SeccompFilter, SeccompViolation
from repro.kernel.slab import SecureSlabAllocator, SlabAllocator
from repro.kernel.tracing import KernelTracer
from repro.obs import events as ev
from repro.obs import reqtrace as rt
from repro.reliability.faultplane import fire

#: Frame holding the global kernel data page ("unknown" memory: it belongs
#: to no DSV, so speculative access to it is conservatively fenced).
GLOBAL_PAGE_FRAME = 48
#: Per-cpu data frames (also "unknown" allocations, reserved at boot).
PERCPU_FRAMES = range(49, 53)

#: Fixed cost of the user->kernel->user transition (trap, swapgs, sysret).
SYSCALL_TRAP_COST = 150.0

#: Kernel stack pages per process (vmalloc-backed, as in Linux).
KERNEL_STACK_PAGES = 4

#: Heap block order per process: 2**5 frames = 128 KiB, covering the
#: context's data (first 64 KiB, walked by fd-scan loops), the
#: flush+reload probe array, and the gadget scratch buffer.
HEAP_ORDER = 5


@dataclass
class SyscallResult:
    """Outcome of one system call."""

    syscall: str
    retval: int
    exec_result: ExecResult | None = None
    denied: bool = False

    @property
    def cycles(self) -> float:
        if self.exec_result is None:
            return 0.0
        return self.exec_result.cycles + SYSCALL_TRAP_COST


@dataclass
class KernelConfig:
    """Kernel-build options."""

    secure_slab: bool = True
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    #: eIBRS-style hardware BTB isolation (bypassable via BHI).
    btb_hardware_isolation: bool = False
    #: Long-lived slab objects allocated per process at creation (dentry /
    #: inode / vma caches).  Real kernels keep slabs dense; without this
    #: population every transient free would empty a page and the
    #: fragmentation and reassignment figures of Section 9.2 would be
    #: meaningless.
    slab_warm_objects: int = 400
    #: Enable the L1 next-line prefetcher (see CacheHierarchy; off by
    #: default -- the calibrated workloads are stride-immune to it).
    prefetcher: bool = False


class MiniKernel:
    """A bootable instance of the miniature OS."""

    def __init__(self, image: KernelImage | None = None,
                 config: KernelConfig | None = None) -> None:
        self.config = config or KernelConfig()
        self.image = image or KernelImage()
        self.memory = MainMemory()
        self.hierarchy = CacheHierarchy(prefetcher=self.config.prefetcher)
        self.branch_unit = BranchUnit(
            hardware_isolation=self.config.btb_hardware_isolation)
        #: Per-instance code view: the shared image plus this kernel's
        #: runtime-loaded programs (the eBPF JIT area).
        self.layout = self.image.layout.overlay()
        self.pipeline = Pipeline(self.layout, self.memory,
                                 self.hierarchy, self.branch_unit,
                                 config=self.config.pipeline)
        self.cgroups = CgroupRegistry()
        self.buddy = BuddyAllocator(TOTAL_FRAMES, BOOT_RESERVED_FRAMES)
        slab_cls = SecureSlabAllocator if self.config.secure_slab \
            else SlabAllocator
        self.slab = slab_cls(self.buddy)
        self.kmappings = KernelMappings()
        self.tracer = KernelTracer()
        self.pipeline.trace_hook = self.tracer.on_function_entry
        from repro.kernel.ebpf import BPFManager
        self.bpf = BPFManager(self)
        self.processes: dict[int, Process] = {}
        self._next_pid = 1
        #: Context the core last ran kernel code for (IBPB tracking).
        self._last_kernel_ctx: int | None = None
        self._global_va = direct_map_va(pa_of_frame(GLOBAL_PAGE_FRAME))
        self._install_boot_globals()
        self._seccomp: dict[int, SeccompFilter] = {}
        self.syscall_count = 0
        #: Cumulative simulated kernel cycles across every syscall (trap
        #: plus pipeline), so co-located activity -- e.g. an attacker
        #: tenant's PoC probes -- can be charged to a shared serve clock.
        self.kernel_cycles_total = 0.0
        #: Tenant-switch IBPB ops that faulted and fell back to a full
        #: branch-unit flush (the ``serve-ibpb-drop`` fail-closed path).
        self.ibpb_fault_flushes = 0
        #: Physical frames the OS tagged *non-transient* (ConTExT-style
        #: secret marking).  Pure metadata: only the ``context`` defense
        #: policy consults it, so tagging costs other schemes nothing.
        self.non_transient_frames: set[int] = set()

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------

    def _install_boot_globals(self) -> None:
        """Write global function-pointer tables and constants into the
        boot-reserved global page (the image's "unknown" memory)."""
        base = pa_of_frame(GLOBAL_PAGE_FRAME)
        for offset, func_name in self.image.global_pointer_slots.items():
            self.memory.store(base + offset,
                              self.image.layout[func_name].base_va)
        for offset, value in self.image.global_values.items():
            self.memory.store(base + offset, value)

    @property
    def global_page_va(self) -> int:
        return self._global_va

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------

    def create_process(self, name: str, cgroup: Cgroup | None = None) -> Process:
        """Create a process with its own cgroup (unless one is given), heap
        block, kernel stack, task struct, and a mapped user buffer."""
        if cgroup is None:
            cgroup = self.cgroups.create(f"{name}.{self._next_pid}")
        pid = self._next_pid
        self._next_pid += 1
        aspace = ProcessAddressSpace(self.kmappings)
        proc = Process(pid=pid, name=name, cgroup=cgroup, aspace=aspace)

        # Kernel stack: vmalloc-backed frames, tracked into the DSV (the
        # paper resolves this "unknown" source by explicit tracking).
        for _ in range(KERNEL_STACK_PAGES):
            frame = self.buddy.alloc_pages(0, owner=cgroup.cg_id)
            va = self.kmappings.vmalloc_map(frame)
            if not proc.kernel_stack_frames:
                proc.kernel_stack_va = va
            proc.kernel_stack_frames.append(frame)

        # Heap block (explicit allocation, owner-tagged).
        heap_frame = self.buddy.alloc_pages(HEAP_ORDER, owner=cgroup.cg_id)
        proc.heap_va = direct_map_va(pa_of_frame(heap_frame))

        # task_struct from the slab allocator (implicit allocation).
        proc.task_struct_pa = self.slab.kmalloc(512, owner=cgroup.cg_id)

        # Long-lived kernel object population (dentries, inodes, vmas...);
        # sizes cycle through the common kmalloc classes.
        sizes = (64, 128, 192, 256, 512, 96, 32)
        for i in range(self.config.slab_warm_objects):
            self.slab.kmalloc(sizes[i % len(sizes)], owner=cgroup.cg_id)

        # One user page for copy_from/to_user traffic.
        user_frame = self.buddy.alloc_pages(0, owner=cgroup.cg_id)
        aspace.map_user(USER_BASE, user_frame)

        self.processes[pid] = proc
        return proc

    def destroy_process(self, proc: Process) -> None:
        """exit(): release every resource the process owns."""
        if not proc.alive:
            return
        proc.alive = False
        for fd in list(proc.files):
            self._close_file(proc, fd)
        for vma in list(proc.vmas.values()):
            self._unmap_vma(proc, vma)
        user_frame = proc.aspace.user_frame(USER_BASE)
        if user_frame is not None:
            proc.aspace.unmap_user(USER_BASE)
            self.buddy.free_pages(user_frame)
        for va, frame in [(proc.kernel_stack_va + i * PAGE_SIZE, f)
                          for i, f in enumerate(proc.kernel_stack_frames)]:
            self.kmappings.vmalloc_unmap(va)
            self.buddy.free_pages(frame)
        proc.kernel_stack_frames.clear()
        # NOTE: the warm slab population is intentionally leaked on exit
        # (it models system-wide caches that outlive any process).
        for frame in proc.pt_frames:
            self.buddy.free_pages(frame)
        proc.pt_frames.clear()
        heap_frame = (proc.heap_va - direct_map_va(0)) // PAGE_SIZE
        self.buddy.free_pages(heap_frame)
        self.slab.kfree(proc.task_struct_pa)
        del self.processes[proc.pid]

    def plant_secret(self, proc: Process, secret: bytes) -> int:
        """Store a secret in the process's heap; returns its kernel VA.

        The frames written are tagged non-transient, so the ``context``
        scheme (ConTExT) knows where secrets live; every other scheme
        ignores the tags.
        """
        pa = proc.aspace.translate(proc.heap_va + SECRET_OFF)
        self.memory.store_bytes(pa, secret)
        self.tag_non_transient(pa, len(secret))
        return proc.heap_va + SECRET_OFF

    def tag_non_transient(self, pa: int, length: int = 1) -> None:
        """Mark the frames covering ``[pa, pa+length)`` non-transient
        (ConTExT's OS interface for secret memory)."""
        first = pa // PAGE_SIZE
        last = (pa + max(length, 1) - 1) // PAGE_SIZE
        for frame in range(first, last + 1):
            self.non_transient_frames.add(frame)

    # ------------------------------------------------------------------
    # Seccomp
    # ------------------------------------------------------------------

    def install_seccomp(self, proc: Process, filt: SeccompFilter) -> None:
        self._seccomp[proc.pid] = filt

    # ------------------------------------------------------------------
    # System calls
    # ------------------------------------------------------------------

    def syscall(self, proc: Process, name: str,
                args: tuple[int, ...] = (), spin: int = 0) -> SyscallResult:
        """Perform a system call on behalf of ``proc``.

        Runs the seccomp filter, applies the semantic side effects
        (allocations, fd table changes), then executes the syscall's kernel
        entry function on the pipeline under the active defense policy.
        """
        spec = self.image.syscalls[name]
        filt = self._seccomp.get(proc.pid)
        if filt is not None:
            action = filt.evaluate(name, args)
            if action is Action.KILL:
                self.destroy_process(proc)
                raise SeccompViolation(name, proc.pid)
            if action is Action.ERRNO:
                return SyscallResult(syscall=name, retval=-1, denied=True)

        self.syscall_count += 1
        self.tracer.record_syscall(proc.cgroup.cg_id, name)
        handler = getattr(self, f"_sem_{name}", None)
        retval, new_page_va = 0, proc.heap_va
        if handler is not None:
            retval, new_page_va = handler(proc, args)

        regs = self._regs_for(proc, spec, args, spin, new_page_va)
        ctx_id = proc.cgroup.cg_id
        if ctx_id != self._last_kernel_ctx:
            if fire("serve-ibpb-drop"):
                # The IBPB microcode op faulted mid-switch.  Fail closed:
                # a *full* branch-unit flush (conditional + BTB + RSB) is
                # strictly stronger than the barrier it replaces, so
                # cross-tenant (mis)training can never survive the fault
                # -- the incoming tenant just pays colder predictors.
                self.branch_unit.reset()
                self.ibpb_fault_flushes += 1
                ev.emit("fault-fallback", context=ctx_id,
                        reason="ibpb-drop-full-flush",
                        scheme=self.pipeline.policy.name)
            elif self.pipeline.policy.flush_branch_state_on_context_switch():
                # IBPB on context switch: drop indirect-predictor state so
                # cross-context (mis)training cannot carry over.
                self.branch_unit.btb.reset()
                self.branch_unit.rsb.clear()
            self._last_kernel_ctx = ctx_id
        context = ExecutionContext(
            context_id=ctx_id, domain="kernel",
            address_space=proc.aspace, initial_regs=regs)
        exec_result = self.pipeline.run(spec.entry, context,
                                        charge_kernel_entry=True)
        # Request tracing: the kernel-function step on the open request
        # (free when no recorder/request is active).
        rt.step("kernel_fn", spec.entry, exec_result.cycles,
                context=ctx_id, scheme=self.pipeline.policy.name)
        result = SyscallResult(syscall=name, retval=retval,
                               exec_result=exec_result)
        self.kernel_cycles_total += result.cycles
        return result

    def _regs_for(self, proc: Process, spec, args: tuple[int, ...],
                  spin: int, new_page_va: int) -> dict[str, int]:
        regs = {
            REG_ARG0: args[0] if len(args) > 0 else 0,
            REG_ARG1: args[1] if len(args) > 1 else 0,
            REG_ARG2: args[2] if len(args) > 2 else 0,
            REG_USERBUF: USER_BASE,
            REG_SPIN: max(1, spin),
            REG_KSTACK: proc.kernel_stack_va,
            REG_TASK: direct_map_va(proc.task_struct_pa & ~(PAGE_SIZE - 1)),
            REG_GLOBAL: self._global_va,
            REG_HEAP: proc.heap_va,
            "r8": new_page_va,
            "r4": 0,
        }
        if spec.uses_fops:
            fd = args[0] if args else 0
            file = proc.files.get(fd)
            kind = file.fops_kind if file is not None else FOPS_KINDS[0]
            opname = "write" if "write" in spec.name or \
                spec.name.startswith("send") else "read"
            regs["r4"] = self.image.fops_slot_offset(kind, opname)
        return regs

    # ------------------------------------------------------------------
    # Syscall semantics (side effects; each returns (retval, new_page_va))
    # ------------------------------------------------------------------

    def _sem_open(self, proc: Process, args) -> tuple[int, int]:
        kind = FOPS_KINDS[(args[0] if args else 0) % len(FOPS_KINDS)]
        return self._open_file(proc, kind), proc.heap_va

    def _sem_socket(self, proc: Process, args) -> tuple[int, int]:
        return self._open_file(proc, "sock"), proc.heap_va

    def _sem_accept(self, proc: Process, args) -> tuple[int, int]:
        return self._open_file(proc, "sock"), proc.heap_va

    def _sem_pipe(self, proc: Process, args) -> tuple[int, int]:
        read_end = self._open_file(proc, "pipe")
        self._open_file(proc, "pipe")
        return read_end, proc.heap_va

    def _sem_dup(self, proc: Process, args) -> tuple[int, int]:
        fd = args[0] if args else 0
        file = proc.files.get(fd)
        kind = file.fops_kind if file is not None else FOPS_KINDS[0]
        return self._open_file(proc, kind), proc.heap_va

    def _sem_close(self, proc: Process, args) -> tuple[int, int]:
        fd = args[0] if args else 0
        if fd in proc.files:
            self._close_file(proc, fd)
            return 0, proc.heap_va
        return -1, proc.heap_va

    def _open_file(self, proc: Process, kind: str) -> int:
        fd = proc.alloc_fd()
        backing = self.slab.kmalloc(256, owner=proc.cgroup.cg_id)
        proc.files[fd] = OpenFile(fd=fd, fops_kind=kind, backing_pa=backing)
        return fd

    def _close_file(self, proc: Process, fd: int) -> None:
        file = proc.files.pop(fd)
        self.slab.kfree(file.backing_pa)

    def _sem_mmap(self, proc: Process, args) -> tuple[int, int]:
        """mmap(addr_hint, length) with MAP_POPULATE semantics (the paper's
        simplifying assumption in Section 5.2)."""
        length = args[1] if len(args) > 1 else PAGE_SIZE
        pages = max(1, (length + PAGE_SIZE - 1) // PAGE_SIZE)
        va = self._next_mmap_va(proc)
        frames = []
        for i in range(pages):
            frame = self.buddy.alloc_pages(0, owner=proc.cgroup.cg_id)
            proc.aspace.map_user(va + i * PAGE_SIZE, frame)
            frames.append(frame)
        proc.vmas[va] = VmArea(va=va, length=pages * PAGE_SIZE, frames=frames)
        return va, direct_map_va(pa_of_frame(frames[0]))

    def _next_mmap_va(self, proc: Process) -> int:
        va = USER_BASE + (1 << 30)
        for vma in proc.vmas.values():
            end = vma.va + vma.length
            if end > va:
                va = end
        return va

    def _sem_munmap(self, proc: Process, args) -> tuple[int, int]:
        va = args[0] if args else 0
        vma = proc.vmas.get(va)
        if vma is None:
            return -1, proc.heap_va
        self._unmap_vma(proc, vma)
        return 0, proc.heap_va

    def _unmap_vma(self, proc: Process, vma: VmArea) -> None:
        for i in range(len(vma.frames)):
            proc.aspace.unmap_user(vma.va + i * PAGE_SIZE)
        for head in vma.free_heads:
            self.buddy.free_pages(head)
        del proc.vmas[vma.va]

    def _sem_brk(self, proc: Process, args) -> tuple[int, int]:
        return self._fault_around(proc, self._next_mmap_va(proc))

    def _sem_page_fault(self, proc: Process, args) -> tuple[int, int]:
        """Demand-paging fault with fault-around: allocate and map an
        order-2 block (4 pages), associated with the faulting process's
        DSV."""
        va = args[0] if args else self._next_mmap_va(proc)
        return self._fault_around(proc, va)

    #: Pages mapped per demand fault (Linux's fault-around, reduced).
    FAULT_AROUND_PAGES = 4

    def _fault_around(self, proc: Process, va: int) -> tuple[int, int]:
        head = self.buddy.alloc_pages(2, owner=proc.cgroup.cg_id)
        frames = [head + i for i in range(self.FAULT_AROUND_PAGES)]
        for i, frame in enumerate(frames):
            proc.aspace.map_user(va + i * PAGE_SIZE, frame)
        proc.vmas.setdefault(va, VmArea(
            va=va, length=self.FAULT_AROUND_PAGES * PAGE_SIZE,
            frames=frames, free_heads=[head]))
        return va, direct_map_va(pa_of_frame(head))

    def _sem_fork(self, proc: Process, args) -> tuple[int, int]:
        """fork(): child gets its own kernel stack, task struct and page
        tables; user pages are shared copy-on-write.  args[0] (optional)
        scales the page-table copy cost (big-fork)."""
        child = self.create_process(f"{proc.name}-child", cgroup=proc.cgroup)
        copied_pages = max(1, proc.aspace.user_pages() // 8)
        for _ in range(min(copied_pages, 32)):
            child.pt_frames.append(self.buddy.alloc_pages(
                0, owner=proc.cgroup.cg_id))
        first = child.pt_frames[0]
        return child.pid, direct_map_va(pa_of_frame(first))

    def _sem_exit(self, proc: Process, args) -> tuple[int, int]:
        # Resources are released before the kernel path executes, matching
        # do_exit tearing the task down while running on its own stack.
        self.destroy_process(proc)
        return 0, proc.heap_va

    def _sem_poll(self, proc: Process, args) -> tuple[int, int]:
        """poll(): the paper's canonical *implicit* allocation (Figure 5.2):
        kmalloc'd fd metadata lives only for the duration of the call."""
        nfds = max(1, args[0] if args else 1)
        scratch = self.slab.kmalloc(min(4096, 16 * nfds),
                                    owner=proc.cgroup.cg_id)
        self.slab.kfree(scratch)
        return 0, proc.heap_va

    _sem_select = _sem_poll
    _sem_epoll_wait = _sem_poll

    def _sem_sendmsg(self, proc: Process, args) -> tuple[int, int]:
        """sendmsg(): large gather buffers come from the kmalloc-2k class,
        which has no long-lived population -- so these transient pages
        empty on free and return to the buddy allocator, the page-level
        domain-reassignment events of Section 9.2."""
        scratch = self.slab.kmalloc(2048, owner=proc.cgroup.cg_id)
        self.slab.kfree(scratch)
        return args[1] if len(args) > 1 else 0, proc.heap_va

    _sem_recvmsg = _sem_sendmsg

    def _sem_execve(self, proc: Process, args) -> tuple[int, int]:
        # Fresh image: recycle the user buffer page and allocate anew,
        # plus an order-2 block for the new image's first pages.
        frame = self.buddy.alloc_pages(0, owner=proc.cgroup.cg_id)
        old = proc.aspace.user_frame(USER_BASE)
        proc.aspace.map_user(USER_BASE, frame)
        if old is not None:
            self.buddy.free_pages(old)
        _, new_page_va = self._fault_around(proc, self._next_mmap_va(proc))
        return 0, new_page_va
