"""Kernel virtual-address-space layout constants.

Mirrors the Linux x86-64 layout the paper relies on (Section 2.3): a
monolithic kernel address space with a *direct map* covering every physical
frame, a text segment, a vmalloc area for kernel stacks, and -- new in
Perspective -- a fixed-offset ISV shadow region where each code page has a
companion page holding one ISV bit per instruction (Section 6.2, Figure 6.1a).
"""

from __future__ import annotations

PAGE_SIZE = 4096
PAGE_SHIFT = 12

#: Total physical memory modeled: 32 Ki frames = 128 MiB.
TOTAL_FRAMES = 32 * 1024
PHYS_SIZE = TOTAL_FRAMES * PAGE_SIZE

#: Kernel text segment (where the synthetic kernel image is laid out).
KERNEL_TEXT_BASE = 0xFFFF_F000_0000_0000

#: Fixed VA offset from a kernel code page to its ISV bitmap page
#: (Figure 6.1a).  Chosen larger than any realistic text segment.
ISV_PAGE_OFFSET = 0x0000_0040_0000_0000

#: Direct map: kernel VA ``DIRECT_MAP_BASE + pa`` aliases physical ``pa``
#: for every frame in the system -- the monolithic mapping that makes
#: kernel transient-execution gadgets able to reach *all* memory.
DIRECT_MAP_BASE = 0xFFFF_8880_0000_0000

#: vmalloc area (kernel stacks are allocated here during fork).
VMALLOC_BASE = 0xFFFF_C900_0000_0000

#: Userspace mmap region base.
USER_BASE = 0x0000_5555_0000_0000

#: Frames reserved at boot (kernel text backing, global data, per-cpu
#: areas).  These never flow through the buddy allocator and are the
#: paper's "unknown allocations" (Section 6.1): they belong to no DSV.
BOOT_RESERVED_FRAMES = 64


def direct_map_va(pa: int) -> int:
    """Kernel direct-map virtual address of physical address ``pa``."""
    return DIRECT_MAP_BASE + pa


def direct_map_pa(va: int) -> int:
    """Physical address behind a direct-map VA."""
    return va - DIRECT_MAP_BASE


def is_direct_map(va: int) -> bool:
    return DIRECT_MAP_BASE <= va < DIRECT_MAP_BASE + PHYS_SIZE


def frame_of_pa(pa: int) -> int:
    return pa >> PAGE_SHIFT


def pa_of_frame(frame: int) -> int:
    return frame << PAGE_SHIFT


def page_of_va(va: int) -> int:
    return va >> PAGE_SHIFT
