"""Processes and address spaces.

Each process has a user page table plus the shared kernel mappings: the
kernel text, the full direct map (the monolithic mapping at the heart of
the paper's threat analysis), and the vmalloc area holding kernel stacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.memsys import AddressSpace, PageFault
from repro.kernel.cgroup import Cgroup
from repro.kernel.layout import (
    DIRECT_MAP_BASE,
    KERNEL_TEXT_BASE,
    PAGE_SHIFT,
    PAGE_SIZE,
    PHYS_SIZE,
    VMALLOC_BASE,
    direct_map_pa,
)


class KernelMappings:
    """Mappings shared by every process: text, direct map, vmalloc.

    Kernel text is backed by boot-reserved frames starting at physical 0.
    """

    VMALLOC_SPAN = 1 << 30

    def __init__(self) -> None:
        self._vmalloc: dict[int, int] = {}  # va page -> frame
        self._next_vmalloc_va = VMALLOC_BASE

    def vmalloc_map(self, frame: int) -> int:
        """Map one frame at the next free vmalloc address; returns the VA."""
        va = self._next_vmalloc_va
        self._next_vmalloc_va += PAGE_SIZE
        self._vmalloc[va >> PAGE_SHIFT] = frame
        return va

    def vmalloc_unmap(self, va: int) -> int:
        """Remove a vmalloc mapping; returns the frame that backed it."""
        return self._vmalloc.pop(va >> PAGE_SHIFT)

    def translate(self, va: int) -> int | None:
        if DIRECT_MAP_BASE <= va < DIRECT_MAP_BASE + PHYS_SIZE:
            return direct_map_pa(va)
        if KERNEL_TEXT_BASE <= va < KERNEL_TEXT_BASE + (64 << PAGE_SHIFT):
            return va - KERNEL_TEXT_BASE  # text backed by frames [0, 64)
        frame = self._vmalloc.get(va >> PAGE_SHIFT)
        if frame is not None:
            return (frame << PAGE_SHIFT) | (va & (PAGE_SIZE - 1))
        return None


class ProcessAddressSpace(AddressSpace):
    """Per-process translation: user page table + shared kernel mappings."""

    #: Published direct-map window: ``translate(va) == va - DIRECT_MAP_LO``
    #: for ``DIRECT_MAP_LO <= va < DIRECT_MAP_HI``, with no side effects.
    #: The block JIT inlines exactly this window (see
    #: ``repro.cpu.blockcache``); subclasses overriding ``translate`` do
    #: not inherit the contract because the JIT reads these off the exact
    #: type's ``__dict__``, never through the MRO.
    DIRECT_MAP_LO = DIRECT_MAP_BASE
    DIRECT_MAP_HI = DIRECT_MAP_BASE + PHYS_SIZE

    def __init__(self, kernel_mappings: KernelMappings) -> None:
        self.kernel = kernel_mappings
        self._user: dict[int, int] = {}  # va page -> frame

    def map_user(self, va: int, frame: int) -> None:
        self._user[va >> PAGE_SHIFT] = frame

    def unmap_user(self, va: int) -> int:
        page = va >> PAGE_SHIFT
        if page not in self._user:
            raise PageFault(va, f"munmap of unmapped VA {va:#x}")
        return self._user.pop(page)

    def user_frame(self, va: int) -> int | None:
        return self._user.get(va >> PAGE_SHIFT)

    def user_pages(self) -> int:
        return len(self._user)

    def translate(self, va: int) -> int:
        pa = self.kernel.translate(va)
        if pa is not None:
            return pa
        frame = self._user.get(va >> PAGE_SHIFT)
        if frame is None:
            raise PageFault(va)
        return (frame << PAGE_SHIFT) | (va & (PAGE_SIZE - 1))


@dataclass
class OpenFile:
    """A file-table entry; ``fops_kind`` selects the indirect-call target
    family (ext4 / pipe / socket ...) the VFS dispatches through."""

    fd: int
    fops_kind: str
    backing_pa: int  # metadata object from the (secure) slab allocator


@dataclass
class VmArea:
    """A user mapping created by mmap / brk / a demand fault."""

    va: int
    length: int
    #: Frame backing each page, in page order.
    frames: list[int] = field(default_factory=list)
    #: Block heads to hand back to the buddy allocator on unmap (equal to
    #: ``frames`` for page-at-a-time mmap; a single head for the order-2
    #: fault-around blocks).
    free_heads: list[int] = field(default_factory=list)
    populated: bool = True

    def __post_init__(self) -> None:
        if not self.free_heads:
            self.free_heads = list(self.frames)


@dataclass
class Process:
    """A userspace process (one per workload container in the evaluation)."""

    pid: int
    name: str
    cgroup: Cgroup
    aspace: ProcessAddressSpace
    kernel_stack_va: int = 0
    kernel_stack_frames: list[int] = field(default_factory=list)
    #: Page-table frames allocated on fork (owned by the mm, not any vma).
    pt_frames: list[int] = field(default_factory=list)
    files: dict[int, OpenFile] = field(default_factory=dict)
    vmas: dict[int, VmArea] = field(default_factory=dict)
    next_fd: int = 3
    #: Heap page (direct-map VA) the kernel image uses as this context's
    #: "own data" base register during simulation.
    heap_va: int = 0
    #: Per-process metadata object (task_struct stand-in) in the slab.
    task_struct_pa: int = 0
    alive: bool = True

    def alloc_fd(self) -> int:
        fd = self.next_fd
        self.next_fd += 1
        return fd
