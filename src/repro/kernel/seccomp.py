"""Seccomp-style system call interposition (Section 2.3, Figure 2.1).

Processes install filters restricting which system calls they may make and
with which argument values.  Filters are expressed as ordered rules over
the syscall number and raw argument words -- like seccomp-BPF, they cannot
dereference pointers, which is what rules out TOCTOU races.

Perspective's ISV generation "marries" this allow-list idea with
speculation control: the same per-application syscall profile that a
seccomp policy captures seeds the set of trusted kernel entry points
(Section 5.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Action(enum.Enum):
    ALLOW = "allow"
    ERRNO = "errno"  # deny with an error return
    KILL = "kill"  # terminate the process


class ArgCmp(enum.Enum):
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    MASKED_EQ = "&=="  # (arg & mask) == value


@dataclass(frozen=True)
class ArgCheck:
    """One predicate over a raw syscall argument word."""

    index: int
    cmp: ArgCmp
    value: int
    mask: int = 0xFFFFFFFFFFFFFFFF

    def matches(self, args: tuple[int, ...]) -> bool:
        if self.index >= len(args):
            return False
        arg = args[self.index]
        if self.cmp is ArgCmp.EQ:
            return arg == self.value
        if self.cmp is ArgCmp.NE:
            return arg != self.value
        if self.cmp is ArgCmp.LT:
            return arg < self.value
        if self.cmp is ArgCmp.LE:
            return arg <= self.value
        if self.cmp is ArgCmp.GT:
            return arg > self.value
        if self.cmp is ArgCmp.GE:
            return arg >= self.value
        if self.cmp is ArgCmp.MASKED_EQ:
            return (arg & self.mask) == self.value
        raise ValueError(f"unknown comparison {self.cmp}")


@dataclass(frozen=True)
class FilterRule:
    """Match a syscall (by name) and optional argument predicates."""

    syscall: str
    action: Action
    arg_checks: tuple[ArgCheck, ...] = ()

    def matches(self, syscall: str, args: tuple[int, ...]) -> bool:
        if syscall != self.syscall:
            return False
        return all(check.matches(args) for check in self.arg_checks)


@dataclass
class SeccompFilter:
    """An ordered rule list with a default action.

    First matching rule wins, mirroring BPF filter semantics.
    """

    rules: list[FilterRule] = field(default_factory=list)
    default_action: Action = Action.ERRNO

    def evaluate(self, syscall: str, args: tuple[int, ...] = ()) -> Action:
        for rule in self.rules:
            if rule.matches(syscall, args):
                return rule.action
        return self.default_action

    def allowed_syscalls(self) -> frozenset[str]:
        """Syscalls with at least one unconditional ALLOW rule."""
        return frozenset(
            rule.syscall for rule in self.rules
            if rule.action is Action.ALLOW and not rule.arg_checks)

    @classmethod
    def allow_list(cls, syscalls: frozenset[str] | set[str] | list[str],
                   default: Action = Action.ERRNO) -> "SeccompFilter":
        """Build a plain allow-list filter (the common container policy)."""
        rules = [FilterRule(name, Action.ALLOW) for name in sorted(syscalls)]
        return cls(rules=rules, default_action=default)


class SeccompViolation(Exception):
    """Raised when a KILL-action filter fires."""

    def __init__(self, syscall: str, pid: int) -> None:
        super().__init__(f"seccomp killed pid {pid} on syscall {syscall!r}")
        self.syscall = syscall
        self.pid = pid
