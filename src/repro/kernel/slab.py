"""Slab allocators: the baseline (insecure) and Perspective's secure one.

The baseline slab allocator mirrors Linux's SLUB behaviour that the paper
identifies as a DSV challenge (Section 5.2): objects as small as 8 bytes
from *mutually distrusting contexts* are packed onto the same pages -- even
the same cache lines -- so page-granular ownership cannot be assigned.

Perspective's secure slab allocator (Section 6.1) keeps, for each size
class, separate page lists per cgroup, eliminating collocation at the cost
of some fragmentation (measured at 0.91% in the paper, reproduced in the
sensitivity benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.buddy import BuddyAllocator, OutOfMemory
from repro.kernel.layout import PAGE_SIZE, pa_of_frame

#: kmalloc size classes, following Linux's kmalloc-8 ... kmalloc-4k caches.
SIZE_CLASSES = (8, 16, 32, 64, 96, 128, 192, 256, 512, 1024, 2048, 4096)


def size_class_for(size: int) -> int:
    """Smallest size class that fits ``size`` bytes."""
    for cls in SIZE_CLASSES:
        if size <= cls:
            return cls
    raise ValueError(f"kmalloc size {size} exceeds largest size class")


@dataclass
class SlabPage:
    """One physical page carved into equal-size objects."""

    frame: int
    size_class: int
    #: slot index -> owner id, for occupied slots.
    used: dict[int, int | None] = field(default_factory=dict)

    @property
    def slots(self) -> int:
        return PAGE_SIZE // self.size_class

    @property
    def is_full(self) -> bool:
        return len(self.used) == self.slots

    @property
    def is_empty(self) -> bool:
        return not self.used

    def alloc_slot(self, owner: int | None) -> int:
        """Claim the lowest free slot; returns the object's physical addr."""
        for slot in range(self.slots):
            if slot not in self.used:
                self.used[slot] = owner
                return pa_of_frame(self.frame) + slot * self.size_class
        raise RuntimeError("alloc_slot on a full slab page")

    def free_slot(self, slot: int) -> None:
        del self.used[slot]

    def owners_on_line(self, line_pa: int) -> set[int | None]:
        """Distinct owners of live objects on the 64-byte line at line_pa."""
        base = pa_of_frame(self.frame)
        owners = set()
        for slot, owner in self.used.items():
            obj_pa = base + slot * self.size_class
            if obj_pa // 64 == line_pa // 64:
                owners.add(owner)
        return owners


@dataclass
class SlabStats:
    allocations: int = 0
    frees: int = 0
    pages_acquired: int = 0
    pages_released: int = 0
    #: Transient buddy failures absorbed by the acquire-retry loop.
    alloc_retries: int = 0
    #: Frees that emptied a page and returned it to the buddy allocator --
    #: the "domain reassignment" page-level operations of Section 9.2.
    reassignment_frees: int = 0

    @property
    def page_return_ratio(self) -> float:
        """Fraction of object frees that triggered a page return."""
        if self.frees == 0:
            return 0.0
        return self.reassignment_frees / self.frees

    def as_metrics(self, prefix: str):
        """(name, value) pairs for the observability collectors."""
        yield f"{prefix}.allocations", self.allocations
        yield f"{prefix}.frees", self.frees
        yield f"{prefix}.pages_acquired", self.pages_acquired
        yield f"{prefix}.pages_released", self.pages_released
        yield f"{prefix}.alloc_retries", self.alloc_retries
        yield f"{prefix}.reassignment_frees", self.reassignment_frees
        yield f"{prefix}.page_return_ratio", self.page_return_ratio


class _SlabCore:
    """Machinery shared by the baseline and secure allocators."""

    #: Attempts per page acquisition: transient buddy failures (memory
    #: pressure, injected faults) are retried like the kernel's reclaim
    #: loop before the failure propagates to the caller.
    PAGE_ALLOC_ATTEMPTS = 4

    def __init__(self, buddy: BuddyAllocator) -> None:
        self.buddy = buddy
        self.stats = SlabStats()
        self._page_by_frame: dict[int, SlabPage] = {}
        #: Owner recorded per live object pa (for accounting / analysis).
        self._object_owner: dict[int, int | None] = {}
        self._object_size: dict[int, int] = {}

    def _acquire_page(self, size_class: int, buddy_owner: int | None) -> SlabPage:
        for attempt in range(self.PAGE_ALLOC_ATTEMPTS):
            try:
                frame = self.buddy.alloc_pages(0, owner=buddy_owner)
                break
            except OutOfMemory:
                if attempt == self.PAGE_ALLOC_ATTEMPTS - 1:
                    raise
                self.stats.alloc_retries += 1
        page = SlabPage(frame=frame, size_class=size_class)
        self._page_by_frame[frame] = page
        self.stats.pages_acquired += 1
        return page

    def _release_page(self, page: SlabPage) -> None:
        del self._page_by_frame[page.frame]
        self.buddy.free_pages(page.frame)
        self.stats.pages_released += 1

    def _register(self, pa: int, size: int, owner: int | None) -> None:
        self._object_owner[pa] = owner
        self._object_size[pa] = size
        self.stats.allocations += 1

    def _unregister(self, pa: int) -> tuple[SlabPage, int]:
        """Common kfree bookkeeping; returns (page, slot)."""
        if pa not in self._object_owner:
            raise ValueError(f"kfree of unallocated object at {pa:#x}")
        del self._object_owner[pa]
        del self._object_size[pa]
        frame = pa // PAGE_SIZE
        page = self._page_by_frame[frame]
        slot = (pa % PAGE_SIZE) // page.size_class
        page.free_slot(slot)
        self.stats.frees += 1
        return page, slot

    # -- accounting ----------------------------------------------------

    def active_bytes(self) -> int:
        """Bytes occupied by live objects (size-class granularity)."""
        return sum(self._object_size.values())

    def total_slab_bytes(self) -> int:
        """Bytes of physical memory held by the slab allocator."""
        return len(self._page_by_frame) * PAGE_SIZE

    def utilization(self) -> float:
        """Active object bytes / total slab bytes (slabtop's ratio)."""
        total = self.total_slab_bytes()
        if total == 0:
            return 1.0
        return self.active_bytes() / total

    def owner_of_object(self, pa: int) -> int | None:
        return self._object_owner.get(pa)

    def live_objects(self) -> int:
        return len(self._object_owner)

    def collocated_owner_pairs(self) -> int:
        """Count cache lines holding live objects of >= 2 distinct owners.

        Nonzero here is exactly the isolation violation Perspective's secure
        slab allocator eliminates.
        """
        violations = 0
        for page in self._page_by_frame.values():
            lines: dict[int, set] = {}
            base = pa_of_frame(page.frame)
            for slot, owner in page.used.items():
                line = (base + slot * page.size_class) // 64
                lines.setdefault(line, set()).add(owner)
            violations += sum(1 for owners in lines.values() if len(owners) > 1)
        return violations


class SlabAllocator(_SlabCore):
    """Baseline SLUB-like allocator: one partial-page pool per size class,
    shared by all contexts.  Objects of different cgroups pack together."""

    def __init__(self, buddy: BuddyAllocator) -> None:
        super().__init__(buddy)
        self._partial: dict[int, list[SlabPage]] = {
            cls: [] for cls in SIZE_CLASSES}

    def kmalloc(self, size: int, owner: int | None = None) -> int:
        cls = size_class_for(size)
        pool = self._partial[cls]
        page = pool[0] if pool else None
        if page is None:
            # Baseline slab pages are kernel-owned (no per-context DSV).
            page = self._acquire_page(cls, buddy_owner=None)
            pool.append(page)
        pa = page.alloc_slot(owner)
        if page.is_full:
            pool.remove(page)
        self._register(pa, size, owner)
        return pa

    def kfree(self, pa: int) -> None:
        page, _ = self._unregister(pa)
        pool = self._partial[page.size_class]
        if page.is_empty:
            if page in pool:
                pool.remove(page)
            self._release_page(page)
            self.stats.reassignment_frees += 1
        elif page not in pool:
            pool.append(page)


class SecureSlabAllocator(_SlabCore):
    """Perspective's secure slab allocator (Section 6.1).

    For each slab size class it maintains *separate page lists per cgroup*,
    so no physical page -- and therefore no cache line -- ever holds objects
    of two different contexts.  Emptied pages return to the buddy allocator,
    requiring a domain reassignment (tracked in stats) before reuse.
    """

    def __init__(self, buddy: BuddyAllocator) -> None:
        super().__init__(buddy)
        self._partial: dict[tuple[int, int | None], list[SlabPage]] = {}
        self._page_domain: dict[int, int | None] = {}  # frame -> owner

    def kmalloc(self, size: int, owner: int | None = None) -> int:
        cls = size_class_for(size)
        key = (cls, owner)
        pool = self._partial.setdefault(key, [])
        page = pool[0] if pool else None
        if page is None:
            # The page itself is tagged with the owning cgroup so the DSV
            # hook on the buddy allocator assigns it to the right view.
            page = self._acquire_page(cls, buddy_owner=owner)
            self._page_domain[page.frame] = owner
            pool.append(page)
        pa = page.alloc_slot(owner)
        if page.is_full:
            pool.remove(page)
        self._register(pa, size, owner)
        return pa

    def kfree(self, pa: int) -> None:
        page, _ = self._unregister(pa)
        domain = self._page_domain.get(page.frame)
        pool = self._partial.setdefault((page.size_class, domain), [])
        if page.is_empty:
            if page in pool:
                pool.remove(page)
            del self._page_domain[page.frame]
            self._release_page(page)
            self.stats.reassignment_frees += 1
        elif page not in pool:
            pool.append(page)

    def domain_of_page(self, frame: int) -> int | None:
        return self._page_domain.get(frame)
