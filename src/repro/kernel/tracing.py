"""Kernel function tracing (the ftrace stand-in).

Dynamic ISVs are built from traces: Perspective "leverages kernel-level
process tracing to identify the set of actively used system calls and
kernel function paths" (Section 5.3).  The tracer hooks the pipeline's
function-entry callback and records, per execution context, every kernel
function the committed path enters.
"""

from __future__ import annotations

from collections import defaultdict

from repro.cpu.isa import Function
from repro.cpu.pipeline import ExecutionContext
from repro.reliability.faultplane import fire


class KernelTracer:
    """Records committed function entries per context while enabled.

    The ring buffer can drop records under pressure (the ``trace-drop``
    fault point).  A dropped record can only *shrink* the traced function
    set -- and therefore the dynamic ISV built from it -- never grow it,
    so degraded tracing costs performance (extra fences), not security.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._functions_by_context: dict[int, set[str]] = defaultdict(set)
        self._syscalls_by_context: dict[int, set[str]] = defaultdict(set)
        self._entry_counts: dict[str, int] = defaultdict(int)
        #: Function-entry records lost to buffer drops (fault-injected).
        self.dropped_entries = 0

    def start(self) -> None:
        self.enabled = True

    def stop(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._functions_by_context.clear()
        self._syscalls_by_context.clear()
        self._entry_counts.clear()
        # A reused tracer must not carry drop counts from a previous
        # campaign into the next one's accounting.
        self.dropped_entries = 0

    # -- pipeline hook ---------------------------------------------------

    def on_function_entry(self, func: Function,
                          context: ExecutionContext) -> None:
        if not self.enabled:
            return
        if fire("trace-drop"):
            self.dropped_entries += 1
            return
        self._functions_by_context[context.context_id].add(func.name)
        self._entry_counts[func.name] += 1

    def record_syscall(self, context_id: int, syscall_name: str) -> None:
        if self.enabled:
            self._syscalls_by_context[context_id].add(syscall_name)

    # -- profile queries ---------------------------------------------------

    def traced_functions(self, context_id: int) -> frozenset[str]:
        """All kernel functions observed for the context."""
        return frozenset(self._functions_by_context.get(context_id, ()))

    def traced_syscalls(self, context_id: int) -> frozenset[str]:
        return frozenset(self._syscalls_by_context.get(context_id, ()))

    def entry_count(self, func_name: str) -> int:
        return self._entry_counts.get(func_name, 0)

    def contexts(self) -> list[int]:
        return list(self._functions_by_context)

    # -- observability ----------------------------------------------------

    def metrics(self) -> list[tuple[str, float]]:
        """Records kept/dropped (and profile size) for the obs plane."""
        kept = sum(self._entry_counts.values())
        return [
            ("tracer.records_kept", kept),
            ("tracer.records_dropped", self.dropped_entries),
            ("tracer.distinct_functions", len(self._entry_counts)),
            ("tracer.contexts", len(self._functions_by_context)),
        ]
