"""repro.obs -- the deterministic observability plane.

A process-wide :class:`MetricsRegistry` of named counters, gauges, and
fixed-bucket histograms, plus lightweight span tracing, all keyed by
*simulated* cycles (never wall clock) so snapshots are byte-reproducible
under a fixed seed.  Instrumented modules publish through the module-
level hooks (:func:`add`, :func:`observe`, :func:`span`, :func:`tick`),
which cost one global read when no registry is active; :func:`observing`
scopes a registry to a ``with`` block.

On top of the metrics plane sits the forensics/attribution layer:

* :mod:`repro.obs.events` -- the cycle-stamped security-event journal
  (:class:`EventJournal`, scoped with :func:`journaling`);
* :mod:`repro.obs.profile` -- the differential fence-overhead profiler
  and the folded-stack / Chrome-trace exporters;
* :mod:`repro.obs.diffgate` -- the metric regression gate CI runs.

See ``python -m repro.obs --help`` for the CLI (snapshot matrix plus the
``events`` / ``profile`` / ``diff`` subcommands).
"""

from repro.obs.collect import (
    collect_branch_unit,
    collect_cache_hierarchy,
    collect_env,
    collect_framework,
    collect_kernel,
    collect_memsys,
)
from repro.obs.diffgate import DiffReport, ToleranceRule, diff_snapshots
from repro.obs.events import EventJournal, SecurityEvent, journaling
from repro.obs.profile import DiffProfile, ProfileRun, SpanTree
from repro.obs.registry import (
    DEFAULT_CYCLE_BUCKETS,
    Histogram,
    MetricsRegistry,
    SpanStats,
    active_registry,
    add,
    gauge,
    observe,
    observing,
    span,
    tick,
)

__all__ = [
    "DEFAULT_CYCLE_BUCKETS",
    "DiffProfile",
    "DiffReport",
    "EventJournal",
    "Histogram",
    "MetricsRegistry",
    "ProfileRun",
    "SecurityEvent",
    "SpanStats",
    "SpanTree",
    "ToleranceRule",
    "active_registry",
    "add",
    "collect_branch_unit",
    "collect_cache_hierarchy",
    "collect_env",
    "collect_framework",
    "collect_kernel",
    "collect_memsys",
    "diff_snapshots",
    "gauge",
    "journaling",
    "observe",
    "observing",
    "span",
    "tick",
]
