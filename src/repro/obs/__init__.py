"""repro.obs -- the deterministic observability plane.

A process-wide :class:`MetricsRegistry` of named counters, gauges, and
fixed-bucket histograms, plus lightweight span tracing, all keyed by
*simulated* cycles (never wall clock) so snapshots are byte-reproducible
under a fixed seed.  Instrumented modules publish through the module-
level hooks (:func:`add`, :func:`observe`, :func:`span`, :func:`tick`),
which cost one global read when no registry is active; :func:`observing`
scopes a registry to a ``with`` block.

On top of the metrics plane sits the forensics/attribution layer:

* :mod:`repro.obs.events` -- the cycle-stamped security-event journal
  (:class:`EventJournal`, scoped with :func:`journaling`);
* :mod:`repro.obs.reqtrace` -- request-scoped tracing for the serve
  plane (:class:`TraceRecorder`, scoped with :func:`tracing`), with
  histogram-bucket exemplar links and per-request Chrome-trace/folded
  exports;
* :mod:`repro.obs.slo` -- windowed SLO rollups and deterministic
  multi-window burn-rate alerts (:class:`SloRollup`, scoped with
  :func:`collecting`);
* :mod:`repro.obs.profile` -- the differential fence-overhead profiler
  and the folded-stack / Chrome-trace exporters;
* :mod:`repro.obs.dashboard` -- the serve-plane SLO / block-JIT
  miss-attribution dashboard (``python -m repro.obs top`` / ``report``);
* :mod:`repro.obs.diffgate` -- the metric regression gate CI runs.

See ``python -m repro.obs --help`` for the CLI (snapshot matrix plus the
``events`` / ``profile`` / ``diff`` / ``top`` / ``report``
subcommands).
"""

from repro.obs.collect import (
    collect_branch_unit,
    collect_cache_hierarchy,
    collect_env,
    collect_framework,
    collect_kernel,
    collect_memsys,
)
from repro.obs.diffgate import DiffReport, ToleranceRule, diff_snapshots
from repro.obs.events import EventJournal, SecurityEvent, journaling
from repro.obs.profile import DiffProfile, ProfileRun, SpanTree
from repro.obs.reqtrace import RequestTrace, TraceRecorder, trace_id, tracing
from repro.obs.slo import (
    SloAlert,
    SloObjective,
    SloRollup,
    SloWindow,
    collecting,
)
from repro.obs.registry import (
    DEFAULT_CYCLE_BUCKETS,
    Histogram,
    MetricsRegistry,
    SpanStats,
    active_registry,
    add,
    gauge,
    observe,
    observing,
    span,
    tick,
)

__all__ = [
    "DEFAULT_CYCLE_BUCKETS",
    "DiffProfile",
    "DiffReport",
    "EventJournal",
    "Histogram",
    "MetricsRegistry",
    "ProfileRun",
    "RequestTrace",
    "SecurityEvent",
    "SloAlert",
    "SloObjective",
    "SloRollup",
    "SloWindow",
    "SpanStats",
    "SpanTree",
    "ToleranceRule",
    "TraceRecorder",
    "active_registry",
    "add",
    "collecting",
    "collect_branch_unit",
    "collect_cache_hierarchy",
    "collect_env",
    "collect_framework",
    "collect_kernel",
    "collect_memsys",
    "diff_snapshots",
    "gauge",
    "journaling",
    "observe",
    "observing",
    "span",
    "tick",
    "trace_id",
    "tracing",
]
