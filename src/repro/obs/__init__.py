"""repro.obs -- the deterministic observability plane.

A process-wide :class:`MetricsRegistry` of named counters, gauges, and
fixed-bucket histograms, plus lightweight span tracing, all keyed by
*simulated* cycles (never wall clock) so snapshots are byte-reproducible
under a fixed seed.  Instrumented modules publish through the module-
level hooks (:func:`add`, :func:`observe`, :func:`span`, :func:`tick`),
which cost one global read when no registry is active; :func:`observing`
scopes a registry to a ``with`` block.

See ``python -m repro.obs --help`` for the snapshot CLI.
"""

from repro.obs.collect import (
    collect_cache_hierarchy,
    collect_env,
    collect_framework,
    collect_kernel,
)
from repro.obs.registry import (
    DEFAULT_CYCLE_BUCKETS,
    Histogram,
    MetricsRegistry,
    SpanStats,
    active_registry,
    add,
    gauge,
    observe,
    observing,
    span,
    tick,
)

__all__ = [
    "DEFAULT_CYCLE_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "SpanStats",
    "active_registry",
    "add",
    "collect_cache_hierarchy",
    "collect_env",
    "collect_framework",
    "collect_kernel",
    "gauge",
    "observe",
    "observing",
    "span",
    "tick",
]
