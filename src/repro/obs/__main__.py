"""CLI entry point: ``python -m repro.obs``.

Runs a small workload matrix with the observability plane armed and
prints (or saves) the resulting metrics snapshot.  Everything in the
snapshot derives from simulated cycles and seeded workloads, so two
invocations with the same arguments produce **byte-identical** output --
the CI smoke step diffs a committed snapshot against a fresh run to keep
the plane (and the counters it reads) honest.

Usage::

    python -m repro.obs                 # default matrix, Prometheus text
    python -m repro.obs --smoke         # trimmed CI matrix
    python -m repro.obs --json          # canonical JSON to stdout
    python -m repro.obs -o snap.json    # also save the JSON snapshot
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.collect import collect_env
from repro.obs.registry import MetricsRegistry, observing

#: The default workload x scheme matrix (kept small: this is a
#: profiling smoke, not the paper evaluation).
DEFAULT_WORKLOADS = ("lebench", "httpd")
DEFAULT_SCHEMES = ("unsafe", "fence", "perspective")
SMOKE_WORKLOADS = ("lebench",)
SMOKE_SCHEMES = ("unsafe", "perspective")
APP_REQUESTS = 12


def run_workload_matrix(workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
                        schemes: tuple[str, ...] = DEFAULT_SCHEMES,
                        seed: int = 0,
                        requests: int = APP_REQUESTS) -> MetricsRegistry:
    """Run the matrix under one registry and return it.

    Hot-path counters (``pipeline.*``, ``campaign.*``) aggregate across
    the whole matrix; per-environment figures are published as prefixed
    gauges (``<workload>.<scheme>.cache.l1d.hits``) by the collectors,
    and spans nest ``env/<workload>.<scheme>/syscall/<name>/...``.
    """
    from repro.eval.envs import RARE_EVERY, make_env
    from repro.workloads.apps import APP_SPECS, AppWorkload
    from repro.workloads.driver import Driver
    from repro.workloads.lebench import exercise_all

    registry = MetricsRegistry(meta={
        "plane": "repro.obs", "seed": seed,
        "workloads": list(workloads), "schemes": list(schemes),
        "requests": requests,
    })
    with observing(registry):
        for workload in workloads:
            for scheme in schemes:
                with registry.span(f"env/{workload}.{scheme}"):
                    # Environment construction itself drives syscalls
                    # (dynamic-ISV profiling runs); keep them under a
                    # ``setup`` node so they never blend into the
                    # measurement's syscall spans.
                    with registry.span("setup"):
                        env = make_env(workload, scheme)
                    if workload == "lebench":
                        driver = Driver(env.kernel, env.proc,
                                        rare_every=RARE_EVERY)
                        exercise_all(driver)
                    else:
                        app = AppWorkload(env.kernel, env.proc,
                                          APP_SPECS[workload],
                                          rare_every=RARE_EVERY)
                        app.serve(requests)
                collect_env(registry, env.kernel, env.framework,
                            prefix=f"{workload}.{scheme}")
    return registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="run a small workload matrix under the deterministic "
                    "observability plane and emit the metrics snapshot")
    parser.add_argument("--smoke", action="store_true",
                        help="trimmed CI matrix (lebench x unsafe/"
                             "perspective)")
    parser.add_argument("--seed", type=int, default=0,
                        help="recorded in the snapshot meta (the workloads "
                             "are internally seeded and deterministic)")
    parser.add_argument("--json", action="store_true",
                        help="print the canonical JSON snapshot instead of "
                             "the Prometheus-style text")
    parser.add_argument("-o", "--out", metavar="FILE",
                        help="also write the JSON snapshot to FILE")
    args = parser.parse_args(argv)

    workloads = SMOKE_WORKLOADS if args.smoke else DEFAULT_WORKLOADS
    schemes = SMOKE_SCHEMES if args.smoke else DEFAULT_SCHEMES
    registry = run_workload_matrix(workloads, schemes, seed=args.seed)

    rendered_json = registry.to_json(indent=1) + "\n"
    print(rendered_json if args.json else registry.to_text(), end="")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered_json)
        print(f"snapshot written to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
