"""CLI entry point: ``python -m repro.obs``.

Without a subcommand, runs a small workload matrix with the
observability plane armed and prints (or saves) the resulting metrics
snapshot.  Everything in the snapshot derives from simulated cycles and
seeded workloads, so two invocations with the same arguments produce
**byte-identical** output -- the CI smoke step diffs a committed
snapshot against a fresh run to keep the plane (and the counters it
reads) honest.

Usage::

    python -m repro.obs                 # default matrix, Prometheus text
    python -m repro.obs --smoke         # trimmed CI matrix
    python -m repro.obs --json          # canonical JSON to stdout
    python -m repro.obs -o snap.json    # also save the JSON snapshot

Forensics subcommands::

    python -m repro.obs events --attack spectre-rsb-passive \\
        --scheme perspective --jsonl run.jsonl
    python -m repro.obs events --input run.jsonl --tenant 2 \\
        --since-cycle 1e4 --until-cycle 5e4   # filter a saved journal
    python -m repro.obs profile --workload lebench \\
        --base unsafe --scheme perspective -o outdir/
    python -m repro.obs diff baseline.json current.json  # exit 1 on drift

Serve-plane dashboard (SLO state + block-JIT miss attribution)::

    python -m repro.obs top                   # terminal dashboard
    python -m repro.obs report -o model.json --artifacts outdir/
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.obs.collect import collect_env
from repro.obs.registry import MetricsRegistry, observing

#: The default workload x scheme matrix (kept small: this is a
#: profiling smoke, not the paper evaluation).
DEFAULT_WORKLOADS = ("lebench", "httpd")
DEFAULT_SCHEMES = ("unsafe", "fence", "perspective")
SMOKE_WORKLOADS = ("lebench",)
SMOKE_SCHEMES = ("unsafe", "perspective")
APP_REQUESTS = 12


def run_workload_matrix(workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
                        schemes: tuple[str, ...] = DEFAULT_SCHEMES,
                        seed: int = 0,
                        requests: int = APP_REQUESTS) -> MetricsRegistry:
    """Run the matrix under one registry and return it.

    Hot-path counters (``pipeline.*``, ``campaign.*``) aggregate across
    the whole matrix; per-environment figures are published as prefixed
    gauges (``<workload>.<scheme>.cache.l1d.hits``) by the collectors,
    and spans nest ``env/<workload>.<scheme>/syscall/<name>/...``.
    """
    from repro.eval.envs import RARE_EVERY, make_env
    from repro.workloads.apps import APP_SPECS, AppWorkload
    from repro.workloads.driver import Driver
    from repro.workloads.lebench import exercise_all

    registry = MetricsRegistry(meta={
        "plane": "repro.obs", "seed": seed,
        "workloads": list(workloads), "schemes": list(schemes),
        "requests": requests,
    })
    with observing(registry):
        for workload in workloads:
            for scheme in schemes:
                with registry.span(f"env/{workload}.{scheme}"):
                    # Environment construction itself drives syscalls
                    # (dynamic-ISV profiling runs); keep them under a
                    # ``setup`` node so they never blend into the
                    # measurement's syscall spans.
                    with registry.span("setup"):
                        env = make_env(workload, scheme)
                    if workload == "lebench":
                        driver = Driver(env.kernel, env.proc,
                                        rare_every=RARE_EVERY)
                        exercise_all(driver)
                    else:
                        app = AppWorkload(env.kernel, env.proc,
                                          APP_SPECS[workload],
                                          rare_every=RARE_EVERY)
                        app.serve(requests)
                collect_env(registry, env.kernel, env.framework,
                            prefix=f"{workload}.{scheme}")
    return registry


def _events_command(args: argparse.Namespace) -> int:
    """Journal one PoC attack run (or load a saved JSONL journal) and
    print the forensics digest, optionally narrowed by tenant/cycle."""
    from repro.obs.events import EventJournal

    if args.input:
        journal = EventJournal.from_jsonl(
            pathlib.Path(args.input).read_text(),
            capacity=args.capacity, meta={"source": args.input})
        result = None
    else:
        from repro.attacks.harness import ATTACKS, run_attack
        if args.attack not in ATTACKS:
            print(f"unknown attack {args.attack!r}; one of "
                  f"{', '.join(sorted(ATTACKS))}", file=sys.stderr)
            return 2
        journal = EventJournal(capacity=args.capacity, meta={
            "attack": args.attack, "scheme": args.scheme})
        result = run_attack(args.attack, args.scheme, journal=journal)
    if (args.tenant is not None or args.since_cycle is not None
            or args.until_cycle is not None):
        filtered = journal.query(context=args.tenant,
                                 since=args.since_cycle,
                                 until=args.until_cycle)
        meta = dict(journal.meta)
        for key, value in (("tenant", args.tenant),
                           ("since_cycle", args.since_cycle),
                           ("until_cycle", args.until_cycle)):
            if value is not None:
                meta[f"filter.{key}"] = value
        journal = EventJournal.from_events(filtered,
                                           capacity=args.capacity,
                                           meta=meta)
    print(journal.summary())
    if result is not None:
        print(f"attack outcome: leaked={result.leaked!r}")
    if args.jsonl:
        pathlib.Path(args.jsonl).write_text(journal.to_jsonl())
        print(f"journal written to {args.jsonl}", file=sys.stderr)
    return 0


def _profile_command(args: argparse.Namespace) -> int:
    """Differential profile: one workload, two schemes, one table."""
    from repro.obs.profile import diff_workload

    diff = diff_workload(args.workload, args.base, args.scheme,
                         requests=args.requests, seed=args.seed)
    print(diff.render(top=args.top), end="")
    if args.out:
        outdir = pathlib.Path(args.out)
        outdir.mkdir(parents=True, exist_ok=True)
        for run in (diff.base, diff.scheme):
            tree = run.tree()
            folded = outdir / f"profile_{run.label}.folded"
            trace = outdir / f"profile_{run.label}.trace.json"
            folded.write_text(tree.to_folded())
            trace.write_text(tree.to_chrome_trace_json())
            print(f"wrote {folded} and {trace}", file=sys.stderr)
    return 0


def _diff_command(args: argparse.Namespace) -> int:
    """Regression gate: nonzero exit when current drifts from baseline."""
    from repro.obs.diffgate import gate_files

    report = gate_files(args.baseline, args.current,
                        rules_path=args.rules,
                        ignore_added=args.ignore_added)
    print(report.render(), end="")
    return 0 if report.ok else 1


def _subcommand_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="speculation-forensics toolbox: security-event "
                    "journal, differential profiler, metric diff gate")
    sub = parser.add_subparsers(dest="command", required=True)

    events = sub.add_parser(
        "events", help="journal a PoC attack run's security events "
                       "(or filter a saved JSONL journal)")
    events.add_argument("--attack", default="spectre-rsb-passive")
    events.add_argument("--scheme", default="perspective")
    events.add_argument("--capacity", type=int, default=65_536)
    events.add_argument("--jsonl", metavar="FILE",
                        help="write the journal as JSON lines")
    events.add_argument("--input", metavar="FILE",
                        help="load a saved JSONL journal instead of "
                             "running an attack")
    events.add_argument("--tenant", type=int, default=None,
                        help="keep only events of this context/tenant id")
    events.add_argument("--since-cycle", type=float, default=None,
                        help="keep only events at/after this cycle stamp")
    events.add_argument("--until-cycle", type=float, default=None,
                        help="keep only events at/before this cycle stamp")

    profile = sub.add_parser(
        "profile", help="diff one workload under two schemes")
    profile.add_argument("--workload", default="lebench")
    profile.add_argument("--base", default="unsafe",
                         help="baseline scheme (default: unsafe)")
    profile.add_argument("--scheme", default="perspective")
    profile.add_argument("--requests", type=int, default=12,
                         help="requests per app-workload run")
    profile.add_argument("--top", type=int, default=0,
                         help="table rows to show (0: all)")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("-o", "--out", metavar="DIR",
                         help="write folded stacks + Chrome traces here")

    diff = sub.add_parser(
        "diff", help="gate a snapshot against a baseline (exit 1 on "
                     "regression)")
    diff.add_argument("baseline", help="baseline snapshot JSON")
    diff.add_argument("current", help="current snapshot JSON")
    diff.add_argument("--rules", metavar="FILE",
                      help="JSON tolerance rules (default: exact match)")
    diff.add_argument("--ignore-added", action="store_true",
                      help="new metrics are not findings")

    top = sub.add_parser(
        "top", help="serve-plane dashboard: SLO state, burn-rate "
                    "alerts, block-JIT miss attribution")
    report = sub.add_parser(
        "report", help="write the dashboard model JSON, HTML, and "
                       "per-request trace exports")
    for cmd in (top, report):
        cmd.add_argument("--workers", type=int, default=1,
                         help="parallel grid workers (same bytes "
                              "either way)")
        cmd.add_argument("--no-cache", action="store_true",
                         help="bypass the repro.exec result cache")
    report.add_argument("-o", "--out", metavar="FILE",
                        help="write the dashboard model JSON to FILE")
    report.add_argument("--artifacts", metavar="DIR",
                        help="write dashboard.html and per-request "
                             "Chrome-trace/folded exports to DIR")
    return parser


def _top_command(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import render_text, run_smoke

    model, _traces = run_smoke(workers=args.workers,
                               use_cache=not args.no_cache)
    print(render_text(model), end="")
    return 0


def _report_command(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import model_to_json, run_smoke, write_report

    model, traces = run_smoke(workers=args.workers,
                              use_cache=not args.no_cache)
    rendered = model_to_json(model)
    if args.out:
        pathlib.Path(args.out).write_text(rendered)
        print(f"model written to {args.out}", file=sys.stderr)
    else:
        print(rendered, end="")
    if args.artifacts:
        written = write_report(args.artifacts, model, traces)
        print(f"{len(written)} artifacts written to {args.artifacts}",
              file=sys.stderr)
    return 0


_COMMANDS = {"events": _events_command, "profile": _profile_command,
             "diff": _diff_command, "top": _top_command,
             "report": _report_command}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] in _COMMANDS:
        args = _subcommand_parser().parse_args(argv)
        return _COMMANDS[args.command](args)
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="run a small workload matrix under the deterministic "
                    "observability plane and emit the metrics snapshot "
                    "(subcommands: events, profile, diff)")
    parser.add_argument("--smoke", action="store_true",
                        help="trimmed CI matrix (lebench x unsafe/"
                             "perspective)")
    parser.add_argument("--seed", type=int, default=0,
                        help="recorded in the snapshot meta (the workloads "
                             "are internally seeded and deterministic)")
    parser.add_argument("--json", action="store_true",
                        help="print the canonical JSON snapshot instead of "
                             "the Prometheus-style text")
    parser.add_argument("-o", "--out", metavar="FILE",
                        help="also write the JSON snapshot to FILE")
    args = parser.parse_args(argv)

    workloads = SMOKE_WORKLOADS if args.smoke else DEFAULT_WORKLOADS
    schemes = SMOKE_SCHEMES if args.smoke else DEFAULT_SCHEMES
    registry = run_workload_matrix(workloads, schemes, seed=args.seed)

    rendered_json = registry.to_json(indent=1) + "\n"
    print(rendered_json if args.json else registry.to_text(), end="")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered_json)
        print(f"snapshot written to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
