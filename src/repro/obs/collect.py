"""Snapshot collectors: pull module-local stats into a registry.

The simulator's subsystems each keep their own stats dataclasses
(:class:`~repro.cpu.cache.CacheStats`,
:class:`~repro.core.hardware.ViewCacheStats`, ...).  Collectors read
those objects *at snapshot time* and publish them as gauges, so the hot
paths pay nothing extra while a registry is active -- only the final
collection walks the stats.

Collectors are duck-typed (they only touch public attributes/methods),
so this module imports nothing from the rest of ``repro`` and can never
introduce an import cycle.

Use :func:`collect_env` for a full (kernel, framework) pair, optionally
prefixed so one registry can hold a whole workload x scheme matrix::

    reg = MetricsRegistry()
    collect_env(reg, env.kernel, env.framework,
                prefix=f"{workload}.{scheme}")
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry


def _publish(reg: MetricsRegistry, prefix: str, items) -> None:
    for name, value in items:
        reg.gauge(f"{prefix}{name}", value)


def collect_cache_hierarchy(reg: MetricsRegistry, hierarchy,
                            prefix: str = "") -> None:
    """Per-level hit/miss/fill/eviction/flush gauges + prefetch count."""
    _publish(reg, f"{prefix}." if prefix else "", hierarchy.metrics())


def collect_framework(reg: MetricsRegistry, framework,
                      prefix: str = "") -> None:
    """ISV/DSV view-cache stats plus aggregate DSVMT walk figures."""
    p = f"{prefix}." if prefix else ""
    for cache in (framework.isv_cache, framework.dsv_cache):
        _publish(reg, p, cache.stats.as_metrics(f"viewcache.{cache.name}"))
        reg.gauge(f"{p}viewcache.{cache.name}.resident", cache.resident())
    registry = framework.dsv_registry
    totals = {"walks": 0, "leaf_lookups": 0, "huge_hits": 0,
              "walk_faults": 0}
    for ctx in sorted(registry.contexts()):
        stats = registry.dsvmt_for(ctx).stats
        for name, value in stats.as_metrics("dsvmt"):
            key = name.rsplit(".", 1)[1]
            totals[key] += value
    for key in sorted(totals):
        reg.gauge(f"{p}dsvmt.{key}", totals[key])
    reg.gauge(f"{p}dsv.owned_frames", registry.owned_frames())
    reg.gauge(f"{p}dsv.assign_events", registry.assign_events)
    reg.gauge(f"{p}dsv.release_events", registry.release_events)
    reg.gauge(f"{p}dsv.dropped_assign_events",
              registry.dropped_assign_events)


def collect_branch_unit(reg: MetricsRegistry, branch_unit,
                        prefix: str = "") -> None:
    """Predictor-state gauges: conditional table, BTB, and RSB."""
    _publish(reg, f"{prefix}." if prefix else "", branch_unit.metrics())


def collect_memsys(reg: MetricsRegistry, memory, tlb,
                   prefix: str = "") -> None:
    """Main-memory footprint and TLB hit/miss/residency gauges."""
    p = f"{prefix}." if prefix else ""
    _publish(reg, p, memory.metrics())
    _publish(reg, p, tlb.metrics())


def collect_kernel(reg: MetricsRegistry, kernel, prefix: str = "") -> None:
    """Cache hierarchy, allocators, and tracer figures for one kernel."""
    p = f"{prefix}." if prefix else ""
    collect_cache_hierarchy(reg, kernel.hierarchy, prefix=prefix)
    collect_branch_unit(reg, kernel.branch_unit, prefix=prefix)
    collect_memsys(reg, kernel.memory, kernel.pipeline.tlb, prefix=prefix)
    _publish(reg, p, kernel.buddy.stats.as_metrics("buddy"))
    reg.gauge(f"{p}buddy.free_frames", kernel.buddy.free_frames())
    reg.gauge(f"{p}buddy.allocated_frames", kernel.buddy.allocated_frames())
    _publish(reg, p, kernel.slab.stats.as_metrics("slab"))
    reg.gauge(f"{p}slab.live_objects", kernel.slab.live_objects())
    reg.gauge(f"{p}slab.utilization", kernel.slab.utilization())
    _publish(reg, p, kernel.tracer.metrics())
    reg.gauge(f"{p}kernel.syscalls", kernel.syscall_count)


def collect_env(reg: MetricsRegistry, kernel, framework=None,
                prefix: str = "") -> None:
    """Everything observable about one measurement environment."""
    collect_kernel(reg, kernel, prefix=prefix)
    if framework is not None:
        collect_framework(reg, framework, prefix=prefix)
