"""Serve-plane dashboard: SLO state, burn-rate alerts, and block-JIT
miss attribution in one deterministic model.

The dashboard is a pure function of three snapshots the serve grid
already produces -- the merged :class:`~repro.obs.registry.
MetricsRegistry` snapshot, the merged :class:`~repro.obs.reqtrace.
TraceRecorder` snapshot, and the merged :class:`~repro.obs.slo.
SloRollup` snapshot -- so its JSON model is byte-identical across
processes, worker counts, and ``PYTHONHASHSEED`` values, and CI can gate
the committed smoke model with a plain ``diff``.

Panels (one per serve scheme):

* **SLO** -- windowed request/shed totals, the bucket-quantile p99, and
  every burn-rate alert the rollup fires (deterministic cycle stamps);
* **block JIT** -- hit/miss/invalidation totals, the per-reason miss
  split (``cold`` / ``spec-guard`` / ``op-budget`` /
  ``epoch-invalidation`` / ``uncompilable``) and the spec-guard share of
  all misses, per scheme;
* **attribution** -- per kernel-function miss reasons, parsed back from
  the ``pipeline.blockcache.attr.c<ctx>.<scheme>.<fn>.<reason>``
  counters;
* **exemplars** -- the latency-histogram buckets with the request
  traces that landed in them (every exemplar ID must resolve).

``python -m repro.obs top`` renders the model as a terminal table;
``python -m repro.obs report`` writes the model JSON, a static HTML
rendering, and per-request Chrome-trace/folded exports.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any

from repro.obs.reqtrace import TraceRecorder
from repro.obs.slo import DEFAULT_OBJECTIVES, SloObjective, SloRollup

#: Schemes the dashboard smoke serves under.  ``stt`` is the dedicated
#: taint-tracking point; the Perspective flavors pair it with the
#: view-based design the paper argues for.
DASHBOARD_SCHEMES = ("perspective", "perspective++", "stt")

#: The serve-grid cell set of the dashboard smoke (matches the serve
#: smoke sweep, with tracing, SLO windowing, and the block JIT armed).
SMOKE_SWEEP: dict[str, Any] = {
    "seeds": [0, 1],
    "tenants": [2, 3],
    "requests_per_tenant": 6,
    "mean_interarrival": 12_000.0,
    "observe": True,
    "trace": True,
    "slo_window": 50_000.0,
    "block_cache": True,
}

#: Smoke objectives: the default set with the latency target tightened
#: to the 10k-cycle bucket so the overloaded smoke grid (12k-cycle mean
#: interarrival) deterministically fires burn-rate alerts.
SMOKE_OBJECTIVES = (
    SloObjective("p99-latency", "latency", budget=0.01, target=10_000.0),
) + tuple(o for o in DEFAULT_OBJECTIVES if o.kind != "latency")

#: Block-cache miss reasons, in taxonomy order (repro.cpu.blockcache).
_MISS_REASONS = ("cold", "spec-guard", "op-budget", "epoch-invalidation",
                 "uncompilable")


def _round(value: float, digits: int = 6) -> float | str:
    """JSON-safe rounding: non-finite floats render as ``"inf"``."""
    return round(value, digits) if math.isfinite(value) else "inf"


# ---------------------------------------------------------------------------
# Model construction
# ---------------------------------------------------------------------------


def parse_attribution(counters: dict[str, int],
                      ) -> dict[str, dict[str, dict[str, int]]]:
    """``pipeline.blockcache.attr.c<ctx>.<scheme>.<fn>.<reason>``
    counters, regrouped as ``{scheme: {fn: {reason: count}}}`` (summed
    over contexts).  Kernel function and scheme names are dot-free, so
    the 7-way split is unambiguous.
    """
    out: dict[str, dict[str, dict[str, int]]] = {}
    prefix = "pipeline.blockcache.attr."
    for key, count in counters.items():
        if not key.startswith(prefix):
            continue
        _ctx, scheme, fn, reason = key[len(prefix):].split(".")
        by_fn = out.setdefault(scheme, {})
        by_reason = by_fn.setdefault(fn, {})
        by_reason[reason] = by_reason.get(reason, 0) + count
    return out


def _slo_panel(rollup: SloRollup, objectives) -> dict[str, Any]:
    combined = None
    for index in sorted(rollup.windows):
        win = rollup.windows[index]
        combined = win if combined is None else combined.combine(win)
    requests = combined.requests if combined else 0
    shed = combined.shed if combined else 0
    p99 = (combined.latency_quantile(0.99, rollup.latency_buckets)
           if combined else 0.0)
    return {
        "window_cycles": rollup.window_cycles,
        "windows": len(rollup.windows),
        "requests": requests,
        "shed": shed,
        "p99_bucket": _round(p99),
        "objectives": [
            {"name": o.name, "kind": o.kind, "budget": o.budget,
             "target": o.target} for o in objectives],
        "alerts": [a.as_dict() for a in rollup.evaluate(objectives)],
    }


def _blockcache_panel(counters: dict[str, int]) -> dict[str, Any]:
    hits = counters.get("pipeline.blockcache.hits", 0)
    misses = counters.get("pipeline.blockcache.misses", 0)
    reasons = {r: counters.get(f"pipeline.blockcache.miss.{r}", 0)
               for r in _MISS_REASONS}
    return {
        "hits": hits,
        "misses": misses,
        "invalidations": counters.get(
            "pipeline.blockcache.invalidations", 0),
        "miss_reasons": reasons,
        "spec_guard_share": _round(
            reasons["spec-guard"] / misses if misses else 0.0),
        "hit_rate": _round(
            hits / (hits + misses) if hits + misses else 0.0),
    }


def _exemplar_panel(recorder: TraceRecorder,
                    histogram: str = "serve.latency_cycles",
                    ) -> dict[str, list[dict[str, Any]]]:
    """Bucket label -> resolved exemplar rows.  Raises if any exemplar
    ID fails to resolve: the bucket link must name a recorded trace."""
    out: dict[str, list[dict[str, Any]]] = {}
    for label, ids in sorted(recorder.exemplars.get(histogram, {}).items()):
        rows = []
        for tid in ids:
            trace = recorder.resolve(tid)
            if trace is None:
                raise ValueError(
                    f"exemplar {tid} in {histogram}/{label} does not "
                    f"resolve to a recorded trace")
            rows.append({
                "trace_id": tid,
                "tenant": trace.tenant,
                "cell": trace.cell,
                "outcome": trace.outcome,
                "latency_cycles": trace.latency_cycles,
                "steps": len(trace.steps),
            })
        out[label] = rows
    return out


def _trace_panel(recorder: TraceRecorder) -> dict[str, Any]:
    outcomes: dict[str, int] = {}
    layers: dict[str, int] = {}
    for trace in recorder.traces.values():
        outcomes[trace.outcome] = outcomes.get(trace.outcome, 0) + 1
        for step in trace.steps:
            layer = step["layer"]
            layers[layer] = layers.get(layer, 0) + 1
    return {
        "count": len(recorder.traces),
        "outcomes": dict(sorted(outcomes.items())),
        "steps_by_layer": dict(sorted(layers.items())),
    }


def build_scheme_panel(metrics_snapshot: dict, traces_snapshot: dict,
                       slo_snapshot: dict,
                       objectives=SMOKE_OBJECTIVES) -> dict[str, Any]:
    """One scheme's dashboard panel from its three merged snapshots."""
    recorder = TraceRecorder.from_snapshot(traces_snapshot)
    rollup = SloRollup.from_snapshot(slo_snapshot)
    counters: dict[str, int] = metrics_snapshot["counters"]
    attribution = parse_attribution(counters)
    return {
        "slo": _slo_panel(rollup, objectives),
        "blockcache": _blockcache_panel(counters),
        "attribution": {
            scheme: {fn: dict(sorted(reasons.items()))
                     for fn, reasons in sorted(by_fn.items())}
            for scheme, by_fn in sorted(attribution.items())},
        "exemplars": _exemplar_panel(recorder),
        "traces": _trace_panel(recorder),
    }


def build_model(panels: dict[str, dict[str, Any]],
                meta: dict[str, Any] | None = None) -> dict[str, Any]:
    """The full dashboard model: one panel per scheme plus meta."""
    return {
        "meta": {"plane": "repro.obs.dashboard", **(meta or {})},
        "schemes": {scheme: panels[scheme] for scheme in sorted(panels)},
    }


def model_to_json(model: dict[str, Any]) -> str:
    return json.dumps(model, indent=1, sort_keys=True,
                      separators=(",", ": ")) + "\n"


# ---------------------------------------------------------------------------
# Smoke runner (the CI-gated grid)
# ---------------------------------------------------------------------------


def run_smoke(schemes=DASHBOARD_SCHEMES, *, workers: int = 1,
              use_cache: bool = True,
              objectives=SMOKE_OBJECTIVES,
              ) -> tuple[dict[str, Any], dict[str, dict]]:
    """Run the dashboard smoke grid and build the model.

    Returns ``(model, traces_by_scheme)``; the latter keeps the raw
    trace snapshots so ``report`` can export per-request traces.
    """
    from repro.exec.engine import run_experiment

    panels: dict[str, dict[str, Any]] = {}
    traces_by_scheme: dict[str, dict] = {}
    for scheme in schemes:
        params = dict(SMOKE_SWEEP)
        params["scheme"] = scheme
        result, _report = run_experiment("serve", params, workers=workers,
                                         use_cache=use_cache)
        panels[scheme] = build_scheme_panel(
            result["metrics"], result["traces"], result["slo"],
            objectives=objectives)
        traces_by_scheme[scheme] = result["traces"]
    model = build_model(panels, meta={
        "schemes": sorted(schemes),
        "sweep": {k: SMOKE_SWEEP[k] for k in sorted(SMOKE_SWEEP)},
    })
    return model, traces_by_scheme


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_text(model: dict[str, Any]) -> str:
    """The ``python -m repro.obs top`` terminal rendering."""
    lines: list[str] = ["serve-plane dashboard"]
    for scheme, panel in model["schemes"].items():
        slo = panel["slo"]
        bc = panel["blockcache"]
        lines.append("")
        lines.append(f"== {scheme} ==")
        lines.append(
            f"  slo: {slo['requests']} requests, {slo['shed']} shed, "
            f"p99<= {slo['p99_bucket']} cycles over {slo['windows']} "
            f"windows of {slo['window_cycles']:.0f}")
        for alert in slo["alerts"]:
            lines.append(
                f"  ALERT {alert['objective']} ctx={alert['context']} "
                f"@cycle {alert['cycle']:.0f} "
                f"burn short/long = {alert['burn_short']}"
                f"/{alert['burn_long']}")
        share = bc["spec_guard_share"]
        lines.append(
            f"  block jit: {bc['hits']} hits / {bc['misses']} misses "
            f"(hit rate {bc['hit_rate']}), spec-guard share {share}")
        reasons = bc["miss_reasons"]
        lines.append("  miss reasons: " + "  ".join(
            f"{r}={reasons[r]}" for r in _MISS_REASONS))
        top = _top_functions(panel["attribution"], limit=8)
        if top:
            lines.append("  top functions by misses:")
            width = max(len(fn) for fn, _, _ in top)
            for fn, total, reasons_row in top:
                detail = " ".join(f"{r}={n}" for r, n in reasons_row)
                lines.append(f"    {fn:<{width}} {total:>7}  {detail}")
        ex = panel["exemplars"]
        if ex:
            lines.append("  latency exemplars (serve.latency_cycles):")
            for label, rows in ex.items():
                ids = ", ".join(
                    f"{r['trace_id']}(t{r['tenant']})" for r in rows)
                lines.append(f"    {label:<12} {ids}")
    return "\n".join(lines) + "\n"


def _top_functions(attribution: dict[str, dict[str, dict[str, int]]],
                   limit: int = 8,
                   ) -> list[tuple[str, int, list[tuple[str, int]]]]:
    totals: dict[str, dict[str, int]] = {}
    for by_fn in attribution.values():
        for fn, reasons in by_fn.items():
            mine = totals.setdefault(fn, {})
            for reason, count in reasons.items():
                mine[reason] = mine.get(reason, 0) + count
    ranked = sorted(totals.items(),
                    key=lambda item: (-sum(item[1].values()), item[0]))
    return [(fn, sum(reasons.values()), sorted(reasons.items()))
            for fn, reasons in ranked[:limit]]


_HTML_HEAD = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>serve-plane dashboard</title>
<style>
 body { font-family: monospace; margin: 2em; background: #fafafa; }
 h2 { border-bottom: 1px solid #999; }
 table { border-collapse: collapse; margin: 0.5em 0 1.5em; }
 th, td { border: 1px solid #bbb; padding: 2px 8px; text-align: right; }
 th:first-child, td:first-child { text-align: left; }
 .alert { color: #a00; font-weight: bold; }
</style></head><body>
<h1>serve-plane dashboard</h1>
"""


def render_html(model: dict[str, Any]) -> str:
    """A dependency-free static HTML rendering of the model."""
    def esc(text: Any) -> str:
        return (str(text).replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;"))

    parts = [_HTML_HEAD]
    for scheme, panel in model["schemes"].items():
        slo = panel["slo"]
        bc = panel["blockcache"]
        parts.append(f"<h2>{esc(scheme)}</h2>")
        parts.append(
            f"<p>slo: {slo['requests']} requests, {slo['shed']} shed, "
            f"p99 &le; {esc(slo['p99_bucket'])} cycles over "
            f"{slo['windows']} windows</p>")
        if slo["alerts"]:
            parts.append("<table><tr><th>objective</th><th>context</th>"
                         "<th>cycle</th><th>burn short</th>"
                         "<th>burn long</th></tr>")
            for alert in slo["alerts"]:
                parts.append(
                    f"<tr class=alert><td>{esc(alert['objective'])}</td>"
                    f"<td>{alert['context']}</td>"
                    f"<td>{alert['cycle']:.0f}</td>"
                    f"<td>{esc(alert['burn_short'])}</td>"
                    f"<td>{esc(alert['burn_long'])}</td></tr>")
            parts.append("</table>")
        parts.append("<table><tr><th>block JIT</th>"
                     + "".join(f"<th>{esc(r)}</th>"
                               for r in _MISS_REASONS)
                     + "<th>spec-guard share</th></tr>")
        reasons = bc["miss_reasons"]
        parts.append(
            f"<tr><td>{bc['hits']} hits / {bc['misses']} misses</td>"
            + "".join(f"<td>{reasons[r]}</td>" for r in _MISS_REASONS)
            + f"<td>{esc(bc['spec_guard_share'])}</td></tr></table>")
        top = _top_functions(panel["attribution"], limit=12)
        if top:
            parts.append("<table><tr><th>kernel function</th>"
                         "<th>misses</th><th>breakdown</th></tr>")
            for fn, total, reasons_row in top:
                detail = " ".join(f"{esc(r)}={n}" for r, n in reasons_row)
                parts.append(f"<tr><td>{esc(fn)}</td><td>{total}</td>"
                             f"<td>{detail}</td></tr>")
            parts.append("</table>")
        if panel["exemplars"]:
            parts.append("<table><tr><th>latency bucket</th>"
                         "<th>exemplar traces</th></tr>")
            for label, rows in panel["exemplars"].items():
                ids = ", ".join(
                    f"{esc(r['trace_id'])} (tenant {r['tenant']}, "
                    f"{esc(r['outcome'])})" for r in rows)
                parts.append(f"<tr><td>{esc(label)}</td>"
                             f"<td style='text-align:left'>{ids}</td>"
                             "</tr>")
            parts.append("</table>")
    parts.append("<script type=\"application/json\" id=\"model\">")
    parts.append(esc(model_to_json(model)).rstrip())
    parts.append("</script>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def write_report(outdir: str | pathlib.Path, model: dict[str, Any],
                 traces_by_scheme: dict[str, dict],
                 max_trace_exports: int = 4) -> list[pathlib.Path]:
    """Write the HTML dashboard and per-request trace exports.

    For each scheme, the first ``max_trace_exports`` traces (sorted by
    trace ID) export as Chrome-trace JSON and folded stacks via the
    :mod:`repro.obs.profile` exporters.
    """
    outdir = pathlib.Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []
    html = outdir / "dashboard.html"
    html.write_text(render_html(model))
    written.append(html)
    for scheme, snapshot in sorted(traces_by_scheme.items()):
        recorder = TraceRecorder.from_snapshot(snapshot)
        for tid in sorted(recorder.traces)[:max_trace_exports]:
            trace = recorder.traces[tid]
            stem = outdir / f"trace_{scheme}_{tid}"
            chrome = stem.with_suffix(".trace.json")
            folded = stem.with_suffix(".folded")
            chrome.write_text(trace.to_chrome_trace_json())
            folded.write_text(trace.to_folded())
            written.extend([chrome, folded])
    return written
