"""Metric regression gate: diff two snapshots under tolerance rules.

The observability plane is deterministic, so the strongest possible gate
-- *exact equality* against a committed baseline -- is the default: any
drift in any counter, gauge, span, or histogram is a finding.  Real
performance work sometimes needs slack, though (a cache tweak shifts a
hit counter without being a regression), so named **tolerance rules**
relax specific metrics: a glob pattern plus an absolute and/or relative
allowance, optionally direction-sensitive (``increase`` lets a latency
counter shrink freely but bounds growth).

Usage (also wired as ``python -m repro.obs diff``, which exits nonzero
when the gate fails -- that is what CI runs against
``benchmarks/out/obs_smoke.json``)::

    report = diff_snapshots(baseline_snapshot, current_snapshot,
                            rules=[ToleranceRule("counters.cache.*",
                                                 rel_tol=0.02)])
    if not report.ok:
        print(report.render())

Snapshots are the plain dicts :meth:`MetricsRegistry.snapshot` emits
(or their JSON files); both sides are flattened to dotted scalar names
(``counters.pipeline.runs``, ``spans.syscall/read.cycles``,
``histograms.pipeline.run_cycles.sum``) before comparison, and metrics
that appear on only one side are findings of their own.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass, field
from typing import Any

#: Rule directions: which way a metric may move without regressing.
DIRECTIONS = ("both", "increase", "decrease")


@dataclass(frozen=True)
class ToleranceRule:
    """Slack for metrics matching a glob ``pattern``.

    ``abs_tol`` and ``rel_tol`` combine permissively (a delta inside
    either passes).  ``direction`` names the *regressing* direction:
    ``"increase"`` means only growth beyond tolerance fails (shrinkage
    always passes), ``"decrease"`` the reverse, ``"both"`` (default)
    bounds movement either way.  First matching rule wins, so order
    specific patterns before catch-alls.
    """

    pattern: str
    abs_tol: float = 0.0
    rel_tol: float = 0.0
    direction: str = "both"

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(f"rule direction must be one of {DIRECTIONS}, "
                             f"not {self.direction!r}")
        if self.abs_tol < 0 or self.rel_tol < 0:
            raise ValueError(f"tolerances must be non-negative: {self}")

    def matches(self, name: str) -> bool:
        return fnmatch.fnmatchcase(name, self.pattern)

    def allows(self, baseline: float, current: float) -> bool:
        delta = current - baseline
        if self.direction == "increase" and delta <= 0:
            return True
        if self.direction == "decrease" and delta >= 0:
            return True
        if abs(delta) <= self.abs_tol:
            return True
        return abs(delta) <= self.rel_tol * abs(baseline)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ToleranceRule":
        return cls(pattern=data["pattern"],
                   abs_tol=float(data.get("abs_tol", 0.0)),
                   rel_tol=float(data.get("rel_tol", 0.0)),
                   direction=data.get("direction", "both"))


def load_rules(path: str) -> list[ToleranceRule]:
    """Read a JSON rules file (a list of rule objects)."""
    with open(path) as handle:
        data = json.load(handle)
    return [ToleranceRule.from_dict(entry) for entry in data]


@dataclass(frozen=True)
class MetricDiff:
    """One compared metric; ``verdict`` is how it fared under the gate."""

    name: str
    baseline: float | None  # None: metric only exists in current
    current: float | None   # None: metric only exists in baseline
    rule: ToleranceRule | None
    verdict: str  # "ok" | "regressed" | "added" | "removed"

    @property
    def delta(self) -> float:
        return (self.current or 0.0) - (self.baseline or 0.0)


@dataclass
class DiffReport:
    """Outcome of gating one snapshot against a baseline."""

    diffs: list[MetricDiff] = field(default_factory=list)
    compared: int = 0

    @property
    def regressions(self) -> list[MetricDiff]:
        return [d for d in self.diffs if d.verdict != "ok"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self, max_rows: int = 40) -> str:
        bad = self.regressions
        lines = [f"diff gate: {self.compared} metrics compared, "
                 f"{len(bad)} regression(s)"]
        for diff in bad[:max_rows]:
            if diff.verdict == "added":
                lines.append(f"  ADDED     {diff.name} = {diff.current}")
            elif diff.verdict == "removed":
                lines.append(f"  REMOVED   {diff.name} "
                             f"(baseline {diff.baseline})")
            else:
                why = f" [rule {diff.rule.pattern}]" if diff.rule else ""
                lines.append(f"  REGRESSED {diff.name}: "
                             f"{diff.baseline} -> {diff.current} "
                             f"({diff.delta:+g}){why}")
        if len(bad) > max_rows:
            lines.append(f"  ... {len(bad) - max_rows} more")
        if self.ok:
            lines.append("  all metrics within tolerance")
        return "\n".join(lines) + "\n"


def flatten_snapshot(snapshot: dict[str, Any]) -> dict[str, float]:
    """Map a registry snapshot to dotted scalar metric names.

    Histograms contribute their ``sum``/``count`` (bucket shapes are
    covered transitively: identical observations imply identical
    buckets, and sum+count catch any drift the gate should see); spans
    contribute ``cycles`` and ``count``.  ``meta`` is identity, not a
    metric, and is skipped.
    """
    flat: dict[str, float] = {}
    for name, value in snapshot.get("counters", {}).items():
        flat[f"counters.{name}"] = float(value)
    for name, value in snapshot.get("gauges", {}).items():
        flat[f"gauges.{name}"] = float(value)
    for name, hist in snapshot.get("histograms", {}).items():
        flat[f"histograms.{name}.sum"] = float(hist["sum"])
        flat[f"histograms.{name}.count"] = float(hist["count"])
    for path, stats in snapshot.get("spans", {}).items():
        flat[f"spans.{path}.cycles"] = float(stats["cycles"])
        flat[f"spans.{path}.count"] = float(stats["count"])
    return flat


def _rule_for(name: str,
              rules: tuple[ToleranceRule, ...]) -> ToleranceRule | None:
    for rule in rules:
        if rule.matches(name):
            return rule
    return None


def diff_snapshots(baseline: dict[str, Any], current: dict[str, Any],
                   rules: list[ToleranceRule] | tuple[ToleranceRule, ...]
                   = (),
                   ignore_added: bool = False) -> DiffReport:
    """Gate ``current`` against ``baseline`` under ``rules``.

    Metrics present only in ``current`` are ``added`` findings (new
    instrumentation must update the committed baseline deliberately)
    unless ``ignore_added``; metrics that disappeared are ``removed``
    findings unless a matching rule covers them (a rule on a metric
    acknowledges it may change -- including to nothing, e.g. a counter
    that stops firing).
    """
    rules = tuple(rules)
    base_flat = flatten_snapshot(baseline)
    cur_flat = flatten_snapshot(current)
    report = DiffReport()
    for name in sorted(set(base_flat) | set(cur_flat)):
        rule = _rule_for(name, rules)
        if name not in cur_flat:
            if rule is None:
                report.diffs.append(MetricDiff(
                    name, base_flat[name], None, None, "removed"))
            continue
        if name not in base_flat:
            if not ignore_added:
                report.diffs.append(MetricDiff(
                    name, None, cur_flat[name], None, "added"))
            continue
        report.compared += 1
        base_value, cur_value = base_flat[name], cur_flat[name]
        if rule is not None:
            ok = rule.allows(base_value, cur_value)
        else:
            ok = cur_value == base_value
        if not ok:
            report.diffs.append(MetricDiff(
                name, base_value, cur_value, rule, "regressed"))
    return report


def gate_files(baseline_path: str, current_path: str,
               rules_path: str | None = None,
               ignore_added: bool = False) -> DiffReport:
    """File-level entry point used by the CLI and CI."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    with open(current_path) as handle:
        current = json.load(handle)
    rules = load_rules(rules_path) if rules_path else []
    return diff_snapshots(baseline, current, rules=rules,
                          ignore_added=ignore_added)
