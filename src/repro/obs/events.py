"""Security-event journal: cycle-stamped speculation forensics.

Where :mod:`repro.obs.registry` answers "how many" (counters, spans),
this module answers "what happened, in what order": every security-
relevant decision the simulated hardware or OS makes is emitted as one
typed :class:`SecurityEvent` -- a fence with its reason, a DSV ownership
miss, an ISV miss, a DSVMT walk, a blocked wrong-path (leak-attempt)
load, a dropped ownership event, an ISV shrink.  The journal is the
software analogue of a hardware security-event trace buffer: a fixed-
capacity ring with drop accounting, JSONL export, and a query API that
lets a test (or an operator) *reconstruct* the event sequence of a PoC
run after the fact.

Event kinds emitted by the instrumented modules:

==================  =======================================================
``fence``           a committed-path speculative load was blocked
                    (``reason`` is the policy's fence reason)
``blocked-leak``    a *wrong-path* (transient) load was blocked -- an
                    actual leak attempt stopped before transmission
``isv-miss``        the ISV check failed (``reason``: ``no-view``,
                    ``cache-refill``, or ``untrusted``)
``dsv-ownership-miss``  the target frame is outside the context's DSV
                    (``reason``: ``cached`` or ``walk``)
``dsvmt-walk``      a DSVMT walk ran (``reason``: ``huge-hit``, ``leaf``,
                    ``empty``, or ``fault``)
``dsv-assign-drop`` an allocator ownership event was lost (fail-closed)
``isv-shrink``      a view was tightened at runtime (Section 5.4)
``fault-fallback``  an injected serve-plane fault fired and the module
                    took its fail-closed fallback (``reason`` names it:
                    ``ibpb-drop-full-flush``, ``isv-refill-dropped``,
                    ``dsv-refill-dropped``, ``admission-corrupt-shed``)
``policy-escalate`` the adaptive controller tightened a tenant's
                    Perspective flavor (``reason``: ``from->to``)
``policy-deescalate``  a seeded-backoff de-escalation probe relaxed a
                    tenant's flavor (forensic exclusions stay applied)
``slo-alert``       a windowed burn-rate alert fired
                    (:mod:`repro.obs.slo`; ``reason``:
                    ``<objective>:burn=<rate>``, stamped at the end of
                    the breaching window)
==================  =======================================================

Activation mirrors :mod:`repro.obs.registry`: instrumented modules call
the module-level hooks (:func:`emit`, :func:`emit_here`, :func:`advance`,
:func:`set_site`), which cost one global read when no journal is active;
:func:`journaling` scopes a journal to a ``with`` block.  Cycle stamps
are *simulated* cycles: each event records the journal's running base
(advanced at the end of every pipeline run / syscall) plus the in-run
clock of the emitting site, so two journaled runs of the same seeded
workload produce byte-identical JSONL.

This module deliberately imports nothing from the rest of ``repro`` --
cpu/core/defenses modules import it for the hooks without cycles.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

#: The event kinds the instrumented modules emit (extensible: the journal
#: accepts any kind string; this tuple documents the built-in emitters).
EVENT_KINDS = (
    "fence",
    "blocked-leak",
    "isv-miss",
    "dsv-ownership-miss",
    "dsvmt-walk",
    "dsv-assign-drop",
    "isv-shrink",
    "fault-fallback",
    "policy-escalate",
    "policy-deescalate",
    "slo-alert",
)

DEFAULT_CAPACITY = 65_536

#: Fields :meth:`EventJournal.counts_by` accepts.
_COUNT_FIELDS = ("kind", "reason", "kernel_fn", "scheme", "context")


@dataclass(frozen=True)
class SecurityEvent:
    """One journaled security decision.

    ``seq`` is the global emission index (monotonic even across ring
    wrap-around, so drops are visible as seq gaps); ``cycle`` is the
    simulated-cycle stamp (journal base + in-run clock); ``context`` is
    the execution context (cgroup) id, ``pc`` the instruction VA and
    ``kernel_fn`` the kernel function of the emitting site; ``scheme``
    names the active defense policy.
    """

    seq: int
    cycle: float
    context: int
    pc: int
    kernel_fn: str
    kind: str
    reason: str
    scheme: str

    def as_dict(self) -> dict[str, Any]:
        return {"seq": self.seq, "cycle": self.cycle,
                "context": self.context, "pc": self.pc,
                "kernel_fn": self.kernel_fn, "kind": self.kind,
                "reason": self.reason, "scheme": self.scheme}


class EventJournal:
    """Fixed-capacity ring of :class:`SecurityEvent` with drop accounting.

    When the ring is full the *oldest* event is overwritten (forensics
    keeps the most recent window, like a flight recorder) and ``dropped``
    increments -- ``emitted`` always counts every emission, so
    ``emitted - len(journal)`` equals ``dropped``.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 meta: dict[str, Any] | None = None) -> None:
        if capacity <= 0:
            raise ValueError(f"journal capacity must be positive: {capacity}")
        self.capacity = capacity
        self.meta: dict[str, Any] = dict(meta or {})
        self._ring: list[SecurityEvent] = []
        self._head = 0  # index of the oldest event once the ring is full
        self.emitted = 0
        self.dropped = 0
        self._base_cycle = 0.0

    # -- recording -------------------------------------------------------

    def emit(self, kind: str, *, cycle: float = 0.0, context: int = -1,
             pc: int = 0, kernel_fn: str = "", reason: str = "",
             scheme: str = "") -> None:
        """Record one event, stamped at ``base_cycle + cycle``."""
        event = SecurityEvent(
            seq=self.emitted, cycle=self._base_cycle + cycle,
            context=context, pc=pc, kernel_fn=kernel_fn, kind=kind,
            reason=reason, scheme=scheme)
        self.emitted += 1
        if len(self._ring) < self.capacity:
            self._ring.append(event)
        else:
            self._ring[self._head] = event
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def advance(self, cycles: float) -> None:
        """Advance the journal's cycle base (end of a pipeline run or the
        trap portion of a syscall), keeping stamps monotonic across runs."""
        self._base_cycle += cycles

    @property
    def base_cycle(self) -> float:
        return self._base_cycle

    # -- access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> list[SecurityEvent]:
        """All retained events in emission (seq) order."""
        return self._ring[self._head:] + self._ring[:self._head]

    def query(self, kind: str | None = None, context: int | None = None,
              kernel_fn: str | None = None, reason: str | None = None,
              scheme: str | None = None, since: float | None = None,
              until: float | None = None) -> list[SecurityEvent]:
        """Retained events matching every given filter, in seq order."""
        out = []
        for event in self.events():
            if kind is not None and event.kind != kind:
                continue
            if context is not None and event.context != context:
                continue
            if kernel_fn is not None and event.kernel_fn != kernel_fn:
                continue
            if reason is not None and event.reason != reason:
                continue
            if scheme is not None and event.scheme != scheme:
                continue
            if since is not None and event.cycle < since:
                continue
            if until is not None and event.cycle > until:
                continue
            out.append(event)
        return out

    def counts_by(self, field: str) -> dict[Any, int]:
        """Histogram of retained events over one event field."""
        if field not in _COUNT_FIELDS:
            raise ValueError(f"counts_by field must be one of "
                             f"{_COUNT_FIELDS}, not {field!r}")
        counts: dict[Any, int] = {}
        for event in self.events():
            key = getattr(event, field)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def reconstruct(self, context: int | None = None,
                    kinds: tuple[str, ...] | None = None,
                    ) -> list[SecurityEvent]:
        """Replay a run: the retained event sequence, optionally narrowed
        to one context and a set of kinds, in emission order with
        monotonic cycle stamps -- 'what did the hardware block, when'."""
        out = []
        for event in self.events():
            if context is not None and event.context != context:
                continue
            if kinds is not None and event.kind not in kinds:
                continue
            out.append(event)
        return out

    # -- export ----------------------------------------------------------

    def to_jsonl(self) -> str:
        """One canonical (sorted-key) JSON object per retained event."""
        return "".join(
            json.dumps(event.as_dict(), sort_keys=True,
                       separators=(",", ":")) + "\n"
            for event in self.events())

    @classmethod
    def from_events(cls, events, capacity: int | None = None,
                    meta: dict[str, Any] | None = None) -> "EventJournal":
        """Rebuild a journal from existing events (filter results, a
        parsed JSONL export).  Events keep their original ``seq`` and
        ``cycle`` stamps -- seq gaps from filtering stay visible --
        and ``emitted``/``dropped`` reflect the given list only.
        """
        events = list(events)
        if capacity is None:
            capacity = max(len(events), 1)
        journal = cls(capacity=capacity, meta=meta)
        journal._ring = events[-capacity:]
        journal.emitted = len(events)
        journal.dropped = len(events) - len(journal._ring)
        if events:
            journal._base_cycle = max(e.cycle for e in events)
        return journal

    @classmethod
    def from_jsonl(cls, text: str, capacity: int | None = None,
                   meta: dict[str, Any] | None = None) -> "EventJournal":
        """Parse a :meth:`to_jsonl` export back into a journal."""
        events = [SecurityEvent(**json.loads(line))
                  for line in text.splitlines() if line.strip()]
        return cls.from_events(events, capacity=capacity, meta=meta)

    def summary(self) -> str:
        """Human-readable forensics digest (CLI / report rendering)."""
        lines = [f"journal: {len(self)} retained / {self.emitted} emitted "
                 f"({self.dropped} dropped), capacity {self.capacity}"]
        for key in sorted(self.meta):
            lines.append(f"  meta {key} = {self.meta[key]}")
        by_kind = self.counts_by("kind")
        for kind in sorted(by_kind):
            lines.append(f"  {kind:<20} {by_kind[kind]}")
        top_fns = sorted(self.counts_by("kernel_fn").items(),
                         key=lambda item: (-item[1], item[0]))[:8]
        for fn, count in top_fns:
            lines.append(f"    in {fn or '<none>':<28} {count}")
        return "\n".join(lines)

    def clear(self) -> None:
        self._ring.clear()
        self._head = 0
        self.emitted = 0
        self.dropped = 0
        self._base_cycle = 0.0


# ---------------------------------------------------------------------------
# Module-level activation (mirrors repro.obs.registry)
# ---------------------------------------------------------------------------

#: The journal instrumented modules emit to; ``None`` disables all
#: event recording at near-zero cost.
_ACTIVE: EventJournal | None = None

#: The current emission site -- (cycle, context, pc, kernel_fn, scheme) --
#: set by the pipeline around each policy check so that modules deeper in
#: the check (view caches, DSVMT) can stamp events without threading the
#: pipeline clock through every call signature.  Only maintained while a
#: journal is active.
_SITE: tuple[float, int, int, str, str] = (0.0, -1, 0, "", "")


def active_journal() -> EventJournal | None:
    return _ACTIVE


def emit(kind: str, *, cycle: float = 0.0, context: int = -1, pc: int = 0,
         kernel_fn: str = "", reason: str = "", scheme: str = "") -> None:
    """Event hook for instrumented modules (no-op when inactive)."""
    journal = _ACTIVE
    if journal is not None:
        journal.emit(kind, cycle=cycle, context=context, pc=pc,
                     kernel_fn=kernel_fn, reason=reason, scheme=scheme)


def set_site(cycle: float, context: int, pc: int, kernel_fn: str,
             scheme: str) -> None:
    """Record the current emission site (called by the pipeline before a
    policy check, only when a journal is active)."""
    global _SITE
    if _ACTIVE is not None:
        _SITE = (cycle, context, pc, kernel_fn, scheme)


def emit_here(kind: str, reason: str = "") -> None:
    """Emit an event stamped at the current site (no-op when inactive)."""
    journal = _ACTIVE
    if journal is not None:
        cycle, context, pc, kernel_fn, scheme = _SITE
        journal.emit(kind, cycle=cycle, context=context, pc=pc,
                     kernel_fn=kernel_fn, reason=reason, scheme=scheme)


def advance(cycles: float) -> None:
    """Advance the active journal's cycle base (no-op when inactive)."""
    journal = _ACTIVE
    if journal is not None:
        journal.advance(cycles)


@contextmanager
def journaling(journal: EventJournal | None,
               ) -> Iterator[EventJournal | None]:
    """Activate ``journal`` for the dynamic extent of the block.

    Passing ``None`` explicitly *deactivates* journaling inside the
    block, so callers can write ``with journaling(journal_or_none):``
    unconditionally.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = journal
    try:
        yield journal
    finally:
        _ACTIVE = previous
