"""Differential fence-overhead profiler + trace/flamegraph exporters.

The registry's span tracing (:mod:`repro.obs.registry`) records *self*
cycles per slash-joined span path; this module turns those flat paths
back into a tree (:class:`SpanTree`), exports it in two standard
visualization formats, and -- the main event -- *diffs* two profiles of
the same workload under different defense schemes into a per-kernel-
function / per-pipeline-phase overhead attribution table
(:class:`DiffProfile`): exactly which functions the scheme's fences cost
cycles in, and how many fences each contributed.

Exporters (both byte-reproducible under a fixed seed, because every
input number is simulated):

* **folded stacks** -- one ``seg1;seg2;... cycles`` line per tree node
  with self cycles, the format ``flamegraph.pl`` consumes;
* **Chrome trace events** -- ``B``/``E`` duration pairs over a
  deterministic DFS cursor, loadable in ``chrome://tracing`` / Perfetto
  (1 simulated cycle = 1 microsecond of trace time).

Accounting invariant the attribution table relies on: the span plane
attributes *every* driven kernel cycle somewhere (syscall trap cost on
the ``syscall/*`` node, execution on the ``fn/*`` subtree), so the
table's total added cycles equals the end-to-end cycle delta between
the two runs -- checked by :meth:`DiffProfile.attribution_error`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.registry import MetricsRegistry, observing

#: Requests served per app-workload profile run.
PROFILE_REQUESTS = 12

#: Label for cycles outside every ``fn/*`` span subtree (syscall trap
#: cost, root ticks): attribution keeps them visible rather than letting
#: the table silently not add up.
OTHER_ROW = "(trap/other)"

_FENCE_BY_FN_PREFIX = "pipeline.fence.by_fn."
_FENCE_REASON_PREFIX = "pipeline.fence.reason."


# ---------------------------------------------------------------------------
# Span tree
# ---------------------------------------------------------------------------


@dataclass
class SpanNode:
    """One node of the reconstructed span tree."""

    name: str
    self_cycles: float = 0.0
    count: int = 0
    children: dict[str, "SpanNode"] = field(default_factory=dict)

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    @property
    def inclusive_cycles(self) -> float:
        return self.self_cycles + sum(c.inclusive_cycles
                                      for c in self.children.values())


class SpanTree:
    """A registry's span paths as a rooted tree, with exporters.

    Span *names* may themselves contain slashes (``syscall/read``), so
    the tree is built per slash **segment**: the path
    ``syscall/read/fn/sys_read/phase/fence_stall`` becomes six nested
    segments.  Self cycles land on the node for the full path; interior
    segments exist purely for structure.
    """

    def __init__(self, root_name: str = "all") -> None:
        self.root = SpanNode(root_name)

    @classmethod
    def from_spans(cls, spans: dict[str, Any],
                   root_name: str = "all") -> "SpanTree":
        """Build from a snapshot's ``spans`` mapping
        (``path -> {"count": n, "cycles": c}``)."""
        tree = cls(root_name)
        for path in sorted(spans):
            stats = spans[path]
            node = tree.root
            if path:
                for segment in path.split("/"):
                    node = node.child(segment)
            node.self_cycles += float(stats["cycles"])
            node.count += int(stats["count"])
        return tree

    @classmethod
    def from_folded(cls, folded: str, root_name: str = "all") -> "SpanTree":
        """Rebuild a tree from folded-stack lines (the round-trip
        direction; counts are not represented in the folded format)."""
        tree = cls(root_name)
        for line in folded.splitlines():
            if not line.strip():
                continue
            stack, _, value = line.rpartition(" ")
            segments = stack.split(";")
            if segments and segments[0] == tree.root.name:
                segments = segments[1:]
            node = tree.root
            for segment in segments:
                node = node.child(segment)
            node.self_cycles += float(value)
        return tree

    # -- traversal -------------------------------------------------------

    def walk(self) -> Iterator[tuple[tuple[str, ...], SpanNode]]:
        """(segments-from-root, node) pairs in deterministic DFS order."""
        def visit(prefix: tuple[str, ...], node: SpanNode):
            yield prefix, node
            for name in sorted(node.children):
                yield from visit(prefix + (name,), node.children[name])
        yield from visit((self.root.name,), self.root)

    # -- exporters -------------------------------------------------------

    def to_folded(self) -> str:
        """flamegraph.pl-compatible folded stacks, one line per node with
        self cycles, in deterministic DFS order."""
        lines = []
        for segments, node in self.walk():
            if node.self_cycles > 0.0:
                lines.append(f"{';'.join(segments)} "
                             f"{_fold_num(node.self_cycles)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome_trace(self) -> dict[str, Any]:
        """Chrome trace-event JSON (``B``/``E`` duration pairs).

        A deterministic DFS cursor lays spans on one track: a node opens
        at the cursor, children run sequentially, and the node closes at
        open + inclusive cycles -- so events are properly nested and
        timestamps never go backwards.  1 cycle = 1 us of trace time.
        """
        events: list[dict[str, Any]] = []

        def visit(node: SpanNode, start: float) -> float:
            end = start + node.inclusive_cycles
            events.append({"name": node.name, "ph": "B", "ts": start,
                           "pid": 1, "tid": 1, "cat": "span",
                           "args": {"count": node.count,
                                    "self_cycles": node.self_cycles}})
            cursor = start
            for name in sorted(node.children):
                cursor = visit(node.children[name], cursor)
            events.append({"name": node.name, "ph": "E", "ts": end,
                           "pid": 1, "tid": 1, "cat": "span"})
            return end

        visit(self.root, 0.0)
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"clock": "simulated-cycles",
                              "root": self.root.name}}

    def to_chrome_trace_json(self) -> str:
        """Canonical (sorted-key) JSON rendering of the Chrome trace."""
        return json.dumps(self.to_chrome_trace(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    # -- attribution -----------------------------------------------------

    def cycles_by_fn(self) -> dict[str, float]:
        """Inclusive cycles per kernel function.

        Each node's *self* cycles are attributed to the innermost
        ``fn/<name>`` ancestor on its path (so a function's phases and
        nested runs roll up to it); cycles under no ``fn`` segment --
        syscall trap cost, root ticks -- land on :data:`OTHER_ROW`.
        """
        out: dict[str, float] = {}
        for segments, node in self.walk():
            if node.self_cycles == 0.0:
                continue
            fn = OTHER_ROW
            for i in range(len(segments) - 1, 0, -1):
                if segments[i - 1] == "fn":
                    fn = segments[i]
                    break
            out[fn] = out.get(fn, 0.0) + node.self_cycles
        return out

    def cycles_by_phase(self) -> dict[str, float]:
        """Self cycles per pipeline phase (``phase/<name>`` leaves); all
        other execution cycles land on ``compute``."""
        out: dict[str, float] = {}
        for segments, node in self.walk():
            if node.self_cycles == 0.0:
                continue
            if len(segments) >= 2 and segments[-2] == "phase":
                key = segments[-1]
            elif segments and segments[-1] == "phase":
                key = "phase"
            else:
                key = "compute"
            out[key] = out.get(key, 0.0) + node.self_cycles
        return out


def _fold_num(value: float) -> str:
    """Folded-stack sample value: integral cycles render as integers
    (what flamegraph.pl expects); fractional cycles keep their repr."""
    if value.is_integer():
        return str(int(value))
    return repr(value)


# ---------------------------------------------------------------------------
# Profile runs
# ---------------------------------------------------------------------------


@dataclass
class ProfileRun:
    """One workload x scheme measurement with observation armed."""

    workload: str
    scheme: str
    snapshot: dict[str, Any]
    kernel_cycles: float
    syscalls: int
    committed_ops: int

    @property
    def label(self) -> str:
        return f"{self.workload}.{self.scheme}"

    def tree(self) -> SpanTree:
        return SpanTree.from_spans(self.snapshot["spans"],
                                   root_name=self.label)

    def fences_by_fn(self) -> dict[str, float]:
        counters = self.snapshot["counters"]
        return {name[len(_FENCE_BY_FN_PREFIX):]: counters[name]
                for name in counters
                if name.startswith(_FENCE_BY_FN_PREFIX)}

    def fences_by_reason(self) -> dict[str, float]:
        counters = self.snapshot["counters"]
        return {name[len(_FENCE_REASON_PREFIX):]: counters[name]
                for name in counters
                if name.startswith(_FENCE_REASON_PREFIX)}

    @property
    def total_fences(self) -> float:
        return sum(self.fences_by_reason().values())

    @property
    def fences_per_kiloinstruction(self) -> float:
        if self.committed_ops == 0:
            return 0.0
        return 1000.0 * self.total_fences / self.committed_ops


def profile_workload(workload: str, scheme: str,
                     requests: int = PROFILE_REQUESTS,
                     seed: int = 0) -> ProfileRun:
    """Run one workload under one scheme with the obs plane armed.

    Environment construction (boot + offline ISV profiling) happens
    *outside* observation: setup work differs between schemes by design
    (Perspective profiles and installs views) and would otherwise pollute
    the differential attribution.  Only the measured workload's spans
    and counters enter the snapshot.
    """
    from repro.eval.envs import RARE_EVERY, make_env
    from repro.obs.collect import collect_env
    from repro.workloads.apps import APP_SPECS, AppWorkload
    from repro.workloads.driver import Driver
    from repro.workloads.lebench import exercise_all

    env = make_env(workload, scheme)
    registry = MetricsRegistry(meta={
        "plane": "repro.obs.profile", "workload": workload,
        "scheme": scheme, "seed": seed, "requests": requests,
    })
    with observing(registry):
        if workload == "lebench":
            driver = Driver(env.kernel, env.proc, rare_every=RARE_EVERY)
            exercise_all(driver)
            stats = driver.stats
        else:
            app = AppWorkload(env.kernel, env.proc, APP_SPECS[workload],
                              rare_every=RARE_EVERY)
            app.serve(requests)
            stats = app.driver.stats
        collect_env(registry, env.kernel, env.framework,
                    prefix=f"{workload}.{scheme}")
    return ProfileRun(
        workload=workload, scheme=scheme, snapshot=registry.snapshot(),
        kernel_cycles=stats.kernel_cycles, syscalls=stats.syscalls,
        committed_ops=stats.exec.committed_ops)


# ---------------------------------------------------------------------------
# Differential attribution
# ---------------------------------------------------------------------------


@dataclass
class FnRow:
    """One attribution-table row: what the scheme cost in one function."""

    name: str
    base_cycles: float
    scheme_cycles: float
    base_fences: float
    scheme_fences: float

    @property
    def added_cycles(self) -> float:
        return self.scheme_cycles - self.base_cycles

    @property
    def added_fences(self) -> float:
        return self.scheme_fences - self.base_fences


class DiffProfile:
    """The diff of two :class:`ProfileRun` s of the same workload."""

    def __init__(self, base: ProfileRun, scheme: ProfileRun) -> None:
        if base.workload != scheme.workload:
            raise ValueError(
                f"differential profile needs one workload, got "
                f"{base.workload!r} vs {scheme.workload!r}")
        self.base = base
        self.scheme = scheme

    # -- tables ----------------------------------------------------------

    def fn_table(self) -> list[FnRow]:
        """Per-kernel-function rows, sorted by added cycles (descending,
        then name); every function either run touched appears."""
        base_cycles = self.base.tree().cycles_by_fn()
        scheme_cycles = self.scheme.tree().cycles_by_fn()
        base_fences = self.base.fences_by_fn()
        scheme_fences = self.scheme.fences_by_fn()
        names = set(base_cycles) | set(scheme_cycles) \
            | set(base_fences) | set(scheme_fences)
        rows = [FnRow(name=name,
                      base_cycles=base_cycles.get(name, 0.0),
                      scheme_cycles=scheme_cycles.get(name, 0.0),
                      base_fences=base_fences.get(name, 0.0),
                      scheme_fences=scheme_fences.get(name, 0.0))
                for name in names]
        rows.sort(key=lambda r: (-r.added_cycles, r.name))
        return rows

    def phase_table(self) -> list[FnRow]:
        """Per-pipeline-phase rows (fence_stall / fetch_stall / compute),
        same shape as :meth:`fn_table` minus the fence join."""
        base = self.base.tree().cycles_by_phase()
        scheme = self.scheme.tree().cycles_by_phase()
        rows = [FnRow(name=name, base_cycles=base.get(name, 0.0),
                      scheme_cycles=scheme.get(name, 0.0),
                      base_fences=0.0, scheme_fences=0.0)
                for name in set(base) | set(scheme)]
        rows.sort(key=lambda r: (-r.added_cycles, r.name))
        return rows

    def reason_diff(self) -> dict[str, float]:
        """Added fences per fence reason (scheme minus base)."""
        base = self.base.fences_by_reason()
        scheme = self.scheme.fences_by_reason()
        return {reason: scheme.get(reason, 0.0) - base.get(reason, 0.0)
                for reason in sorted(set(base) | set(scheme))}

    # -- totals ----------------------------------------------------------

    @property
    def end_to_end_delta(self) -> float:
        """The ground truth: driver-measured kernel-cycle difference."""
        return self.scheme.kernel_cycles - self.base.kernel_cycles

    @property
    def attributed_delta(self) -> float:
        """What the table accounts for: sum of per-row added cycles."""
        return sum(row.added_cycles for row in self.fn_table())

    @property
    def attribution_error(self) -> float:
        """|attributed - end-to-end| as a fraction of end-to-end.

        The acceptance bar is 1%: the span plane must attribute (nearly)
        every added cycle to a function row.
        """
        delta = self.end_to_end_delta
        if delta == 0.0:
            return abs(self.attributed_delta)
        return abs(self.attributed_delta - delta) / abs(delta)

    @property
    def fences_per_kiloinstruction_delta(self) -> float:
        return (self.scheme.fences_per_kiloinstruction
                - self.base.fences_per_kiloinstruction)

    # -- rendering -------------------------------------------------------

    def render(self, top: int = 0) -> str:
        """The overhead-attribution report as aligned text."""
        base, scheme = self.base, self.scheme
        head = (f"differential profile: {base.workload}  "
                f"[{base.scheme} -> {scheme.scheme}]")
        lines = [head, "=" * len(head)]
        lines.append(
            f"end-to-end: {base.kernel_cycles:.1f} -> "
            f"{scheme.kernel_cycles:.1f} cycles "
            f"(+{self.end_to_end_delta:.1f}, "
            f"{_pct(scheme.kernel_cycles, base.kernel_cycles):+.2f}%) "
            f"over {base.syscalls} syscalls")
        lines.append(
            f"fences: {base.total_fences:.0f} -> "
            f"{scheme.total_fences:.0f}  "
            f"({base.fences_per_kiloinstruction:.3f} -> "
            f"{scheme.fences_per_kiloinstruction:.3f} per kinst, "
            f"delta {self.fences_per_kiloinstruction_delta:+.3f})")
        lines.append("")
        lines.append(f"{'kernel function':<26} {'base cyc':>12} "
                     f"{'scheme cyc':>12} {'added cyc':>12} "
                     f"{'added fences':>13}")
        lines.append("-" * 78)
        rows = self.fn_table()
        shown = rows[:top] if top else rows
        for row in shown:
            lines.append(f"{row.name:<26} {row.base_cycles:>12.1f} "
                         f"{row.scheme_cycles:>12.1f} "
                         f"{row.added_cycles:>+12.1f} "
                         f"{row.added_fences:>+13.0f}")
        if len(shown) < len(rows):
            rest = rows[len(shown):]
            lines.append(f"{'... ' + str(len(rest)) + ' more':<26} "
                         f"{sum(r.base_cycles for r in rest):>12.1f} "
                         f"{sum(r.scheme_cycles for r in rest):>12.1f} "
                         f"{sum(r.added_cycles for r in rest):>+12.1f} "
                         f"{sum(r.added_fences for r in rest):>+13.0f}")
        lines.append("-" * 78)
        lines.append(f"{'total (attributed)':<26} "
                     f"{sum(r.base_cycles for r in rows):>12.1f} "
                     f"{sum(r.scheme_cycles for r in rows):>12.1f} "
                     f"{self.attributed_delta:>+12.1f} "
                     f"{sum(r.added_fences for r in rows):>+13.0f}")
        lines.append(f"attribution error vs end-to-end: "
                     f"{100.0 * self.attribution_error:.3f}%")
        lines.append("")
        lines.append("pipeline phases:")
        for row in self.phase_table():
            lines.append(f"  {row.name:<24} {row.base_cycles:>12.1f} "
                         f"{row.scheme_cycles:>12.1f} "
                         f"{row.added_cycles:>+12.1f}")
        reasons = {k: v for k, v in self.reason_diff().items() if v}
        if reasons:
            lines.append("added fences by reason:")
            for reason in sorted(reasons):
                lines.append(f"  {reason:<24} {reasons[reason]:>+12.0f}")
        return "\n".join(lines) + "\n"


def diff_workload(workload: str, base_scheme: str, scheme: str,
                  requests: int = PROFILE_REQUESTS,
                  seed: int = 0) -> DiffProfile:
    """Profile one workload under two schemes and diff the runs."""
    return DiffProfile(
        profile_workload(workload, base_scheme, requests=requests,
                         seed=seed),
        profile_workload(workload, scheme, requests=requests, seed=seed))


def _pct(new: float, old: float) -> float:
    return 100.0 * (new / old - 1.0) if old else 0.0
