"""Deterministic metrics registry: counters, gauges, histograms, spans.

The observability plane's one rule is **determinism**: every recorded
value derives from *simulated* quantities (cycles, event counts), never
from the wall clock or unseeded randomness, so two runs of the same
seeded workload produce byte-identical snapshots.  That is what lets the
CI smoke snapshot be committed to the repository and diffed, and what
makes the plane a regression substrate for later performance work.

Three primitives:

* **counters** -- monotonically accumulated event counts (cache fills,
  fences by reason, allocator calls);
* **gauges** -- last-written values, used by the *collectors* that read
  module-local stats objects (``CacheStats``, ``ViewCacheStats``, ...)
  at snapshot time;
* **histograms** -- fixed-bucket distributions keyed by simulated
  cycles.  Buckets are fixed at first observation (never rebalanced), so
  bucket boundaries cannot depend on the data order.

Plus lightweight **span tracing**: ``span("syscall/read")`` pushes a
frame onto a stack; nested spans form slash-joined paths
(``syscall/read/fn/sys_read``), and :meth:`MetricsRegistry.tick`
attributes simulated cycles to the innermost open span.  Cycles recorded
at a node are *self* cycles -- a subtree sum reconstructs inclusive
totals -- so the syscall layer, the kernel-function layer, and the
pipeline phases can each attribute their own share without double
counting.

Activation mirrors :mod:`repro.reliability.faultplane`: instrumented
modules call the module-level hooks (:func:`add`, :func:`observe`,
:func:`span`, :func:`tick`), which are near-free (one global read and an
``is None`` test) when no registry is active; :func:`observing` scopes a
registry to a ``with`` block so metrics never leak across experiments.

This module deliberately imports nothing from the rest of ``repro`` --
cpu/kernel/eval modules import it for the hooks without cycles.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Default histogram buckets, in simulated cycles.  Chosen to bracket the
#: model's latencies: an L1 hit (2) through a catastrophic fence-stalled
#: kernel-spin syscall (~1e6).
DEFAULT_CYCLE_BUCKETS: tuple[float, ...] = (
    10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0)


@dataclass
class Histogram:
    """Fixed-bucket histogram (cumulative counts are computed at export)."""

    buckets: tuple[float, ...] = DEFAULT_CYCLE_BUCKETS
    counts: list[int] = field(default_factory=list)
    #: Observations above the last bucket boundary.
    overflow: int = 0
    total: float = 0.0
    n: int = 0

    def __post_init__(self) -> None:
        if tuple(sorted(self.buckets)) != tuple(self.buckets):
            raise ValueError(f"histogram buckets not sorted: {self.buckets}")
        if not self.counts:
            self.counts = [0] * len(self.buckets)

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.overflow += 1
        self.total += value
        self.n += 1

    def as_dict(self) -> dict[str, Any]:
        return {"buckets": list(self.buckets), "counts": list(self.counts),
                "overflow": self.overflow, "sum": self.total, "count": self.n}


@dataclass
class SpanStats:
    """Accumulated figures for one span path."""

    count: int = 0
    cycles: float = 0.0  # self cycles (exclusive of children)

    def as_dict(self) -> dict[str, Any]:
        return {"count": self.count, "cycles": self.cycles}


class MetricsRegistry:
    """A process-wide bag of named metrics plus a span stack.

    Metric names are dotted paths (``cache.l1d.hits``); exporters map
    them to Prometheus-compatible identifiers.  ``meta`` carries
    run-identifying context (seed, workload matrix) into the snapshot.
    """

    def __init__(self, meta: dict[str, Any] | None = None) -> None:
        self.meta: dict[str, Any] = dict(meta or {})
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: dict[str, SpanStats] = {}
        self._span_stack: list[str] = []

    # -- primitives ------------------------------------------------------

    def add(self, name: str, value: float = 1) -> None:
        """Accumulate ``value`` into the counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float,
                buckets: tuple[float, ...] | None = None) -> None:
        """Record ``value`` into the fixed-bucket histogram ``name``.

        ``buckets`` is honoured only on the histogram's first
        observation; later calls must agree (fixed buckets are what keep
        snapshots comparable across runs).
        """
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(buckets=buckets or DEFAULT_CYCLE_BUCKETS)
            self._histograms[name] = hist
        elif buckets is not None and tuple(buckets) != hist.buckets:
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{hist.buckets}, not {tuple(buckets)}")
        hist.observe(value)

    # -- spans -----------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Open a nested span; cycles ticked inside attribute to it."""
        if "/" in name and not name.replace("/", ""):
            raise ValueError(f"invalid span name {name!r}")
        self._span_stack.append(name)
        path = "/".join(self._span_stack)
        stats = self._spans.get(path)
        if stats is None:
            stats = self._spans[path] = SpanStats()
        stats.count += 1
        try:
            yield
        finally:
            self._span_stack.pop()

    def tick(self, cycles: float) -> None:
        """Attribute simulated cycles to the innermost open span.

        Outside any span the cycles land on the root pseudo-span ``""``
        so nothing is silently lost.
        """
        path = "/".join(self._span_stack)
        stats = self._spans.get(path)
        if stats is None:
            stats = self._spans[path] = SpanStats()
        stats.cycles += cycles

    def span_total(self, prefix: str) -> float:
        """Inclusive cycles of a span subtree (self + all descendants)."""
        return sum(s.cycles for path, s in self._spans.items()
                   if path == prefix or path.startswith(prefix + "/"))

    # -- aggregation -----------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (campaign-shard combine).

        Counters, span figures, and histogram contents accumulate;
        gauges are last-write-wins (the merged-in shard is "later"), as
        are colliding ``meta`` keys.  Histograms must agree on buckets
        -- they are fixed at first observation precisely so shards stay
        mergeable.
        """
        for key in sorted(other.meta):
            self.meta[key] = other.meta[key]
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        self._gauges.update(other._gauges)
        for name, theirs in other._histograms.items():
            hist = self._histograms.get(name)
            if hist is None:
                self._histograms[name] = Histogram(
                    buckets=theirs.buckets, counts=list(theirs.counts),
                    overflow=theirs.overflow, total=theirs.total,
                    n=theirs.n)
                continue
            if hist.buckets != theirs.buckets:
                raise ValueError(
                    f"cannot merge histogram {name!r}: buckets "
                    f"{hist.buckets} != {theirs.buckets}")
            for i, count in enumerate(theirs.counts):
                hist.counts[i] += count
            hist.overflow += theirs.overflow
            hist.total += theirs.total
            hist.n += theirs.n
        for path, theirs in other._spans.items():
            stats = self._spans.get(path)
            if stats is None:
                stats = self._spans[path] = SpanStats()
            stats.count += theirs.count
            stats.cycles += theirs.cycles
        # Canonical key order after every merge: pool shards gather in
        # completion order, and downstream consumers that iterate the
        # registry directly (not via the sorted snapshot) must not see
        # that order.  Values are already order-independent (counters,
        # histogram and span figures are sums; gauges/meta are explicit
        # last-write-wins).
        self.meta = {k: self.meta[k] for k in sorted(self.meta)}
        self._counters = {k: self._counters[k]
                          for k in sorted(self._counters)}
        self._gauges = {k: self._gauges[k] for k in sorted(self._gauges)}
        self._histograms = {k: self._histograms[k]
                            for k in sorted(self._histograms)}
        self._spans = {k: self._spans[k] for k in sorted(self._spans)}

    @classmethod
    def from_snapshot(cls, snapshot: dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict.

        The inverse of :meth:`snapshot` up to key order; with
        :meth:`merge` this is how a campaign runner combines the
        snapshots its worker processes ship back.
        """
        reg = cls(meta=snapshot.get("meta"))
        reg._counters.update(snapshot.get("counters", {}))
        reg._gauges.update(snapshot.get("gauges", {}))
        for name, data in snapshot.get("histograms", {}).items():
            reg._histograms[name] = Histogram(
                buckets=tuple(data["buckets"]),
                counts=list(data["counts"]), overflow=data["overflow"],
                total=data["sum"], n=data["count"])
        for path, data in snapshot.get("spans", {}).items():
            reg._spans[path] = SpanStats(count=data["count"],
                                         cycles=data["cycles"])
        return reg

    # -- access ----------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def span_stats(self, path: str) -> SpanStats | None:
        return self._spans.get(path)

    # -- exporters -------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-data view of every metric, with sorted keys throughout."""
        return {
            "meta": {k: self.meta[k] for k in sorted(self.meta)},
            "counters": {k: self._counters[k]
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].as_dict()
                           for k in sorted(self._histograms)},
            "spans": {k: self._spans[k].as_dict()
                      for k in sorted(self._spans)},
        }

    def to_json(self, indent: int | None = None) -> str:
        """Canonical JSON snapshot (sorted keys: byte-reproducible)."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent,
                          separators=(",", ": ") if indent else (",", ":"))

    def to_text(self) -> str:
        """Prometheus-style text exposition of the snapshot."""
        lines: list[str] = []
        for key in sorted(self.meta):
            lines.append(f"# META {key} {self.meta[key]}")
        for name in sorted(self._counters):
            ident = _promname(name)
            lines.append(f"# TYPE {ident} counter")
            lines.append(f"{ident} {_num(self._counters[name])}")
        for name in sorted(self._gauges):
            ident = _promname(name)
            lines.append(f"# TYPE {ident} gauge")
            lines.append(f"{ident} {_num(self._gauges[name])}")
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            ident = _promname(name)
            lines.append(f"# TYPE {ident} histogram")
            cumulative = 0
            for bound, count in zip(hist.buckets, hist.counts):
                cumulative += count
                lines.append(
                    f'{ident}_bucket{{le="{_num(bound)}"}} {cumulative}')
            lines.append(f'{ident}_bucket{{le="+Inf"}} {hist.n}')
            lines.append(f"{ident}_sum {_num(hist.total)}")
            lines.append(f"{ident}_count {hist.n}")
        for path in sorted(self._spans):
            stats = self._spans[path]
            ident = _promname("span." + path) if path else "span_root"
            lines.append(f'{ident}_count {stats.count}')
            lines.append(f'{ident}_cycles {_num(stats.cycles)}')
        return "\n".join(lines) + "\n"

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()
        self._span_stack.clear()


def _promname(name: str) -> str:
    """Map a dotted/slashed metric name to a Prometheus identifier."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() else "_")
    ident = "".join(out)
    if ident and ident[0].isdigit():
        ident = "_" + ident
    return ident


def _num(value: float) -> str:
    """Render a number without a trailing ``.0`` for integral floats.

    Non-finite values follow the Prometheus text conventions (``+Inf``,
    ``-Inf``, ``NaN``) rather than Python's ``inf``/``nan`` reprs, which
    exposition parsers reject.  Everything else keeps full ``repr``
    precision -- negative, sub-epsilon, and denormal values round-trip.
    """
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        if value.is_integer() and abs(value) < 2 ** 53:
            return str(int(value))
    return repr(value)


# ---------------------------------------------------------------------------
# Module-level activation (mirrors repro.reliability.faultplane)
# ---------------------------------------------------------------------------

#: The registry instrumented modules publish to; ``None`` disables all
#: metrics recording at near-zero cost.
_ACTIVE: MetricsRegistry | None = None


def active_registry() -> MetricsRegistry | None:
    return _ACTIVE


def add(name: str, value: float = 1) -> None:
    """Counter hook for instrumented modules (no-op when inactive)."""
    reg = _ACTIVE
    if reg is not None:
        reg.add(name, value)


def gauge(name: str, value: float) -> None:
    reg = _ACTIVE
    if reg is not None:
        reg.gauge(name, value)


def observe(name: str, value: float,
            buckets: tuple[float, ...] | None = None) -> None:
    reg = _ACTIVE
    if reg is not None:
        reg.observe(name, value, buckets=buckets)


@contextmanager
def span(name: str) -> Iterator[None]:
    """Span hook: a real span when a registry is active, else a no-op."""
    reg = _ACTIVE
    if reg is None:
        yield
        return
    with reg.span(name):
        yield


def tick(cycles: float) -> None:
    reg = _ACTIVE
    if reg is not None:
        reg.tick(cycles)


@contextmanager
def observing(registry: MetricsRegistry | None,
              ) -> Iterator[MetricsRegistry | None]:
    """Activate ``registry`` for the dynamic extent of the block.

    Passing ``None`` explicitly *deactivates* observation inside the
    block, which lets callers write ``with observing(reg_or_none):``
    unconditionally.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous
