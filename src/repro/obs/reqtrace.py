"""Request-scoped tracing for the serve plane.

Aggregate metrics (``repro.obs.registry``) say *what* p99 is; the journal
(``repro.obs.events``) says *that* a leak was blocked.  This module answers
the per-request question in between: for one admitted request, what
happened at every layer on its way through the stack --

    admission -> scheduler slice -> syscall -> kernel function
              -> pipeline phase -> block-cache outcome

Design contract (matches the rest of ``repro.obs``):

* **Deterministic identity.**  A trace ID is a pure function of
  ``(seed, cell, tenant, arrival index)`` -- a SHA-256 prefix, no wall
  clock, no ``id()``, no PYTHONHASHSEED exposure.  Re-running the same
  serve cell yields byte-identical traces in any process.
* **Near-free when inactive.**  Faultplane-style activation: hooks read
  one module global and compare against ``None``.  No recorder installed
  means no allocation, no branch into recording code, and -- critically
  -- zero effect on simulated cycle counts either way (tracing is an
  observer, never a participant).
* **Exemplars.**  Each latency-histogram observation can be linked to
  the trace that produced it, keyed by the same bucket the histogram
  puts it in (first bound with ``value <= bound``, else ``inf``), so any
  bucket of ``serve.latency_cycles`` can *name* the requests inside it.
* **Worker-count invariance.**  ``TraceRecorder.snapshot()`` /
  ``from_snapshot`` / ``merge`` mirror ``MetricsRegistry``: per-cell
  recorders merge in declared cell order, so a 4-worker grid run merges
  to the same bytes as a serial one.

Per-request exports reuse :mod:`repro.obs.profile`'s exporters: a trace
renders as a span-path dict (``SpanTree.from_spans``) and from there to
folded-stack or Chrome-trace JSON.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager

__all__ = [
    "RequestTrace",
    "TraceRecorder",
    "active_recorder",
    "bucket_label",
    "step",
    "trace_id",
    "tracing",
]


def trace_id(seed: int, cell: str, tenant: int, seq: int) -> str:
    """Deterministic 64-bit (hex) request trace ID.

    ``cell`` disambiguates schedules that reuse the same (seed, tenant,
    seq) triple -- e.g. serve cells with different tenant counts, or
    campaign epochs -- so IDs stay unique across a whole grid.
    """
    payload = f"req:{seed}:{cell}:{tenant}:{seq}"
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]


def _fnum(value: float) -> str:
    """``2000.0`` -> ``"2000"`` (histogram bucket labels)."""
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


def bucket_label(value: float, buckets) -> str:
    """The bucket label a ``Histogram.observe(value)`` call lands in.

    Mirrors ``repro.obs.registry.Histogram``: first bound with
    ``value <= bound`` wins; past the last bound is the overflow
    bucket, labelled ``"inf"``.
    """
    for bound in buckets:
        if value <= bound:
            return f"le_{_fnum(bound)}"
    return "inf"


class RequestTrace:
    """One request's causal trace: identity, ordered steps, outcome."""

    __slots__ = ("trace_id", "tenant", "seq", "cell", "arrival_cycle",
                 "steps", "outcome", "start_cycle", "completion_cycle",
                 "latency_cycles")

    def __init__(self, tid: str, *, tenant: int, seq: int, cell: str,
                 arrival_cycle: float):
        self.trace_id = tid
        self.tenant = tenant
        self.seq = seq
        self.cell = cell
        self.arrival_cycle = arrival_cycle
        self.steps: list[dict] = []
        self.outcome = "open"
        self.start_cycle: float | None = None
        self.completion_cycle: float | None = None
        self.latency_cycles: float | None = None

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "tenant": self.tenant,
            "seq": self.seq,
            "cell": self.cell,
            "arrival_cycle": self.arrival_cycle,
            "start_cycle": self.start_cycle,
            "completion_cycle": self.completion_cycle,
            "latency_cycles": self.latency_cycles,
            "outcome": self.outcome,
            "steps": [dict(sorted(s.items())) for s in self.steps],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RequestTrace":
        trace = cls(data["trace_id"], tenant=data["tenant"],
                    seq=data["seq"], cell=data["cell"],
                    arrival_cycle=data["arrival_cycle"])
        trace.outcome = data["outcome"]
        trace.start_cycle = data["start_cycle"]
        trace.completion_cycle = data["completion_cycle"]
        trace.latency_cycles = data["latency_cycles"]
        trace.steps = [dict(s) for s in data["steps"]]
        return trace

    # -- span-path export (repro.obs.profile interop) -------------------

    def to_span_paths(self) -> dict[str, dict]:
        """Render the trace as ``SpanTree.from_spans`` input.

        Steps are grouped under their enclosing syscall: the engine
        records pipeline/kernel steps *before* the driver's syscall step
        (innermost completes first), so a buffer of pending inner steps
        attaches to the next syscall step.  Self-cycles nest exactly:
        ``syscall = trap + kernel_fn``; ``kernel_fn = phases + compute``.
        """
        root = f"req:{self.trace_id}"
        paths: dict[str, dict] = {}

        def add(path: str, count: int, cycles: float) -> None:
            node = paths.setdefault(path, {"count": 0, "cycles": 0.0})
            node["count"] += count
            node["cycles"] += cycles

        total = 0.0
        pending: list[dict] = []
        for i, step_row in enumerate(self.steps):
            layer = step_row["layer"]
            cycles = float(step_row.get("cycles", 0.0))
            if layer in ("pipeline", "kernel_fn"):
                pending.append(step_row)
                continue
            base = f"{root}/{i:03d}:{layer}:{step_row['name']}"
            self_cycles = cycles
            if layer == "syscall":
                kernel = [s for s in pending if s["layer"] == "kernel_fn"]
                pipe = [s for s in pending if s["layer"] == "pipeline"]
                pending = []
                for krow in kernel:
                    kcycles = float(krow.get("cycles", 0.0))
                    self_cycles -= kcycles
                    kpath = f"{base}/kernel:{krow['name']}"
                    kself = kcycles
                    for prow in pipe:
                        if prow["name"] != krow["name"]:
                            continue
                        fetch = float(prow.get("fetch_stall", 0.0))
                        fence = float(prow.get("fence_stall", 0.0))
                        kself -= fetch + fence
                        if fetch:
                            add(f"{kpath}/phase:fetch_stall", 1, fetch)
                        if fence:
                            add(f"{kpath}/phase:fence_stall", 1, fence)
                        for reason, n in sorted(
                                prow.get("bc_miss", {}).items()):
                            add(f"{kpath}/blockcache:miss:{reason}", n, 0.0)
                        hits = int(prow.get("bc_hits", 0))
                        if hits:
                            add(f"{kpath}/blockcache:hit", hits, 0.0)
                    add(kpath, 1, max(kself, 0.0))
            add(base, 1, max(self_cycles, 0.0))
            total += cycles
        latency = self.latency_cycles or 0.0
        add(root, 1, max(latency - total, 0.0))
        return paths

    def to_chrome_trace_json(self) -> str:
        from repro.obs.profile import SpanTree
        return SpanTree.from_spans(self.to_span_paths()).to_chrome_trace_json()

    def to_folded(self) -> str:
        from repro.obs.profile import SpanTree
        return SpanTree.from_spans(self.to_span_paths()).to_folded()


class TraceRecorder:
    """Collects request traces and histogram-bucket exemplar links."""

    DEFAULT_MAX_EXEMPLARS = 3

    def __init__(self, *, max_exemplars_per_bucket: int | None = None):
        self.max_exemplars = (self.DEFAULT_MAX_EXEMPLARS
                              if max_exemplars_per_bucket is None
                              else max_exemplars_per_bucket)
        self.traces: dict[str, RequestTrace] = {}
        #: histogram name -> bucket label -> first-N trace IDs.
        self.exemplars: dict[str, dict[str, list[str]]] = {}
        self._open: RequestTrace | None = None

    # -- request lifecycle (driven by the serve scheduler) --------------

    def admit(self, seed: int, cell: str, tenant: int, seq: int,
              arrival_cycle: float) -> RequestTrace:
        tid = trace_id(seed, cell, tenant, seq)
        trace = RequestTrace(tid, tenant=tenant, seq=seq, cell=cell,
                             arrival_cycle=arrival_cycle)
        self.traces[tid] = trace
        return trace

    def lookup(self, seed: int, cell: str, tenant: int,
               seq: int) -> RequestTrace | None:
        return self.traces.get(trace_id(seed, cell, tenant, seq))

    def open(self, trace: RequestTrace) -> None:
        self._open = trace

    def record(self, layer: str, name: str, cycles: float,
               detail: dict) -> None:
        row = {"layer": layer, "name": name, "cycles": cycles}
        row.update(detail)
        self._open.steps.append(row)

    def note(self, trace: RequestTrace, layer: str, name: str,
             cycles: float = 0.0, **detail) -> None:
        """Record a step on a specific trace without opening it (used
        for admission-time steps, before the request is dispatched)."""
        row = {"layer": layer, "name": name, "cycles": cycles}
        row.update(detail)
        trace.steps.append(row)

    def close(self, trace: RequestTrace, outcome: str, *,
              start_cycle: float | None = None,
              completion_cycle: float | None = None,
              latency_cycles: float | None = None) -> None:
        trace.outcome = outcome
        trace.start_cycle = start_cycle
        trace.completion_cycle = completion_cycle
        trace.latency_cycles = latency_cycles
        if self._open is trace:
            self._open = None

    # -- exemplars ------------------------------------------------------

    def exemplar(self, histogram: str, value: float, buckets,
                 tid: str) -> None:
        label = bucket_label(value, buckets)
        bucket = self.exemplars.setdefault(histogram, {}) \
                               .setdefault(label, [])
        if len(bucket) < self.max_exemplars:
            bucket.append(tid)

    def resolve(self, tid: str) -> RequestTrace | None:
        return self.traces.get(tid)

    # -- snapshot / merge (MetricsRegistry-shaped) ----------------------

    def snapshot(self) -> dict:
        return {
            "meta": {"max_exemplars_per_bucket": self.max_exemplars},
            "traces": {tid: self.traces[tid].as_dict()
                       for tid in sorted(self.traces)},
            "exemplars": {
                hist: {label: list(ids)
                       for label, ids in sorted(buckets.items())}
                for hist, buckets in sorted(self.exemplars.items())
            },
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "TraceRecorder":
        rec = cls(max_exemplars_per_bucket=snap["meta"]
                  ["max_exemplars_per_bucket"])
        for tid, data in snap["traces"].items():
            rec.traces[tid] = RequestTrace.from_dict(data)
        for hist, buckets in snap["exemplars"].items():
            rec.exemplars[hist] = {label: list(ids)
                                   for label, ids in buckets.items()}
        return rec

    def merge(self, other: "TraceRecorder") -> None:
        """Accumulate ``other`` (e.g. one grid cell's recorder).

        Merging per-cell recorders in declared cell order yields the
        same bytes regardless of worker count -- the same contract as
        ``MetricsRegistry.merge``.  Exemplar lists keep first-N in merge
        order, matching what a single serial recorder would have kept.
        """
        for tid, trace in other.traces.items():
            self.traces[tid] = trace
        for hist, buckets in other.exemplars.items():
            mine = self.exemplars.setdefault(hist, {})
            for label, ids in buckets.items():
                bucket = mine.setdefault(label, [])
                for tid in ids:
                    if len(bucket) >= self.max_exemplars:
                        break
                    bucket.append(tid)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent,
                          separators=(",", ": "))


# ---------------------------------------------------------------------------
# Activation (faultplane-style: one global read when inactive)
# ---------------------------------------------------------------------------

_ACTIVE: TraceRecorder | None = None


def active_recorder() -> TraceRecorder | None:
    """The currently-installed recorder, or ``None``."""
    return _ACTIVE


@contextmanager
def tracing(recorder: TraceRecorder):
    """Install ``recorder`` as the ambient trace recorder."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous


def step(layer: str, name: str, cycles: float = 0.0, **detail) -> None:
    """Record a step on the currently-open request, if any.

    The instrumented layers (driver, kernel, pipeline) call this
    unconditionally; with no recorder installed -- or no request open,
    e.g. during boot -- it is a global read plus a ``None`` test.
    """
    recorder = _ACTIVE
    if recorder is not None and recorder._open is not None:
        recorder.record(layer, name, cycles, detail)
