"""Windowed SLO rollups and deterministic multi-window burn-rate alerts.

The registry answers "what is p99 over the whole run"; this module rolls
serve-plane signals into **fixed-width windows of simulated cycles**
(window ``k`` covers ``[k*W, (k+1)*W)``) and evaluates SLO objectives
over them, firing burn-rate alerts at deterministic cycle stamps -- the
end of the breaching window -- so an alert is a reproducible fact of the
schedule, not of wall-clock sampling.

Everything is **additive**: a window is a bag of counts (requests, shed,
latency bucket counts, per-context blocked leaks), so

* merging per-cell rollups in declared order is worker-count invariant
  (the ``MetricsRegistry.merge`` contract), and
* combining the two halves of a double-width window equals the
  double-width window computed directly (property-tested).

Objectives (``SloObjective``) follow the error-budget formulation: each
window has an error rate (fraction of requests over the latency target,
shed fraction, blocked-leak fraction) and a budget (the allowed rate).
``burn rate = error rate / budget``, so burn 1.0 means exactly spending
budget -- a p99-latency objective with budget 0.01 burns at 1.0 when the
target sits exactly at p99.  Alerts use the classic multi-window rule:
fire when both the long and the short trailing burn rate reach the
threshold, edge-triggered on the first breaching window.

Latency targets must be histogram bucket bounds: error counts then come
straight from bucket counts, exact and merge-stable (no interpolation).

``AdaptiveIsvController`` accepts these alerts as evidence alongside
journal events (``observe(events, alerts=...)``); blocked-leak alerts
carry the victim context so escalation stays per-tenant.

Activation mirrors ``faultplane``/``observing()``/``journaling()``:
``collecting(rollup)`` installs a module-global rollup, and the serve
engine's hooks are one global read + ``None`` test when inactive.
"""

from __future__ import annotations

import json
import math
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_OBJECTIVES",
    "SloAlert",
    "SloObjective",
    "SloRollup",
    "SloWindow",
    "active_rollup",
    "collecting",
    "record_request",
    "record_shed",
]

#: Matches ``repro.serve.engine.LATENCY_BUCKETS`` (cycles).
DEFAULT_LATENCY_BUCKETS = (
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0,
    100_000.0, 1_000_000.0, 10_000_000.0)

#: Aggregate pseudo-context for objectives without a tenant dimension.
AGGREGATE_CONTEXT = -1


@dataclass(frozen=True)
class SloObjective:
    """An error-budget objective over windowed serve signals.

    ``kind`` selects the error definition:

    * ``"latency"`` -- errors are requests with latency > ``target``
      (which must be a latency bucket bound); denominator is completed
      requests.  ``budget`` 0.01 makes this a p99 objective.
    * ``"shed"`` -- errors are shed/refused admissions; denominator is
      offered requests (completed + shed).
    * ``"blocked-leak"`` -- errors are blocked-leak security events,
      evaluated **per context**; denominator is offered requests.
    """

    name: str
    kind: str  # "latency" | "shed" | "blocked-leak"
    budget: float
    target: float | None = None

    def __post_init__(self):
        if self.kind not in ("latency", "shed", "blocked-leak"):
            raise ValueError(f"unknown objective kind: {self.kind!r}")
        if (self.kind == "latency") != (self.target is not None):
            raise ValueError("latency objectives (and only those) "
                             "take a target")
        if not self.budget > 0.0:
            raise ValueError("budget must be positive")


@dataclass(frozen=True)
class SloAlert:
    """A burn-rate alert, stamped at the end of the breaching window."""

    objective: str
    kind: str
    context: int
    window_index: int
    cycle: float
    burn_short: float
    burn_long: float

    def as_dict(self) -> dict:
        # Non-finite burns (errors against an empty denominator) render
        # as the string "inf": json.dumps would otherwise emit the
        # non-standard Infinity token.
        def burn(value: float) -> float | str:
            return round(value, 6) if math.isfinite(value) else "inf"

        return {
            "objective": self.objective,
            "kind": self.kind,
            "context": self.context,
            "window_index": self.window_index,
            "cycle": self.cycle,
            "burn_short": burn(self.burn_short),
            "burn_long": burn(self.burn_long),
        }


#: p99 latency within 100k cycles, <=5% shed, blocked leaks are
#: budgeted at one per thousand offered requests.
DEFAULT_OBJECTIVES = (
    SloObjective("p99-latency", "latency", budget=0.01, target=100_000.0),
    SloObjective("shed-rate", "shed", budget=0.05),
    SloObjective("blocked-leak-rate", "blocked-leak", budget=0.001),
)


class SloWindow:
    """Additive per-window counts.  ``combine`` is the monoid op."""

    __slots__ = ("index", "requests", "shed", "latency_counts",
                 "latency_overflow", "latency_sum", "blocked_leaks")

    def __init__(self, index: int, n_buckets: int):
        self.index = index
        self.requests = 0
        self.shed = 0
        self.latency_counts = [0] * n_buckets
        self.latency_overflow = 0
        self.latency_sum = 0.0
        self.blocked_leaks: dict[int, int] = {}

    def combine(self, other: "SloWindow") -> "SloWindow":
        out = SloWindow(min(self.index, other.index),
                        len(self.latency_counts))
        out.requests = self.requests + other.requests
        out.shed = self.shed + other.shed
        out.latency_counts = [a + b for a, b in
                              zip(self.latency_counts,
                                  other.latency_counts)]
        out.latency_overflow = self.latency_overflow + other.latency_overflow
        out.latency_sum = self.latency_sum + other.latency_sum
        out.blocked_leaks = dict(self.blocked_leaks)
        for ctx, n in other.blocked_leaks.items():
            out.blocked_leaks[ctx] = out.blocked_leaks.get(ctx, 0) + n
        return out

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "shed": self.shed,
            "latency_counts": list(self.latency_counts),
            "latency_overflow": self.latency_overflow,
            "latency_sum": round(self.latency_sum, 6),
            "blocked_leaks": {str(ctx): n for ctx, n in
                              sorted(self.blocked_leaks.items())},
        }

    @classmethod
    def from_dict(cls, index: int, data: dict) -> "SloWindow":
        win = cls(index, len(data["latency_counts"]))
        win.requests = data["requests"]
        win.shed = data["shed"]
        win.latency_counts = list(data["latency_counts"])
        win.latency_overflow = data["latency_overflow"]
        win.latency_sum = data["latency_sum"]
        win.blocked_leaks = {int(ctx): n for ctx, n in
                             data["blocked_leaks"].items()}
        return win

    def latency_quantile(self, q: float, buckets) -> float:
        """Deterministic bucket-upper-bound quantile (inf on overflow)."""
        total = self.requests
        if total == 0:
            return 0.0
        rank = math.ceil(q * total)
        running = 0
        for count, bound in zip(self.latency_counts, buckets):
            running += count
            if running >= rank:
                return bound
        return math.inf


class SloRollup:
    """Windowed serve-signal rollup keyed by simulated-cycle epochs."""

    def __init__(self, window_cycles: float, *,
                 latency_buckets=DEFAULT_LATENCY_BUCKETS):
        if not window_cycles > 0.0:
            raise ValueError("window_cycles must be positive")
        self.window_cycles = float(window_cycles)
        self.latency_buckets = tuple(float(b) for b in latency_buckets)
        self.windows: dict[int, SloWindow] = {}

    # -- recording ------------------------------------------------------

    def _window(self, cycle: float) -> SloWindow:
        index = int(cycle // self.window_cycles)
        win = self.windows.get(index)
        if win is None:
            win = SloWindow(index, len(self.latency_buckets))
            self.windows[index] = win
        return win

    def record_request(self, cycle: float, latency_cycles: float) -> None:
        """A request completed at ``cycle`` with the given latency."""
        win = self._window(cycle)
        win.requests += 1
        win.latency_sum += latency_cycles
        for i, bound in enumerate(self.latency_buckets):
            if latency_cycles <= bound:
                win.latency_counts[i] += 1
                break
        else:
            win.latency_overflow += 1

    def record_shed(self, cycle: float) -> None:
        self._window(cycle).shed += 1

    def record_blocked_leak(self, cycle: float, context: int) -> None:
        leaks = self._window(cycle).blocked_leaks
        leaks[context] = leaks.get(context, 0) + 1

    def ingest_events(self, events) -> int:
        """Count journal ``blocked-leak`` events into windows."""
        n = 0
        for event in events:
            if event.kind == "blocked-leak":
                self.record_blocked_leak(event.cycle, event.context)
                n += 1
        return n

    # -- evaluation -----------------------------------------------------

    def _errors(self, win: SloWindow, objective: SloObjective,
                context: int) -> tuple[int, int]:
        """(error count, denominator) for one window."""
        if objective.kind == "latency":
            over = win.latency_overflow
            seen_target = False
            for bound, count in zip(self.latency_buckets,
                                    win.latency_counts):
                if seen_target:
                    over += count
                if bound == objective.target:
                    seen_target = True
            if not seen_target:
                raise ValueError(
                    f"latency target {objective.target} is not a bucket "
                    f"bound of {self.latency_buckets}")
            return over, win.requests
        if objective.kind == "shed":
            return win.shed, win.requests + win.shed
        return (win.blocked_leaks.get(context, 0),
                win.requests + win.shed)

    def _contexts(self, objective: SloObjective) -> list[int]:
        if objective.kind != "blocked-leak":
            return [AGGREGATE_CONTEXT]
        contexts = set()
        for win in self.windows.values():
            contexts.update(win.blocked_leaks)
        return sorted(contexts)

    def burn_rate(self, objective: SloObjective, *, context: int,
                  first: int, last: int) -> float:
        """Trailing burn rate over windows ``[first, last]`` inclusive."""
        errors = denom = 0
        empty = SloWindow(0, len(self.latency_buckets))
        for index in range(first, last + 1):
            e, d = self._errors(self.windows.get(index, empty),
                                objective, context)
            errors += e
            denom += d
        if denom == 0:
            return math.inf if errors else 0.0
        return (errors / denom) / objective.budget

    def evaluate(self, objectives=DEFAULT_OBJECTIVES, *,
                 short_windows: int = 1, long_windows: int = 3,
                 threshold: float = 1.0) -> list[SloAlert]:
        """Edge-triggered multi-window burn-rate alerts, in cycle order.

        A pure function of recorded counts: windows are consulted in
        ascending index order and missing windows count as empty, so the
        result is invariant under recording reorder (property-tested).
        """
        if not self.windows:
            return []
        lo = min(self.windows)
        hi = max(self.windows)
        alerts = []
        for objective in objectives:
            for context in self._contexts(objective):
                firing = False
                for index in range(lo, hi + 1):
                    burn_long = self.burn_rate(
                        objective, context=context,
                        first=index - long_windows + 1, last=index)
                    burn_short = self.burn_rate(
                        objective, context=context,
                        first=index - short_windows + 1, last=index)
                    breach = (burn_long >= threshold
                              and burn_short >= threshold)
                    if breach and not firing:
                        alerts.append(SloAlert(
                            objective=objective.name,
                            kind=objective.kind,
                            context=context,
                            window_index=index,
                            cycle=(index + 1) * self.window_cycles,
                            burn_short=burn_short,
                            burn_long=burn_long))
                    firing = breach
        alerts.sort(key=lambda a: (a.cycle, a.objective, a.context))
        return alerts

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> dict:
        return {
            "meta": {
                "window_cycles": self.window_cycles,
                "latency_buckets": list(self.latency_buckets),
            },
            "windows": {str(index): self.windows[index].as_dict()
                        for index in sorted(self.windows)},
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "SloRollup":
        rollup = cls(snap["meta"]["window_cycles"],
                     latency_buckets=snap["meta"]["latency_buckets"])
        for index, data in snap["windows"].items():
            rollup.windows[int(index)] = SloWindow.from_dict(int(index),
                                                             data)
        return rollup

    def merge(self, other: "SloRollup") -> None:
        if (other.window_cycles != self.window_cycles
                or other.latency_buckets != self.latency_buckets):
            raise ValueError("cannot merge rollups with different "
                             "window geometry")
        for index, win in other.windows.items():
            mine = self.windows.get(index)
            self.windows[index] = win if mine is None \
                else mine.combine(win)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent,
                          separators=(",", ": "))


# ---------------------------------------------------------------------------
# Activation (faultplane-style: one global read when inactive)
# ---------------------------------------------------------------------------

_ACTIVE: SloRollup | None = None


def active_rollup() -> SloRollup | None:
    return _ACTIVE


@contextmanager
def collecting(rollup: SloRollup):
    """Install ``rollup`` as the ambient SLO rollup."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = rollup
    try:
        yield rollup
    finally:
        _ACTIVE = previous


def record_request(cycle: float, latency_cycles: float) -> None:
    rollup = _ACTIVE
    if rollup is not None:
        rollup.record_request(cycle, latency_cycles)


def record_shed(cycle: float) -> None:
    rollup = _ACTIVE
    if rollup is not None:
        rollup.record_shed(cycle)
