"""Reliability subsystem: fault injection, invariants, resilient campaigns.

Two halves (see docs/architecture.md, "Reliability & fault injection"):

* the **fault-injection plane** (:mod:`repro.reliability.faultplane`):
  deterministic, seeded fault points that core/kernel/scanner modules opt
  into, plus the :class:`~repro.reliability.invariants.InvariantChecker`
  that proves the fail-closed invariants hold under injected faults;
* the **resilient campaign runner**
  (:mod:`repro.reliability.campaign`): subprocess-isolated, retrying,
  journaled execution of the evaluation experiments with
  checkpoint/resume.

Only the fault plane is imported eagerly here: ``core`` and ``kernel``
modules import :func:`fire` from this package, while the campaign and
invariant layers import ``core``/``eval`` -- eager imports would cycle.
"""

from __future__ import annotations

from repro.reliability.faultplane import (
    DSVMTWalkFault,
    FAULT_POINTS,
    FaultPlane,
    FaultSpec,
    active_plane,
    fire,
    inject,
)

#: Lazily-resolved exports from the heavier submodules (cycle avoidance).
_LAZY = {
    "CampaignConfig": "repro.reliability.campaign",
    "CampaignRunner": "repro.reliability.campaign",
    "CampaignState": "repro.reliability.campaign",
    "EXPERIMENTS": "repro.reliability.campaign",
    "smoke_campaign": "repro.reliability.campaign",
    "FAULT_SWEEP": "repro.reliability.invariants",
    "FaultScenario": "repro.reliability.invariants",
    "InvariantChecker": "repro.reliability.invariants",
    "InvariantMatrix": "repro.reliability.invariants",
    "InvariantVerdict": "repro.reliability.invariants",
    "audit_dsv_fail_closed": "repro.reliability.invariants",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "DSVMTWalkFault",
    "FAULT_POINTS",
    "FaultPlane",
    "FaultSpec",
    "active_plane",
    "fire",
    "inject",
    *sorted(_LAZY),
]
