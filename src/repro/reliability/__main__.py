"""CLI entry point: ``python -m repro.reliability``.

Runs the CI smoke campaign -- a trimmed experiment set under a moderate
fault storm, journaled and rendered through the degradation-aware report
-- and exits non-zero if any experiment failed.  ``--journal-dir`` keeps
the journal across invocations (resume); the default is a temporary
directory.  ``--sweep`` additionally runs a reduced fail-closed
invariant sweep.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.reliability.campaign import smoke_campaign
from repro.reliability.invariants import FAULT_SWEEP, InvariantChecker


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.reliability",
        description="fault-injection smoke campaign")
    parser.add_argument("--journal-dir", default=None,
                        help="journal directory (default: temporary; pass "
                             "a path to make the campaign resumable)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sweep", action="store_true",
                        help="also run a reduced invariant sweep")
    args = parser.parse_args(argv)

    try:
        if args.journal_dir is None:
            with tempfile.TemporaryDirectory() as tmp:
                state, report = smoke_campaign(tmp, seed=args.seed)
        else:
            state, report = smoke_campaign(args.journal_dir, seed=args.seed)
    except ValueError as exc:
        # e.g. resuming a journal written by a different configuration.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report)
    if state.failures:
        print(f"smoke campaign FAILED: {state.failures}", file=sys.stderr)
        return 1
    print(f"smoke campaign ok: {sorted(state.done)} completed")

    if args.sweep:
        checker = InvariantChecker(
            attacks=("spectre-v1-active", "spectre-v2-passive"),
            schemes=("perspective",), seed=args.seed)
        subset = tuple(s for s in FAULT_SWEEP
                       if s.name in ("isv-forced-miss", "dsvmt-walk-fail",
                                     "dsv-assign-drop", "trace-drop"))
        matrix = checker.run(subset)
        print(matrix.render())
        if not matrix.all_pass:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
