"""Resilient evaluation-campaign runner with checkpoint/resume.

The straight-line evaluation driver (:mod:`repro.eval.report`) loses the
whole run when one experiment crashes.  ``CampaignRunner`` wraps the
``run_*_experiment`` functions with:

* **subprocess isolation** -- each experiment runs in its own forked
  process, so a crash (or an injected allocation-failure storm) cannot
  take down the campaign;
* **timeouts and bounded retry** -- exponential backoff with seeded
  jitter; delays are derived from the campaign seed, never from the
  wall clock, so the journal is byte-reproducible;
* a **JSONL journal** -- one record per finished experiment, written
  atomically after completion.  Re-running a campaign with the same
  journal skips every recorded experiment: kill -9 the process after N
  of M experiments and the next invocation resumes at N+1;
* **fault transport** -- an optional :class:`FaultPlane` spec is shipped
  to each worker, so whole campaigns can run under injected faults (the
  CI smoke campaign does exactly this).

Failures after retry exhaustion are recorded as terminal; the reporting
layer (:func:`repro.eval.report.render_campaign_report`) renders those
cells as ``—`` with a failure summary instead of aborting.
"""

from __future__ import annotations

import json
import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.attacks.harness import run_matrix
from repro.eval.runner import (
    run_apps_experiment,
    run_breakdown_experiment,
    run_gadget_experiment,
    run_kasper_experiment,
    run_lebench_experiment,
    run_surface_experiment,
)
from repro.exec.engine import run_in_subprocess
from repro.obs import registry as obs
from repro.reliability import serde
from repro.reliability.faultplane import FaultPlane, FaultSpec, inject

JOURNAL_NAME = "campaign-journal.jsonl"
METRICS_NAME = "campaign-metrics.json"


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable, serializable experiment."""

    name: str
    run: Callable[..., Any]
    to_payload: Callable[[Any], dict[str, Any]]
    from_payload: Callable[[dict[str, Any]], Any]
    #: Full-scale keyword arguments (the paper's configuration).
    default_params: dict[str, Any] = field(default_factory=dict)
    #: Trimmed keyword arguments for smoke/CI runs.
    fast_params: dict[str, Any] = field(default_factory=dict)


def _serve_campaign_cell(**params: Any) -> dict[str, Any]:
    """The adversarial-serving campaign as a schedulable experiment.

    Imported lazily so the reliability layer does not pull the whole
    serving stack at module import (and so the subprocess worker
    resolves it fresh in the child).
    """
    from repro.serve.campaign import campaign_cell
    observe = params.pop("observe", True)
    return campaign_cell(params, observe=observe)


def _spec_name(name: str) -> str:
    """``"serve-campaign@s0.none"`` -> ``"serve-campaign"``.

    Everything before ``@`` resolves the :class:`ExperimentSpec`; the
    full instance name keys the journal, params, and results -- so one
    spec can be scheduled many times with different parameters in a
    single campaign (the serving campaign runs one instance per
    (seed, scenario) cell).
    """
    return name.split("@", 1)[0]


#: The evaluation experiments the campaign runner can schedule.  Params
#: must stay JSON-serializable -- they ride in the journal header and
#: across the subprocess boundary.
EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.name: spec for spec in (
        ExperimentSpec(
            "surface", run_surface_experiment,
            serde.surface_to_payload, serde.surface_from_payload,
            fast_params={"apps": ["lebench", "httpd"]}),
        ExperimentSpec(
            "gadgets", run_gadget_experiment,
            serde.gadgets_to_payload, serde.gadgets_from_payload,
            fast_params={"apps": ["lebench", "redis"]}),
        ExperimentSpec(
            "security", run_matrix,
            serde.security_to_payload, serde.security_from_payload,
            fast_params={"attacks": ["spectre-v1-active",
                                     "spectre-v2-passive"],
                         "schemes": ["unsafe", "perspective"]}),
        ExperimentSpec(
            "kasper", run_kasper_experiment,
            serde.kasper_to_payload, serde.kasper_from_payload,
            fast_params={"apps": ["httpd"], "n_seeds": 4}),
        ExperimentSpec(
            "lebench", run_lebench_experiment,
            serde.lebench_to_payload, serde.lebench_from_payload,
            fast_params={"schemes": ["unsafe", "fence", "perspective"]}),
        ExperimentSpec(
            "apps", run_apps_experiment,
            serde.apps_to_payload, serde.apps_from_payload,
            fast_params={"schemes": ["unsafe", "fence", "perspective"],
                         "apps": ["httpd"], "requests": 16}),
        ExperimentSpec(
            "breakdown", run_breakdown_experiment,
            serde.breakdown_to_payload, serde.breakdown_from_payload,
            fast_params={"workloads": ["lebench"],
                         "schemes": ["perspective"], "requests": 12}),
        ExperimentSpec(
            "serve-campaign", _serve_campaign_cell,
            serde.campaign_to_payload, serde.campaign_from_payload,
            default_params={"seed": 0, "scenario": "none",
                            "observe": True},
            fast_params={"seed": 0, "scenario": "none", "epochs": 3,
                         "observe": True}),
    )
}


@dataclass
class CampaignConfig:
    """Knobs for one campaign run."""

    seed: int = 0
    experiments: tuple[str, ...] = tuple(EXPERIMENTS)
    #: Per-experiment keyword-argument overrides (JSON-serializable).
    params: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Use each spec's trimmed ``fast_params`` as the base configuration.
    fast: bool = False
    max_attempts: int = 3
    #: Per-attempt wall-clock limit; ``None`` disables the timeout.
    timeout_s: float | None = 600.0
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 5.0
    #: Run each experiment in a subprocess (fork when available).
    isolate: bool = True
    #: Optional fault plane armed inside every worker.
    fault: FaultPlane | None = None
    #: Arm a fresh :class:`MetricsRegistry` inside every worker and merge
    #: the per-experiment snapshots into one whole-campaign snapshot
    #: (written as ``campaign-metrics.json`` next to the journal).
    #: Deliberately *not* part of :meth:`header`: the snapshot is a
    #: sidecar, and toggling it must not invalidate resumable journals.
    collect_metrics: bool = False

    def resolved_params(self, name: str) -> dict[str, Any]:
        spec = EXPERIMENTS[_spec_name(name)]
        base = spec.fast_params if self.fast else spec.default_params
        return {**base, **self.params.get(name, {})}

    def header(self) -> dict[str, Any]:
        return {
            "event": "header",
            "seed": self.seed,
            "experiments": list(self.experiments),
            "params": {name: self.resolved_params(name)
                       for name in self.experiments},
            "fast": self.fast,
            "max_attempts": self.max_attempts,
            "fault": self.fault.to_dict() if self.fault else None,
        }


@dataclass
class CampaignState:
    """Checkpointed view of a campaign (journal contents, materialized)."""

    payloads: dict[str, dict[str, Any]] = field(default_factory=dict)
    failures: dict[str, str] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)
    interrupted: bool = False

    @property
    def done(self) -> set[str]:
        return set(self.payloads)

    @property
    def finished(self) -> set[str]:
        """Experiments with a terminal record (done or failed-for-good)."""
        return self.done | set(self.failures)

    def result(self, name: str) -> Any | None:
        """Reconstructed experiment object, or None if unavailable."""
        payload = self.payloads.get(name)
        if payload is None:
            return None
        return EXPERIMENTS[_spec_name(name)].from_payload(payload)

    def results(self) -> dict[str, Any]:
        return {name: EXPERIMENTS[_spec_name(name)].from_payload(payload)
                for name, payload in self.payloads.items()}


def _run_spec(name: str, params: dict[str, Any],
              fault: dict[str, Any] | None, collect_metrics: bool,
              ) -> tuple[dict[str, Any], dict[str, int],
                         dict[str, Any] | None]:
    """Run one experiment spec: (payload, fault_fires, metrics_snapshot).

    With ``collect_metrics`` the experiment runs under a fresh registry
    whose snapshot ships back for whole-campaign aggregation
    (:meth:`MetricsRegistry.merge`); hot-path counters and spans from
    every shard combine into one picture of the campaign.
    """
    spec = EXPERIMENTS[_spec_name(name)]
    registry = obs.MetricsRegistry(meta={"experiment": name}) \
        if collect_metrics else None
    from contextlib import nullcontext
    observe_ctx = obs.observing(registry) if registry is not None \
        else nullcontext()
    fires: dict[str, int] = {}
    with observe_ctx:
        if fault is not None:
            with inject(FaultPlane.from_dict(fault)) as plane:
                result = spec.run(**params)
            fires = dict(plane.fires)
        else:
            result = spec.run(**params)
    snapshot = registry.snapshot() if registry is not None else None
    return spec.to_payload(result), fires, snapshot


def _campaign_worker(name: str, params: dict[str, Any],
                     fault: dict[str, Any] | None, collect_metrics: bool,
                     conn) -> None:
    """Subprocess entry point: run one experiment, ship its payload."""
    try:
        payload, fires, snapshot = _run_spec(name, params, fault,
                                             collect_metrics)
        conn.send({"ok": True, "payload": payload, "fault_fires": fires,
                   "metrics": snapshot})
    except BaseException as exc:  # noqa: BLE001 -- report, don't crash silently
        conn.send({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
    finally:
        conn.close()


def _json_line(record: dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


class CampaignRunner:
    """Journaled, retrying, subprocess-isolated experiment scheduler."""

    def __init__(self, journal_dir: str | pathlib.Path,
                 config: CampaignConfig | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 on_experiment_start: Callable[[str], None] | None = None,
                 ) -> None:
        self.config = config or CampaignConfig()
        self.journal_dir = pathlib.Path(journal_dir)
        self.journal_path = self.journal_dir / JOURNAL_NAME
        self.metrics_path = self.journal_dir / METRICS_NAME
        #: Whole-campaign metrics: per-experiment shard snapshots merged
        #: as they arrive (only populated with ``collect_metrics``; a
        #: resumed campaign aggregates the experiments it actually ran).
        self.metrics = obs.MetricsRegistry(
            meta={"plane": "repro.reliability.campaign",
                  "seed": self.config.seed})
        #: Shards produced by the *current* ``run()`` invocation only --
        #: the persisted sidecar folds these into whatever an earlier
        #: (killed/interrupted) invocation already wrote, so the on-disk
        #: aggregate is cumulative and each experiment's counters land in
        #: it exactly once no matter how often the campaign resumes.
        self._pending_shards: list[obs.MetricsRegistry] = []
        self._sleep = sleep
        self._on_start = on_experiment_start
        unknown = [n for n in self.config.experiments
                   if _spec_name(n) not in EXPERIMENTS]
        if unknown:
            raise ValueError(f"unknown experiments: {unknown}")
        dupes = [n for n in self.config.experiments
                 if list(self.config.experiments).count(n) > 1]
        if dupes:
            raise ValueError(
                f"duplicate experiment instances: {sorted(set(dupes))}; "
                "schedule repeats as distinct 'name@instance' entries")

    # -- journal ----------------------------------------------------------

    def load_state(self) -> CampaignState:
        """Materialize the journal into a state (empty if none exists)."""
        state = CampaignState()
        if not self.journal_path.exists():
            return state
        header = self.config.header()
        with self.journal_path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record.get("event") == "header":
                    # Forward-compatible match: a journal written before
                    # a runner upgrade lacks newly added header fields;
                    # every field it *does* carry must agree.
                    if not serde.header_compatible(record, header):
                        raise ValueError(
                            "journal was written by a different campaign "
                            "configuration; refusing to resume from "
                            f"{self.journal_path} (delete it to restart)")
                    continue
                record = serde.default_record(record)
                name = record["name"]
                state.attempts[name] = record["attempts"]
                if record["status"] == "done":
                    state.payloads[name] = record["payload"]
                else:
                    state.failures[name] = record["error"] \
                        or "unknown failure"
        return state

    def _append(self, record: dict[str, Any]) -> None:
        with self.journal_path.open("a") as handle:
            handle.write(_json_line(record))
            handle.flush()

    # -- execution --------------------------------------------------------

    def run(self, stop_after: int | None = None) -> CampaignState:
        """Run (or resume) the campaign; returns the final state.

        ``stop_after`` limits how many *new* experiments execute, which
        simulates an interrupted campaign for the resume tests and lets
        callers slice long campaigns across invocations.
        """
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        state = self.load_state()
        if not self.journal_path.exists():
            self._append(self.config.header())
        executed = 0
        for name in self.config.experiments:
            if name in state.finished:
                continue  # checkpointed: never re-run
            if stop_after is not None and executed >= stop_after:
                state.interrupted = True
                break
            if self._on_start is not None:
                self._on_start(name)
            record = self._run_with_retries(name)
            self._append(record)
            # Normalize through the journal encoding (sorted keys) so the
            # in-memory state is indistinguishable from a reload -- a
            # resumed campaign renders byte-identical reports.
            record = json.loads(_json_line(record))
            executed += 1
            state.attempts[name] = record["attempts"]
            if record["status"] == "done":
                state.payloads[name] = record["payload"]
            else:
                state.failures[name] = record["error"]
        if self.config.collect_metrics:
            self._write_metrics()
        return state

    def _write_metrics(self) -> None:
        """Persist the metrics sidecar, cumulatively across resumes.

        Only the shards this ``run()`` invocation produced are folded
        into whatever a previous (interrupted) invocation already wrote:
        journaled experiments are never re-run, so their counters must
        not be re-merged either -- a kill/resume cycle converges on the
        same sidecar a single uninterrupted run writes, and resuming a
        finished campaign is a no-op rather than an empty overwrite.
        """
        if self.metrics_path.exists():
            combined = obs.MetricsRegistry.from_snapshot(
                json.loads(self.metrics_path.read_text()))
        else:
            combined = obs.MetricsRegistry(meta=dict(self.metrics.meta))
        for part in self._pending_shards:
            combined.merge(part)
        self._pending_shards = []
        self.metrics_path.write_text(combined.to_json(indent=1) + "\n")

    def _run_with_retries(self, name: str) -> dict[str, Any]:
        params = self.config.resolved_params(name)
        backoff = random.Random(f"{self.config.seed}:backoff:{name}")
        delays: list[float] = []
        error = "never attempted"
        for attempt in range(1, self.config.max_attempts + 1):
            with obs.span(f"experiment/{name}"):
                ok, payload_or_error, fires, snapshot = \
                    self._attempt(name, params)
            if snapshot is not None:
                part = obs.MetricsRegistry.from_snapshot(snapshot)
                self.metrics.merge(part)
                self._pending_shards.append(part)
                # Thread worker-side metrics back into whatever registry
                # the *caller* has active: without this, counters and
                # spans recorded inside the subprocess were silently
                # dropped unless ``collect_metrics`` was set up front.
                ambient = obs.active_registry()
                if ambient is not None and ambient is not self.metrics:
                    ambient.merge(part)
            obs.add(f"campaign.{name}.attempts")
            for point in sorted(fires):
                obs.add(f"campaign.{name}.fault_fires.{point}",
                        fires[point])
            if ok:
                obs.add(f"campaign.{name}.done")
                return {"event": "experiment", "name": name,
                        "status": "done", "attempts": attempt,
                        "retry_delays": delays, "error": None,
                        "payload": payload_or_error}
            error = payload_or_error
            if attempt < self.config.max_attempts:
                obs.add(f"campaign.{name}.retries")
                # Exponential backoff with seeded jitter in [0.5, 1.5):
                # reproducible from the campaign seed, no wall clock.
                delay = min(self.config.backoff_cap_s,
                            self.config.backoff_base_s * 2 ** (attempt - 1))
                delay *= 0.5 + backoff.random()
                delays.append(round(delay, 6))
                self._sleep(delay)
        obs.add(f"campaign.{name}.failures")
        return {"event": "experiment", "name": name, "status": "failed",
                "attempts": self.config.max_attempts,
                "retry_delays": delays, "error": error, "payload": None}

    def _attempt(self, name: str, params: dict[str, Any],
                 ) -> tuple[bool, Any, dict[str, int],
                            dict[str, Any] | None]:
        """One execution attempt:
        (ok, payload_or_error, fault_fires, metrics_snapshot)."""
        fault = self.config.fault.to_dict() if self.config.fault else None
        # Collect when asked to *or* when the caller is observing: an
        # ambient registry means someone wants these metrics, and a
        # subprocess worker's registrations cannot reach it otherwise.
        collect = self.config.collect_metrics \
            or obs.active_registry() is not None
        if not self.config.isolate:
            try:
                payload, fires, snapshot = _run_spec(name, params, fault,
                                                     collect)
                return True, payload, fires, snapshot
            except Exception as exc:  # noqa: BLE001
                return False, f"{type(exc).__name__}: {exc}", {}, None
        # Crash/timeout isolation rides on the engine's shared transport
        # (fork with spawn fallback), same as the parallel cell pool.
        timeout = self.config.timeout_s
        isolated = run_in_subprocess(
            _campaign_worker, (name, params, fault, collect), timeout)
        message: dict[str, Any] | None = isolated.message
        if isolated.timed_out:
            return False, f"timeout after {timeout}s", {}, None
        if message is None:
            return False, \
                f"worker crashed (exit code {isolated.exitcode})", {}, None
        fires = message.get("fault_fires", {})
        if message["ok"]:
            return True, message["payload"], fires, \
                message.get("metrics")
        return False, message["error"], fires, None


def smoke_campaign(journal_dir: str | pathlib.Path,
                   seed: int = 0) -> tuple[CampaignState, str]:
    """The CI smoke campaign: a trimmed experiment set run under a
    moderate fault storm, rendered through the degradation-aware report.

    Returns the final state and the rendered report text.
    """
    from repro.eval.report import render_campaign_report
    fault = FaultPlane(seed=seed, specs=(
        FaultSpec("isv-cache-forced-miss", probability=0.05),
        FaultSpec("dsv-cache-forced-miss", probability=0.05),
        FaultSpec("dsvmt-walk-fail", probability=0.1),
        FaultSpec("dsv-assign-drop", probability=0.1),
        FaultSpec("trace-drop", probability=0.1),
        FaultSpec("buddy-alloc-fail", probability=0.002),
    ))
    config = CampaignConfig(
        seed=seed, fast=True, fault=fault, max_attempts=2,
        timeout_s=300.0, backoff_base_s=0.05,
        experiments=("surface", "security"), collect_metrics=True)
    runner = CampaignRunner(journal_dir, config)
    state = runner.run()
    report = render_campaign_report(state)
    return state, report.render()
