"""Deterministic fault-injection plane (the degraded-conditions harness).

Perspective's security argument is *fail-closed*: a view-cache miss, a
DSVMT walk failure, or an unknown allocation must conservatively fence,
never permit (DESIGN.md Sections 5.2-5.3).  The fault plane lets the test
and benchmark layers exercise exactly those degraded microarchitectural
and OS states on demand:

* modules opt in at defined **fault points** (registered in
  :data:`FAULT_POINTS`) by calling :func:`fire` on their degraded-path
  branch;
* a :class:`FaultPlane` arms a set of :class:`FaultSpec` triggers, each
  with its own seeded RNG stream (derived from ``(seed, point)``) so the
  firing pattern of one point never perturbs another's;
* activation is scoped with :func:`inject`, a context manager, so no
  fault ever leaks across experiments.

Everything is deterministic: same seed + same specs + same workload ==
the same faults fire at the same draws, which is what makes the
invariant sweep and the campaign journal byte-reproducible.

This module deliberately imports nothing from the rest of ``repro`` --
core/kernel/scanner modules import it for the hook without cycles.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Registry of every fault point modules expose, with the degraded
#: condition each one models.  ``fire()`` rejects unknown points so a
#: typo in a spec cannot silently arm nothing.
FAULT_POINTS: dict[str, str] = {
    "isv-cache-forced-miss": "ISV view-cache lookup misses regardless of "
                             "contents (refill path exercised)",
    "isv-cache-stale": "matched ISV cache entry fails parity: hardware "
                       "discards it and the lookup misses",
    "dsv-cache-forced-miss": "DSV view-cache lookup misses regardless of "
                             "contents",
    "dsv-cache-stale": "matched DSV cache entry fails parity and is "
                       "discarded",
    "dsvmt-walk-fail": "the three-level DSVMT walk aborts "
                       "(DSVMTWalkFault); the policy must fence",
    "buddy-alloc-fail": "transient page-allocation failure "
                        "(OutOfMemory raised before any state changes)",
    "dsv-assign-drop": "a buddy ownership event is lost: the frames stay "
                       "*unknown* (outside every DSV)",
    "trace-drop": "the tracing ring buffer drops a function-entry record",
    "fuzzer-stall": "a fuzzing round spends its time budget without "
                    "making coverage progress",
    "serve-ibpb-drop": "the tenant-switch IBPB microcode op faults; the "
                       "kernel falls back to a full branch-unit flush "
                       "(never a skipped barrier)",
    "view-refill-fault": "a view-cache refill aborts after the "
                         "conservative block: no entry is installed and "
                         "the next access re-misses",
    "admission-queue-corrupt": "an admission-queue slot fails its "
                               "integrity check at arrival: the request "
                               "is shed, never dispatched with corrupt "
                               "tenant metadata",
}


class DSVMTWalkFault(RuntimeError):
    """A DSVMT walk aborted before producing a leaf bit.

    The enforcement policy must treat this as *not in view* -- block the
    load -- and must not install any cache entry for the frame.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault point.

    ``probability`` is evaluated per draw on the point's private RNG
    stream; ``start_after`` skips the first N draws (so boot can
    complete before faults start); ``max_fires`` bounds total firings.
    """

    point: str
    probability: float = 1.0
    max_fires: int | None = None
    start_after: int = 0

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; known points: "
                f"{sorted(FAULT_POINTS)}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability} not in [0, 1]")

    def to_dict(self) -> dict[str, Any]:
        return {"point": self.point, "probability": self.probability,
                "max_fires": self.max_fires,
                "start_after": self.start_after}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        return cls(point=data["point"],
                   probability=data.get("probability", 1.0),
                   max_fires=data.get("max_fires"),
                   start_after=data.get("start_after", 0))


@dataclass
class FaultPlane:
    """A seeded set of armed fault points plus firing accounting."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()
    draws: dict[str, int] = field(default_factory=dict)
    fires: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        by_point: dict[str, FaultSpec] = {}
        for spec in self.specs:
            if spec.point in by_point:
                raise ValueError(f"duplicate spec for point {spec.point!r}")
            by_point[spec.point] = spec
        self._by_point = by_point
        # One private RNG stream per point: firing decisions at one point
        # never shift another point's sequence.
        self._rngs = {point: random.Random(f"{self.seed}:{point}")
                      for point in by_point}

    def should_fire(self, point: str) -> bool:
        """Draw the fault decision for one visit of ``point``."""
        if point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {point!r}")
        spec = self._by_point.get(point)
        if spec is None:
            return False
        draw = self.draws.get(point, 0) + 1
        self.draws[point] = draw
        if draw <= spec.start_after:
            return False
        if spec.max_fires is not None \
                and self.fires.get(point, 0) >= spec.max_fires:
            return False
        if spec.probability < 1.0 \
                and self._rngs[point].random() >= spec.probability:
            return False
        self.fires[point] = self.fires.get(point, 0) + 1
        return True

    def total_fires(self) -> int:
        return sum(self.fires.values())

    # -- serialization (for shipping specs into campaign subprocesses) ----

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed,
                "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlane":
        return cls(seed=data.get("seed", 0),
                   specs=tuple(FaultSpec.from_dict(s)
                               for s in data.get("specs", ())))


#: The plane instrumented modules consult; ``None`` disables all faults.
_ACTIVE: FaultPlane | None = None

#: Bumped every time the active plane changes (arming *and* disarming).
#: Memoization layers (the block JIT's epoch key) use this to notice that
#: fault points were (re)armed between two executions of the same code.
_GENERATION: int = 0


def active_plane() -> FaultPlane | None:
    return _ACTIVE


def generation() -> int:
    """Monotonic arming generation of the fault plane."""
    return _GENERATION


def fire(point: str) -> bool:
    """Hook called by instrumented modules on their degraded-path branch.

    Near-free when no plane is active (one global read and an ``is
    None`` test), so the fault points cost nothing in normal runs.
    """
    plane = _ACTIVE
    if plane is None:
        return False
    return plane.should_fire(point)


@contextmanager
def inject(plane: FaultPlane) -> Iterator[FaultPlane]:
    """Activate ``plane`` for the dynamic extent of the block."""
    global _ACTIVE, _GENERATION
    previous = _ACTIVE
    _ACTIVE = plane
    _GENERATION += 1
    try:
        yield plane
    finally:
        _ACTIVE = previous
        _GENERATION += 1
