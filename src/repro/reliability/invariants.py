"""Fail-closed invariant checks under injected faults.

The security argument of the paper is conservative by construction: a
speculation check that cannot complete (cache miss, aborted DSVMT walk,
lost ownership event, failed allocation) must *fence*, never permit.  This
module turns that argument into an executable matrix: every scenario in
:data:`FAULT_SWEEP` arms the fault plane a different way, and the
:class:`InvariantChecker` re-runs the attack PoCs and a workload bout
under it, asserting that

* every active/passive PoC stays **blocked** under ``perspective`` and
  ``perspective++`` (an injected out-of-memory abort counts as blocked --
  the run died before any transient leak, which is the fail-closed
  outcome);
* the DSV plane never exposes a **stale owner**: after a faulted workload
  bout, every frame the registry claims is cross-checked against the
  buddy allocator's ground truth, and the per-context views/DSVMTs must
  agree with the registry exactly (:func:`audit_dsv_fail_closed`);
* dropped trace records may only **shrink** a dynamic ISV, never grow it
  (a smaller view fences more -- a perf regression, not a hole);
* fuzzer stalls may only **lower** campaign findings, never raise them;
* every armed fault point actually **fired** during the scenario, so a
  renamed or dead hook cannot silently turn the sweep into a no-op.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro.reliability.faultplane import FaultPlane, FaultSpec, inject

#: Column order of the invariant matrix.
CHECKS = ("attacks-blocked", "no-stale-owner", "isv-monotone",
          "fuzzer-monotone", "secret-intact", "admission-closed",
          "fault-activity")

#: Default PoC set: every registered attack.
DEFAULT_ATTACKS = ("spectre-v1-active", "spectre-v2-active",
                   "spectre-v2-passive", "retbleed-passive",
                   "spectre-rsb-passive", "bhi-passive",
                   "spectre-v2-vs-eibrs", "ebpf-injection")

#: Schemes that must stay leak-free under every fault spec.
DEFAULT_SCHEMES = ("perspective", "perspective++")


@dataclass(frozen=True)
class FaultScenario:
    """A named fault-plane configuration for one sweep row."""

    name: str
    specs: tuple[FaultSpec, ...]

    def plane(self, seed: int = 0) -> FaultPlane:
        """A fresh plane for one run; per-run planes keep runs
        independent and their fire counts attributable."""
        return FaultPlane(seed=seed, specs=self.specs)

    def arms(self, point: str) -> bool:
        return any(spec.point == point for spec in self.specs)


#: The standard sweep: each fault point alone (at a rate high enough to
#: matter), then everything at once at degraded-but-survivable rates.
FAULT_SWEEP: tuple[FaultScenario, ...] = (
    FaultScenario("isv-forced-miss",
                  (FaultSpec("isv-cache-forced-miss", 1.0),)),
    FaultScenario("dsv-forced-miss",
                  (FaultSpec("dsv-cache-forced-miss", 1.0),)),
    FaultScenario("view-cache-stale",
                  (FaultSpec("isv-cache-stale", 0.5),
                   FaultSpec("dsv-cache-stale", 0.5))),
    FaultScenario("dsvmt-walk-fail",
                  (FaultSpec("dsvmt-walk-fail", 0.5),)),
    FaultScenario("buddy-alloc-fail",
                  (FaultSpec("buddy-alloc-fail", 0.01),)),
    FaultScenario("dsv-assign-drop",
                  (FaultSpec("dsv-assign-drop", 0.25),)),
    FaultScenario("trace-drop",
                  (FaultSpec("trace-drop", 0.3),)),
    FaultScenario("fuzzer-stall",
                  (FaultSpec("fuzzer-stall", 0.3),)),
    FaultScenario("combined-degraded",
                  (FaultSpec("isv-cache-forced-miss", 0.1),
                   FaultSpec("dsv-cache-forced-miss", 0.1),
                   FaultSpec("isv-cache-stale", 0.1),
                   FaultSpec("dsv-cache-stale", 0.1),
                   FaultSpec("dsvmt-walk-fail", 0.2),
                   FaultSpec("buddy-alloc-fail", 0.002),
                   FaultSpec("dsv-assign-drop", 0.1),
                   FaultSpec("trace-drop", 0.1),
                   FaultSpec("fuzzer-stall", 0.1))),
    # Serve-plane fault points (appended -- earlier rows keep their
    # positions for existing index-based consumers).
    FaultScenario("serve-ibpb-drop",
                  (FaultSpec("serve-ibpb-drop", 1.0),)),
    FaultScenario("view-refill-fault",
                  (FaultSpec("view-refill-fault", 0.5),)),
    FaultScenario("admission-corrupt",
                  (FaultSpec("admission-queue-corrupt", 0.5),)),
)


@dataclass(frozen=True)
class InvariantVerdict:
    """One cell of the matrix: a check's outcome under a scenario."""

    scenario: str
    check: str
    passed: bool
    detail: str = ""


@dataclass
class InvariantMatrix:
    """All verdicts of a sweep, renderable as the bench's pass matrix."""

    verdicts: list[InvariantVerdict] = field(default_factory=list)

    @property
    def all_pass(self) -> bool:
        return all(v.passed for v in self.verdicts)

    def scenarios(self) -> list[str]:
        seen: list[str] = []
        for v in self.verdicts:
            if v.scenario not in seen:
                seen.append(v.scenario)
        return seen

    def cell(self, scenario: str, check: str) -> InvariantVerdict | None:
        for v in self.verdicts:
            if v.scenario == scenario and v.check == check:
                return v
        return None

    def failures(self) -> list[InvariantVerdict]:
        return [v for v in self.verdicts if not v.passed]

    def render(self) -> str:
        out = io.StringIO()
        out.write("Fail-closed invariant matrix under fault injection\n")
        out.write("-" * 78 + "\n")
        out.write(f"{'scenario':<20}"
                  + "".join(f"{c:>17}" for c in CHECKS) + "\n")
        for scenario in self.scenarios():
            cells = []
            for check in CHECKS:
                v = self.cell(scenario, check)
                cells.append("-" if v is None
                             else ("pass" if v.passed else "FAIL"))
            out.write(f"{scenario:<20}"
                      + "".join(f"{c:>17}" for c in cells) + "\n")
        failures = self.failures()
        if failures:
            out.write("\nviolations:\n")
            for v in failures:
                out.write(f"  [{v.scenario} / {v.check}] {v.detail}\n")
        else:
            out.write("\nall invariants hold: faults fence, they never "
                      "permit.\n")
        return out.getvalue()


def audit_dsv_fail_closed(kernel, framework) -> list[str]:
    """Cross-check the DSV plane against allocator ground truth.

    Returns human-readable problem strings (empty means the invariant
    holds).  Three things must be true no matter what faults were
    injected:

    * every (frame -> owner) record in the registry matches the buddy
      allocator's live ownership -- a mismatch is a *stale owner*, the
      one state fault injection must never produce (it would let a
      context speculate on a reallocated frame);
    * every frame in a context's :class:`DataSpeculationView` has a
      matching registry record (views may lag behind reality -- dropped
      assigns -- but never lead it);
    * each context's DSVMT leaf set equals its view's frame set (the
      hardware path and the OS path answer identically).
    """
    problems: list[str] = []
    buddy_owner: dict[int, int | None] = {}
    for head, order, owner in kernel.buddy.allocations():
        for frame in range(head, head + (1 << order)):
            buddy_owner[frame] = owner
    registry = framework.dsv_registry
    owners = registry.frame_owners()
    for frame, owner in sorted(owners.items()):
        actual = buddy_owner.get(frame)
        if actual != owner:
            problems.append(f"stale owner: frame {frame} registry says "
                            f"context {owner}, allocator says {actual}")
    for ctx in registry.contexts():
        view_frames = set(registry.view_for(ctx).frames)
        dsvmt_frames = set(registry.dsvmt_for(ctx).frames())
        for frame in sorted(view_frames):
            if owners.get(frame) != ctx:
                problems.append(f"view of context {ctx} holds frame "
                                f"{frame} without a matching owner record")
        if view_frames != dsvmt_frames:
            extra = sorted(dsvmt_frames - view_frames)
            missing = sorted(view_frames - dsvmt_frames)
            problems.append(f"DSVMT/view divergence for context {ctx}: "
                            f"dsvmt-only={extra[:4]} view-only="
                            f"{missing[:4]}")
    return problems


class InvariantChecker:
    """Run the fail-closed checks for fault scenarios."""

    def __init__(self,
                 attacks: tuple[str, ...] = DEFAULT_ATTACKS,
                 schemes: tuple[str, ...] = DEFAULT_SCHEMES,
                 seed: int = 0) -> None:
        self.attacks = attacks
        self.schemes = schemes
        self.seed = seed

    # -- individual checks -------------------------------------------------

    def _check_attacks_blocked(
            self, scenario: FaultScenario) -> tuple[InvariantVerdict, int]:
        from repro.attacks.harness import run_attack
        from repro.kernel.buddy import OutOfMemory
        fires = 0
        leaks: list[str] = []
        aborted = 0
        for attack in self.attacks:
            for scheme in self.schemes:
                plane = scenario.plane(self.seed)
                with inject(plane):
                    try:
                        result = run_attack(attack, scheme)
                        if result.success:
                            leaks.append(
                                f"{attack} under {scheme} leaked "
                                f"{result.leaked!r}")
                    except OutOfMemory:
                        # The run died on an injected allocation failure
                        # before anything could leak: fail-closed.
                        aborted += 1
                fires += plane.total_fires()
        detail = (f"{len(self.attacks) * len(self.schemes)} PoC runs, "
                  f"{aborted} aborted fail-closed")
        if leaks:
            detail = "; ".join(leaks)
        return (InvariantVerdict(scenario.name, "attacks-blocked",
                                 not leaks, detail), fires)

    def _check_no_stale_owner(
            self, scenario: FaultScenario) -> tuple[InvariantVerdict, int]:
        from repro.attacks.harness import non_driver_isv_functions
        from repro.core.framework import Perspective
        from repro.core.views import InstructionSpeculationView
        from repro.defenses.perspective import PerspectivePolicy
        from repro.kernel.buddy import OutOfMemory
        from repro.kernel.image import shared_image
        from repro.kernel.kernel import MiniKernel
        from repro.workloads.driver import Driver
        from repro.workloads.lebench import exercise_all
        plane = scenario.plane(self.seed)
        note = "workload completed"
        with inject(plane):
            # Framework attaches *before* the process exists so ownership
            # hooks (and the dsv-assign-drop fault point) see every
            # allocation the workload makes.
            kernel = MiniKernel(image=shared_image())
            framework = Perspective(kernel)
            try:
                proc = kernel.create_process("lebench")
                framework.install_isv(InstructionSpeculationView(
                    proc.cgroup.cg_id,
                    non_driver_isv_functions(kernel.image),
                    kernel.layout, source="invariant"))
                kernel.pipeline.set_policy(PerspectivePolicy(framework))
                exercise_all(Driver(kernel, proc, rare_every=12))
            except OutOfMemory as exc:
                note = f"workload aborted fail-closed ({exc})"
        problems = audit_dsv_fail_closed(kernel, framework)
        dropped = framework.dsv_registry.dropped_assign_events
        detail = (f"{note}; {dropped} assign events dropped; "
                  f"{len(problems)} audit problems")
        if problems:
            detail += ": " + "; ".join(problems[:3])
        return (InvariantVerdict(scenario.name, "no-stale-owner",
                                 not problems, detail),
                plane.total_fires())

    def _check_isv_monotone(
            self, scenario: FaultScenario) -> tuple[InvariantVerdict, int]:
        from repro.eval.envs import build_isv_for
        from repro.kernel.buddy import OutOfMemory
        from repro.kernel.image import shared_image
        from repro.kernel.kernel import MiniKernel

        def dynamic_isv_functions(plane: FaultPlane | None):
            def build():
                kernel = MiniKernel(image=shared_image())
                proc = kernel.create_process("lebench")
                return frozenset(
                    build_isv_for(kernel, proc, "lebench",
                                  "dynamic").functions)
            if plane is None:
                return build()
            with inject(plane):
                return build()

        baseline = dynamic_isv_functions(None)
        plane = scenario.plane(self.seed)
        try:
            faulted = dynamic_isv_functions(plane)
        except OutOfMemory as exc:
            return (InvariantVerdict(
                scenario.name, "isv-monotone", True,
                f"profiling aborted fail-closed ({exc})"),
                plane.total_fires())
        grew = faulted - baseline
        detail = (f"baseline {len(baseline)} fns, faulted {len(faulted)} "
                  f"fns ({len(baseline) - len(faulted)} lost to drops)")
        if grew:
            detail = (f"faulted ISV GREW by {len(grew)} functions: "
                      f"{sorted(grew)[:4]}")
        return (InvariantVerdict(scenario.name, "isv-monotone",
                                 not grew, detail), plane.total_fires())

    def _check_fuzzer_monotone(
            self, scenario: FaultScenario) -> tuple[InvariantVerdict, int]:
        from repro.kernel.image import shared_image
        from repro.scanner.fuzzer import run_campaign
        image = shared_image()
        clean = run_campaign(image, hours=5.0, seed=self.seed + 7)
        plane = scenario.plane(self.seed)
        with inject(plane):
            faulted = run_campaign(image, hours=5.0, seed=self.seed + 7)
        ok = faulted.gadgets_found <= clean.gadgets_found
        detail = (f"clean {clean.gadgets_found} gadgets, stalled "
                  f"{faulted.gadgets_found} "
                  f"({faulted.stalled_rounds} stalled rounds)")
        return (InvariantVerdict(scenario.name, "fuzzer-monotone", ok,
                                 detail), plane.total_fires())

    def _check_secret_intact(
            self, scenario: FaultScenario) -> tuple[InvariantVerdict, int]:
        """The conformance oracle under faults: a dropped tenant-switch
        IBPB or a faulted view-cache refill may cost cycles, but the
        *architectural* digest -- syscall outcomes, memory, allocator
        state, and above all the planted secret -- must match the
        fault-free run byte for byte, and the secret must never move."""
        from repro.serve.conformance import (
            _ARCH_KEYS,
            generate_trace,
            run_trace_under,
        )
        fires = 0
        problems: list[str] = []
        trace = generate_trace(self.seed, steps=8, tenants=2)
        for scheme in self.schemes:
            baseline = run_trace_under(scheme, trace, tenants=2)
            plane = scenario.plane(self.seed)
            with inject(plane):
                faulted = run_trace_under(scheme, trace, tenants=2)
            fires += plane.total_fires()
            if not faulted["secret_intact"]:
                problems.append(f"{scheme}: planted secret corrupted "
                                "under faults")
            diverged = [key for key in _ARCH_KEYS
                        if faulted[key] != baseline[key]]
            if diverged:
                problems.append(f"{scheme}: architectural divergence "
                                f"under faults: {diverged}")
        detail = (f"{len(self.schemes)} schemes, trace of {len(trace)} "
                  "steps, architectural digests identical")
        if problems:
            detail = "; ".join(problems)
        return (InvariantVerdict(scenario.name, "secret-intact",
                                 not problems, detail), fires)

    def _check_admission_closed(
            self, scenario: FaultScenario) -> tuple[InvariantVerdict, int]:
        """A corrupted admission-queue slot is shed, never dispatched:
        the books must balance exactly (every arrival either completed
        or was shed, every corrupt slot accounted as shed, every fault
        firing accounted as a corrupt shed)."""
        from repro.serve.engine import ServeConfig, run_serve
        plane = scenario.plane(self.seed)
        config = ServeConfig(scheme="perspective", tenants=2, seed=self.seed,
                             requests_per_tenant=6)
        with inject(plane):
            report = run_serve(config)
        fires = plane.total_fires()
        arrivals = sum(t.arrivals for t in report.tenants)
        admitted = sum(t.admitted for t in report.tenants)
        shed = sum(t.shed for t in report.tenants)
        corrupt = sum(t.corrupt_shed for t in report.tenants)
        problems: list[str] = []
        if admitted + shed != arrivals:
            problems.append(f"books don't balance: {arrivals} arrivals "
                            f"!= {admitted} admitted + {shed} shed")
        if report.completed != admitted:
            problems.append(f"admitted requests went missing: "
                            f"{admitted} admitted, "
                            f"{report.completed} completed")
        if corrupt != plane.fires.get("admission-queue-corrupt", 0):
            problems.append(
                f"corrupt sheds ({corrupt}) != fault firings "
                f"({plane.fires.get('admission-queue-corrupt', 0)}): a "
                "corrupted slot was dispatched")
        detail = (f"{arrivals} arrivals, {corrupt} corrupt slots shed, "
                  f"{report.completed} completed")
        if problems:
            detail = "; ".join(problems)
        return (InvariantVerdict(scenario.name, "admission-closed",
                                 not problems, detail), fires)

    # -- drivers -----------------------------------------------------------

    def check_scenario(self, scenario: FaultScenario
                       ) -> list[InvariantVerdict]:
        """All applicable checks for one scenario."""
        verdicts: list[InvariantVerdict] = []
        fires = 0
        v, f = self._check_attacks_blocked(scenario)
        verdicts.append(v)
        fires += f
        v, f = self._check_no_stale_owner(scenario)
        verdicts.append(v)
        fires += f
        if scenario.arms("trace-drop"):
            v, f = self._check_isv_monotone(scenario)
            verdicts.append(v)
            fires += f
        if scenario.arms("fuzzer-stall"):
            v, f = self._check_fuzzer_monotone(scenario)
            verdicts.append(v)
            fires += f
        if scenario.arms("serve-ibpb-drop") \
                or scenario.arms("view-refill-fault"):
            v, f = self._check_secret_intact(scenario)
            verdicts.append(v)
            fires += f
        if scenario.arms("admission-queue-corrupt"):
            v, f = self._check_admission_closed(scenario)
            verdicts.append(v)
            fires += f
        # A scenario whose armed points never fire proves nothing -- it
        # usually means a hook was renamed or removed.
        verdicts.append(InvariantVerdict(
            scenario.name, "fault-activity", fires > 0,
            f"{fires} injected faults across the scenario's runs"))
        return verdicts

    def run(self, scenarios: tuple[FaultScenario, ...] = FAULT_SWEEP
            ) -> InvariantMatrix:
        matrix = InvariantMatrix()
        for scenario in scenarios:
            matrix.verdicts.extend(self.check_scenario(scenario))
        return matrix
