"""JSON round-tripping for experiment results (campaign journal payloads).

The campaign runner executes experiments in subprocesses and checkpoints
their results into a JSON journal; these functions flatten each
experiment object into its raw fields (no derived values -- those are
recomputed by the renderers) and rebuild an equivalent object on resume,
so a resumed campaign renders byte-identical tables without re-running
anything.
"""

from __future__ import annotations

from typing import Any

from repro.attacks.base import AttackResult
from repro.attacks.harness import MatrixCell
from repro.eval.metrics import FenceBreakdown
from repro.eval.runner import (
    AppsExperiment,
    BreakdownExperiment,
    GadgetExperiment,
    KasperExperiment,
    LEBenchExperiment,
    SurfaceExperiment,
)


def lebench_to_payload(exp: LEBenchExperiment) -> dict[str, Any]:
    return {"schemes": list(exp.schemes),
            "cycles": {s: dict(tests) for s, tests in exp.cycles.items()}}


def lebench_from_payload(data: dict[str, Any]) -> LEBenchExperiment:
    exp = LEBenchExperiment(schemes=tuple(data["schemes"]))
    exp.cycles = {s: dict(tests) for s, tests in data["cycles"].items()}
    return exp


def apps_to_payload(exp: AppsExperiment) -> dict[str, Any]:
    return {
        "schemes": list(exp.schemes),
        "total_cycles_per_request": {
            app: dict(per) for app, per
            in exp.total_cycles_per_request.items()},
        "kernel_cycles_per_request": {
            app: dict(per) for app, per
            in exp.kernel_cycles_per_request.items()},
    }


def apps_from_payload(data: dict[str, Any]) -> AppsExperiment:
    exp = AppsExperiment(schemes=tuple(data["schemes"]))
    exp.total_cycles_per_request = {
        app: dict(per) for app, per
        in data["total_cycles_per_request"].items()}
    exp.kernel_cycles_per_request = {
        app: dict(per) for app, per
        in data["kernel_cycles_per_request"].items()}
    return exp


def surface_to_payload(exp: SurfaceExperiment) -> dict[str, Any]:
    return {"total_functions": exp.total_functions,
            "static_isv_size": dict(exp.static_isv_size),
            "dynamic_isv_size": dict(exp.dynamic_isv_size)}


def surface_from_payload(data: dict[str, Any]) -> SurfaceExperiment:
    return SurfaceExperiment(
        total_functions=data["total_functions"],
        static_isv_size=dict(data["static_isv_size"]),
        dynamic_isv_size=dict(data["dynamic_isv_size"]))


def gadgets_to_payload(exp: GadgetExperiment) -> dict[str, Any]:
    return {
        "blocked": {app: {flavor: dict(classes)
                          for flavor, classes in rows.items()}
                    for app, rows in exp.blocked.items()},
        "total_by_class": dict(exp.total_by_class),
        "search_space_functions": dict(exp.search_space_functions),
    }


def gadgets_from_payload(data: dict[str, Any]) -> GadgetExperiment:
    return GadgetExperiment(
        blocked={app: {flavor: dict(classes)
                       for flavor, classes in rows.items()}
                 for app, rows in data["blocked"].items()},
        total_by_class=dict(data["total_by_class"]),
        search_space_functions=dict(data["search_space_functions"]))


def kasper_to_payload(exp: KasperExperiment) -> dict[str, Any]:
    return {"speedups": dict(exp.speedups)}


def kasper_from_payload(data: dict[str, Any]) -> KasperExperiment:
    return KasperExperiment(speedups=dict(data["speedups"]))


def breakdown_to_payload(exp: BreakdownExperiment) -> dict[str, Any]:
    return {
        "breakdowns": {
            workload: {scheme: {"isv_fences": fb.isv_fences,
                                "dsv_fences": fb.dsv_fences,
                                "other_fences": fb.other_fences,
                                "committed_ops": fb.committed_ops}
                       for scheme, fb in per.items()}
            for workload, per in exp.breakdowns.items()},
        "isv_cache_hit_rate": {w: dict(per) for w, per
                               in exp.isv_cache_hit_rate.items()},
        "dsv_cache_hit_rate": {w: dict(per) for w, per
                               in exp.dsv_cache_hit_rate.items()},
    }


def breakdown_from_payload(data: dict[str, Any]) -> BreakdownExperiment:
    return BreakdownExperiment(
        breakdowns={
            workload: {scheme: FenceBreakdown(**fields)
                       for scheme, fields in per.items()}
            for workload, per in data["breakdowns"].items()},
        isv_cache_hit_rate={w: dict(per) for w, per
                            in data["isv_cache_hit_rate"].items()},
        dsv_cache_hit_rate={w: dict(per) for w, per
                            in data["dsv_cache_hit_rate"].items()})


def security_to_payload(cells: list[MatrixCell]) -> dict[str, Any]:
    return {"cells": [{
        "attack": cell.attack,
        "scheme": cell.scheme,
        "secret_hex": cell.result.secret.hex(),
        "leaked_hex": cell.result.leaked.hex(),
        "unrecovered": cell.result.unrecovered,
        "notes": cell.result.notes,
    } for cell in cells]}


def campaign_to_payload(report: dict[str, Any]) -> dict[str, Any]:
    """The serving-campaign cell is already a JSON-able report dict."""
    return report


def campaign_from_payload(data: dict[str, Any]) -> dict[str, Any]:
    return data


# ---------------------------------------------------------------------------
# Journal forward compatibility
# ---------------------------------------------------------------------------

#: Defaults for per-experiment journal records: keys newer runners write
#: but journals from before an upgrade may lack.  ``default_record``
#: fills these on load, so a pre-upgrade journal resumes cleanly.
RECORD_DEFAULTS: dict[str, Any] = {
    "attempts": 1,
    "retry_delays": [],
    "error": None,
    "payload": None,
}


def default_record(record: dict[str, Any]) -> dict[str, Any]:
    """Fill missing per-experiment record keys with their defaults."""
    out = dict(RECORD_DEFAULTS)
    out.update(record)
    return out


def header_compatible(stored: dict[str, Any],
                      current: dict[str, Any]) -> bool:
    """Whether a stored journal header can resume under ``current``.

    Every field the stored header carries must match the current
    configuration exactly; fields only the *current* header has are new
    configuration knobs added since the journal was written, and a
    pre-upgrade journal is still resumable (the knob's value at write
    time was, by definition, the default).  A field only the stored
    header has means the configuration schema moved away from it --
    refuse, the journal's meaning can no longer be checked.
    """
    return all(key in current and current[key] == value
               for key, value in stored.items())


def security_from_payload(data: dict[str, Any]) -> list[MatrixCell]:
    return [MatrixCell(
        attack=rec["attack"], scheme=rec["scheme"],
        result=AttackResult(
            name=rec["attack"], scheme=rec["scheme"],
            secret=bytes.fromhex(rec["secret_hex"]),
            leaked=bytes.fromhex(rec["leaked_hex"]),
            unrecovered=rec.get("unrecovered", 0),
            notes=rec.get("notes", "")))
        for rec in data["cells"]]
