"""Kasper-like transient-execution gadget scanner: taint analysis,
fuzzed exploration, and ISV-bounded discovery speedups."""

from repro.scanner.fuzzer import (
    FuzzCampaign,
    ROLE_REACH_WEIGHT,
    TIME_UNITS_PER_HOUR,
    run_campaign,
)
from repro.scanner.gadgets import GADGET_CLASSES, GadgetReport
from repro.scanner.kasper import SpeedupResult, discovery_speedup, scan
from repro.scanner.taint import GadgetFinding, TAINT_SEED, analyze_function

__all__ = [
    "FuzzCampaign",
    "GADGET_CLASSES",
    "GadgetFinding",
    "GadgetReport",
    "ROLE_REACH_WEIGHT",
    "TIME_UNITS_PER_HOUR",
    "SpeedupResult",
    "TAINT_SEED",
    "analyze_function",
    "discovery_speedup",
    "run_campaign",
    "scan",
]
