"""Syzkaller-style coverage exploration model.

Kasper rides on Syzkaller: fuzzing drives execution into kernel functions,
and the taint checker inspects what the fuzzer reaches.  Two costs shape
the discovery rate:

* **reach cost** -- hot syscall paths are cheap to hit; rarely-exercised
  drivers need long mutation chains, so rounds spent there are slow;
* **input depth** -- a gadget only surfaces after its function has been
  fuzzed enough times with the right input shapes (modeled as a per-gadget
  visit threshold).

Perspective bounds the search space to the ISV (Section 6.1): rounds that
would be burned reaching non-ISV code are reinvested in deeper coverage of
the functions that can actually execute transiently -- the source of the
1.14-2.23x discovery-rate speedups of Figure 9.1.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.kernel.image import KernelImage
from repro.reliability.faultplane import fire

#: Exploration weight by function role: how readily the fuzzer reaches it.
#: A round's time cost is the inverse of its target's weight.
ROLE_REACH_WEIGHT = {
    "entry": 8.0, "impl": 8.0, "leaf": 6.0, "helper": 8.0, "fops": 5.0,
    "rare": 2.0, "error": 2.0, "driver": 1.0,
}

#: Simulated-time units per reported "hour" (scaling constant only).
TIME_UNITS_PER_HOUR = 40.0

#: Visit counts after which the 1st, 2nd, ... gadget of a function
#: surfaces (deeper gadgets need rarer input shapes); the long tail keeps
#: extended campaigns productive rather than saturating.
VISIT_THRESHOLDS = (2, 5, 10, 18, 30, 48)


@dataclass
class FuzzCampaign:
    """Outcome of one fuzzing campaign."""

    scope_size: int
    time_units: float = 0.0
    rounds: int = 0
    functions_covered: int = 0
    gadgets_found: int = 0
    #: Rounds that burned budget without coverage (injected stalls).
    stalled_rounds: int = 0
    #: Simulated time of the most recent new finding.
    last_find_time_units: float = 0.0
    #: (simulated_hour, cumulative_gadgets) samples.
    history: list[tuple[float, int]] = field(default_factory=list)

    @property
    def hours(self) -> float:
        return self.time_units / TIME_UNITS_PER_HOUR

    @property
    def discovery_rate(self) -> float:
        """Gadgets per simulated hour over the campaign budget."""
        if self.time_units == 0:
            return 0.0
        return self.gadgets_found / self.hours

    @property
    def productive_rate(self) -> float:
        """Gadgets per hour up to the last new finding (excludes any
        saturated tail); useful for diagnosing campaign sizing."""
        if self.last_find_time_units <= 0.0:
            return 0.0
        return self.gadgets_found / (
            self.last_find_time_units / TIME_UNITS_PER_HOUR)


def _gadget_thresholds(name: str, n_gadgets: int, seed: int) -> list[int]:
    """Deterministic per-gadget visit thresholds for one function.

    Uses crc32 rather than ``hash()``: the built-in string hash is salted
    per interpreter process (PYTHONHASHSEED), which would make campaign
    results differ across runs and break journal reproducibility.
    """
    return [VISIT_THRESHOLDS[zlib.crc32(f"{seed}:{name}:{k}".encode())
                             % len(VISIT_THRESHOLDS)]
            for k in range(n_gadgets)]


def run_campaign(image: KernelImage,
                 scope: frozenset[str] | None = None,
                 hours: float = 25.0,
                 seed: int = 7) -> FuzzCampaign:
    """Fuzz for a simulated-time budget, optionally bounded to ``scope``.

    Each round reaches one function (sampled by reachability weight) at a
    time cost inverse to that weight; the campaign ends when the budget is
    exhausted.
    """
    rng = random.Random(seed)
    names: list[str] = []
    weights: list[float] = []
    for name, info in image.info.items():
        if scope is not None and name not in scope:
            continue
        names.append(name)
        weights.append(ROLE_REACH_WEIGHT.get(info.role, 1.0))
    campaign = FuzzCampaign(scope_size=len(names))
    if not names:
        return campaign

    thresholds = {
        name: _gadget_thresholds(name, len(image.info[name].gadgets), seed)
        for name in names if image.info[name].gadgets}
    budget = hours * TIME_UNITS_PER_HOUR
    visits: dict[str, int] = {}
    found = 0
    spent = 0.0
    # Pre-draw in blocks for speed.
    while spent < budget:
        block = rng.choices(names, weights=weights, k=64)
        for name in block:
            weight = ROLE_REACH_WEIGHT.get(image.info[name].role, 1.0)
            spent += 1.0 / weight
            campaign.rounds += 1
            if fire("fuzzer-stall"):
                # Stalled executor: the round's time is spent but no
                # visit lands, so coverage (and findings) can only lag
                # the fault-free campaign, never exceed it.
                campaign.stalled_rounds += 1
                if spent >= budget:
                    break
                continue
            count = visits.get(name, 0) + 1
            visits[name] = count
            gadget_thresholds = thresholds.get(name)
            if gadget_thresholds is not None:
                # A gadget surfaces the round its threshold is crossed.
                if count in gadget_thresholds:
                    found += gadget_thresholds.count(count)
                    campaign.last_find_time_units = spent
            if spent >= budget:
                break
        campaign.history.append((spent / TIME_UNITS_PER_HOUR, found))
    campaign.functions_covered = len(visits)
    campaign.gadgets_found = found
    campaign.time_units = spent
    return campaign
