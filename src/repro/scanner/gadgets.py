"""Gadget reports: per-class counts and ISV coverage arithmetic.

Kasper classifies its 1533 Linux findings into 805 microarchitectural-
buffer (MDS), 509 port-contention (Port), and 219 cache covert-channel
(Cache) potential gadgets (Section 8.2); the same accounting over the
synthetic image drives Table 8.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scanner.taint import GadgetFinding

GADGET_CLASSES = ("mds", "port", "cache")


@dataclass
class GadgetReport:
    """A set of findings with class-partitioned accounting."""

    findings: list[GadgetFinding] = field(default_factory=list)

    def functions(self) -> frozenset[str]:
        return frozenset(f.function for f in self.findings)

    def count(self, gadget_class: str | None = None) -> int:
        if gadget_class is None:
            return len(self.findings)
        return sum(1 for f in self.findings
                   if f.gadget_class == gadget_class)

    def by_class(self) -> dict[str, int]:
        return {cls: self.count(cls) for cls in GADGET_CLASSES}

    def restricted_to(self, functions: frozenset[str]) -> "GadgetReport":
        """Findings whose function lies inside ``functions``."""
        return GadgetReport([f for f in self.findings
                             if f.function in functions])

    def blocked_fraction(self, isv_functions: frozenset[str],
                         gadget_class: str | None = None) -> float:
        """Fraction of gadgets OUTSIDE the ISV (blocked from transient
        execution) -- Table 8.2's metric."""
        total = self.count(gadget_class)
        if total == 0:
            return 1.0
        inside = self.restricted_to(isv_functions).count(gadget_class)
        return 1.0 - inside / total
