"""The Kasper-like gadget scanner: taint checking + fuzzed exploration.

Two entry points:

* :func:`scan` -- exhaustive static-taint sweep over a function scope
  (the "potential gadgets" accounting of Section 8.2 / Table 8.2);
* :func:`discovery_speedup` -- paired fuzzing campaigns, whole-kernel vs
  ISV-bounded, reproducing the gadget-discovery-rate speedups of
  Figure 9.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.image import KernelImage
from repro.scanner.fuzzer import FuzzCampaign, run_campaign
from repro.scanner.gadgets import GadgetReport
from repro.scanner.taint import analyze_function


def scan(image: KernelImage,
         scope: frozenset[str] | None = None) -> GadgetReport:
    """Taint-analyze every function in scope; returns all findings."""
    report = GadgetReport()
    for name, info in image.info.items():
        if scope is not None and name not in scope:
            continue
        report.findings.extend(
            analyze_function(image.layout[name],
                             gadget_classes=info.gadgets))
    return report


@dataclass
class SpeedupResult:
    """Paired-campaign outcome for one application's ISV.

    Rates are *productive-phase* discovery rates (gadgets per hour up to
    each campaign's last new finding -- campaigns are stopped when dry,
    so trailing dead time is not billed), averaged over several fuzzing
    seeds: individual campaigns are stochastic, and the paper's figure
    reports aggregate rates.
    """

    app: str
    unbounded_rate: float
    bounded_rate: float
    runs: list[tuple[FuzzCampaign, FuzzCampaign]]

    @property
    def speedup(self) -> float:
        if self.unbounded_rate == 0:
            return float("inf")
        return self.bounded_rate / self.unbounded_rate


def discovery_speedup(image: KernelImage, app: str,
                      isv_functions: frozenset[str],
                      hours: float = 35.0, seed: int = 7,
                      n_seeds: int = 16) -> SpeedupResult:
    """Run paired whole-kernel / ISV-bounded campaigns over ``n_seeds``
    fuzzing seeds with the same per-campaign time budget.

    The default budget sits on the metric's plateau: beyond ~25 simulated
    hours the productive-rate ratio is insensitive to the budget, which
    keeps the Figure 9.1 reproduction robust to sizing.
    """
    runs = []
    unbounded_total = bounded_total = 0.0
    for i in range(n_seeds):
        campaign_seed = seed * 1000 + i
        unbounded = run_campaign(image, scope=None, hours=hours,
                                 seed=campaign_seed)
        bounded = run_campaign(image, scope=isv_functions, hours=hours,
                               seed=campaign_seed)
        runs.append((unbounded, bounded))
        unbounded_total += unbounded.productive_rate
        bounded_total += bounded.productive_rate
    return SpeedupResult(app=app,
                         unbounded_rate=unbounded_total / n_seeds,
                         bounded_rate=bounded_total / n_seeds,
                         runs=runs)
