"""Static taint analysis for transient-execution gadget detection.

The detector walks a function's micro-ops tracking two register sets:

* **attacker-influenced** -- seeded with the syscall-argument registers
  (r0-r2) and with r5, the register live pointer values survive in across
  control-flow hijacks (Kasper's *speculative type confusion* class [86]);
* **speculatively-accessed** -- destinations of loads whose address was
  attacker-influenced (the *access* step).

A load whose address derives from speculatively-accessed data is the
*transmit* step: access + transmit in one function is a transient
execution gadget (Section 2.2's two-step generalization).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import Function, Op

#: Registers an attacker influences: syscall arguments architecturally,
#: plus the live-pointer register exploitable via type confusion.
TAINT_SEED = frozenset({"r0", "r1", "r2", "r5"})


@dataclass(frozen=True)
class GadgetFinding:
    """One detected gadget: where the access and transmit steps live."""

    function: str
    access_index: int
    transmit_index: int
    gadget_class: str

    @property
    def access_va(self) -> int:
        raise NotImplementedError  # resolved via the layout by callers


def analyze_function(func: Function,
                     gadget_classes: tuple[str, ...] = (),
                     ) -> list[GadgetFinding]:
    """Scan one function; returns every access->transmit chain found.

    ``gadget_classes`` labels the covert-channel class (MDS / port
    contention / cache) of each finding in body order; deriving the class
    requires the microarchitectural analysis Kasper performs on hardware
    traces, which the synthetic image records as ground truth.  Findings
    beyond the labeled count default to "cache".
    """
    tainted: set[str] = set(TAINT_SEED)
    accessed: set[str] = set()
    access_index: int | None = None
    findings: list[GadgetFinding] = []
    for idx, op in enumerate(func.body):
        kind = op.op
        if kind is Op.ALU:
            if op.dst is None:
                continue
            srcs = op.reads()
            if any(src in accessed for src in srcs):
                accessed.add(op.dst)
                tainted.discard(op.dst)
            elif any(src in tainted for src in srcs):
                tainted.add(op.dst)
                accessed.discard(op.dst)
            else:
                tainted.discard(op.dst)
                accessed.discard(op.dst)
        elif kind is Op.LOAD:
            if op.src1 in accessed:
                # Transmit: address depends on speculatively-accessed data.
                n = len(findings)
                label = gadget_classes[n] if n < len(gadget_classes) \
                    else "cache"
                findings.append(GadgetFinding(
                    function=func.name,
                    access_index=access_index if access_index is not None
                    else idx,
                    transmit_index=idx,
                    gadget_class=label))
                accessed.add(op.dst)
                tainted.discard(op.dst)
            elif op.src1 in tainted:
                accessed.add(op.dst)
                tainted.discard(op.dst)
                access_index = idx
            else:
                tainted.discard(op.dst)
                accessed.discard(op.dst)
    return findings
