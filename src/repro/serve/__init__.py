"""Multi-tenant traffic simulation (the "heavy traffic" workload plane).

``repro.serve`` opens the workload dimension the paper evaluates with
ab/redis-benchmark/memslap (Ch. 7) but at *multi-tenant* pressure, where
the interesting security/perf trade-off lives: context switches between
distrusting tenants are exactly where ISV/DSV view switches concentrate.

Three layers:

* :mod:`repro.serve.arrival` -- a seeded open-loop arrival process; a
  pure function of ``(seed, config)``, so schedules are byte-identical
  regardless of process, worker count, or hash seed;
* :mod:`repro.serve.engine` -- the deterministic traffic engine: tenants
  are cgroup-backed kernel processes sharing one simulated core; a
  run-to-completion scheduler charges real context-switch and view-switch
  costs through the existing pipeline and driver; an admission-control
  bound sheds load deterministically;
* :mod:`repro.serve.shard` -- the N-shard scale-out engine: each shard
  is a private MiniKernel core, tenants are placed by deterministic
  policies, cross-shard migrations are explicitly charged, and an
  event-driven scheduler skips idle gaps so million-request experiments
  finish in seconds;
* :mod:`repro.serve.conformance` -- the cross-scheme differential
  oracle: every defense scheme must produce identical *architectural*
  results on a seeded syscall corpus, differing only in cycle counts.
"""

from repro.serve.arrival import (
    Arrival,
    arrival_schedule,
    arrival_stream,
    percentile,
)
from repro.serve.conformance import (
    CONFORMANCE_SCHEMES,
    ConformanceResult,
    check_seed,
    generate_trace,
    minimize_divergence,
    run_corpus,
)
from repro.serve.engine import (
    ServeConfig,
    ServeReport,
    TenantReport,
    run_serve,
    serve_cell,
)
from repro.serve.shard import (
    PLACEMENT_POLICIES,
    Placer,
    ShardedServeConfig,
    ShardedServeReport,
    memo_tables_of,
    plan_placement,
    run_serve_sharded,
    scale_shard_cell,
    static_placement,
)

__all__ = [
    "Arrival",
    "arrival_schedule",
    "arrival_stream",
    "percentile",
    "ServeConfig",
    "ServeReport",
    "TenantReport",
    "run_serve",
    "serve_cell",
    "PLACEMENT_POLICIES",
    "Placer",
    "ShardedServeConfig",
    "ShardedServeReport",
    "memo_tables_of",
    "plan_placement",
    "run_serve_sharded",
    "scale_shard_cell",
    "static_placement",
    "CONFORMANCE_SCHEMES",
    "ConformanceResult",
    "check_seed",
    "generate_trace",
    "minimize_divergence",
    "run_corpus",
]
