"""CLI entry point: ``python -m repro.serve``.

Without a subcommand, runs the multi-tenant serving sweep (seeds x
tenant counts) through the :mod:`repro.exec` engine and emits the merged
metrics snapshot.  Everything derives from seeded schedules and simulated
cycles, so two invocations with the same arguments produce
**byte-identical** output regardless of ``--workers`` -- the CI smoke
step runs the sweep twice (1 and 2 workers), byte-compares the files,
and gates the committed snapshot with ``python -m repro.obs diff``.

Usage::

    python -m repro.serve                  # default sweep, JSON summary
    python -m repro.serve --smoke          # trimmed CI sweep
    python -m repro.serve --workers 2      # parallel cells, same bytes
    python -m repro.serve -o snap.json     # write the metrics snapshot

Conformance subcommand (the architectural oracle)::

    python -m repro.serve conformance --seeds 20     # seeds 0..19
    python -m repro.serve conformance --seeds 7,9    # exactly these
"""

from __future__ import annotations

import argparse
import json
import sys

#: Sweep parameter sets: (seeds, tenant counts, requests per tenant).
DEFAULT_SWEEP = {"seeds": [0, 1, 2], "tenants": [2, 3, 4],
                 "requests_per_tenant": 10}
SMOKE_SWEEP = {"seeds": [0, 1], "tenants": [2, 3],
               "requests_per_tenant": 6}


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.exec.engine import run_experiment
    from repro.obs import MetricsRegistry

    params = dict(SMOKE_SWEEP if args.smoke else DEFAULT_SWEEP)
    params["scheme"] = args.scheme
    result, report = run_experiment(
        "serve", params, workers=args.workers,
        use_cache=not args.no_cache)
    print(report.summary(), file=sys.stderr)

    registry = MetricsRegistry.from_snapshot(result["metrics"])
    registry.meta.update({
        "plane": "repro.serve",
        "sweep": "smoke" if args.smoke else "default",
        "scheme": args.scheme,
        "seeds": params["seeds"], "tenants": params["tenants"],
        "requests_per_tenant": params["requests_per_tenant"],
    })
    rendered_json = registry.to_json(indent=1) + "\n"
    if args.json:
        print(rendered_json, end="")
    else:
        for cell in result["cells"]:
            cfg = cell["config"]
            print(f"seed={cfg['seed']} tenants={cfg['tenants']} "
                  f"scheme={cfg['scheme']}: "
                  f"completed={cell['completed']} shed={cell['shed']} "
                  f"p50={cell['latency_p50']:.0f} "
                  f"p99={cell['latency_p99']:.0f} "
                  f"rps={cell['throughput_rps']:.0f}")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered_json)
        print(f"snapshot written to {args.out}", file=sys.stderr)
    return 0


def _parse_seeds(spec: str) -> list[int]:
    """``"20"`` -> seeds 0..19; ``"3,7,11"`` -> exactly those."""
    if "," in spec:
        return [int(s) for s in spec.split(",") if s]
    return list(range(int(spec)))


def _conformance_command(args: argparse.Namespace) -> int:
    from repro.serve.conformance import CONFORMANCE_SCHEMES, run_corpus

    seeds = _parse_seeds(args.seeds)
    schemes = tuple(args.schemes.split(",")) if args.schemes \
        else CONFORMANCE_SCHEMES
    results = run_corpus(seeds, schemes=schemes, steps=args.steps,
                         minimize=not args.no_minimize)
    divergent = [r for r in results if not r.ok]
    for r in results:
        cycles = {s: round(d["cycles"]) for s, d in r.digests.items()}
        status = "ok" if r.ok else "DIVERGENT"
        print(f"seed {r.seed}: {status}  cycles={json.dumps(cycles)}")
    if divergent:
        for r in divergent:
            print()
            print(r.repro())
        print(f"\n{len(divergent)}/{len(results)} seeds diverged",
              file=sys.stderr)
        return 1
    print(f"all {len(results)} seeds architecturally conformant across "
          f"{len(schemes)} schemes")
    return 0


def _subcommand_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="multi-tenant traffic simulator and conformance oracle")
    sub = parser.add_subparsers(dest="command", required=True)

    conf = sub.add_parser(
        "conformance",
        help="differential conformance: every scheme must agree on "
             "architectural results (exit 1 on divergence)")
    conf.add_argument("--seeds", default="20",
                      help="N for seeds 0..N-1, or a comma list (default: "
                           "20)")
    conf.add_argument("--steps", type=int, default=14,
                      help="syscalls per generated trace")
    conf.add_argument("--schemes", default="",
                      help="comma list (default: the conformance set)")
    conf.add_argument("--no-minimize", action="store_true",
                      help="skip trace minimization on divergence")
    return parser


_COMMANDS = {"conformance": _conformance_command}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] in _COMMANDS:
        args = _subcommand_parser().parse_args(argv)
        return _COMMANDS[args.command](args)
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="run the multi-tenant serving sweep and emit the "
                    "metrics snapshot (subcommands: conformance)")
    parser.add_argument("--smoke", action="store_true",
                        help="trimmed CI sweep (2 seeds x 2 tenant counts)")
    parser.add_argument("--scheme", default="perspective",
                        help="defense scheme to serve under")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel cell workers (same bytes either way)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the repro.exec result cache")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON snapshot instead of the "
                             "per-cell summary lines")
    parser.add_argument("-o", "--out", metavar="FILE",
                        help="write the JSON metrics snapshot to FILE")
    args = parser.parse_args(argv)
    return _run_sweep(args)


if __name__ == "__main__":
    sys.exit(main())
