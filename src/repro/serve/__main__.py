"""CLI entry point: ``python -m repro.serve``.

Without a subcommand, runs the multi-tenant serving sweep (seeds x
tenant counts) through the :mod:`repro.exec` engine and emits the merged
metrics snapshot.  Everything derives from seeded schedules and simulated
cycles, so two invocations with the same arguments produce
**byte-identical** output regardless of ``--workers`` -- the CI smoke
step runs the sweep twice (1 and 2 workers), byte-compares the files,
and gates the committed snapshot with ``python -m repro.obs diff``.

Usage::

    python -m repro.serve                  # default sweep, JSON summary
    python -m repro.serve --smoke          # trimmed CI sweep
    python -m repro.serve --workers 2      # parallel cells, same bytes
    python -m repro.serve -o snap.json     # write the metrics snapshot

Conformance subcommand (the architectural oracle)::

    python -m repro.serve conformance --seeds 20     # seeds 0..19
    python -m repro.serve conformance --seeds 7,9    # exactly these
    python -m repro.serve conformance --cache-parity # block JIT replay
                                    # must match interpretation exactly

Adversarial campaign subcommand (attacker tenants + fault storms +
adaptive hardening; same byte-determinism contract)::

    python -m repro.serve campaign --smoke           # CI campaign sweep
    python -m repro.serve campaign --smoke --workers 4
    python -m repro.serve campaign --journal DIR     # checkpoint/resume

Sharded scaling curves (scheme x tenants x shards through the
memoized multi-core engine; one ``repro.exec`` cell per shard)::

    python -m repro.serve scale                      # full scaling grid
    python -m repro.serve scale --smoke --workers 4  # trimmed, parallel
    python -m repro.serve scale --artifacts DIR      # + CSV curves
"""

from __future__ import annotations

import argparse
import json
import sys

#: Sweep parameter sets: (seeds, tenant counts, requests per tenant).
DEFAULT_SWEEP = {"seeds": [0, 1, 2], "tenants": [2, 3, 4],
                 "requests_per_tenant": 10}
SMOKE_SWEEP = {"seeds": [0, 1], "tenants": [2, 3],
               "requests_per_tenant": 6}

#: Scale sweeps (scheme x tenants x shards scaling curves); the full
#: grid is the committed benchmarks/out/serve_scale.json snapshot.
DEFAULT_SCALE = {"schemes": ["unsafe", "perspective"],
                 "tenants": [4, 8], "shards": [1, 2, 4]}
SMOKE_SCALE = {"schemes": ["perspective"], "tenants": [4],
               "shards": [1, 2], "requests_per_tenant": 200}

#: Campaign sweeps: (seeds x fault scenarios).
DEFAULT_CAMPAIGN = {"seeds": [0, 1],
                    "scenarios": ["none", "ibpb-storm", "refill-storm",
                                  "admission-storm", "combined-storm"]}
SMOKE_CAMPAIGN = {"seeds": [0],
                  "scenarios": ["none", "ibpb-storm", "refill-storm",
                                "admission-storm"]}


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.exec.engine import run_experiment
    from repro.obs import MetricsRegistry

    params = dict(SMOKE_SWEEP if args.smoke else DEFAULT_SWEEP)
    params["scheme"] = args.scheme
    # Routing through the sharded engine (even at --shards 1) keeps one
    # code path; shards=1 + the full service model is byte-identical to
    # the single-kernel engine apart from additive shard gauges.
    params["shards"] = args.shards
    # Replay through the block JIT is byte-exact (cache-parity gate), so
    # forcing it on changes only the snapshot's blockcache counters --
    # never the report -- and the smoke gates the miss-reason split.
    params["block_cache"] = True
    from repro.obs import observing
    outer = MetricsRegistry()
    with observing(outer):
        result, report = run_experiment(
            "serve", params, workers=args.workers,
            use_cache=not args.no_cache)
    print(report.summary(), file=sys.stderr)

    registry = MetricsRegistry.from_snapshot(result["metrics"])
    # Result-cache traffic (repro.exec.cache) is observed in the driver
    # process, not inside cell registries; fold it into the snapshot so
    # the committed smoke documents the counters.  Under --no-cache (the
    # CI invocation) they are deterministic zeros.
    outer_counters = outer.snapshot()["counters"]
    for key in ("exec.cache.hits", "exec.cache.misses",
                "exec.cache.stores"):
        registry.add(key, outer_counters.get(key, 0))
    registry.meta.update({
        "plane": "repro.serve",
        "sweep": "smoke" if args.smoke else "default",
        "scheme": args.scheme,
        "seeds": params["seeds"], "tenants": params["tenants"],
        "requests_per_tenant": params["requests_per_tenant"],
        "shards": params["shards"],
    })
    rendered_json = registry.to_json(indent=1) + "\n"
    if args.json:
        print(rendered_json, end="")
    else:
        for cell in result["cells"]:
            cfg = cell["config"]
            print(f"seed={cfg['seed']} tenants={cfg['tenants']} "
                  f"scheme={cfg['scheme']}: "
                  f"completed={cell['completed']} shed={cell['shed']} "
                  f"p50={cell['latency_p50']:.0f} "
                  f"p99={cell['latency_p99']:.0f} "
                  f"rps={cell['throughput_rps']:.0f}")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered_json)
        print(f"snapshot written to {args.out}", file=sys.stderr)
    return 0


def _parse_seeds(spec: str) -> list[int]:
    """``"20"`` -> seeds 0..19; ``"3,7,11"`` -> exactly those."""
    if "," in spec:
        return [int(s) for s in spec.split(",") if s]
    return list(range(int(spec)))


def _cache_parity_command(args: argparse.Namespace,
                          seeds: list[int],
                          schemes: tuple[str, ...]) -> int:
    from repro.serve.conformance import run_cache_parity_corpus

    results = run_cache_parity_corpus(seeds, schemes=schemes,
                                      steps=args.steps)
    divergent = [r for r in results if not r.ok]
    for r in results:
        cycles = {s: round(d["cycles"]) for s, d in r.digests.items()}
        status = "ok" if r.ok else "DIVERGENT"
        print(f"seed {r.seed}: {status}  cycles={json.dumps(cycles)}")
    if divergent:
        for r in divergent:
            print()
            print(r.repro())
        print(f"\n{len(divergent)}/{len(results)} seeds diverged "
              "between block-cache replay and interpretation",
              file=sys.stderr)
        return 1
    print(f"all {len(results)} seeds byte-identical (cycles included) "
          f"with the block cache on vs off across {len(schemes)} schemes")
    return 0


def _conformance_command(args: argparse.Namespace) -> int:
    from repro.serve.conformance import CONFORMANCE_SCHEMES, run_corpus

    seeds = _parse_seeds(args.seeds)
    schemes = tuple(args.schemes.split(",")) if args.schemes \
        else CONFORMANCE_SCHEMES
    if args.cache_parity:
        return _cache_parity_command(args, seeds, schemes)
    results = run_corpus(seeds, schemes=schemes, steps=args.steps,
                         minimize=not args.no_minimize)
    divergent = [r for r in results if not r.ok]
    for r in results:
        cycles = {s: round(d["cycles"]) for s, d in r.digests.items()}
        status = "ok" if r.ok else "DIVERGENT"
        print(f"seed {r.seed}: {status}  cycles={json.dumps(cycles)}")
    if divergent:
        for r in divergent:
            print()
            print(r.repro())
        print(f"\n{len(divergent)}/{len(results)} seeds diverged",
              file=sys.stderr)
        return 1
    print(f"all {len(results)} seeds architecturally conformant across "
          f"{len(schemes)} schemes")
    return 0


#: Scaling-row fields published as per-experiment gauges (and CSV
#: columns): all pure functions of the config, so the snapshot is
#: byte-exact across workers and hash seeds.
_SCALE_FIELDS = (
    "offered", "completed", "shed", "makespan_cycles", "throughput_rps",
    "latency_p50", "latency_p99", "kernel_cycles", "switches",
    "switch_cycles", "migrations_in", "ibpb_flushes",
    "migration_cold_dispatches", "migration_excess_cycles", "memo_keys",
    "memo_replays", "memo_interpreted")


def _scale_command(args: argparse.Namespace) -> int:
    from repro.exec.engine import run_experiment
    from repro.obs import MetricsRegistry

    params = dict(SMOKE_SCALE if args.smoke else DEFAULT_SCALE)
    result, report = run_experiment(
        "serve-scale", params, workers=args.workers,
        use_cache=not args.no_cache)
    print(report.summary(), file=sys.stderr)

    registry = MetricsRegistry()
    for row in result["experiments"]:
        prefix = (f"serve_scale.{row['scheme']}"
                  f".t{row['tenants']}.sh{row['shards']}")
        for fname in _SCALE_FIELDS:
            registry.gauge(f"{prefix}.{fname}", row[fname])
    registry.meta.update({
        "plane": "repro.serve.scale",
        "sweep": "smoke" if args.smoke else "default",
        "schemes": params["schemes"], "tenants": params["tenants"],
        "shards": params["shards"],
    })
    rendered_json = registry.to_json(indent=1) + "\n"
    if args.json:
        print(rendered_json, end="")
    else:
        for row in result["experiments"]:
            print(f"scheme={row['scheme']} tenants={row['tenants']} "
                  f"shards={row['shards']}: "
                  f"completed={row['completed']} shed={row['shed']} "
                  f"rps={row['throughput_rps']:.0f} "
                  f"p99={row['latency_p99']:.0f} "
                  f"migrations={row['migrations_in']} "
                  f"excess={row['migration_excess_cycles']:.0f}")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered_json)
        print(f"snapshot written to {args.out}", file=sys.stderr)
    if args.artifacts:
        import pathlib
        outdir = pathlib.Path(args.artifacts)
        outdir.mkdir(parents=True, exist_ok=True)
        lines = ["scheme,tenants,shards," + ",".join(_SCALE_FIELDS)]
        for row in result["experiments"]:
            lines.append(",".join(
                [row["scheme"], str(row["tenants"]), str(row["shards"])]
                + [repr(row[fname]) for fname in _SCALE_FIELDS]))
        curves = outdir / "serve_scale_curves.csv"
        curves.write_text("\n".join(lines) + "\n")
        print(f"artifacts written to {outdir}", file=sys.stderr)
    return 0


def _campaign_cells_in_order(params: dict) -> list[tuple[int, str]]:
    return [(seed, scenario) for seed in params["seeds"]
            for scenario in params["scenarios"]]


def _campaign_via_journal(args: argparse.Namespace,
                          params: dict) -> dict | None:
    """Run the sweep's cells through the reliability CampaignRunner.

    Each (seed, scenario) cell becomes one ``serve-campaign@...``
    instance: subprocess-isolated, retried, and journaled -- kill the
    process between cells and the next invocation resumes where it
    stopped, assembling the same bytes as an uninterrupted run.
    """
    import os
    import signal

    from repro.obs import MetricsRegistry
    from repro.reliability.campaign import CampaignConfig, CampaignRunner

    instances = []
    cell_params: dict[str, dict] = {}
    for seed, scenario in _campaign_cells_in_order(params):
        name = f"serve-campaign@s{seed}.{scenario}"
        instances.append(name)
        cell_params[name] = {"seed": seed, "scenario": scenario,
                             "observe": True}
    config = CampaignConfig(
        seed=0, experiments=tuple(instances), params=cell_params,
        max_attempts=2, timeout_s=600.0, backoff_base_s=0.05)

    started = {"count": 0}

    def on_start(name: str) -> None:
        kill_after = args.kill_after_cells
        if kill_after is not None and started["count"] >= kill_after:
            # Simulate a hard crash between cells: no cleanup, no
            # journal flush beyond what's already on disk.
            os.kill(os.getpid(), signal.SIGKILL)
        started["count"] += 1

    runner = CampaignRunner(args.journal, config,
                            on_experiment_start=on_start)
    state = runner.run()
    cells = []
    merged = None
    for name in instances:
        payload = state.payloads.get(name)
        if payload is None:
            print(f"{name} failed: "
                  f"{state.failures.get(name, 'missing')}",
                  file=sys.stderr)
            return None
        cell = dict(payload)
        part = MetricsRegistry.from_snapshot(cell.pop("metrics"))
        if merged is None:
            merged = part
        else:
            merged.merge(part)
        cells.append(cell)
    assert merged is not None
    return {"cells": cells, "metrics": merged.snapshot()}


def _campaign_command(args: argparse.Namespace) -> int:
    from repro.obs import MetricsRegistry

    params = dict(SMOKE_CAMPAIGN if args.smoke else DEFAULT_CAMPAIGN)
    params["observe"] = True
    if args.journal:
        result = _campaign_via_journal(args, params)
        if result is None:
            return 1
    else:
        from repro.exec.engine import run_experiment
        result, report = run_experiment(
            "campaign", params, workers=args.workers,
            use_cache=not args.no_cache)
        print(report.summary(), file=sys.stderr)

    registry = MetricsRegistry.from_snapshot(result["metrics"])
    registry.meta.update({
        "plane": "repro.serve.campaign",
        "sweep": "smoke" if args.smoke else "default",
        "seeds": params["seeds"], "scenarios": params["scenarios"],
    })
    rendered_json = registry.to_json(indent=1) + "\n"
    if args.json:
        print(rendered_json, end="")
    else:
        for cell in result["cells"]:
            spec = cell["spec"]
            leaks = cell["leaks"]
            slo = cell["slo"]
            escalations = sum(1 for s in cell["escalation_steps"]
                              if s["action"] == "escalate")
            recovery = slo["recovery_cycles"]
            recovery_txt = (f"{recovery:.0f}"
                            if recovery is not None else "-")
            print(f"seed={spec['seed']} scenario={spec['scenario']}: "
                  f"completed={cell['completed']} shed={cell['shed']} "
                  f"blocked={leaks['blocked_bytes']}"
                  f"/{leaks['attempted_bytes']} "
                  f"escalations={escalations} "
                  f"p99={cell['latency_p99']:.0f} "
                  f"recovery={recovery_txt} "
                  f"secret_intact={cell['secret']['intact']}")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered_json)
        print(f"snapshot written to {args.out}", file=sys.stderr)
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(result["cells"], handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.report}", file=sys.stderr)
    if args.artifacts:
        import pathlib

        from repro.obs.profile import SpanTree
        outdir = pathlib.Path(args.artifacts)
        outdir.mkdir(parents=True, exist_ok=True)
        folded = outdir / "campaign_spans.folded"
        folded.write_text(SpanTree.from_spans(
            registry.snapshot()["spans"]).to_folded())
        print(f"artifacts written to {outdir}", file=sys.stderr)
    # Fail-closed gate: a campaign run that leaked even one byte, or
    # whose planted secret moved, is a red exit for CI.
    for cell in result["cells"]:
        if cell["leaks"]["leaked_bytes"] or not cell["secret"]["intact"]:
            print("LEAK DETECTED: campaign cell "
                  f"s{cell['spec']['seed']}.{cell['spec']['scenario']}",
                  file=sys.stderr)
            return 1
    return 0


def _subcommand_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="multi-tenant traffic simulator and conformance oracle")
    sub = parser.add_subparsers(dest="command", required=True)

    conf = sub.add_parser(
        "conformance",
        help="differential conformance: every scheme must agree on "
             "architectural results (exit 1 on divergence)")
    conf.add_argument("--seeds", default="20",
                      help="N for seeds 0..N-1, or a comma list (default: "
                           "20)")
    conf.add_argument("--steps", type=int, default=14,
                      help="syscalls per generated trace")
    conf.add_argument("--schemes", default="",
                      help="comma list (default: the conformance set)")
    conf.add_argument("--no-minimize", action="store_true",
                      help="skip trace minimization on divergence")
    conf.add_argument("--cache-parity", action="store_true",
                      help="instead of cross-scheme comparison, run each "
                           "trace with the block cache off and on and "
                           "require identical digests AND cycles")

    camp = sub.add_parser(
        "campaign",
        help="adversarial serving campaign: attacker tenants, fault "
             "storms, adaptive Perspective hardening (exit 1 on any "
             "leaked byte)")
    camp.add_argument("--smoke", action="store_true",
                      help="trimmed CI sweep (1 seed x 4 scenarios)")
    camp.add_argument("--workers", type=int, default=1,
                      help="parallel cell workers (same bytes either way)")
    camp.add_argument("--no-cache", action="store_true",
                      help="bypass the repro.exec result cache")
    camp.add_argument("--json", action="store_true",
                      help="print the JSON snapshot instead of per-cell "
                           "summary lines")
    camp.add_argument("-o", "--out", metavar="FILE",
                      help="write the JSON metrics snapshot to FILE")
    camp.add_argument("--report", metavar="FILE",
                      help="write the full per-cell campaign reports")
    camp.add_argument("--journal", metavar="DIR",
                      help="run cells through the reliability campaign "
                           "runner (checkpoint/resume journal in DIR)")
    camp.add_argument("--artifacts", metavar="DIR",
                      help="write CI artifacts (folded flamegraph "
                           "stacks) to DIR")
    camp.add_argument("--kill-after-cells", type=int, default=None,
                      help=argparse.SUPPRESS)  # crash-test hook

    scale = sub.add_parser(
        "scale",
        help="sharded scaling curves: scheme x tenants x shards through "
             "the memoized multi-core engine (one repro.exec cell per "
             "shard; byte-identical under any --workers)")
    scale.add_argument("--smoke", action="store_true",
                       help="trimmed sweep (1 scheme x 1 tenant count "
                            "x 2 shard counts)")
    scale.add_argument("--workers", type=int, default=1,
                       help="parallel shard-cell workers (same bytes "
                            "either way)")
    scale.add_argument("--no-cache", action="store_true",
                       help="bypass the repro.exec result cache")
    scale.add_argument("--json", action="store_true",
                       help="print the JSON snapshot instead of per-row "
                            "summary lines")
    scale.add_argument("-o", "--out", metavar="FILE",
                       help="write the JSON gauge snapshot to FILE")
    scale.add_argument("--artifacts", metavar="DIR",
                       help="write scaling-curve CSV artifacts to DIR")
    return parser


_COMMANDS = {"conformance": _conformance_command,
             "campaign": _campaign_command,
             "scale": _scale_command}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] in _COMMANDS:
        args = _subcommand_parser().parse_args(argv)
        return _COMMANDS[args.command](args)
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="run the multi-tenant serving sweep and emit the "
                    "metrics snapshot (subcommands: conformance)")
    parser.add_argument("--smoke", action="store_true",
                        help="trimmed CI sweep (2 seeds x 2 tenant counts)")
    parser.add_argument("--scheme", default="perspective",
                        help="defense scheme to serve under")
    parser.add_argument("--shards", type=int, default=1,
                        help="simulated cores per cell (tenants placed "
                             "by the hash policy; default 1)")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel cell workers (same bytes either way)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the repro.exec result cache")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON snapshot instead of the "
                             "per-cell summary lines")
    parser.add_argument("-o", "--out", metavar="FILE",
                        help="write the JSON metrics snapshot to FILE")
    args = parser.parse_args(argv)
    return _run_sweep(args)


if __name__ == "__main__":
    sys.exit(main())
