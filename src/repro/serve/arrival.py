"""Seeded open-loop arrival process and quantile helpers.

The arrival schedule is a **pure function** of ``(seed, tenants,
requests_per_tenant, mean_interarrival)``:

* each tenant draws its interarrival gaps from its own
  ``random.Random`` seeded with a *string* key (string seeding hashes
  through SHA-512, so schedules do not depend on ``PYTHONHASHSEED`` or
  the process that generates them);
* the merged schedule is sorted by ``(cycle, tenant, seq)``, so it is
  independent of tenant iteration order and of how many
  :mod:`repro.exec` workers later fan the sweep out.

Open-loop means arrivals never wait for the server (the paper's client
tools -- ab, memslap, redis-benchmark -- are closed-loop, but open-loop
is the standard stress model for tail-latency work: queues grow when the
server falls behind instead of silently throttling the offered load).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from random import Random
from typing import Iterator


@dataclass(frozen=True)
class Arrival:
    """One offered request: when, from whom, and its per-tenant index."""

    cycle: float
    tenant: int
    seq: int


#: Default RNG stream prefix; alternate planes (the adversarial campaign
#: draws one schedule per epoch) pass their own so their schedules never
#: alias the serving sweep's.
DEFAULT_STREAM = "serve:arrival"


def tenant_rng(seed: int, tenant: int,
               stream: str = DEFAULT_STREAM) -> Random:
    """The tenant's private arrival RNG (string-seeded: hash-seed proof)."""
    return Random(f"{stream}:{seed}:tenant:{tenant}")


def tenant_arrivals(seed: int, tenant: int, requests: int,
                    mean_interarrival: float,
                    stream: str = DEFAULT_STREAM) -> list[Arrival]:
    """One tenant's arrival times: exponential gaps, accumulated."""
    if mean_interarrival <= 0:
        raise ValueError("mean_interarrival must be positive")
    rng = tenant_rng(seed, tenant, stream=stream)
    cycle = 0.0
    out: list[Arrival] = []
    for seq in range(requests):
        # Inline inverse-CDF sampling (rather than rng.expovariate) so
        # the schedule depends only on rng.random()'s documented stream.
        cycle += -mean_interarrival * math.log(1.0 - rng.random())
        out.append(Arrival(cycle=cycle, tenant=tenant, seq=seq))
    return out


def tenant_arrival_iter(seed: int, tenant: int, requests: int,
                        mean_interarrival: float,
                        stream: str = DEFAULT_STREAM) -> Iterator[Arrival]:
    """Generator form of :func:`tenant_arrivals` (same draws, same order,
    O(1) memory): the sharded engine streams million-request schedules
    instead of materializing them."""
    if mean_interarrival <= 0:
        raise ValueError("mean_interarrival must be positive")
    rng = tenant_rng(seed, tenant, stream=stream)
    cycle = 0.0
    for seq in range(requests):
        cycle += -mean_interarrival * math.log(1.0 - rng.random())
        yield Arrival(cycle=cycle, tenant=tenant, seq=seq)


def arrival_stream(seed: int, tenants: int, requests_per_tenant: int,
                   mean_interarrival: float,
                   stream: str = DEFAULT_STREAM) -> Iterator[Arrival]:
    """Streaming merge of the per-tenant arrival generators.

    Yields exactly the sequence :func:`arrival_schedule` returns (the
    per-tenant streams are already cycle-sorted, and ``heapq.merge`` on
    ``(cycle, tenant, seq)`` reproduces the stable merged order) while
    holding only one pending arrival per tenant in memory.
    """
    return heapq.merge(
        *(tenant_arrival_iter(seed, tenant, requests_per_tenant,
                              mean_interarrival, stream=stream)
          for tenant in range(tenants)),
        key=lambda a: (a.cycle, a.tenant, a.seq))


def arrival_schedule(seed: int, tenants: int, requests_per_tenant: int,
                     mean_interarrival: float,
                     stream: str = DEFAULT_STREAM) -> list[Arrival]:
    """The merged multi-tenant schedule, in deterministic service order."""
    merged: list[Arrival] = []
    for tenant in range(tenants):
        merged.extend(tenant_arrivals(seed, tenant, requests_per_tenant,
                                      mean_interarrival, stream=stream))
    merged.sort(key=lambda a: (a.cycle, a.tenant, a.seq))
    return merged


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``values``.

    The conventional definition: the smallest element such that at least
    ``q`` percent of the data is <= it.  ``q=0`` is the minimum,
    ``q=100`` the maximum.  Raises on an empty sample -- a percentile of
    nothing is a bug upstream, not a zero.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q={q!r} outside [0, 100]")
    ordered = sorted(values)
    # max(1, ...) also covers q=0 and subnormal q where q/100 underflows
    # to 0.0 -- rank 0 would wrap to ordered[-1], the maximum.
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]
