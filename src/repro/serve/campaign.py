"""Adversarial serving campaigns: attacker tenants, fault storms, and
adaptive Perspective hardening under live traffic.

A **campaign** runs the multi-tenant serving engine for several epochs
on one long-lived kernel while three adversarial pressures are applied
at once:

* **attacker tenants** -- cgroup-backed processes co-located with the
  victims that run real PoCs from :mod:`repro.attacks.harness` through
  the *shared, armed* kernel (:func:`repro.attacks.harness.attack_on`).
  Their probe time is charged to the shared core, so victim tail
  latency feels the attack even when every leak is blocked;
* **fault storms** -- a seeded :class:`~repro.reliability.faultplane.
  FaultPlane` is injected for a window of epochs, firing the
  serve-plane fault points (``serve-ibpb-drop``, ``view-refill-fault``,
  ``admission-queue-corrupt``) plus whatever else the scenario arms.
  Every degraded path fails closed and journals a ``fault-fallback``
  event;
* **adaptive hardening** -- one :class:`~repro.core.audit.
  AdaptiveIsvController` per context digests each epoch's journal slice
  and climbs (or probes back down) the Perspective flavor ladder,
  re-installing the context's ISV live (the paper's Section 5.4
  incident-response flow, closed-loop).

Everything is a pure function of the :class:`CampaignSpec`: arrivals
are string-seeded per epoch (``campaign:epoch:N`` streams), fault
draws are per-point string-seeded, controller backoff jitter is
string-seeded, and the report dict is built in a fixed key order -- so
the same spec yields byte-identical JSON across processes, worker
counts, and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import hashlib
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any

from repro.analysis.binary import APPLICATIONS
from repro.analysis.static_isv import generate_static_isv
from repro.attacks.harness import attack_on, non_driver_isv_functions
from repro.core.audit import ESCALATION_LADDER, AdaptiveIsvController
from repro.core.views import InstructionSpeculationView
from repro.kernel.image import SECRET_OFF, shared_image
from repro.kernel.process import Process
from repro.obs import events as ev
from repro.obs import registry as obs
from repro.obs import slo
from repro.obs.events import EventJournal, SecurityEvent, journaling
from repro.reliability.faultplane import FaultPlane, FaultSpec, inject
from repro.scanner.kasper import scan
from repro.serve.arrival import Arrival, arrival_schedule, percentile
from repro.serve.engine import (
    LATENCY_BUCKETS,
    RunToCompletionScheduler,
    ServeConfig,
    Tenant,
    TenantReport,
    boot_tenants,
    collect_tenant_stats,
)
from repro.workloads.apps import AppState
from repro.workloads.driver import Driver

#: Scheme name of each Perspective flavor rung (the eval registry's
#: naming, so attack results and journal events carry familiar labels).
SCHEME_OF_FLAVOR: dict[str, str] = {
    "static": "perspective-static",
    "dynamic": "perspective",
    "++": "perspective++",
}

#: Named fault-storm scenarios.  ``specs`` arm the plane (see
#: :data:`repro.reliability.faultplane.FAULT_POINTS`); ``epochs`` is the
#: storm window -- the plane is active only inside those epochs, and the
#: same plane object persists across them, so draws accumulate.
CAMPAIGN_SCENARIOS: dict[str, dict[str, Any]] = {
    "none": {"specs": [], "epochs": []},
    "ibpb-storm": {
        "specs": [{"point": "serve-ibpb-drop", "probability": 0.5}],
        "epochs": [2, 3],
    },
    "refill-storm": {
        "specs": [{"point": "view-refill-fault", "probability": 0.25}],
        "epochs": [2, 3],
    },
    "admission-storm": {
        "specs": [{"point": "admission-queue-corrupt",
                   "probability": 0.35}],
        "epochs": [2, 3],
    },
    "combined-storm": {
        "specs": [
            {"point": "serve-ibpb-drop", "probability": 0.5},
            {"point": "view-refill-fault", "probability": 0.2},
            {"point": "admission-queue-corrupt", "probability": 0.25},
        ],
        "epochs": [2, 3],
    },
}


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a campaign's outcome depends on (JSON-able)."""

    seed: int = 0
    scenario: str = "none"
    #: Starting Perspective flavor for every context.
    start_flavor: str = "static"
    victims: int = 2
    #: PoC names (:data:`repro.attacks.harness.ATTACKS`), one attacker
    #: tenant each.
    attackers: tuple[str, ...] = ("spectre-v1-active",
                                  "spectre-v2-passive")
    epochs: int = 5
    requests_per_epoch: int = 3
    mean_interarrival: float = 12_000.0
    queue_bound: int = 0
    profiles: tuple[str, ...] = ("httpd", "redis", "memcached")
    #: Rare-path injection period for victim drivers; 0 keeps benign
    #: traffic free of self-inflicted leak evidence, so escalation is
    #: driven by the attackers.
    rare_every: int = 0
    profile_requests: int = 3
    #: Secret planted in the targeted victim's kernel heap, hex-encoded.
    secret_hex: str = "4b21"
    #: Evidence events per epoch that trigger an escalation.
    min_events: int = 1
    #: Clean epochs before the first de-escalation probe.
    probe_after_clean: int = 2
    #: SLO: the campaign has *recovered* from a storm once an epoch's
    #: aggregate p99 is back within ``slo_factor`` of the pre-storm
    #: baseline.
    slo_factor: float = 1.25
    #: Window width (simulated cycles) of the :class:`repro.obs.slo.
    #: SloRollup` the campaign maintains across epochs.
    slo_window_cycles: float = 50_000.0
    #: When true, per-context SLO burn-rate alerts feed the adaptive
    #: controllers as evidence alongside journal events (``observe(...,
    #: alerts=...)``).  Off by default: the committed campaign smoke
    #: snapshot predates this evidence source.
    slo_alert_evidence: bool = False

    def __post_init__(self) -> None:
        if self.scenario not in CAMPAIGN_SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; known: "
                f"{sorted(CAMPAIGN_SCENARIOS)}")
        if self.start_flavor not in ESCALATION_LADDER:
            raise ValueError(
                f"unknown flavor {self.start_flavor!r}; ladder: "
                f"{ESCALATION_LADDER}")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not self.slo_window_cycles > 0.0:
            raise ValueError("slo_window_cycles must be positive")
        bytes.fromhex(self.secret_hex)  # validate early

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed, "scenario": self.scenario,
            "start_flavor": self.start_flavor,
            "victims": self.victims, "attackers": list(self.attackers),
            "epochs": self.epochs,
            "requests_per_epoch": self.requests_per_epoch,
            "mean_interarrival": self.mean_interarrival,
            "queue_bound": self.queue_bound,
            "profiles": list(self.profiles),
            "rare_every": self.rare_every,
            "profile_requests": self.profile_requests,
            "secret_hex": self.secret_hex,
            "min_events": self.min_events,
            "probe_after_clean": self.probe_after_clean,
            "slo_factor": self.slo_factor,
            "slo_window_cycles": self.slo_window_cycles,
            "slo_alert_evidence": self.slo_alert_evidence,
        }


def spec_from_params(params: dict[str, Any]) -> CampaignSpec:
    """Build a :class:`CampaignSpec` from a plain JSON-able param dict."""
    known = {"seed", "scenario", "start_flavor", "victims", "attackers",
             "epochs", "requests_per_epoch", "mean_interarrival",
             "queue_bound", "profiles", "rare_every", "profile_requests",
             "secret_hex", "min_events", "probe_after_clean",
             "slo_factor", "slo_window_cycles", "slo_alert_evidence"}
    kwargs = {k: v for k, v in params.items() if k in known}
    for key in ("attackers", "profiles"):
        if key in kwargs:
            kwargs[key] = tuple(kwargs[key])
    return CampaignSpec(**kwargs)


@dataclass
class AttackerTenant:
    """One co-located attacker: its process and the PoC it runs."""

    index: int
    attack: str
    proc: Process


def _kind_counts(events: list[SecurityEvent]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return {kind: counts[kind] for kind in sorted(counts)}


def _attacker_warmup(driver: Driver, requests: int) -> None:
    """A benign-looking request mix: the attacker masquerades as a
    normal tenant during profiling, so its *dynamic* base view is a
    plausible traced surface rather than obviously hostile."""
    state = AppState()
    state.log_fd = driver.call("open", args=(0,)).retval
    for _ in range(requests):
        driver.call("getpid")
        driver.call("read", args=(state.log_fd, 4096), spin=8)
        driver.call("write", args=(state.log_fd, 4096), spin=8)


def run_campaign(spec: CampaignSpec, image=None) -> dict[str, Any]:
    """Run one adversarial campaign; returns the JSON-able report."""
    image = shared_image() if image is None else image
    scenario = CAMPAIGN_SCENARIOS[spec.scenario]
    secret = bytes.fromhex(spec.secret_hex)

    # -- boot: victims first (engine flow), then attacker tenants ------
    serve_config = ServeConfig(
        scheme=SCHEME_OF_FLAVOR[spec.start_flavor], tenants=spec.victims,
        seed=spec.seed, requests_per_tenant=spec.requests_per_epoch,
        mean_interarrival=spec.mean_interarrival,
        queue_bound=spec.queue_bound, profiles=spec.profiles,
        rare_every=spec.rare_every,
        profile_requests=spec.profile_requests)
    kernel, victims = boot_tenants(serve_config, image=image)
    framework = kernel.pipeline.policy.framework

    attackers: list[AttackerTenant] = []
    kernel.tracer.start()
    for index, attack_name in enumerate(spec.attackers):
        proc = kernel.create_process(f"attacker{index}.{attack_name}")
        _attacker_warmup(Driver(kernel, proc, rare_every=0),
                         spec.profile_requests)
        attackers.append(AttackerTenant(index, attack_name, proc))
    kernel.tracer.stop()

    # -- base view per (context, flavor): what each ladder rung installs
    scan_cache: dict[frozenset, frozenset] = {}

    def flagged_within(scope: frozenset) -> frozenset:
        if scope not in scan_cache:
            scan_cache[scope] = scan(image, scope=scope).functions()
        return scan_cache[scope]

    base_views: dict[int, dict[str, frozenset]] = {}
    for tenant in victims:
        ctx = tenant.proc.cgroup.cg_id
        static_fns = generate_static_isv(
            image, APPLICATIONS[tenant.profile.name], ctx).functions
        dynamic_fns = kernel.tracer.traced_functions(ctx)
        base_views[ctx] = {
            "static": static_fns, "dynamic": dynamic_fns,
            "++": dynamic_fns - flagged_within(dynamic_fns)}
    for attacker in attackers:
        ctx = attacker.proc.cgroup.cg_id
        dynamic_fns = kernel.tracer.traced_functions(ctx)
        base_views[ctx] = {
            # No application binary to analyse for a tenant that lied
            # about its workload: the static rung falls back to the
            # permissive syscall-surface view.
            "static": non_driver_isv_functions(image),
            "dynamic": dynamic_fns,
            "++": dynamic_fns - flagged_within(dynamic_fns)}

    controllers = {
        ctx: AdaptiveIsvController(
            ctx, start_flavor=spec.start_flavor,
            min_events=spec.min_events,
            probe_after_clean=spec.probe_after_clean, seed=spec.seed)
        for ctx in sorted(base_views)}

    def install(ctx: int) -> None:
        controller = controllers[ctx]
        framework.install_isv(InstructionSpeculationView(
            ctx,
            controller.view_functions(base_views[ctx][controller.flavor]),
            image.layout, source=f"adaptive-{controller.flavor}"))

    for ctx in sorted(controllers):
        install(ctx)

    # -- campaign state ------------------------------------------------
    plane = FaultPlane(seed=spec.seed,
                       specs=tuple(FaultSpec.from_dict(s)
                                   for s in scenario["specs"]))
    storm_epochs = set(scenario["epochs"]) if scenario["specs"] else set()
    journal = EventJournal(meta={"plane": "serve-campaign",
                                 "seed": spec.seed,
                                 "scenario": spec.scenario})
    reports = [TenantReport(tenant=t.index, profile=t.profile.name)
               for t in victims]
    sched = RunToCompletionScheduler(victims, reports,
                                     queue_bound=spec.queue_bound,
                                     trace_seed=spec.seed)
    rollup = slo.SloRollup(spec.slo_window_cycles,
                           latency_buckets=LATENCY_BUCKETS)
    alert_keys: set[tuple[str, int, int]] = set()
    alerts_fired: list[slo.SloAlert] = []
    ctx_of_victim = {t.index: t.proc.cgroup.cg_id for t in victims}
    victim_of_ctx = {ctx: idx for idx, ctx in ctx_of_victim.items()}
    attacker_rows = {
        a.index: {"attacker": a.index, "attack": a.attack,
                  "context": a.proc.cgroup.cg_id, "rounds": 0,
                  "attempted_bytes": 0, "leaked_bytes": 0,
                  "blocked_bytes": 0, "successes": 0,
                  "attack_cycles": 0.0}
        for a in attackers}
    targeted: set[int] = set()

    epoch_rows: list[dict[str, Any]] = []
    steps: list[dict[str, Any]] = []
    seq_mark = 0
    storm_onset: float | None = None

    with journaling(journal), slo.collecting(rollup):
        for epoch in range(spec.epochs):
            # Request traces (when a recorder is ambient) are labeled per
            # epoch, so (tenant, seq) reuse across epochs stays unique.
            sched.trace_cell = f"s{spec.seed}.{spec.scenario}.e{epoch}"
            storm = epoch in storm_epochs
            if storm and storm_onset is None:
                storm_onset = sched.free_at
            latency_marks = [len(r.latencies) for r in reports]
            offset = sched.free_at
            guard = inject(plane) if storm else nullcontext()
            attacks_row: list[dict[str, Any]] = []
            with guard:
                schedule = [
                    Arrival(cycle=a.cycle + offset, tenant=a.tenant,
                            seq=a.seq)
                    for a in arrival_schedule(
                        spec.seed, spec.victims, spec.requests_per_epoch,
                        spec.mean_interarrival,
                        stream=f"campaign:epoch:{epoch}")]
                sched.serve_batch(schedule)
                for attacker in attackers:
                    target = victims[(epoch + attacker.index)
                                     % len(victims)]
                    targeted.add(target.index)
                    label = SCHEME_OF_FLAVOR[
                        controllers[attacker.proc.cgroup.cg_id].flavor]
                    before = kernel.kernel_cycles_total
                    result = attack_on(kernel, attacker.proc, target.proc,
                                       attacker.attack, label,
                                       secret=secret)
                    cost = kernel.kernel_cycles_total - before
                    # The PoC ran on the shared core: victim requests
                    # queue behind it.
                    sched.occupy(cost)
                    correct = sum(1 for got, want
                                  in zip(result.leaked, secret)
                                  if got == want)
                    row = attacker_rows[attacker.index]
                    row["rounds"] += 1
                    row["attempted_bytes"] += len(secret)
                    row["leaked_bytes"] += correct
                    row["blocked_bytes"] += len(secret) - correct
                    row["successes"] += int(result.success)
                    row["attack_cycles"] += cost
                    attacks_row.append({
                        "attacker": attacker.index,
                        "attack": attacker.attack,
                        "target": target.index,
                        "leaked_hex": result.leaked.hex(),
                        "correct_bytes": correct,
                        "blocked_bytes": len(secret) - correct,
                        "success": result.success,
                        "cycles": cost})

            # Controllers digest this epoch's journal slice (the slice
            # is everything since the previous epoch's mark, in whatever
            # order the ring holds it -- the tally is order-free).
            new_events = [e for e in journal.events()
                          if e.seq >= seq_mark]
            # SLO rollup: blocked-leak events land in their cycle window;
            # requests/sheds were recorded live by the engine hooks.
            rollup.ingest_events(new_events)
            epoch_alerts: list[slo.SloAlert] = []
            for alert in rollup.evaluate():
                key = (alert.objective, alert.context, alert.window_index)
                if key in alert_keys:
                    continue
                alert_keys.add(key)
                epoch_alerts.append(alert)
                alerts_fired.append(alert)
                # Journal the alert at its absolute window-end stamp
                # (emit() adds the running base back in).
                ev.emit("slo-alert",
                        cycle=alert.cycle - journal.base_cycle,
                        context=alert.context,
                        reason=(f"{alert.objective}"
                                f":burn={alert.burn_long:.3f}"))
            new_events = [e for e in journal.events()
                          if e.seq >= seq_mark]
            seq_mark = journal.emitted
            controller_alerts = (tuple(epoch_alerts)
                                 if spec.slo_alert_evidence else ())
            flavors: dict[str, str] = {}
            for ctx in sorted(controllers):
                decision = controllers[ctx].observe(
                    new_events, alerts=controller_alerts)
                if decision.changed:
                    install(ctx)
                    kind = ("policy-escalate"
                            if decision.action == "escalate"
                            else "policy-deescalate")
                    ev.emit(kind, context=ctx,
                            reason=(f"{decision.from_flavor}"
                                    f"->{decision.to_flavor}"),
                            scheme=SCHEME_OF_FLAVOR[decision.to_flavor])
                    steps.append({
                        "epoch": epoch, "context": ctx,
                        "role": ("victim" if ctx in victim_of_ctx
                                 else "attacker"),
                        "action": decision.action,
                        "from_flavor": decision.from_flavor,
                        "to_flavor": decision.to_flavor,
                        "evidence": decision.evidence,
                        "implicated": list(decision.implicated),
                        "reason": decision.reason})
                flavors[str(ctx)] = controllers[ctx].flavor

            epoch_latencies: list[float] = []
            p99_by_tenant: list[float] = []
            for report, mark in zip(reports, latency_marks):
                latencies = report.latencies[mark:]
                epoch_latencies.extend(latencies)
                p99_by_tenant.append(
                    percentile(latencies, 99.0) if latencies else 0.0)
            epoch_rows.append({
                "epoch": epoch, "storm": storm,
                "offered": len(schedule),
                "p99": (percentile(epoch_latencies, 99.0)
                        if epoch_latencies else 0.0),
                "p99_by_tenant": p99_by_tenant,
                "flavors": flavors,
                "makespan": sched.makespan,
                "fault_fires": {k: plane.fires[k]
                                for k in sorted(plane.fires)},
                "events": _kind_counts(new_events),
                "slo_alerts": [a.as_dict() for a in epoch_alerts],
                "attacks": attacks_row})

    collect_tenant_stats(victims, reports)

    # -- SLO baseline, storm recovery ----------------------------------
    pre_storm = [row for row in epoch_rows if not storm_epochs
                 or row["epoch"] < min(storm_epochs)]
    # Baseline = the worst pre-storm epoch p99 (conservative: recovery
    # means getting back under what normal operation already exhibited).
    baseline_p99 = max((row["p99"] for row in pre_storm), default=0.0)
    threshold = (baseline_p99 * spec.slo_factor
                 if storm_epochs and baseline_p99 > 0.0 else None)
    recovered_epoch: int | None = None
    recovery_cycles: float | None = None
    if storm_epochs and storm_onset is not None and threshold is not None:
        for row in epoch_rows:
            if row["epoch"] >= min(storm_epochs) \
                    and row["p99"] <= threshold:
                recovered_epoch = row["epoch"]
                recovery_cycles = row["makespan"] - storm_onset
                break

    # Per-escalation SLO impact: the tenant's p99 in the epoch after the
    # step minus the epoch of the step (victim contexts only; attacker
    # contexts serve no requests, so their impact column is null).
    for step in steps:
        victim_idx = victim_of_ctx.get(step["context"])
        before_p99 = after_p99 = None
        if victim_idx is not None:
            before_p99 = (
                epoch_rows[step["epoch"]]["p99_by_tenant"][victim_idx])
            if step["epoch"] + 1 < len(epoch_rows):
                after_p99 = (epoch_rows[step["epoch"] + 1]
                             ["p99_by_tenant"][victim_idx])
        step["p99_before"] = before_p99
        step["p99_after"] = after_p99
        step["slo_delta"] = (after_p99 - before_p99
                             if before_p99 is not None
                             and after_p99 is not None else None)

    # -- final secret check: fail-closed means the planted bytes never
    # moved and never leaked ------------------------------------------
    slots: list[bytes] = []
    intact = True
    for idx in sorted(targeted):
        proc = victims[idx].proc
        pa = proc.aspace.translate(proc.heap_va + SECRET_OFF)
        slot = kernel.memory.load_bytes(pa, len(secret))
        slots.append(slot)
        intact = intact and slot == secret
    secret_digest = hashlib.sha256(b"".join(slots)).hexdigest()

    tenant_rows: list[dict[str, Any]] = []
    for tenant, report in zip(victims, reports):
        ctx = ctx_of_victim[tenant.index]
        controller = controllers[ctx]
        row = report.as_dict()
        row.update({
            "role": "victim", "context": ctx,
            "flavor_initial": spec.start_flavor,
            "flavor_final": controller.flavor,
            "escalations": sum(1 for d in controller.history
                               if d.action == "escalate"),
            "deescalations": sum(1 for d in controller.history
                                 if d.action == "deescalate"),
            "exclusions": len(controller.exclusions)})
        tenant_rows.append(row)

    attacker_out: list[dict[str, Any]] = []
    for attacker in attackers:
        ctx = attacker.proc.cgroup.cg_id
        controller = controllers[ctx]
        row = dict(attacker_rows[attacker.index])
        row.update({
            "role": "attacker",
            "flavor_final": controller.flavor,
            "escalations": sum(1 for d in controller.history
                               if d.action == "escalate"),
            "exclusions": len(controller.exclusions),
            "all_blocked": (row["leaked_bytes"] == 0
                            and row["successes"] == 0)})
        attacker_out.append(row)

    attempted = sum(r["attempted_bytes"] for r in attacker_out)
    leaked = sum(r["leaked_bytes"] for r in attacker_out)
    all_latencies = [lat for report in reports
                     for lat in report.latencies]
    return {
        "spec": spec.as_dict(),
        "makespan_cycles": sched.makespan,
        "completed": sum(r.completed for r in reports),
        "shed": sum(r.shed for r in reports),
        "corrupt_shed": sum(r.corrupt_shed for r in reports),
        "latency_p99": (percentile(all_latencies, 99.0)
                        if all_latencies else 0.0),
        "leaks": {
            "attempted_bytes": attempted,
            "leaked_bytes": leaked,
            "blocked_bytes": attempted - leaked,
            "all_blocked": leaked == 0 and attempted > 0},
        "slo": {
            "baseline_p99": baseline_p99,
            "slo_factor": spec.slo_factor,
            "threshold_p99": threshold,
            "storm_onset_cycle": storm_onset,
            "recovered_epoch": recovered_epoch,
            "recovery_cycles": recovery_cycles,
            "window_cycles": spec.slo_window_cycles,
            "alert_evidence": spec.slo_alert_evidence,
            "alerts": [a.as_dict() for a in alerts_fired],
            "rollup": rollup.snapshot()},
        "faults": {
            "scenario": spec.scenario,
            "specs": scenario["specs"],
            "storm_epochs": sorted(storm_epochs),
            "draws": {k: plane.draws[k] for k in sorted(plane.draws)},
            "fires": {k: plane.fires[k] for k in sorted(plane.fires)},
            "total_fires": plane.total_fires(),
            "ibpb_fault_flushes": kernel.ibpb_fault_flushes,
            "isv_refill_faults": framework.isv_cache.stats.refill_faults,
            "dsv_refill_faults": framework.dsv_cache.stats.refill_faults},
        "tenants": tenant_rows,
        "attackers": attacker_out,
        "escalation_steps": steps,
        "epochs": epoch_rows,
        "journal": {
            "emitted": journal.emitted,
            "dropped": journal.dropped,
            "by_kind": _kind_counts(journal.events())},
        "secret": {
            "planted_hex": spec.secret_hex,
            "targets": sorted(targeted),
            "intact": intact,
            "digest": secret_digest},
    }


# ---------------------------------------------------------------------------
# Grid cell (the repro.exec fan-out unit)
# ---------------------------------------------------------------------------


def campaign_cell(params: dict[str, Any],
                  observe: bool = False) -> dict[str, Any]:
    """One (seed, scenario) cell of the campaign sweep.

    Mirrors :func:`repro.serve.engine.serve_cell`: with ``observe=True``
    the cell runs inside a fresh :class:`repro.obs.MetricsRegistry` and
    attaches its snapshot under ``"metrics"`` so the parallel engine
    can merge per-cell registries deterministically.
    """
    spec = spec_from_params(params)
    if not observe:
        return run_campaign(spec)
    from repro.obs import MetricsRegistry, observing
    registry = MetricsRegistry()
    with observing(registry):
        out = run_campaign(spec)
        cell = f"campaign.cell.s{spec.seed}.{spec.scenario}"
        obs.gauge(f"{cell}.completed", float(out["completed"]))
        obs.gauge(f"{cell}.shed", float(out["shed"]))
        obs.gauge(f"{cell}.corrupt_shed", float(out["corrupt_shed"]))
        obs.gauge(f"{cell}.latency_p99", out["latency_p99"])
        obs.gauge(f"{cell}.makespan_cycles", out["makespan_cycles"])
        obs.gauge(f"{cell}.leaks.attempted",
                  float(out["leaks"]["attempted_bytes"]))
        obs.gauge(f"{cell}.leaks.blocked",
                  float(out["leaks"]["blocked_bytes"]))
        obs.gauge(f"{cell}.escalations",
                  float(sum(1 for s in out["escalation_steps"]
                            if s["action"] == "escalate")))
        obs.gauge(f"{cell}.fault_fires",
                  float(out["faults"]["total_fires"]))
        obs.gauge(f"{cell}.recovery_cycles",
                  out["slo"]["recovery_cycles"] or 0.0)
        obs.gauge(f"{cell}.secret_intact",
                  1.0 if out["secret"]["intact"] else 0.0)
    out["metrics"] = registry.snapshot()
    return out
