"""Cross-scheme differential conformance: the architectural oracle.

Every defense scheme gates *speculative* execution only, so running the
same syscall trace under every scheme must produce identical
**architectural** results -- return values, denied flags, final memory
contents, allocator and fd/vma state, and the planted secret still
intact -- differing only in cycle counts and speculation statistics.
Any divergence means a defense changed semantics (or the baseline
leaked), which is exactly the class of bug a speculation framework must
never have.

The corpus is seeded: :func:`generate_trace` derives a multi-tenant
syscall trace from ``Random(f"conformance:{seed}")`` (string-seeded, so
``PYTHONHASHSEED``-proof), with fd/VA arguments kept *symbolic* in the
trace and resolved against live kernel state at run time -- the same
resolution under every scheme, because resolution depends only on
syscall semantics.  On divergence, :func:`minimize_divergence` greedily
shrinks the trace to a minimal still-diverging repro and the result
renders a copy-pasteable reproduction command.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from random import Random
from typing import Any

from repro.core.framework import Perspective
from repro.core.views import InstructionSpeculationView
from repro.eval.envs import build_policy, perspective_flavor
from repro.kernel.image import shared_image
from repro.kernel.kernel import MiniKernel
from repro.workloads.driver import Driver

#: Schemes the oracle holds to identical architectural behaviour.  Both
#: fencing extremes, the deployed-software point (spot), the
#: shadow-structure family (invisispec, safespec), memory tagging
#: (context), and both main Perspective flavors -- the eight columns of
#: the cross-paper table (:mod:`repro.eval.defense_matrix`).
CONFORMANCE_SCHEMES = ("unsafe", "fence", "perspective", "perspective++",
                       "spot", "invisispec", "safespec", "context")

#: Rare-path injection period during conformance runs: exercises the
#: paths dynamic ISVs fence, identically under every scheme.
RARE_EVERY = 5

SECRET = b"CONFORMANCE-SECRET"


# ---------------------------------------------------------------------------
# Trace generation
# ---------------------------------------------------------------------------

#: Steps that need no live resource.  (name, argmaker, spin)
_NEUTRAL_OPS = (
    ("getpid", lambda rng: (), 0),
    ("getuid", lambda rng: (), 0),
    ("stat", lambda rng: (rng.randrange(4),), 0),
    ("access", lambda rng: (rng.randrange(4),), 0),
    ("futex", lambda rng: (0,), 8),
    ("poll", lambda rng: (rng.randrange(1, 16),), 8),
    ("select", lambda rng: (rng.randrange(1, 16),), 8),
    ("epoll_wait", lambda rng: (rng.randrange(1, 16),), 8),
    ("sendmsg", lambda rng: (0, rng.randrange(1, 4) * 1024), 4),
    ("recvmsg", lambda rng: (0, rng.randrange(1, 4) * 1024), 4),
    ("brk", lambda rng: (), 0),
)


@dataclass(frozen=True)
class TraceStep:
    """One syscall of a conformance trace.

    ``args`` may contain symbolic tokens: ``["fd", k]`` resolves to the
    tenant's ``k``-th live file descriptor at run time (``["va", k]``
    likewise for mmapped areas); plain ints pass through.  Tokens are
    lists, not tuples, so a step round-trips through JSON unchanged.
    """

    tenant: int
    syscall: str
    args: tuple[Any, ...] = ()
    spin: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {"tenant": self.tenant, "syscall": self.syscall,
                "args": [list(a) if isinstance(a, (tuple, list)) else a
                         for a in self.args],
                "spin": self.spin}


def generate_trace(seed: int, steps: int = 14,
                   tenants: int = 2) -> list[TraceStep]:
    """A seeded multi-tenant trace mixing resource producers, consumers,
    and neutral syscalls; consumers are only emitted when a producer ran
    earlier, so every reference resolves to a live resource."""
    rng = Random(f"conformance:{seed}")
    n_fds = [0] * tenants
    n_vas = [0] * tenants
    out: list[TraceStep] = []
    for _ in range(steps):
        tenant = rng.randrange(tenants)
        roll = rng.random()
        if roll < 0.30:  # producers
            name = rng.choice(("open", "socket", "pipe", "mmap"))
            if name == "mmap":
                out.append(TraceStep(tenant, "mmap",
                                     (0, rng.randrange(1, 5) * 4096)))
                n_vas[tenant] += 1
            else:
                out.append(TraceStep(tenant, name, (rng.randrange(4),)))
                n_fds[tenant] += 2 if name == "pipe" else 1
        elif roll < 0.60 and (n_fds[tenant] or n_vas[tenant]):  # consumers
            use_fd = n_fds[tenant] and (not n_vas[tenant] or rng.random() < 0.7)
            if use_fd:
                token = ("fd", rng.randrange(n_fds[tenant]))
                name = rng.choice(("read", "write", "lseek", "fstat",
                                   "dup", "close"))
                spin = 8 if name in ("read", "write") else 0
                args = (token, 4096) if name in ("read", "write") \
                    else (token,)
                out.append(TraceStep(tenant, name, args, spin))
                if name == "close":
                    n_fds[tenant] -= 1
                elif name == "dup":
                    n_fds[tenant] += 1
            else:
                token = ("va", rng.randrange(n_vas[tenant]))
                out.append(TraceStep(tenant, "munmap", (token,)))
                n_vas[tenant] -= 1
        else:  # neutral
            name, argmaker, spin = _NEUTRAL_OPS[
                rng.randrange(len(_NEUTRAL_OPS))]
            out.append(TraceStep(tenant, name, argmaker(rng), spin))
    return out


def steps_from_dicts(raw: list[dict[str, Any]]) -> list[TraceStep]:
    """Rebuild a trace from ``as_dict`` output (the minimized-repro path)."""
    return [TraceStep(tenant=d["tenant"], syscall=d["syscall"],
                      args=tuple(tuple(a) if isinstance(a, list) else a
                                 for a in d["args"]),
                      spin=d.get("spin", 0))
            for d in raw]


# ---------------------------------------------------------------------------
# Trace execution and the architectural digest
# ---------------------------------------------------------------------------


def _resolve(token: Any, fds: list[int], vas: list[int]) -> int:
    if isinstance(token, (tuple, list)):
        kind, k = token
        pool = fds if kind == "fd" else vas
        return pool[k % len(pool)] if pool else 0
    return token


def _profile_trace(trace: list[TraceStep], tenants: int,
                   image) -> list[frozenset[str]]:
    """Offline profiling pass on a throwaway kernel: the traced kernel
    functions per tenant, used to build dynamic ISVs.  Context ids are
    assigned in creation order, so they line up with every scheme run."""
    kernel = MiniKernel(image=image)
    procs = [kernel.create_process(f"conf{t}") for t in range(tenants)]
    drivers = [Driver(kernel, p, rare_every=0) for p in procs]
    kernel.tracer.start()
    _run_trace(kernel, procs, drivers, trace)
    kernel.tracer.stop()
    return [kernel.tracer.traced_functions(p.cgroup.cg_id) for p in procs]


def _run_trace(kernel, procs, drivers, trace) -> list[dict[str, Any]]:
    """Issue the trace; returns the per-step architectural outcomes."""
    fds: list[list[int]] = [[] for _ in procs]
    vas: list[list[int]] = [[] for _ in procs]
    outcomes: list[dict[str, Any]] = []
    for step in trace:
        t = step.tenant
        args = tuple(_resolve(a, fds[t], vas[t]) for a in step.args)
        result = drivers[t].call(step.syscall, args=args, spin=step.spin)
        rv = result.retval
        if step.syscall in ("open", "socket", "accept", "dup") and rv >= 0:
            fds[t].append(rv)
        elif step.syscall == "pipe" and rv >= 0:
            fds[t].extend((rv, rv + 1))
        elif step.syscall == "close" and rv == 0:
            fds[t].remove(args[0])
        elif step.syscall == "mmap" and rv > 0:
            vas[t].append(rv)
        elif step.syscall == "munmap" and rv == 0:
            vas[t].remove(args[0])
        outcomes.append({"syscall": step.syscall, "tenant": t,
                         "retval": rv, "denied": result.denied})
    return outcomes


def _view_digest(framework: Perspective | None) -> str | None:
    """Fingerprint of the DSV registry's frame-ownership map (Perspective
    flavors only; ``None`` elsewhere, excluded from comparison)."""
    if framework is None:
        return None
    owners = sorted(framework.dsv_registry.frame_owners().items())
    return hashlib.sha256(json.dumps(owners).encode()).hexdigest()


def run_trace_under(scheme: str, trace: list[TraceStep], tenants: int = 2,
                    image=None,
                    profiles: list[frozenset[str]] | None = None,
                    block_cache: bool | None = None,
                    ) -> dict[str, Any]:
    """Run the trace on a fresh kernel under ``scheme``; returns the
    architectural digest (plus cycle counts, which the cross-scheme
    oracle ignores but the block-cache parity oracle compares exactly).

    ``block_cache`` forces the pipeline's basic-block trace memoization
    on or off (``None`` keeps the pipeline default)."""
    image = shared_image() if image is None else image
    flavor = perspective_flavor(scheme)
    if flavor is not None and profiles is None:
        profiles = _profile_trace(trace, tenants, image)

    kernel = MiniKernel(image=image)
    if block_cache is not None:
        kernel.pipeline.config.enable_block_cache = block_cache
    procs = [kernel.create_process(f"conf{t}") for t in range(tenants)]
    secret_va = kernel.plant_secret(procs[0], SECRET)
    framework = None
    if flavor is not None:
        framework = Perspective(kernel)
        for proc, functions in zip(procs, profiles):
            ctx = proc.cgroup.cg_id
            isv = InstructionSpeculationView(ctx, functions,
                                             kernel.image.layout,
                                             source="dynamic")
            if flavor == "++":
                from repro.core.audit import harden_isv
                from repro.scanner.kasper import scan
                report = scan(kernel.image, scope=isv.functions)
                isv = harden_isv(isv, report.functions()).hardened
            framework.install_isv(isv)
    kernel.pipeline.set_policy(build_policy(scheme, framework,
                                            kernel=kernel))

    drivers = [Driver(kernel, p, rare_every=RARE_EVERY) for p in procs]
    outcomes = _run_trace(kernel, procs, drivers, trace)

    secret_pa = procs[0].aspace.translate(secret_va)
    allocations = sorted(kernel.buddy.allocations())
    return {
        # --- architectural (must match across schemes) ---
        "outcomes": outcomes,
        "memory": kernel.memory.digest(),
        "secret_intact":
            kernel.memory.load_bytes(secret_pa, len(SECRET)) == SECRET,
        "buddy": {
            "allocated_frames": kernel.buddy.allocated_frames(),
            "free_frames": kernel.buddy.free_frames(),
            "owners": hashlib.sha256(
                json.dumps(allocations).encode()).hexdigest(),
        },
        "tenants": [{
            "fds": sorted((fd, f.fops_kind)
                          for fd, f in proc.files.items()),
            "vmas": sorted((vma.va, vma.length)
                           for vma in proc.vmas.values()),
        } for proc in procs],
        # --- per-flavor (compared among Perspective flavors only) ---
        "views": _view_digest(framework),
        # --- microarchitectural (recorded, never compared) ---
        "cycles": sum(d.stats.kernel_cycles for d in drivers),
        "fenced_loads": sum(d.stats.exec.total_fenced for d in drivers),
    }


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------

_ARCH_KEYS = ("outcomes", "memory", "secret_intact", "buddy", "tenants")


@dataclass
class ConformanceResult:
    """Outcome of checking one seed across all schemes."""

    seed: int
    schemes: tuple[str, ...]
    ok: bool
    #: Architectural keys that diverged, per scheme, vs the first scheme.
    divergences: dict[str, list[str]] = field(default_factory=dict)
    digests: dict[str, dict[str, Any]] = field(default_factory=dict)
    minimized: list[TraceStep] | None = None

    def repro(self) -> str:
        """A copy-pasteable reproduction recipe for a divergence."""
        trace = self.minimized
        lines = [f"# conformance divergence at seed {self.seed}: "
                 f"{self.divergences}",
                 f"PYTHONPATH=src python -m repro.serve conformance "
                 f"--seeds {self.seed}"]
        if trace is not None:
            lines.append("# minimized trace "
                         f"({len(trace)} steps):")
            for step in trace:
                lines.append(f"#   {json.dumps(step.as_dict())}")
        return "\n".join(lines)


def _compare(digests: dict[str, dict[str, Any]],
             schemes: tuple[str, ...]) -> dict[str, list[str]]:
    """Architectural keys diverging from the first scheme, per scheme.
    ``views`` is compared only among schemes that have views."""
    base_scheme = schemes[0]
    base = digests[base_scheme]
    divergences: dict[str, list[str]] = {}
    view_base: str | None = None
    for scheme in schemes:
        d = digests[scheme]
        bad = [key for key in _ARCH_KEYS if d[key] != base[key]]
        if d["views"] is not None:
            if view_base is None:
                view_base = d["views"]
            elif d["views"] != view_base:
                bad.append("views")
        if bad:
            divergences[scheme] = bad
    return divergences


def check_seed(seed: int, schemes: tuple[str, ...] = CONFORMANCE_SCHEMES,
               steps: int = 14, tenants: int = 2, image=None,
               minimize: bool = True) -> ConformanceResult:
    """Run one seeded trace under every scheme and compare architecture."""
    image = shared_image() if image is None else image
    trace = generate_trace(seed, steps=steps, tenants=tenants)
    result = _check_trace(trace, seed, schemes, tenants, image)
    if not result.ok and minimize:
        result.minimized = minimize_divergence(
            trace, schemes=schemes, tenants=tenants, image=image)
    return result


def _check_trace(trace: list[TraceStep], seed: int,
                 schemes: tuple[str, ...], tenants: int,
                 image) -> ConformanceResult:
    profiles = None
    if any(perspective_flavor(s) for s in schemes):
        profiles = _profile_trace(trace, tenants, image)
    digests = {scheme: run_trace_under(scheme, trace, tenants=tenants,
                                       image=image, profiles=profiles)
               for scheme in schemes}
    divergences = _compare(digests, schemes)
    return ConformanceResult(seed=seed, schemes=schemes,
                             ok=not divergences,
                             divergences=divergences, digests=digests)


# ---------------------------------------------------------------------------
# Block-cache parity: the *exact replay* oracle
# ---------------------------------------------------------------------------

#: Keys the block-cache oracle compares.  Unlike the cross-scheme oracle,
#: the timing keys are **included**: memoized replay promises the same
#: cycles and fence counts as interpretation, not just the same
#: architecture.
_PARITY_KEYS = _ARCH_KEYS + ("views", "cycles", "fenced_loads")


@dataclass
class CacheParityResult:
    """Outcome of checking one seed's traces cache-on vs cache-off."""

    seed: int
    schemes: tuple[str, ...]
    ok: bool
    #: Keys diverging between cache-off and cache-on, per scheme.
    divergences: dict[str, list[str]] = field(default_factory=dict)
    #: Cache-off digests (the reference run), per scheme.
    digests: dict[str, dict[str, Any]] = field(default_factory=dict)

    def repro(self) -> str:
        return (f"# block-cache parity divergence at seed {self.seed}: "
                f"{self.divergences}\n"
                f"PYTHONPATH=src python -m repro.serve conformance "
                f"--cache-parity --seeds {self.seed}")


def check_cache_parity(seed: int,
                       schemes: tuple[str, ...] = CONFORMANCE_SCHEMES,
                       steps: int = 14, tenants: int = 2,
                       image=None) -> CacheParityResult:
    """Run one seeded trace under every scheme twice -- block cache off,
    then on -- and require the two digests to be **identical in every
    key**, cycles included.  Any difference means memoized replay
    diverged from interpretation."""
    image = shared_image() if image is None else image
    trace = generate_trace(seed, steps=steps, tenants=tenants)
    profiles = None
    if any(perspective_flavor(s) for s in schemes):
        profiles = _profile_trace(trace, tenants, image)
    divergences: dict[str, list[str]] = {}
    digests: dict[str, dict[str, Any]] = {}
    for scheme in schemes:
        off = run_trace_under(scheme, trace, tenants=tenants, image=image,
                              profiles=profiles, block_cache=False)
        on = run_trace_under(scheme, trace, tenants=tenants, image=image,
                             profiles=profiles, block_cache=True)
        digests[scheme] = off
        bad = [key for key in _PARITY_KEYS if off[key] != on[key]]
        if bad:
            divergences[scheme] = bad
    return CacheParityResult(seed=seed, schemes=schemes,
                             ok=not divergences, divergences=divergences,
                             digests=digests)


def run_cache_parity_corpus(seeds: range | list[int],
                            schemes: tuple[str, ...] = CONFORMANCE_SCHEMES,
                            steps: int = 14,
                            tenants: int = 2) -> list[CacheParityResult]:
    """Check cache-on/cache-off parity for every seed."""
    image = shared_image()
    return [check_cache_parity(seed, schemes=schemes, steps=steps,
                               tenants=tenants, image=image)
            for seed in seeds]


def minimize_divergence(trace: list[TraceStep],
                        schemes: tuple[str, ...] = CONFORMANCE_SCHEMES,
                        tenants: int = 2, image=None) -> list[TraceStep]:
    """Greedy delta-debugging: drop any step whose removal keeps the
    divergence alive, until no single removal does.  Symbolic tokens stay
    valid on any subset (resolution falls back to harmless constants), so
    every candidate subset is executable."""
    image = shared_image() if image is None else image

    def diverges(candidate: list[TraceStep]) -> bool:
        return not _check_trace(candidate, -1, schemes, tenants, image).ok

    current = list(trace)
    shrunk = True
    while shrunk and len(current) > 1:
        shrunk = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1:]
            if diverges(candidate):
                current = candidate
                shrunk = True
                break
    return current


def run_corpus(seeds: range | list[int],
               schemes: tuple[str, ...] = CONFORMANCE_SCHEMES,
               steps: int = 14, tenants: int = 2,
               minimize: bool = True) -> list[ConformanceResult]:
    """Check every seed; divergent results carry a minimized repro."""
    image = shared_image()
    return [check_seed(seed, schemes=schemes, steps=steps, tenants=tenants,
                       image=image, minimize=minimize)
            for seed in seeds]
