"""The deterministic multi-tenant traffic engine.

Model
-----

``tenants`` cgroup-backed processes share one :class:`MiniKernel` (and
therefore one simulated core, one cache hierarchy, one branch unit, and
one set of Perspective view caches).  A seeded open-loop arrival process
(:mod:`repro.serve.arrival`) offers each tenant a stream of requests
drawn from its request profile -- the existing datacenter application
models (httpd/nginx/memcached/redis) plus a LEBench-style syscall mix.

A **run-to-completion scheduler** serves the merged arrival stream in
FIFO order on the single core.  Whenever the served tenant changes, the
scheduler issues the context-switch path (``sched_yield``) on the
*incoming* tenant's driver before its request: the switch is thereby
charged through the real pipeline, so it pays whatever the armed scheme
makes it pay -- IBPB-style predictor flushes, cold ISV/DSV view-cache
refills for the incoming ASID, DSVMT walks -- rather than a modeled
constant.  This is where multi-tenant pressure concentrates view-switch
costs (the reason single-workload batches under-report them).

**Admission control**: when the waiting queue holds ``queue_bound``
requests at arrival time, the arrival is shed (deterministically -- the
schedule and service times are pure functions of the config).  Shed
requests never consume kernel cycles.

Userspace compute is *not* modeled here: every scheme pays identical
user cycles per request (defenses gate kernel speculation only), so
kernel-only figures preserve ordering while keeping the engine fast.

Determinism contract
--------------------

``run_serve(config)`` is a pure function of its config: same seed, same
byte-identical report, regardless of process, worker count, or
``PYTHONHASHSEED``.  The parity tests enforce this through the
:mod:`repro.exec` ``serve`` grid.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.binary import APPLICATIONS
from repro.analysis.static_isv import generate_static_isv
from repro.core.audit import harden_isv
from repro.core.framework import Perspective
from repro.core.views import InstructionSpeculationView
from repro.eval.envs import RARE_EVERY, build_policy, perspective_flavor
from repro.kernel.image import shared_image
from repro.kernel.kernel import MiniKernel
from repro.kernel.process import Process
from repro.obs import events as ev
from repro.obs import registry as obs
from repro.obs import reqtrace as rt
from repro.obs import slo
from repro.reliability.faultplane import fire
from repro.scanner.kasper import scan
from repro.serve.arrival import Arrival, arrival_schedule, percentile
from repro.workloads.apps import APP_SPECS, AppState
from repro.workloads.driver import Driver

#: Simulated core frequency (Table 7.1), for requests-per-second figures.
CORE_HZ = 2.0e9

#: Fixed latency buckets (simulated cycles) for the repro.obs histograms.
#: Chosen to bracket an unqueued request (a few thousand cycles of kernel
#: service) through deep queueing delay under overload.
LATENCY_BUCKETS: tuple[float, ...] = (
    1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 1e6, 1e7)


# ---------------------------------------------------------------------------
# Request profiles
# ---------------------------------------------------------------------------


def _lebench_setup(driver: Driver, state: AppState) -> None:
    state.listen_fd = driver.call("socket", args=(0,)).retval
    state.log_fd = driver.call("open", args=(0,)).retval


def _lebench_request(driver: Driver, state: AppState, i: int) -> None:
    """A LEBench-flavoured mix: core kernel ops instead of socket serving."""
    driver.call("getpid")
    driver.call("read", args=(state.log_fd, 4096), spin=12)
    driver.call("write", args=(state.log_fd, 4096), spin=12)
    if i % 4 == 0:
        driver.call("futex", args=(0,), spin=24)
    if i % 8 == 0:
        driver.call("poll", args=(16,), spin=16)
    if i % 12 == 0:
        va = driver.call("mmap", args=(0, 4 * 4096)).retval
        driver.call("munmap", args=(va,))


@dataclass(frozen=True)
class RequestProfile:
    """One tenant's request mix: setup at boot, then a per-request body."""

    name: str
    setup: Callable[[Driver, AppState], None]
    request: Callable[[Driver, AppState, int], None]


def _app_profile(name: str) -> RequestProfile:
    spec = APP_SPECS[name]
    return RequestProfile(name=name, setup=spec.setup, request=spec.request)


REQUEST_PROFILES: dict[str, RequestProfile] = {
    **{name: _app_profile(name) for name in APP_SPECS},
    "lebench": RequestProfile("lebench", _lebench_setup, _lebench_request),
}

DEFAULT_PROFILES = ("httpd", "redis", "memcached", "lebench")


# ---------------------------------------------------------------------------
# Configuration and reports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServeConfig:
    """Everything the engine's outcome depends on."""

    scheme: str = "perspective"
    tenants: int = 3
    seed: int = 0
    requests_per_tenant: int = 40
    #: Mean interarrival gap per tenant, in simulated cycles.
    mean_interarrival: float = 400_000.0
    #: Max *waiting* (admitted, not yet started) requests; 0 = unbounded.
    queue_bound: int = 0
    #: Request-mix assignment, cycled over the tenants.
    profiles: tuple[str, ...] = DEFAULT_PROFILES
    rare_every: int = RARE_EVERY
    #: Requests per tenant during the offline ISV-profiling pass.
    profile_requests: int = 4

    def profile_of(self, tenant: int) -> str:
        return self.profiles[tenant % len(self.profiles)]

    def as_dict(self) -> dict[str, Any]:
        return {
            "scheme": self.scheme, "tenants": self.tenants,
            "seed": self.seed,
            "requests_per_tenant": self.requests_per_tenant,
            "mean_interarrival": self.mean_interarrival,
            "queue_bound": self.queue_bound,
            "profiles": list(self.profiles),
            "rare_every": self.rare_every,
            "profile_requests": self.profile_requests,
        }


@dataclass
class TenantReport:
    """Per-tenant outcome of one engine run."""

    tenant: int
    profile: str
    arrivals: int = 0
    admitted: int = 0
    shed: int = 0
    #: Sheds forced by the ``admission-queue-corrupt`` fault (a subset of
    #: ``shed``): the corrupted slot was discarded, never dispatched.
    corrupt_shed: int = 0
    completed: int = 0
    kernel_cycles: float = 0.0
    syscalls: int = 0
    switches: int = 0
    switch_cycles: float = 0.0
    fence_stall_cycles: float = 0.0
    fenced_loads: dict[str, int] = field(default_factory=dict)
    latencies: list[float] = field(default_factory=list)

    def latency_percentile(self, q: float) -> float:
        return percentile(self.latencies, q) if self.latencies else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant, "profile": self.profile,
            "arrivals": self.arrivals, "admitted": self.admitted,
            "shed": self.shed, "corrupt_shed": self.corrupt_shed,
            "completed": self.completed,
            "kernel_cycles": self.kernel_cycles,
            "syscalls": self.syscalls,
            "switches": self.switches,
            "switch_cycles": self.switch_cycles,
            "fence_stall_cycles": self.fence_stall_cycles,
            "fenced_loads": dict(sorted(self.fenced_loads.items())),
            "latency_p50": self.latency_percentile(50.0),
            "latency_p95": self.latency_percentile(95.0),
            "latency_p99": self.latency_percentile(99.0),
            "latency_mean": (sum(self.latencies) / len(self.latencies)
                             if self.latencies else 0.0),
            "latency_max": max(self.latencies, default=0.0),
        }


@dataclass
class ServeReport:
    """Aggregate outcome of one engine run (JSON-stable via as_dict)."""

    config: ServeConfig
    tenants: list[TenantReport] = field(default_factory=list)
    makespan_cycles: float = 0.0

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.tenants)

    @property
    def shed(self) -> int:
        return sum(t.shed for t in self.tenants)

    @property
    def all_latencies(self) -> list[float]:
        merged: list[float] = []
        for tenant in self.tenants:
            merged.extend(tenant.latencies)
        return merged

    @property
    def throughput_rps(self) -> float:
        if self.makespan_cycles <= 0.0:
            return 0.0
        return self.completed * CORE_HZ / self.makespan_cycles

    def as_dict(self) -> dict[str, Any]:
        latencies = self.all_latencies
        return {
            "config": self.config.as_dict(),
            "makespan_cycles": self.makespan_cycles,
            "completed": self.completed,
            "shed": self.shed,
            "throughput_rps": self.throughput_rps,
            "latency_p50": percentile(latencies, 50.0) if latencies else 0.0,
            "latency_p95": percentile(latencies, 95.0) if latencies else 0.0,
            "latency_p99": percentile(latencies, 99.0) if latencies else 0.0,
            "kernel_cycles": sum(t.kernel_cycles for t in self.tenants),
            "switches": sum(t.switches for t in self.tenants),
            "switch_cycles": sum(t.switch_cycles for t in self.tenants),
            "fence_stall_cycles": sum(t.fence_stall_cycles
                                      for t in self.tenants),
            "tenants": [t.as_dict() for t in self.tenants],
        }


# ---------------------------------------------------------------------------
# Environment construction (multi-tenant make_env)
# ---------------------------------------------------------------------------


@dataclass
class Tenant:
    """A booted tenant: its process, measurement driver, and state."""

    index: int
    profile: RequestProfile
    proc: Process
    driver: Driver
    state: AppState
    counter: int = 0


def boot_tenants(config: ServeConfig, image=None, *,
                 block_cache: bool | None = None,
                 indices: list[int] | None = None,
                 ) -> tuple[MiniKernel, list[Tenant]]:
    """Boot one kernel with ``config.tenants`` cgroup-backed processes,
    run the offline profiling pass, arm the scheme, and run each
    tenant's server setup under the armed policy.

    Mirrors :func:`repro.eval.envs.make_env`'s deployment flow, but for
    N distrusting contexts sharing the machine: every tenant gets its
    own cgroup (so its own DSV/DSVMT and, for Perspective flavors, its
    own installed ISV).

    ``indices`` restricts the boot to a subset of the config's global
    tenant indices (a shard boots only the tenants placed on its core);
    the default boots all of them, byte-identically to before.
    """
    kernel = MiniKernel(image=shared_image() if image is None else image)
    if block_cache is not None:
        kernel.pipeline.config.enable_block_cache = block_cache
    flavor = perspective_flavor(config.scheme)
    procs: list[tuple[int, Process, RequestProfile]] = []
    for index in (range(config.tenants) if indices is None else indices):
        profile = REQUEST_PROFILES[config.profile_of(index)]
        proc = kernel.create_process(f"tenant{index}.{profile.name}")
        procs.append((index, proc, profile))

    # Offline profiling pass (identical for every scheme: history parity,
    # exactly as make_env does for single-tenant environments).
    kernel.tracer.start()
    for _, proc, profile in procs:
        driver = Driver(kernel, proc, rare_every=0)
        state = AppState()
        profile.setup(driver, state)
        for i in range(config.profile_requests):
            profile.request(driver, state, i)
    kernel.tracer.stop()

    framework = None
    if flavor is not None:
        framework = Perspective(kernel)
        for _, proc, profile in procs:
            ctx = proc.cgroup.cg_id
            if flavor == "static":
                isv: InstructionSpeculationView = generate_static_isv(
                    kernel.image, APPLICATIONS[profile.name], ctx)
            else:
                functions = kernel.tracer.traced_functions(ctx)
                isv = InstructionSpeculationView(
                    ctx, functions, kernel.image.layout, source="dynamic")
                if flavor == "++":
                    report = scan(kernel.image, scope=isv.functions)
                    isv = harden_isv(isv, report.functions()).hardened
            framework.install_isv(isv)
    kernel.pipeline.set_policy(build_policy(config.scheme, framework,
                                            kernel=kernel))

    tenants: list[Tenant] = []
    for index, proc, profile in procs:
        driver = Driver(kernel, proc, rare_every=config.rare_every)
        state = AppState()
        profile.setup(driver, state)
        driver.reset_stats()  # setup is boot, not served traffic
        tenants.append(Tenant(index=index, profile=profile, proc=proc,
                              driver=driver, state=state))
    return kernel, tenants


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------


class RunToCompletionScheduler:
    """FIFO run-to-completion scheduling over one shared core.

    Extracted from :func:`run_serve` so the adversarial campaign
    (:mod:`repro.serve.campaign`) can serve *multiple* offered batches
    through one persistent instance: the busy clock (``free_at``), the
    waiting queue, and the last-served tenant all carry across epochs,
    exactly as they would on a long-lived server.  ``run_serve`` remains
    a single-batch wrapper around it.
    """

    def __init__(self, tenants: list[Tenant], reports: list[TenantReport],
                 queue_bound: int = 0, *, trace_seed: int = 0,
                 trace_cell: str = "") -> None:
        self.tenants = tenants
        self.reports = reports
        self.queue_bound = queue_bound
        self.waiting: deque[Arrival] = deque()
        self.free_at = 0.0
        self.current: int | None = None
        self.makespan = 0.0
        #: Event-skip horizon: a cached lower bound on the next backlog
        #: dispatch's start cycle.  ``free_at`` only ever grows and the
        #: queue head only moves to later arrivals, so a stale value
        #: stays a lower bound -- arrivals strictly before it can skip
        #: the head re-scan without changing a single dispatch.
        self._next_start = 0.0
        #: Request-trace identity inputs (repro.obs.reqtrace): trace IDs
        #: derive from (trace_seed, trace_cell, tenant, arrival seq).
        #: The campaign re-labels trace_cell per epoch.
        self.trace_seed = trace_seed
        self.trace_cell = trace_cell

    def _trace_for(self, rec, arr: Arrival):
        return (rec.lookup(self.trace_seed, self.trace_cell,
                           arr.tenant, arr.seq)
                or rec.admit(self.trace_seed, self.trace_cell,
                             arr.tenant, arr.seq, arr.cycle))

    def dispatch(self, arr: Arrival) -> None:
        tenant = self.tenants[arr.tenant]
        report = self.reports[arr.tenant]
        start = max(self.free_at, arr.cycle)
        rec = rt.active_recorder()
        trace = None
        if rec is not None:
            trace = self._trace_for(rec, arr)
            rec.open(trace)
            rec.record("sched", "slice", 0.0,
                       {"start_cycle": start,
                        "queue_wait": start - arr.cycle,
                        "switch": self.current != arr.tenant})
        before_cycles = tenant.driver.stats.kernel_cycles
        if self.current != arr.tenant:
            # Context switch, charged through the real pipeline: the
            # incoming tenant runs the switch path under the armed
            # scheme (predictor flush, cold view-cache refills, DSVMT
            # walks for the new ASID -- whatever the scheme costs).
            switch = tenant.driver.call("sched_yield")
            report.switches += 1
            report.switch_cycles += switch.cycles
            self.current = arr.tenant
            obs.add("serve.switches")
            obs.observe("serve.switch_cycles", switch.cycles)
        tenant.profile.request(tenant.driver, tenant.state, tenant.counter)
        tenant.counter += 1
        service = tenant.driver.stats.kernel_cycles - before_cycles
        completion = start + service
        latency = completion - arr.cycle
        self.free_at = completion
        if completion > self.makespan:
            self.makespan = completion
        report.completed += 1
        report.latencies.append(latency)
        obs.observe("serve.latency_cycles", latency,
                    buckets=LATENCY_BUCKETS)
        obs.observe(f"serve.tenant.{arr.tenant}.latency_cycles", latency,
                    buckets=LATENCY_BUCKETS)
        obs.add("serve.requests.completed")
        slo.record_request(completion, latency)
        if rec is not None:
            rec.close(trace, "completed", start_cycle=start,
                      completion_cycle=completion, latency_cycles=latency)
            rec.exemplar("serve.latency_cycles", latency,
                         LATENCY_BUCKETS, trace.trace_id)
            rec.exemplar(f"serve.tenant.{arr.tenant}.latency_cycles",
                         latency, LATENCY_BUCKETS, trace.trace_id)

    def offer(self, arr: Arrival) -> None:
        """Handle one arrival: serve whatever starts first, then admit,
        shed (queue bound), or discard (corrupt admission slot)."""
        # Serve everything that starts no later than this arrival.  The
        # horizon check skips the idle gap between this arrival and the
        # next possible dispatch start in O(1) (byte-identical: when it
        # fires, the while condition below would be false anyway).
        if self.waiting and arr.cycle >= self._next_start:
            while self.waiting \
                    and max(self.free_at, self.waiting[0].cycle) <= arr.cycle:
                self.dispatch(self.waiting.popleft())
            if self.waiting:
                self._next_start = max(self.free_at, self.waiting[0].cycle)
        report = self.reports[arr.tenant]
        report.arrivals += 1
        rec = rt.active_recorder()
        if fire("admission-queue-corrupt"):
            # The queue slot failed its integrity check: the request is
            # shed -- fail closed, a request with corrupt tenant metadata
            # is never dispatched under the wrong context's views.
            report.shed += 1
            report.corrupt_shed += 1
            obs.add("serve.requests.shed")
            obs.add("serve.requests.corrupt_shed")
            obs.add(f"serve.tenant.{arr.tenant}.shed")
            ev.emit("fault-fallback", context=arr.tenant,
                    reason="admission-corrupt-shed")
            slo.record_shed(arr.cycle)
            if rec is not None:
                trace = self._trace_for(rec, arr)
                rec.note(trace, "admission", "corrupt-shed",
                         queue_depth=len(self.waiting))
                rec.close(trace, "corrupt-shed")
            return
        if self.queue_bound and len(self.waiting) >= self.queue_bound:
            report.shed += 1
            obs.add("serve.requests.shed")
            obs.add(f"serve.tenant.{arr.tenant}.shed")
            slo.record_shed(arr.cycle)
            if rec is not None:
                trace = self._trace_for(rec, arr)
                rec.note(trace, "admission", "shed",
                         queue_depth=len(self.waiting))
                rec.close(trace, "shed")
            return
        report.admitted += 1
        if rec is not None:
            trace = self._trace_for(rec, arr)
            rec.note(trace, "admission", "admit",
                     queue_depth=len(self.waiting))
        if not self.waiting:
            self._next_start = max(self.free_at, arr.cycle)
        self.waiting.append(arr)

    def drain(self) -> None:
        while self.waiting:
            self.dispatch(self.waiting.popleft())

    def drain_until(self, cycle: float) -> None:
        """Serve every queued request that starts at or before ``cycle``
        (the dense reference loop's per-quantum step)."""
        if self.waiting and cycle >= self._next_start:
            while self.waiting \
                    and max(self.free_at, self.waiting[0].cycle) <= cycle:
                self.dispatch(self.waiting.popleft())
            if self.waiting:
                self._next_start = max(self.free_at, self.waiting[0].cycle)

    def serve_batch(self, schedule: list[Arrival]) -> None:
        """Offer one merged arrival batch, then run the queue dry."""
        for arr in schedule:
            self.offer(arr)
        self.drain()

    def occupy(self, cycles: float) -> None:
        """Charge co-located non-request activity (an attacker tenant's
        PoC probes) to the shared core: later requests queue behind it."""
        self.free_at += cycles
        if self.free_at > self.makespan:
            self.makespan = self.free_at


def run_serve(config: ServeConfig, image=None, *,
              block_cache: bool | None = None) -> ServeReport:
    """Run the full open-loop simulation; returns the per-tenant report.

    ``block_cache`` forces the pipeline's block-trace memoization on or
    off for the whole cell (boot included); ``None`` keeps the pipeline
    default.  Not part of :class:`ServeConfig` because replay is
    byte-exact: the report is identical either way, only wall time
    changes (the block-JIT benchmark relies on exactly that).
    """
    kernel, tenants = boot_tenants(config, image=image,
                                   block_cache=block_cache)
    schedule = arrival_schedule(config.seed, config.tenants,
                                config.requests_per_tenant,
                                config.mean_interarrival)
    reports = [TenantReport(tenant=t.index, profile=t.profile.name)
               for t in tenants]
    scheduler = RunToCompletionScheduler(
        tenants, reports, queue_bound=config.queue_bound,
        trace_seed=config.seed,
        trace_cell=f"s{config.seed}.t{config.tenants}")
    scheduler.serve_batch(schedule)
    collect_tenant_stats(tenants, reports)
    return ServeReport(config=config, tenants=reports,
                       makespan_cycles=scheduler.makespan)


def collect_tenant_stats(tenants: list[Tenant],
                         reports: list[TenantReport]) -> None:
    """Fold each tenant's driver statistics into its report."""
    for tenant, report in zip(tenants, reports):
        stats = tenant.driver.stats
        report.kernel_cycles = stats.kernel_cycles
        report.syscalls = stats.syscalls
        report.fence_stall_cycles = stats.exec.fence_stall_cycles
        report.fenced_loads = dict(sorted(
            stats.exec.fenced_loads.items()))


# ---------------------------------------------------------------------------
# Grid cell (the repro.exec fan-out unit)
# ---------------------------------------------------------------------------


def config_from_params(params: dict[str, Any]) -> ServeConfig:
    """Build a :class:`ServeConfig` from a plain JSON-able param dict."""
    known = {"scheme", "tenants", "seed", "requests_per_tenant",
             "mean_interarrival", "queue_bound", "profiles",
             "rare_every", "profile_requests"}
    kwargs = {k: v for k, v in params.items() if k in known}
    if "profiles" in kwargs:
        kwargs["profiles"] = tuple(kwargs["profiles"])
    return ServeConfig(**kwargs)


def serve_cell(params: dict[str, Any],
               observe: bool = False) -> dict[str, Any]:
    """One (seed, tenants) cell of the serve sweep.

    Returns the report as a JSON-able dict; with ``observe=True`` the
    cell runs inside its own fresh :class:`repro.obs.MetricsRegistry`
    (the per-cell structure the parallel engine requires) and attaches
    its snapshot under ``"metrics"``.

    Extra (non-``ServeConfig``) params, all observation-only -- the
    report bytes are identical with or without them:

    * ``block_cache`` -- force the block JIT on/off for the cell.
    * ``trace`` -- run under a fresh ``TraceRecorder``; attaches its
      snapshot under ``"traces"``.
    * ``slo_window`` -- run under a fresh ``SloRollup`` with this
      window width (simulated cycles); attaches it under ``"slo"``.

    Sharding params (``shards``, ``placement``, ``migrate_every``,
    ``service_model``, ``memo_warmup``, ``memo_period``) route the cell
    through :func:`repro.serve.shard.run_serve_sharded`; with
    ``shards=1`` and the ``full`` service model that path reproduces
    this one byte-for-byte (plus additive shard gauges).
    """
    from repro.serve.shard import (
        _SHARD_KEYS, run_serve_sharded, sharded_config_from_params)
    sharded = any(k in params for k in _SHARD_KEYS)
    if sharded:
        config = sharded_config_from_params(params)
        runner = lambda: run_serve_sharded(  # noqa: E731
            config, block_cache=params.get("block_cache"))
    else:
        config = config_from_params(params)
        runner = lambda: run_serve(  # noqa: E731
            config, block_cache=params.get("block_cache"))
    trace = bool(params.get("trace"))
    slo_window = params.get("slo_window")
    if not (observe or trace or slo_window):
        return runner().as_dict()
    from contextlib import ExitStack

    from repro.obs import MetricsRegistry, observing
    registry = MetricsRegistry() if observe else None
    recorder = rt.TraceRecorder() if trace else None
    rollup = slo.SloRollup(float(slo_window),
                           latency_buckets=LATENCY_BUCKETS) \
        if slo_window else None
    with ExitStack() as stack:
        if registry is not None:
            stack.enter_context(observing(registry))
        if recorder is not None:
            stack.enter_context(rt.tracing(recorder))
        if rollup is not None:
            stack.enter_context(slo.collecting(rollup))
        out = runner().as_dict()
        if registry is not None:
            # Summary gauges under a per-cell prefix, so merged cell
            # registries never collide and the smoke snapshot carries
            # the report figures the diff gate should watch.
            cell = f"serve.cell.s{config.seed}.t{config.tenants}"
            keys = ["completed", "shed", "throughput_rps",
                    "makespan_cycles", "latency_p50", "latency_p95",
                    "latency_p99", "switch_cycles",
                    "fence_stall_cycles"]
            if sharded:
                keys += ["migrations", "migration_excess_cycles"]
                obs.gauge(f"{cell}.shards", config.shards)
            for key in keys:
                obs.gauge(f"{cell}.{key}", out[key])
    if registry is not None:
        out["metrics"] = registry.snapshot()
    if recorder is not None:
        out["traces"] = recorder.snapshot()
    if rollup is not None:
        out["slo"] = rollup.snapshot()
    return out
