"""Sharded multi-core serving: N MiniKernels, placement, migration.

The single-kernel engine (:mod:`repro.serve.engine`) models every tenant
on one simulated core.  Perspective's costs are fundamentally *per-core*
state -- ISV/DSV view caches, the DSVMT walker state, the branch unit --
so the datacenter setting the paper targets needs a multi-core model:
this module grows the engine into ``shards`` independent cores, each a
full :class:`MiniKernel` with private speculation state, with tenants
placed across shards by deterministic policies and cross-shard
migrations explicitly charged on the destination core.

Placement policies (all pure functions of the config + schedule):

* ``hash`` -- static: ``crc32("serve:place:<seed>:tenant:<t>") % shards``.
* ``affinity`` -- static: tenants hash by *profile name*, so same-mix
  tenants co-locate (warm per-profile ISV/branch state, at the price of
  load skew).
* ``least-loaded`` -- dynamic: a tenant's first arrival goes to the
  shard with the fewest routed arrivals so far (ties broken by a
  string-seeded draw, so the choice survives ``PYTHONHASHSEED``); with
  ``migrate_every > 0``, every ``migrate_every``-th arrival of a tenant
  re-evaluates and migrates off a strictly-overloaded home shard.

Migration charging: the *destination* shard pays an IBPB-style
``BranchUnit.reset()`` (full predictor flush -- the migrated context
must not inherit the destination core's training, and its own training
stayed behind) plus ASID-targeted ISV/DSV view-cache invalidation (the
migrated context's views are cold on the new core and refill through
DSVMT walks).  Each migration is journaled as a ``tenant-migration``
event, and the excess service cycles of post-migration cold dispatches
over the tenant's warm steady state are attributed to
``migration_excess_cycles``.

Service models:

* ``full`` -- every request interpreted through the pipeline, exactly
  as the single-kernel engine does.  ``shards=1`` + ``full`` reproduces
  :func:`repro.serve.engine.run_serve` byte-for-byte.
* ``memo`` -- steady-state service memoization: each (tenant, request
  phase, migration-cold, rare-phase) class is interpreted through the
  real pipeline ``memo_warmup`` times, then replayed by pure accounting
  (cycles, syscalls, fence stalls, fenced-load mix).  Request mixes are
  periodic (``PROFILE_PERIODS``), so the class space is small and the
  replay is deterministic -- this is what makes 10^6+ request
  experiments feasible.  The approximation is explicit: replayed
  requests reuse the last interpreted cost of their class instead of
  re-simulating microarchitectural drift within the class.

Scheduling is event-driven in both cases: arrivals stream through a
``heapq`` merge and each shard skips straight from its ``free_at``
horizon to the next arrival, never stepping idle cycles.  A dense
quantum-stepping reference loop (``mode="dense"``) is kept for the
benchmark: it produces byte-identical reports while paying O(makespan /
quantum) wall clock, which is exactly the gap
``benchmarks/bench_serve_scale.py`` measures.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from random import Random
from typing import Any, Iterator
from zlib import crc32

from repro.obs import events as ev
from repro.obs import registry as obs
from repro.obs import reqtrace as rt
from repro.obs import slo
from repro.serve.arrival import Arrival, arrival_stream
from repro.serve.engine import (
    CORE_HZ, LATENCY_BUCKETS, RunToCompletionScheduler, ServeConfig,
    Tenant, TenantReport, boot_tenants)

#: Request-mix periodicity per profile: the request bodies in
#: :mod:`repro.workloads.apps` condition only on ``i % k`` (and httpd /
#: nginx rotate the opened file kind over the six fops tables), so the
#: service-cost classes repeat with these periods.
PROFILE_PERIODS: dict[str, int] = {
    "httpd": 6, "nginx": 6, "memcached": 96, "redis": 24, "lebench": 24,
}

#: Fixed latency buckets for cross-process scale aggregation (a 1-2-5
#: ladder).  Shard cells ship bucket counts instead of raw latencies, so
#: merged p50/p99 are bucket-resolution -- the same contract
#: :mod:`repro.obs.slo` uses -- and stay byte-exact under any fan-out.
SCALE_LATENCY_BUCKETS: tuple[float, ...] = (
    1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5,
    1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8, 1e9, 1e10)

PLACEMENT_POLICIES = ("hash", "least-loaded", "affinity")
SERVICE_MODELS = ("full", "memo")


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardedServeConfig(ServeConfig):
    """ServeConfig plus the multi-core knobs."""

    shards: int = 1
    placement: str = "hash"
    #: Re-evaluate a tenant's placement every Nth arrival (0 = never).
    #: Only ``least-loaded`` actually migrates; static policies never
    #: change their answer.
    migrate_every: int = 0
    service_model: str = "full"
    #: Interpreted dispatches per memo class before replay kicks in.
    memo_warmup: int = 1
    #: Cap on the per-profile phase period (0 = exact).  Smaller caps
    #: fold phases together: fewer warmup interpretations, coarser
    #: approximation.
    memo_period: int = 0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(f"unknown placement {self.placement!r}")
        if self.service_model not in SERVICE_MODELS:
            raise ValueError(
                f"unknown service_model {self.service_model!r}")
        if self.memo_warmup < 1:
            raise ValueError("memo_warmup must be >= 1")
        if self.migrate_every < 0 or self.memo_period < 0:
            raise ValueError("migrate_every/memo_period must be >= 0")

    def as_dict(self) -> dict[str, Any]:
        out = super().as_dict()
        out.update({
            "shards": self.shards, "placement": self.placement,
            "migrate_every": self.migrate_every,
            "service_model": self.service_model,
            "memo_warmup": self.memo_warmup,
            "memo_period": self.memo_period,
        })
        return out

    def period_of(self, tenant: int) -> int:
        period = PROFILE_PERIODS.get(self.profile_of(tenant), 96)
        if self.memo_period:
            period = min(period, self.memo_period)
        return period


_SHARD_KEYS = frozenset({
    "shards", "placement", "migrate_every", "service_model",
    "memo_warmup", "memo_period"})


def sharded_config_from_params(params: dict[str, Any]) -> ShardedServeConfig:
    """Build a :class:`ShardedServeConfig` from a JSON-able param dict."""
    known = {"scheme", "tenants", "seed", "requests_per_tenant",
             "mean_interarrival", "queue_bound", "profiles",
             "rare_every", "profile_requests"} | _SHARD_KEYS
    kwargs = {k: v for k, v in params.items() if k in known}
    if "profiles" in kwargs:
        kwargs["profiles"] = tuple(kwargs["profiles"])
    return ShardedServeConfig(**kwargs)


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Migration:
    """One cross-shard move, decided at arrival ``(tenant, seq)``."""

    tenant: int
    seq: int
    src: int
    dst: int


def static_placement(seed: int, tenant: int, shards: int) -> int:
    """The ``hash`` policy's answer (pure, PYTHONHASHSEED-proof)."""
    return crc32(f"serve:place:{seed}:tenant:{tenant}".encode()) % shards


def affinity_placement(seed: int, profile: str, shards: int) -> int:
    """The ``affinity`` policy's answer: co-locate by profile name."""
    return crc32(f"serve:place:{seed}:profile:{profile}".encode()) % shards


class Placer:
    """Incremental, deterministic tenant->shard routing.

    A pure function of the arrival sequence it is fed: the load counters
    that drive ``least-loaded`` count *routed arrivals*, which depend
    only on earlier routing decisions -- never on service outcomes -- so
    a planning pass, the serving pass, and every per-shard grid cell
    all reconstruct identical placements independently.
    """

    def __init__(self, config: ShardedServeConfig) -> None:
        self.config = config
        self.home: dict[int, int] = {}
        self.load = [0] * config.shards
        self.seen: dict[int, int] = {}
        self._decisions: dict[int, int] = {}
        self.migrations: list[Migration] = []

    def _choose_least_loaded(self, tenant: int) -> int:
        lo = min(self.load)
        candidates = [s for s in range(self.config.shards)
                      if self.load[s] == lo]
        if len(candidates) == 1:
            return candidates[0]
        k = self._decisions.get(tenant, 0)
        rng = Random(
            f"serve:place:{self.config.seed}:tenant:{tenant}:tie:{k}")
        return candidates[rng.randrange(len(candidates))]

    def _initial(self, tenant: int) -> int:
        config = self.config
        if config.placement == "hash":
            return static_placement(config.seed, tenant, config.shards)
        if config.placement == "affinity":
            return affinity_placement(
                config.seed, config.profile_of(tenant), config.shards)
        return self._choose_least_loaded(tenant)

    def route(self, arr: Arrival) -> tuple[int, Migration | None]:
        """Route one arrival; returns (shard, migration-or-None)."""
        tenant = arr.tenant
        config = self.config
        seen = self.seen.get(tenant, 0)
        migration = None
        if tenant not in self.home:
            self.home[tenant] = self._initial(tenant)
            self._decisions[tenant] = self._decisions.get(tenant, 0) + 1
        elif (config.migrate_every and config.placement == "least-loaded"
                and seen % config.migrate_every == 0):
            cur = self.home[tenant]
            if self.load[cur] > min(self.load):
                dst = self._choose_least_loaded(tenant)
                self._decisions[tenant] = self._decisions.get(tenant, 0) + 1
                if dst != cur:
                    migration = Migration(tenant=tenant, seq=arr.seq,
                                          src=cur, dst=dst)
                    self.migrations.append(migration)
                    self.home[tenant] = dst
        shard = self.home[tenant]
        self.load[shard] += 1
        self.seen[tenant] = seen + 1
        return shard, migration


def plan_placement(config: ShardedServeConfig,
                   ) -> tuple[list[list[int]], list[Migration], list[int]]:
    """Streaming pre-pass: which tenants ever run on which shard.

    Returns (members-per-shard, migrations, arrivals-routed-per-shard).
    Each shard boots exactly its member set -- cross-shard moves are
    known before any kernel exists, which is what lets shards run as
    independent :mod:`repro.exec` grid cells.
    """
    placer = Placer(config)
    members: list[set[int]] = [set() for _ in range(config.shards)]
    for arr in _arrivals(config):
        shard, _ = placer.route(arr)
        members[shard].add(arr.tenant)
    return ([sorted(m) for m in members], placer.migrations,
            list(placer.load))


def _arrivals(config: ServeConfig) -> Iterator[Arrival]:
    return arrival_stream(config.seed, config.tenants,
                          config.requests_per_tenant,
                          config.mean_interarrival)


# ---------------------------------------------------------------------------
# Memoized service records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MemoRecord:
    """The measured cost of one interpreted dispatch class."""

    kernel_cycles: float
    syscalls: int
    driver_calls: int
    fence_stall_cycles: float
    fenced_loads: tuple[tuple[str, int], ...]


@dataclass
class _ReplayedStats:
    """Driver-equivalent accounting for replayed (non-interpreted)
    dispatches, folded in at collect time."""

    kernel_cycles: float = 0.0
    syscalls: int = 0
    fence_stall_cycles: float = 0.0
    fenced_loads: dict[str, int] = field(default_factory=dict)

    def add(self, rec: MemoRecord) -> None:
        self.kernel_cycles += rec.kernel_cycles
        self.syscalls += rec.syscalls
        self.fence_stall_cycles += rec.fence_stall_cycles
        for kind, count in rec.fenced_loads:
            self.fenced_loads[kind] = self.fenced_loads.get(kind, 0) + count


# ---------------------------------------------------------------------------
# The per-shard scheduler
# ---------------------------------------------------------------------------


class ShardScheduler(RunToCompletionScheduler):
    """Run-to-completion scheduling on one shard's private core.

    Adds migration charging and the ``memo`` service model on top of
    the base scheduler.  In ``full`` mode the dispatch path is the
    inherited one -- byte-identical behaviour -- plus cold-migration
    flushes and excess-cycle attribution around it.
    """

    def __init__(self, tenants: list[Tenant | None],
                 reports: list[TenantReport], queue_bound: int = 0, *,
                 trace_seed: int = 0, trace_cell: str = "",
                 kernel=None, shard_index: int = 0,
                 config: ShardedServeConfig | None = None) -> None:
        super().__init__(tenants, reports, queue_bound,
                         trace_seed=trace_seed, trace_cell=trace_cell)
        self.kernel = kernel
        self.shard_index = shard_index
        self.config = config or ShardedServeConfig()
        self.memo_mode = self.config.service_model == "memo"
        #: tenant -> source shard of a pending (not yet charged) move-in.
        self._cold_from: dict[int, int] = {}
        self.migrations_in = 0
        self.tenant_migrations: dict[int, int] = {}
        self.ibpb_flushes = 0
        self.migration_cold_dispatches = 0
        self.migration_excess_cycles = 0.0
        #: (tenant, phase) -> last warm total service cycles, the
        #: reference the cold-dispatch excess is attributed against.
        self._warm_obs: dict[tuple[int, int], float] = {}
        # Memo state: service classes keyed (tenant, phase, cold,
        # rare-phase); switch classes keyed (tenant, cold, rare-phase).
        self._service_memo: dict[tuple, MemoRecord] = {}
        self._switch_memo: dict[tuple, MemoRecord] = {}
        self._seen: dict[tuple, int] = {}
        self._replayed: dict[int, _ReplayedStats] = {}
        self.memo_replays = 0
        self.memo_interpreted = 0

    # -- migration ---------------------------------------------------------

    def note_migration(self, tenant: int, src: int) -> None:
        """A tenant just migrated in; its next dispatch runs cold."""
        self._cold_from[tenant] = src
        self.migrations_in += 1
        self.tenant_migrations[tenant] = \
            self.tenant_migrations.get(tenant, 0) + 1
        obs.add("serve.migrations")

    def _flush_for_migration(self, tenant_idx: int, src: int) -> None:
        """Charge the move-in on this core: IBPB-style full predictor
        flush plus ASID-targeted view-cache invalidation, so the next
        dispatches pay cold-refill costs through the real pipeline."""
        tenant = self.tenants[tenant_idx]
        ctx = tenant.proc.cgroup.cg_id
        self.kernel.branch_unit.reset()
        # Force the context-switch flush path on the next syscall too:
        # whatever ran last on this core, the migrated context is new.
        self.kernel._last_kernel_ctx = None
        framework = getattr(self.kernel.pipeline.policy, "framework", None)
        if framework is not None:
            framework.isv_cache.invalidate_asid(ctx)
            framework.dsv_cache.invalidate_asid(ctx)
        self.ibpb_flushes += 1
        obs.add("serve.migration.flushes")
        ev.emit("tenant-migration", context=ctx,
                reason=f"shard{src}->shard{self.shard_index}",
                scheme=self.kernel.pipeline.policy.name)

    # -- memo plumbing -----------------------------------------------------

    def _rare_phase(self, tenant: Tenant) -> int:
        rare = tenant.driver.rare_every
        return tenant.driver._counter % rare if rare else 0

    def _snapshot(self, tenant: Tenant):
        stats = tenant.driver.stats
        return (stats.kernel_cycles, stats.syscalls,
                tenant.driver._counter, stats.exec.fence_stall_cycles,
                dict(stats.exec.fenced_loads))

    def _delta(self, tenant: Tenant, before) -> MemoRecord:
        stats = tenant.driver.stats
        fenced = tuple(sorted(
            (kind, count - before[4].get(kind, 0))
            for kind, count in stats.exec.fenced_loads.items()
            if count != before[4].get(kind, 0)))
        return MemoRecord(
            kernel_cycles=stats.kernel_cycles - before[0],
            syscalls=stats.syscalls - before[1],
            driver_calls=tenant.driver._counter - before[2],
            fence_stall_cycles=stats.exec.fence_stall_cycles - before[3],
            fenced_loads=fenced)

    def _replay(self, tenant_idx: int, rec: MemoRecord) -> None:
        acc = self._replayed.get(tenant_idx)
        if acc is None:
            acc = self._replayed[tenant_idx] = _ReplayedStats()
        acc.add(rec)
        # Advance the driver's call counter so rare-path phases stay
        # aligned with what full interpretation would have seen.
        self.tenants[tenant_idx].driver._counter += rec.driver_calls

    def preload_memo(self, tables: dict[str, dict]) -> None:
        """Transplant memo tables from a prior run of the same config
        (the benchmark pre-warms once, then times pure scheduling)."""
        self._service_memo.update(tables.get("service", {}))
        self._switch_memo.update(tables.get("switch", {}))
        for key in list(tables.get("service", {})) \
                + list(tables.get("switch", {})):
            self._seen[key] = self.config.memo_warmup

    def memo_tables(self) -> dict[str, dict]:
        return {"service": dict(self._service_memo),
                "switch": dict(self._switch_memo)}

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, arr: Arrival) -> None:
        cold = arr.tenant in self._cold_from
        if cold:
            src = self._cold_from.pop(arr.tenant)
            self._flush_for_migration(arr.tenant, src)
            self.migration_cold_dispatches += 1
        tenant = self.tenants[arr.tenant]
        phase = tenant.counter % self.config.period_of(arr.tenant)
        if self.memo_mode:
            self._dispatch_memo(arr, cold, phase)
            return
        before = tenant.driver.stats.kernel_cycles
        super().dispatch(arr)
        total = tenant.driver.stats.kernel_cycles - before
        self._account_cost(arr.tenant, phase, cold, total)

    def _account_cost(self, tenant_idx: int, phase: int, cold: bool,
                      total: float) -> None:
        key = (tenant_idx, phase)
        if cold:
            warm = self._warm_obs.get(key)
            if warm is not None:
                self.migration_excess_cycles += max(0.0, total - warm)
        else:
            self._warm_obs[key] = total

    def _dispatch_memo(self, arr: Arrival, cold: bool, phase: int) -> None:
        tenant = self.tenants[arr.tenant]
        report = self.reports[arr.tenant]
        start = max(self.free_at, arr.cycle)
        switched = self.current != arr.tenant
        rec = rt.active_recorder()
        trace = None
        if rec is not None:
            trace = self._trace_for(rec, arr)
            rec.open(trace)
            rec.record("sched", "slice", 0.0,
                       {"start_cycle": start,
                        "queue_wait": start - arr.cycle,
                        "switch": switched})
        switch_cycles = 0.0
        if switched:
            skey = ("sw", arr.tenant, cold, self._rare_phase(tenant))
            srec = self._switch_memo.get(skey)
            if srec is not None \
                    and self._seen.get(skey, 0) >= self.config.memo_warmup:
                switch_cycles = srec.kernel_cycles
                self._replay(arr.tenant, srec)
                self.memo_replays += 1
                obs.add("serve.memo.replays")
            else:
                before = self._snapshot(tenant)
                tenant.driver.call("sched_yield")
                srec = self._delta(tenant, before)
                self._switch_memo[skey] = srec
                self._seen[skey] = self._seen.get(skey, 0) + 1
                switch_cycles = srec.kernel_cycles
                self.memo_interpreted += 1
                obs.add("serve.memo.interpreted")
            report.switches += 1
            report.switch_cycles += switch_cycles
            self.current = arr.tenant
            obs.add("serve.switches")
            obs.observe("serve.switch_cycles", switch_cycles)
        key = (arr.tenant, phase, cold, self._rare_phase(tenant))
        mrec = self._service_memo.get(key)
        if mrec is not None \
                and self._seen.get(key, 0) >= self.config.memo_warmup:
            service = mrec.kernel_cycles
            self._replay(arr.tenant, mrec)
            tenant.counter += 1
            self.memo_replays += 1
            obs.add("serve.memo.replays")
            if rec is not None:
                rec.record("service", "memo-replay", service, {})
        else:
            before = self._snapshot(tenant)
            tenant.profile.request(tenant.driver, tenant.state,
                                   tenant.counter)
            tenant.counter += 1
            mrec = self._delta(tenant, before)
            self._service_memo[key] = mrec
            self._seen[key] = self._seen.get(key, 0) + 1
            service = mrec.kernel_cycles
            self.memo_interpreted += 1
            obs.add("serve.memo.interpreted")
        self._account_cost(arr.tenant, phase, cold,
                           switch_cycles + service)
        completion = start + switch_cycles + service
        latency = completion - arr.cycle
        self.free_at = completion
        if completion > self.makespan:
            self.makespan = completion
        report.completed += 1
        report.latencies.append(latency)
        obs.observe("serve.latency_cycles", latency,
                    buckets=LATENCY_BUCKETS)
        obs.observe(f"serve.tenant.{arr.tenant}.latency_cycles", latency,
                    buckets=LATENCY_BUCKETS)
        obs.add("serve.requests.completed")
        slo.record_request(completion, latency)
        if rec is not None:
            rec.close(trace, "completed", start_cycle=start,
                      completion_cycle=completion, latency_cycles=latency)
            rec.exemplar("serve.latency_cycles", latency,
                         LATENCY_BUCKETS, trace.trace_id)
            rec.exemplar(f"serve.tenant.{arr.tenant}.latency_cycles",
                         latency, LATENCY_BUCKETS, trace.trace_id)


# ---------------------------------------------------------------------------
# Shard construction, serving loops, reports
# ---------------------------------------------------------------------------


@dataclass
class ShardState:
    """One booted shard: its kernel, member tenants, and scheduler."""

    index: int
    members: list[int]
    kernel: Any = None
    tenants: list[Tenant | None] = field(default_factory=list)
    reports: list[TenantReport] = field(default_factory=list)
    sched: ShardScheduler | None = None


@dataclass
class ShardReport:
    """Per-shard outcome (JSON-stable via as_dict)."""

    shard: int
    tenants: list[int]
    arrivals: int = 0
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    makespan_cycles: float = 0.0
    kernel_cycles: float = 0.0
    switches: int = 0
    switch_cycles: float = 0.0
    migrations_in: int = 0
    ibpb_flushes: int = 0
    migration_cold_dispatches: int = 0
    migration_excess_cycles: float = 0.0
    memo_keys: int = 0
    memo_replays: int = 0
    memo_interpreted: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "shard": self.shard, "tenants": list(self.tenants),
            "arrivals": self.arrivals, "admitted": self.admitted,
            "shed": self.shed, "completed": self.completed,
            "makespan_cycles": self.makespan_cycles,
            "kernel_cycles": self.kernel_cycles,
            "switches": self.switches,
            "switch_cycles": self.switch_cycles,
            "migrations_in": self.migrations_in,
            "ibpb_flushes": self.ibpb_flushes,
            "migration_cold_dispatches": self.migration_cold_dispatches,
            "migration_excess_cycles": self.migration_excess_cycles,
            "memo_keys": self.memo_keys,
            "memo_replays": self.memo_replays,
            "memo_interpreted": self.memo_interpreted,
        }


@dataclass
class ShardedServeReport:
    """Aggregate outcome across all shards.

    ``as_dict()`` is a strict superset of the single-kernel
    :class:`repro.serve.engine.ServeReport` dict: with ``shards=1`` and
    the ``full`` service model every shared key -- including the
    per-tenant reports -- is byte-identical to ``run_serve``'s.
    """

    config: ShardedServeConfig
    tenants: list[TenantReport] = field(default_factory=list)
    shards: list[ShardReport] = field(default_factory=list)
    makespan_cycles: float = 0.0
    migrations: list[Migration] = field(default_factory=list)
    placement_home: dict[int, int] = field(default_factory=dict)
    #: Wall-clock seconds of the serving loop only (boot and the
    #: placement pre-pass excluded); diagnostic, never part of as_dict.
    serve_seconds: float = 0.0

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.tenants)

    @property
    def shed(self) -> int:
        return sum(t.shed for t in self.tenants)

    @property
    def throughput_rps(self) -> float:
        if self.makespan_cycles <= 0.0:
            return 0.0
        return self.completed * CORE_HZ / self.makespan_cycles

    def as_dict(self) -> dict[str, Any]:
        latencies: list[float] = []
        for tenant in self.tenants:
            latencies.extend(tenant.latencies)
        ordered = sorted(latencies)

        def pct(q: float) -> float:
            if not ordered:
                return 0.0
            rank = max(1, math.ceil(q / 100.0 * len(ordered)))
            return ordered[rank - 1]

        return {
            "config": self.config.as_dict(),
            "makespan_cycles": self.makespan_cycles,
            "completed": self.completed,
            "shed": self.shed,
            "throughput_rps": self.throughput_rps,
            "latency_p50": pct(50.0),
            "latency_p95": pct(95.0),
            "latency_p99": pct(99.0),
            "kernel_cycles": sum(t.kernel_cycles for t in self.tenants),
            "switches": sum(t.switches for t in self.tenants),
            "switch_cycles": sum(t.switch_cycles for t in self.tenants),
            "fence_stall_cycles": sum(t.fence_stall_cycles
                                      for t in self.tenants),
            "tenants": [t.as_dict() for t in self.tenants],
            "shards": [s.as_dict() for s in self.shards],
            "placement": {
                "policy": self.config.placement,
                "home": {str(t): s for t, s
                         in sorted(self.placement_home.items())},
            },
            "migrations": len(self.migrations),
            "migration_excess_cycles": sum(
                s.migration_excess_cycles for s in self.shards),
            "memo_replays": sum(s.memo_replays for s in self.shards),
            "memo_interpreted": sum(s.memo_interpreted
                                    for s in self.shards),
        }


def _fresh_reports(config: ServeConfig) -> list[TenantReport]:
    return [TenantReport(tenant=i, profile=config.profile_of(i))
            for i in range(config.tenants)]


def _trace_cell(config: ShardedServeConfig, shard_index: int) -> str:
    cell = f"s{config.seed}.t{config.tenants}"
    if config.shards > 1:
        cell += f".sh{shard_index}"
    return cell


def _boot_shard(config: ShardedServeConfig, index: int,
                members: list[int], image=None,
                block_cache: bool | None = None) -> ShardState:
    state = ShardState(index=index, members=members,
                       reports=_fresh_reports(config))
    if not members:
        state.tenants = [None] * config.tenants
        return state
    kernel, booted = boot_tenants(config, image=image,
                                  block_cache=block_cache,
                                  indices=members)
    tenants: list[Tenant | None] = [None] * config.tenants
    for tenant in booted:
        tenants[tenant.index] = tenant
    state.kernel = kernel
    state.tenants = tenants
    state.sched = ShardScheduler(
        tenants, state.reports, queue_bound=config.queue_bound,
        trace_seed=config.seed, trace_cell=_trace_cell(config, index),
        kernel=kernel, shard_index=index, config=config)
    return state


def _collect_shard(state: ShardState) -> None:
    """Fold driver stats plus replayed-dispatch accounting into the
    shard's per-tenant reports (the sharded collect_tenant_stats)."""
    if state.sched is None:
        return
    for idx in state.members:
        tenant = state.tenants[idx]
        report = state.reports[idx]
        stats = tenant.driver.stats
        replayed = state.sched._replayed.get(idx)
        extra_cycles = replayed.kernel_cycles if replayed else 0.0
        extra_sys = replayed.syscalls if replayed else 0
        extra_stall = replayed.fence_stall_cycles if replayed else 0.0
        report.kernel_cycles = stats.kernel_cycles + extra_cycles
        report.syscalls = stats.syscalls + extra_sys
        report.fence_stall_cycles = \
            stats.exec.fence_stall_cycles + extra_stall
        fenced = dict(stats.exec.fenced_loads)
        if replayed:
            for kind, count in replayed.fenced_loads.items():
                fenced[kind] = fenced.get(kind, 0) + count
        report.fenced_loads = dict(sorted(fenced.items()))


def _shard_report(state: ShardState) -> ShardReport:
    out = ShardReport(shard=state.index, tenants=list(state.members))
    for report in state.reports:
        out.arrivals += report.arrivals
        out.admitted += report.admitted
        out.shed += report.shed
        out.completed += report.completed
        out.kernel_cycles += report.kernel_cycles
        out.switches += report.switches
        out.switch_cycles += report.switch_cycles
    sched = state.sched
    if sched is not None:
        out.makespan_cycles = sched.makespan
        out.migrations_in = sched.migrations_in
        out.ibpb_flushes = sched.ibpb_flushes
        out.migration_cold_dispatches = sched.migration_cold_dispatches
        out.migration_excess_cycles = sched.migration_excess_cycles
        out.memo_keys = (len(sched._service_memo)
                         + len(sched._switch_memo))
        out.memo_replays = sched.memo_replays
        out.memo_interpreted = sched.memo_interpreted
    return out


def _merge_tenant_reports(config: ShardedServeConfig,
                          states: list[ShardState]) -> list[TenantReport]:
    merged = _fresh_reports(config)
    for state in states:
        for idx in range(config.tenants):
            src = state.reports[idx]
            dst = merged[idx]
            dst.arrivals += src.arrivals
            dst.admitted += src.admitted
            dst.shed += src.shed
            dst.corrupt_shed += src.corrupt_shed
            dst.completed += src.completed
            dst.kernel_cycles += src.kernel_cycles
            dst.syscalls += src.syscalls
            dst.switches += src.switches
            dst.switch_cycles += src.switch_cycles
            dst.fence_stall_cycles += src.fence_stall_cycles
            for kind, count in src.fenced_loads.items():
                dst.fenced_loads[kind] = \
                    dst.fenced_loads.get(kind, 0) + count
            dst.latencies.extend(src.latencies)
    for report in merged:
        report.fenced_loads = dict(sorted(report.fenced_loads.items()))
    return merged


def run_serve_sharded(config: ShardedServeConfig, image=None, *,
                      block_cache: bool | None = None,
                      mode: str = "event",
                      dense_quantum: float = 1000.0,
                      memo_seed: list[dict] | None = None,
                      ) -> ShardedServeReport:
    """Run the sharded open-loop simulation.

    ``mode="event"`` (default) streams arrivals and lets each shard
    jump from its ``free_at`` horizon straight to the next arrival.
    ``mode="dense"`` is the quantum-stepping reference loop: it walks
    simulated time in ``dense_quantum``-cycle ticks and polls every
    shard each tick.  Both produce byte-identical reports -- dispatch
    outcomes depend only on arrival order and queue state, never on
    when the host happens to execute them -- so the benchmark can time
    the scheduling strategies against each other in isolation.

    ``memo_seed`` transplants memo tables from a prior run of the same
    config (see :meth:`ShardScheduler.preload_memo`).
    """
    if mode not in ("event", "dense"):
        raise ValueError(f"unknown mode {mode!r}")
    members, _, _ = plan_placement(config)
    states = [_boot_shard(config, index, members[index], image=image,
                          block_cache=block_cache)
              for index in range(config.shards)]
    if memo_seed is not None:
        for state, tables in zip(states, memo_seed):
            if state.sched is not None:
                state.sched.preload_memo(tables)
    placer = Placer(config)
    started = time.perf_counter()
    if mode == "event":
        for arr in _arrivals(config):
            shard, migration = placer.route(arr)
            sched = states[shard].sched
            if migration is not None:
                sched.note_migration(arr.tenant, migration.src)
            sched.offer(arr)
    else:
        stream = _arrivals(config)
        pending = next(stream, None)
        now = 0.0
        while pending is not None:
            now += dense_quantum
            while pending is not None and pending.cycle <= now:
                shard, migration = placer.route(pending)
                sched = states[shard].sched
                if migration is not None:
                    sched.note_migration(pending.tenant, migration.src)
                sched.offer(pending)
                pending = next(stream, None)
            for state in states:
                if state.sched is not None:
                    state.sched.drain_until(now)
    for state in states:
        if state.sched is not None:
            state.sched.drain()
    serve_seconds = time.perf_counter() - started
    for state in states:
        _collect_shard(state)
    report = ShardedServeReport(
        config=config,
        tenants=_merge_tenant_reports(config, states),
        shards=[_shard_report(state) for state in states],
        makespan_cycles=max((s.sched.makespan for s in states
                             if s.sched is not None), default=0.0),
        migrations=list(placer.migrations),
        placement_home=dict(placer.home),
        serve_seconds=serve_seconds)
    report._states = states  # memo-table extraction (benchmark only)
    return report


def memo_tables_of(report: ShardedServeReport) -> list[dict]:
    """The per-shard memo tables of a finished run (for transplanting
    into a fresh engine of the same config)."""
    return [state.sched.memo_tables() if state.sched is not None else {}
            for state in report._states]


# ---------------------------------------------------------------------------
# The serve-scale grid cell (one shard of one experiment)
# ---------------------------------------------------------------------------


def latency_histogram(latencies: list[float]) -> list[int]:
    """Counts per SCALE_LATENCY_BUCKETS bound (last slot = overflow)."""
    counts = [0] * (len(SCALE_LATENCY_BUCKETS) + 1)
    for value in latencies:
        counts[bisect_left(SCALE_LATENCY_BUCKETS, value)] += 1
    return counts


def histogram_percentile(counts: list[int], q: float) -> float:
    """Nearest-rank percentile at bucket-bound resolution."""
    total = sum(counts)
    if not total:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * total))
    running = 0
    for index, count in enumerate(counts):
        running += count
        if running >= rank:
            return SCALE_LATENCY_BUCKETS[min(
                index, len(SCALE_LATENCY_BUCKETS) - 1)]
    return SCALE_LATENCY_BUCKETS[-1]


def scale_shard_cell(params: dict[str, Any]) -> dict[str, Any]:
    """One (scheme, tenants, shards, shard) cell of the scale grid.

    Reconstructs the placement plan independently (it is a pure
    function of the config), boots only this shard's members, serves
    only the arrivals routed here, and ships per-tenant summaries plus
    a fixed-bucket latency histogram -- everything the assembler needs
    for byte-exact merged scaling rows, without raw latency lists.
    """
    config = sharded_config_from_params(params)
    shard_index = int(params["shard"])
    members, migrations, _ = plan_placement(config)
    state = _boot_shard(config, shard_index, members[shard_index],
                        block_cache=params.get("block_cache"))
    placer = Placer(config)
    started = time.perf_counter()
    for arr in _arrivals(config):
        shard, migration = placer.route(arr)
        if shard != shard_index:
            continue
        if migration is not None:
            state.sched.note_migration(arr.tenant, migration.src)
        state.sched.offer(arr)
    if state.sched is not None:
        state.sched.drain()
    serve_seconds = time.perf_counter() - started
    _collect_shard(state)
    shard_report = _shard_report(state)
    latencies: list[float] = []
    tenant_rows = []
    for idx in state.members:
        report = state.reports[idx]
        latencies.extend(report.latencies)
        row = report.as_dict()
        del row["latency_p50"], row["latency_p95"], row["latency_p99"]
        del row["latency_mean"], row["latency_max"]
        row["migrations_in"] = \
            state.sched.tenant_migrations.get(idx, 0) \
            if state.sched else 0
        tenant_rows.append(row)
    return {
        "shard": shard_index,
        "members": list(state.members),
        "report": shard_report.as_dict(),
        "tenants": tenant_rows,
        "latency_hist": latency_histogram(latencies),
        "migrations_total": len(migrations),
        "serve_seconds": serve_seconds,
    }


def merge_scale_shards(scheme: str, tenants: int, shards: int,
                       payloads: list[dict[str, Any]]) -> dict[str, Any]:
    """Merge one experiment's per-shard cell payloads (in shard order)
    into a scaling row.  Pure dict/int arithmetic: byte-exact under any
    worker fan-out."""
    hist = [0] * (len(SCALE_LATENCY_BUCKETS) + 1)
    totals = {key: 0 for key in
              ("arrivals", "admitted", "shed", "completed", "switches",
               "migrations_in", "ibpb_flushes",
               "migration_cold_dispatches", "memo_keys", "memo_replays",
               "memo_interpreted")}
    cycles = {key: 0.0 for key in
              ("kernel_cycles", "switch_cycles",
               "migration_excess_cycles")}
    makespan = 0.0
    per_shard = []
    for payload in payloads:
        report = payload["report"]
        for key in totals:
            totals[key] += report[key]
        for key in cycles:
            cycles[key] += report[key]
        makespan = max(makespan, report["makespan_cycles"])
        for index, count in enumerate(payload["latency_hist"]):
            hist[index] += count
        per_shard.append({
            "shard": report["shard"],
            "tenants": len(payload["members"]),
            "completed": report["completed"],
            "makespan_cycles": report["makespan_cycles"],
            "migrations_in": report["migrations_in"],
        })
    offered = totals["arrivals"]
    if offered != totals["admitted"] + totals["shed"]:
        raise AssertionError(
            f"conservation violated: offered={offered} != "
            f"admitted={totals['admitted']} + shed={totals['shed']}")
    throughput = (totals["completed"] * CORE_HZ / makespan
                  if makespan > 0 else 0.0)
    return {
        "scheme": scheme, "tenants": tenants, "shards": shards,
        "offered": offered,
        **totals, **cycles,
        "makespan_cycles": makespan,
        "throughput_rps": throughput,
        "latency_p50": histogram_percentile(hist, 50.0),
        "latency_p99": histogram_percentile(hist, 99.0),
        "per_shard": per_shard,
    }
