"""Workloads: the LEBench microbenchmark suite and datacenter application
models with their load-generation clients."""

from repro.workloads.apps import (
    APP_NAMES,
    APP_SPECS,
    AppRunResult,
    AppSpec,
    AppState,
    AppWorkload,
)
from repro.workloads.clients import CLIENTS, ClientSpec
from repro.workloads.driver import Driver, RunStats
from repro.workloads.lebench import (
    LEBenchTest,
    TEST_NAMES,
    TestState,
    build_tests,
    exercise_all,
    run_lebench,
)

__all__ = [
    "APP_NAMES",
    "APP_SPECS",
    "AppRunResult",
    "AppSpec",
    "AppState",
    "AppWorkload",
    "CLIENTS",
    "ClientSpec",
    "Driver",
    "LEBenchTest",
    "RunStats",
    "TEST_NAMES",
    "TestState",
    "build_tests",
    "exercise_all",
    "run_lebench",
]
