"""Datacenter application models: httpd, nginx, memcached, redis.

Each model replays the server's per-request syscall sequence against the
kernel (Figure 9.3's workloads), with clients driving over the loopback
interface -- the paper's worst case, since nothing bottlenecks on I/O.

Userspace compute is modeled as a fixed per-request cycle budget derived
from the paper's measured kernel-time fractions (50% httpd, 65% nginx,
65% memcached, 53% redis): defenses gate *kernel* speculation, so user
cycles are scheme-invariant, which is why application overheads are much
smaller than microbenchmark ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.analysis.binary import APPLICATIONS, ApplicationBinary
from repro.kernel.kernel import MiniKernel
from repro.kernel.layout import PAGE_SIZE
from repro.kernel.process import Process
from repro.obs import registry as obs
from repro.workloads.driver import Driver


@dataclass
class AppState:
    """Long-lived server state (listening socket, open log, rng)."""

    listen_fd: int = -1
    log_fd: int = -1
    rng: random.Random | None = None


@dataclass
class AppSpec:
    """One application: its binary, kernel-time fraction, and request."""

    name: str
    binary: ApplicationBinary
    kernel_time_fraction: float
    setup: Callable[[Driver, AppState], None]
    request: Callable[[Driver, AppState, int], None]
    #: Paper's UNSAFE-baseline throughput, for absolute-scale reporting.
    paper_unsafe_rps: float = 0.0


def _setup_server(driver: Driver, state: AppState) -> None:
    state.listen_fd = driver.call("socket", args=(0,)).retval
    driver.call("bind", args=(state.listen_fd,))
    driver.call("listen", args=(state.listen_fd,))


def _setup_redis(driver: Driver, state: AppState) -> None:
    _setup_server(driver, state)
    state.log_fd = driver.call("open", args=(0,)).retval
    driver.call("epoll_create")


def _httpd_request(driver: Driver, state: AppState, i: int) -> None:
    driver.call("epoll_wait", args=(16,), spin=16)
    conn = driver.call("accept", args=(state.listen_fd,)).retval
    driver.call("recvfrom", args=(conn, 512), spin=12)
    driver.call("stat", args=(0,))
    file_fd = driver.call("open", args=(i,)).retval
    driver.call("read", args=(file_fd, 8 * PAGE_SIZE), spin=32)
    driver.call("writev", args=(conn, 8 * PAGE_SIZE), spin=32)
    driver.call("close", args=(file_fd,))
    driver.call("close", args=(conn,))


def _nginx_request(driver: Driver, state: AppState, i: int) -> None:
    driver.call("epoll_wait", args=(16,), spin=16)
    conn = driver.call("accept", args=(state.listen_fd,)).retval
    driver.call("recvfrom", args=(conn, 512), spin=12)
    file_fd = driver.call("open", args=(i,)).retval
    driver.call("pread64", args=(file_fd, 8 * PAGE_SIZE), spin=32)
    driver.call("writev", args=(conn, 8 * PAGE_SIZE), spin=32)
    driver.call("close", args=(file_fd,))
    driver.call("close", args=(conn,))


def _memcached_request(driver: Driver, state: AppState, i: int) -> None:
    driver.call("epoll_wait", args=(12,), spin=12)
    driver.call("recvfrom", args=(state.listen_fd, 128), spin=16)
    driver.call("sendto", args=(state.listen_fd, 1024), spin=24)
    if i % 16 == 0:
        driver.call("futex", args=(0,), spin=4)
    if i % 96 == 0:
        driver.call("sendmsg", args=(state.listen_fd, 4096), spin=8)


def _redis_request(driver: Driver, state: AppState, i: int) -> None:
    driver.call("epoll_wait", args=(12,), spin=12)
    driver.call("recvfrom", args=(state.listen_fd, 128), spin=16)
    driver.call("sendto", args=(state.listen_fd, 512), spin=20)
    if i % 8 == 0:
        driver.call("write", args=(state.log_fd, 256), spin=4)
    if i % 24 == 0:
        # Large multi-bulk replies go out through gather buffers.
        driver.call("sendmsg", args=(state.listen_fd, 8192), spin=8)


APP_SPECS: dict[str, AppSpec] = {
    "httpd": AppSpec("httpd", APPLICATIONS["httpd"], 0.50,
                     _setup_server, _httpd_request,
                     paper_unsafe_rps=11_500),
    "nginx": AppSpec("nginx", APPLICATIONS["nginx"], 0.65,
                     _setup_server, _nginx_request,
                     paper_unsafe_rps=18_000),
    "memcached": AppSpec("memcached", APPLICATIONS["memcached"], 0.65,
                         _setup_server, _memcached_request,
                         paper_unsafe_rps=55_000),
    "redis": AppSpec("redis", APPLICATIONS["redis"], 0.53,
                     _setup_redis, _redis_request,
                     paper_unsafe_rps=40_700),
}

APP_NAMES = tuple(APP_SPECS)


@dataclass
class AppRunResult:
    """Measured kernel time for a batch of requests."""

    app: str
    requests: int
    kernel_cycles: float
    syscalls: int

    @property
    def kernel_cycles_per_request(self) -> float:
        return self.kernel_cycles / self.requests


class AppWorkload:
    """A running server instance bound to one kernel process."""

    def __init__(self, kernel: MiniKernel, proc: Process, spec: AppSpec,
                 rare_every: int = 25) -> None:
        self.kernel = kernel
        self.proc = proc
        self.spec = spec
        self.driver = Driver(kernel, proc, rare_every=rare_every)
        self.state = AppState(rng=random.Random(f"app:{spec.name}"))
        spec.setup(self.driver, self.state)
        self._request_counter = 0

    def serve(self, requests: int, measure: bool = True) -> AppRunResult:
        """Serve a batch of client requests; returns kernel-side timing."""
        if measure:
            self.driver.reset_stats()
        for _ in range(requests):
            with obs.span(f"request/{self.spec.name}"):
                self.spec.request(self.driver, self.state,
                                  self._request_counter)
            self._request_counter += 1
        stats = self.driver.stats
        return AppRunResult(app=self.spec.name, requests=requests,
                            kernel_cycles=stats.kernel_cycles,
                            syscalls=stats.syscalls)

    def user_cycles_per_request(self, unsafe_kernel_per_request: float) -> float:
        """Userspace budget implied by the paper's kernel-time fraction."""
        f = self.spec.kernel_time_fraction
        return unsafe_kernel_per_request * (1.0 - f) / f
