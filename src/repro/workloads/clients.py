"""Load-generation clients (Chapter 7's methodology).

The paper drives httpd/nginx with ``ab`` (40K requests), redis with
``redis-benchmark`` (20K requests averaged over its test list), and
memcached with ``memslap`` (160K requests).  Simulated cycles are
deterministic, so the harness serves a sampled batch per configuration and
reports per-request figures; each client spec records both the paper's
request count and the sampled count used here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClientSpec:
    """One load generator."""

    name: str
    tool: str
    app: str
    paper_requests: int
    sampled_requests: int

    @property
    def sampling_note(self) -> str:
        return (f"{self.tool}: paper drives {self.paper_requests} requests; "
                f"deterministic simulation samples {self.sampled_requests}")


CLIENTS: dict[str, ClientSpec] = {
    "httpd": ClientSpec("ab-httpd", "ab", "httpd",
                        paper_requests=40_000, sampled_requests=40),
    "nginx": ClientSpec("ab-nginx", "ab", "nginx",
                        paper_requests=40_000, sampled_requests=40),
    "redis": ClientSpec("redis-benchmark", "redis-benchmark", "redis",
                        paper_requests=20_000, sampled_requests=60),
    "memcached": ClientSpec("memslap", "memslap", "memcached",
                            paper_requests=160_000, sampled_requests=60),
}
