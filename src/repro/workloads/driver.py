"""Workload driver: issues syscalls on behalf of a benchmark process.

Centralizes two cross-cutting behaviours:

* **cycle accounting** -- sums simulated kernel cycles and speculation
  statistics across every syscall of a run;
* **rare-path injection** -- during *measurement* runs (not profiling
  runs), every ``rare_every``-th eligible syscall passes the magic ``r1``
  argument that steers the kernel down a rarely-used path.  Profiling runs
  never do, which is precisely why dynamic ISVs occasionally fence benign
  execution (the ISV share of Table 10.1's fence breakdown).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.pipeline import ExecResult
from repro.kernel.image import RARE_PATH_MAGIC
from repro.kernel.kernel import MiniKernel, SyscallResult
from repro.kernel.process import Process
from repro.obs import events as ev
from repro.obs import registry as obs
from repro.obs import reqtrace as rt

#: Syscalls whose second argument carries no semantic meaning in the
#: kernel model, so the driver may use it for rare-path injection.
_RARE_SAFE = frozenset({
    "read", "write", "pread64", "pwrite64", "readv", "writev",
    "sendto", "recvfrom", "sendmsg", "recvmsg", "poll", "select",
    "epoll_wait", "getpid", "getuid", "sched_yield", "futex", "fstat",
    "lseek", "access", "stat", "nanosleep",
})


@dataclass
class RunStats:
    """Aggregated outcome of a driven workload run."""

    kernel_cycles: float = 0.0
    syscalls: int = 0
    exec: ExecResult = field(default_factory=ExecResult)

    def add(self, result: SyscallResult) -> None:
        self.kernel_cycles += result.cycles
        self.syscalls += 1
        if result.exec_result is not None:
            self.exec.merge(result.exec_result)

    @property
    def cycles_per_syscall(self) -> float:
        return self.kernel_cycles / self.syscalls if self.syscalls else 0.0


class Driver:
    """Issues syscalls for one process, with optional rare-path injection."""

    def __init__(self, kernel: MiniKernel, proc: Process,
                 rare_every: int = 0) -> None:
        self.kernel = kernel
        self.proc = proc
        self.rare_every = rare_every
        self._counter = 0
        self.stats = RunStats()

    def call(self, name: str, args: tuple[int, ...] = (),
             spin: int = 0) -> SyscallResult:
        self._counter += 1
        if (self.rare_every and name in _RARE_SAFE
                and self._counter % self.rare_every == 0):
            padded = list(args) + [0] * (2 - len(args))
            args = (padded[0], RARE_PATH_MAGIC, *padded[2:])
        registry = obs.active_registry()
        if registry is None:
            result = self.kernel.syscall(self.proc, name, args=args,
                                         spin=spin)
        else:
            # Span nesting: syscall/<name> here, fn/<entry>/phase/* from
            # the pipeline inside.  The driver node keeps only the trap
            # cost as self cycles, so the subtree sums to result.cycles.
            with registry.span(f"syscall/{name}"):
                result = self.kernel.syscall(self.proc, name, args=args,
                                             spin=spin)
                exec_cycles = result.exec_result.cycles \
                    if result.exec_result is not None else 0.0
                registry.tick(result.cycles - exec_cycles)
            registry.add("driver.syscalls")
            registry.observe("driver.syscall_cycles", result.cycles)
        # The pipeline advances the event-journal base by its own cycles;
        # the driver adds the trap cost so journal stamps stay aligned
        # with cumulative kernel cycles.
        if result.exec_result is not None:
            ev.advance(result.cycles - result.exec_result.cycles)
        self.stats.add(result)
        # Request tracing: one step per syscall on the open request (a
        # global read + None test when no recorder/request is active).
        rt.step("syscall", name, result.cycles)
        return result

    def reset_stats(self) -> None:
        self.stats = RunStats()
